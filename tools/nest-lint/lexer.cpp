#include "lexer.h"

#include <cctype>

namespace nestlint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto push = [&](Tok kind, std::string text, int tok_line) {
    out.push_back(Token{kind, std::move(text), tok_line});
  };

  while (i < n) {
    char c = src[i];

    if (c == '\n') {
      ++line;
      at_line_start = true;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }

    // Preprocessor directive: '#' first on the line; join continuations.
    if (c == '#' && at_line_start) {
      int start_line = line;
      std::string text;
      while (i < n) {
        char d = src[i];
        if (d == '\\' && i + 1 < n && src[i + 1] == '\n') {
          text += ' ';
          ++line;
          i += 2;
          continue;
        }
        if (d == '\n') break;
        text += d;
        ++i;
      }
      push(Tok::pp, std::move(text), start_line);
      at_line_start = false;
      continue;
    }
    at_line_start = false;

    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      int start_line = line;
      i += 2;
      std::string text;
      while (i < n && src[i] != '\n') text += src[i++];
      push(Tok::comment, std::move(text), start_line);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      int start_line = line;
      i += 2;
      std::string text;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        text += src[i++];
      }
      i = (i + 1 < n) ? i + 2 : n;
      push(Tok::comment, std::move(text), start_line);
      continue;
    }

    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && src[d] != '(' && delim.size() <= 16) delim += src[d++];
      if (d < n && src[d] == '(') {
        int start_line = line;
        std::string close = ")" + delim + "\"";
        std::size_t body = d + 1;
        std::size_t end = src.find(close, body);
        if (end == std::string_view::npos) end = n;
        std::string text(src.substr(body, end - body));
        for (char t : text)
          if (t == '\n') ++line;
        i = (end == n) ? n : end + close.size();
        push(Tok::str, std::move(text), start_line);
        continue;
      }
      // 'R' not followed by a raw string: fall through as identifier.
    }

    // String / char literals (with escape handling).
    if (c == '"' || c == '\'') {
      const char quote = c;
      int start_line = line;
      std::string text;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          text += src[i];
          text += src[i + 1];
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep line counts sane
        text += src[i++];
      }
      if (i < n) ++i;  // closing quote
      push(quote == '"' ? Tok::str : Tok::chr, std::move(text), start_line);
      continue;
    }

    // Identifiers (string-literal prefixes like u8"..." land here first;
    // the quote is picked up on the next loop iteration, which is fine
    // for every rule this tool runs).
    if (ident_start(c)) {
      std::string text;
      while (i < n && ident_char(src[i])) text += src[i++];
      push(Tok::ident, std::move(text), line);
      continue;
    }

    // pp-numbers (covers 0x1F, 1'000, 1.5e3; rules only parse integers).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      while (i < n && (ident_char(src[i]) || src[i] == '\'' ||
                       ((src[i] == '+' || src[i] == '-') && !text.empty() &&
                        (text.back() == 'e' || text.back() == 'E' ||
                         text.back() == 'p' || text.back() == 'P')))) {
        text += src[i++];
      }
      if (i < n && src[i] == '.') {  // keep floats one token
        text += src[i++];
        while (i < n && ident_char(src[i])) text += src[i++];
      }
      push(Tok::number, std::move(text), line);
      continue;
    }

    // "::" is the one multi-char punctuator the rules care about.
    if (c == ':' && i + 1 < n && src[i + 1] == ':') {
      push(Tok::punct, "::", line);
      i += 2;
      continue;
    }

    push(Tok::punct, std::string(1, c), line);
    ++i;
  }
  return out;
}

std::vector<Token> code_only(const std::vector<Token>& toks) {
  std::vector<Token> out;
  out.reserve(toks.size());
  for (const auto& t : toks) {
    if (t.kind != Tok::comment && t.kind != Tok::pp) out.push_back(t);
  }
  return out;
}

}  // namespace nestlint
