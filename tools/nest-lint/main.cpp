// nest-lint driver: file discovery, the suppression index, rule
// dispatch, reporting. See nest_lint.h for the contract and
// docs/static-analysis.md for the rule catalog.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "nest_lint.h"

namespace nestlint {
namespace fs = std::filesystem;

bool read_file(const fs::path& p, std::string& out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

namespace {

bool source_ext(const fs::path& p) {
  auto e = p.extension().string();
  return e == ".h" || e == ".hpp" || e == ".cpp" || e == ".cc";
}

std::string rel_to(const fs::path& root, const fs::path& p) {
  std::error_code ec;
  auto rel = fs::proximate(p, root, ec);
  return ec ? p.generic_string() : rel.generic_string();
}

// "src/storage/vfs.h" -> "storage"; "" when not under src/.
std::string subdir_of(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return {};
  auto second = rel.find('/', 4);
  if (second == std::string::npos) return {};
  return rel.substr(4, second - 4);
}

// Pull the "file" entries out of compile_commands.json. A full JSON
// parser would be overkill: the compilation database is
// machine-generated, one object per TU, and we only need the string
// after each `"file":` key (escapes other than \\ and \" do not appear
// in sane paths; both are handled).
std::vector<std::string> compile_command_files(const std::string& json) {
  std::vector<std::string> out;
  const std::string key = "\"file\"";
  for (auto pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + 1)) {
    auto colon = json.find(':', pos + key.size());
    if (colon == std::string::npos) continue;
    auto q1 = json.find('"', colon + 1);
    if (q1 == std::string::npos) continue;
    std::string path;
    for (auto i = q1 + 1; i < json.size() && json[i] != '"'; ++i) {
      if (json[i] == '\\' && i + 1 < json.size()) {
        path += json[++i];
      } else {
        path += json[i];
      }
    }
    out.push_back(path);
  }
  return out;
}

void load_file(const fs::path& root, const fs::path& abs, Context& ctx) {
  std::string text;
  if (!read_file(abs, text)) {
    std::fprintf(stderr, "nest-lint: cannot read %s\n",
                 abs.generic_string().c_str());
    return;
  }
  SourceFile f;
  f.rel_path = rel_to(root, abs);
  f.subdir = subdir_of(f.rel_path);
  auto ext = abs.extension().string();
  f.is_header = ext == ".h" || ext == ".hpp";
  f.toks = lex(text);
  // Index `nest-lint: allow(<rule>): <reason>` comments: the named rule
  // is silenced on the comment's line and the next (NOLINTNEXTLINE
  // style). Malformed allow comments are findings of the suppress rule.
  for (const auto& t : f.toks) {
    if (t.kind != Tok::comment) continue;
    auto mark = t.text.find("nest-lint:");
    if (mark == std::string::npos) continue;
    auto open = t.text.find("allow(", mark);
    if (open == std::string::npos) continue;
    auto close = t.text.find(')', open);
    if (close == std::string::npos) continue;
    std::string rule = t.text.substr(open + 6, close - open - 6);
    ctx.allowed[f.rel_path][rule].insert(t.line);
    ctx.allowed[f.rel_path][rule].insert(t.line + 1);
  }
  ctx.files.push_back(std::move(f));
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--root DIR] [--compile-commands FILE] [--rule NAME]...\n"
      "       %s --list-rules\n"
      "\n"
      "Lints every C++ source under <root>/src with the NeST rule catalog\n"
      "(docs/static-analysis.md). With --compile-commands, the TU list\n"
      "comes from the compilation database (headers are still walked);\n"
      "without one, the whole src/ tree is walked. --rule limits the run\n"
      "to the named rules. Exit: 0 clean, 1 findings, 2 bad invocation.\n",
      argv0, argv0);
  return 2;
}

}  // namespace
}  // namespace nestlint

int main(int argc, char** argv) {
  using namespace nestlint;
  fs::path root = ".";
  fs::path compile_commands;
  std::set<std::string> selected;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& r : all_rules()) {
        std::printf("%-10s %s\n", r.name, r.summary);
      }
      return 0;
    }
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands = argv[++i];
    } else if (arg == "--rule" && i + 1 < argc) {
      std::string name = argv[++i];
      bool known = false;
      for (const auto& r : all_rules()) known = known || name == r.name;
      if (!known) {
        std::fprintf(stderr, "nest-lint: unknown rule '%s' (--list-rules)\n",
                     name.c_str());
        return 2;
      }
      selected.insert(name);
    } else {
      return usage(argv[0]);
    }
  }

  std::error_code ec;
  if (!fs::is_directory(root / "src", ec)) {
    std::fprintf(stderr, "nest-lint: %s/src is not a directory\n",
                 root.generic_string().c_str());
    return 2;
  }

  Context ctx;
  ctx.root = root;

  // TU list from the compilation database when given; headers are never
  // in it, so the walk below always adds them. Degrades to a plain walk
  // when the database is missing or unreadable — the rules only need
  // tokens, not flags.
  std::set<std::string> seen;
  if (!compile_commands.empty()) {
    std::string json;
    if (read_file(compile_commands, json)) {
      for (const auto& file : compile_command_files(json)) {
        fs::path p = file;
        if (p.is_relative()) p = compile_commands.parent_path() / p;
        p = fs::weakly_canonical(p, ec);
        std::string rel = rel_to(root, p);
        if (rel.rfind("src/", 0) != 0 || !source_ext(p)) continue;
        if (!fs::exists(p, ec) || !seen.insert(rel).second) continue;
        load_file(root, p, ctx);
      }
    } else {
      std::fprintf(stderr,
                   "nest-lint: cannot read %s; walking src/ instead\n",
                   compile_commands.generic_string().c_str());
    }
  }
  for (auto it = fs::recursive_directory_iterator(root / "src", ec);
       !ec && it != fs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file(ec) || !source_ext(it->path())) continue;
    // With a compilation database, non-header TUs not listed in it are
    // still linted: rules are per-file and a just-added file must not
    // escape the gate because the build dir is stale.
    std::string rel = rel_to(root, it->path());
    if (!seen.insert(rel).second) continue;
    load_file(root, it->path(), ctx);
  }
  std::sort(ctx.files.begin(), ctx.files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });

  std::vector<Finding> findings;
  for (const auto& r : all_rules()) {
    if (!selected.empty() && selected.count(r.name) == 0) continue;
    std::size_t before = findings.size();
    r.fn(ctx, findings);
    // Drop findings the suppression index allows (rules that check the
    // index themselves just never emit; this catches the rest).
    findings.erase(
        std::remove_if(findings.begin() + static_cast<long>(before),
                       findings.end(),
                       [&](const Finding& f) {
                         return ctx.line_allowed(f.file, f.rule, f.line);
                       }),
        findings.end());
  }

  for (const auto& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("nest-lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
