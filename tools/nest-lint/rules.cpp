// The nest-lint rule catalog. Every rule is a pure pass over pre-lexed
// token streams (plus the two non-source inputs: src/common/lockrank.h's
// rank enum and the rank table in docs/static-analysis.md). Rules are
// listed here in the order they run; docs/static-analysis.md is the
// user-facing catalog and must stay in sync.
#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "nest_lint.h"

namespace nestlint {
namespace {

// ---------------------------------------------------------------------------
// Rule: layering — the include DAG between src/ subdirs.
//
// Bands, innermost utilities first. An #include edge is legal when the
// target's band is <= the including file's band (same-band edges are
// allowed: dispatcher<->protocol share request/queue types by design).
// sim/simnest/loadgen are the sandbox: the deterministic harness may
// include anything, but production code may never include the sandbox.
// docs/static-analysis.md explains each band; update both together.
const std::map<std::string, int>& bands() {
  static const std::map<std::string, int> kBands = {
      {"common", 0},
      {"classad", 1}, {"fault", 1},
      {"net", 2}, {"obs", 2}, {"discovery", 2},
      {"storage", 3}, {"journal", 3},
      {"transfer", 4}, {"hsm", 4}, {"cluster", 4}, {"jbos", 4},
      {"dispatcher", 5}, {"protocol", 5},
      {"server", 6}, {"client", 6},
  };
  return kBands;
}

const std::set<std::string>& sandbox() {
  static const std::set<std::string> kSandbox = {"sim", "simnest", "loadgen"};
  return kSandbox;
}

// "#include \"storage/vfs.h\"" -> "storage"; "" when not a quoted
// subdir-qualified include.
std::string included_subdir(const std::string& pp_text) {
  auto q1 = pp_text.find('"');
  if (q1 == std::string::npos) return {};
  auto q2 = pp_text.find('"', q1 + 1);
  if (q2 == std::string::npos) return {};
  std::string path = pp_text.substr(q1 + 1, q2 - q1 - 1);
  auto slash = path.find('/');
  if (slash == std::string::npos) return {};
  return path.substr(0, slash);
}

void rule_layering(const Context& ctx, std::vector<Finding>& out) {
  for (const auto& f : ctx.files) {
    if (f.subdir.empty()) continue;
    const bool from_sandbox = sandbox().count(f.subdir) != 0;
    auto from_band = bands().find(f.subdir);
    if (!from_sandbox && from_band == bands().end()) {
      out.push_back({f.rel_path, 1, "layering",
                     "src/" + f.subdir +
                         "/ is not in the layering table; add it to "
                         "bands() in tools/nest-lint/rules.cpp and to "
                         "docs/static-analysis.md"});
      continue;
    }
    for (const auto& t : f.toks) {
      if (t.kind != Tok::pp) continue;
      if (t.text.find("include") == std::string::npos) continue;
      std::string target = included_subdir(t.text);
      if (target.empty() || target == f.subdir) continue;
      if (from_sandbox) continue;  // sandbox may include anything
      if (sandbox().count(target) != 0) {
        out.push_back({f.rel_path, t.line, "layering",
                       "production code must not include the sim sandbox "
                       "(src/" + target + "/)"});
        continue;
      }
      auto to_band = bands().find(target);
      if (to_band == bands().end()) continue;  // not a src subdir include
      if (to_band->second > from_band->second) {
        out.push_back({f.rel_path, t.line, "layering",
                       "back-edge include: src/" + f.subdir + "/ (band " +
                           std::to_string(from_band->second) +
                           ") must not include src/" + target + "/ (band " +
                           std::to_string(to_band->second) +
                           "); see the layering DAG in "
                           "docs/static-analysis.md"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: syscalls — blocking-syscall confinement.
//
// Wire I/O syscalls live in src/net only; blocking file-I/O syscalls
// live in src/storage, src/journal, src/net, src/hsm. Everything else
// goes through the VirtualFs / net::TcpStream abstractions so fallback
// semantics, failpoints, and zero-copy paths stay in one place, and so a
// protocol thread can never sneak an unbounded disk wait past the
// scheduler.
const std::set<std::string>& socket_syscalls() {
  static const std::set<std::string> k = {
      "send", "recv", "sendto", "recvfrom", "sendfile",
      "writev", "sendmsg", "recvmsg"};
  return k;
}

const std::set<std::string>& file_syscalls() {
  static const std::set<std::string> k = {
      "open", "openat", "creat", "close", "read", "pread", "readv", "preadv",
      "write", "pwrite", "pwritev", "fsync", "fdatasync", "syncfs", "stat",
      "fstat", "lstat", "statvfs", "fstatvfs", "lseek", "ftruncate",
      "truncate", "unlink", "unlinkat", "rename", "renameat", "mkdir",
      "mkdirat", "rmdir", "opendir", "readdir", "closedir"};
  return k;
}

bool is_global_call(const std::vector<Token>& code, std::size_t i) {
  // code[i] == "::": global-qualified call when not preceded by a name
  // (which would make it Foo::bar) and followed by ident + '('.
  if (i + 2 >= code.size()) return false;
  if (code[i + 1].kind != Tok::ident) return false;
  if (!(code[i + 2].kind == Tok::punct && code[i + 2].text == "(")) {
    return false;
  }
  if (i == 0) return true;
  const Token& prev = code[i - 1];
  if (prev.kind == Tok::ident) {
    // `Foo::open` is a qualified member; `return ::open` is global — a
    // keyword before `::` does not qualify the name.
    static const std::set<std::string> kKeywords = {
        "return", "co_return", "co_yield", "co_await", "throw", "case",
        "else", "do", "new", "delete", "not", "and", "or"};
    return kKeywords.count(prev.text) != 0;
  }
  if (prev.kind == Tok::number) return false;
  if (prev.kind == Tok::punct && (prev.text == ">" || prev.text == ")")) {
    return false;
  }
  return true;
}

void rule_syscalls(const Context& ctx, std::vector<Finding>& out) {
  for (const auto& f : ctx.files) {
    if (f.subdir.empty() || sandbox().count(f.subdir) != 0) continue;
    const bool net_ok = f.subdir == "net";
    const bool file_ok = f.subdir == "storage" || f.subdir == "journal" ||
                         f.subdir == "net" || f.subdir == "hsm";
    if (net_ok && file_ok) continue;
    auto code = code_only(f.toks);
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (!(code[i].kind == Tok::punct && code[i].text == "::")) continue;
      if (!is_global_call(code, i)) continue;
      const std::string& name = code[i + 1].text;
      if (!net_ok && socket_syscalls().count(name) != 0) {
        if (ctx.line_allowed(f.rel_path, "syscalls", code[i + 1].line)) {
          continue;
        }
        out.push_back({f.rel_path, code[i + 1].line, "syscalls",
                       "raw ::" + name +
                           "() outside src/net/ — use net::TcpStream / "
                           "net::UdpSocket (src/net/socket.h)"});
      } else if (!file_ok && file_syscalls().count(name) != 0) {
        if (ctx.line_allowed(f.rel_path, "syscalls", code[i + 1].line)) {
          continue;
        }
        out.push_back({f.rel_path, code[i + 1].line, "syscalls",
                       "raw ::" + name +
                           "() outside src/{storage,journal,net,hsm}/ — "
                           "blocking I/O goes through VirtualFs "
                           "(src/storage/vfs.h) or the net layer"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lockrank — the rank enum and the documented rank table must agree.
//
// src/common/lockrank.h is the enforcing artifact; the table in
// docs/static-analysis.md is what humans read when picking a rank. Drift
// between them is how a "documented" order stops being the real order.
std::map<std::string, int> parse_rank_enum(const std::vector<Token>& toks,
                                           bool& found_enum) {
  std::map<std::string, int> ranks;
  auto code = code_only(toks);
  found_enum = false;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (!(code[i].kind == Tok::ident && code[i].text == "enum")) continue;
    std::size_t j = i + 1;
    if (code[j].kind == Tok::ident && code[j].text == "class") ++j;
    if (!(code[j].kind == Tok::ident && code[j].text == "Rank")) continue;
    // Skip to the opening brace, then collect `name = number` pairs.
    while (j < code.size() &&
           !(code[j].kind == Tok::punct && code[j].text == "{")) {
      ++j;
    }
    found_enum = j < code.size();
    for (++j; j < code.size(); ++j) {
      if (code[j].kind == Tok::punct && code[j].text == "}") break;
      if (code[j].kind == Tok::ident && j + 2 < code.size() &&
          code[j + 1].kind == Tok::punct && code[j + 1].text == "=" &&
          code[j + 2].kind == Tok::number) {
        ranks[code[j].text] =
            static_cast<int>(std::strtol(code[j + 2].text.c_str(), nullptr, 0));
        j += 2;
      }
    }
    break;
  }
  return ranks;
}

// Parse `| 30 | `storage_meta` | ... |` markdown rows.
std::map<std::string, int> parse_rank_table(const std::string& text,
                                            std::vector<int>& order) {
  // Only the table whose header cell says "rank" is the canonical rank
  // table — the doc also carries other `| N | `name` |` tables (the
  // layering bands), which must not be read as ranks.
  std::map<std::string, int> ranks;
  std::istringstream in(text);
  std::string line;
  bool in_table = false;
  while (std::getline(in, line)) {
    auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != '|') {
      in_table = false;
      continue;
    }
    if (!in_table) {
      if (line.find("rank") != std::string::npos &&
          line.find("name") != std::string::npos) {
        in_table = true;
      }
      continue;
    }
    std::vector<std::string> cells;
    std::string cell;
    for (std::size_t i = first + 1; i < line.size(); ++i) {
      if (line[i] == '|') {
        cells.push_back(cell);
        cell.clear();
      } else {
        cell += line[i];
      }
    }
    if (cells.size() < 2) continue;
    char* end = nullptr;
    const long rank = std::strtol(cells[0].c_str(), &end, 10);
    if (end == cells[0].c_str()) continue;  // header / separator row
    auto b1 = cells[1].find('`');
    if (b1 == std::string::npos) continue;
    auto b2 = cells[1].find('`', b1 + 1);
    if (b2 == std::string::npos) continue;
    std::string name = cells[1].substr(b1 + 1, b2 - b1 - 1);
    ranks[name] = static_cast<int>(rank);
    order.push_back(static_cast<int>(rank));
  }
  return ranks;
}

void rule_lockrank(const Context& ctx, std::vector<Finding>& out) {
  const SourceFile* lockrank_h = nullptr;
  for (const auto& f : ctx.files) {
    if (f.rel_path == "src/common/lockrank.h") lockrank_h = &f;
  }
  if (lockrank_h == nullptr) return;  // tree without the detector (fixtures)
  bool found_enum = false;
  auto code_ranks = parse_rank_enum(lockrank_h->toks, found_enum);
  if (!found_enum || code_ranks.empty()) {
    out.push_back({"src/common/lockrank.h", 1, "lockrank",
                   "could not parse `enum class Rank` — the drift check "
                   "needs `name = <number>` enumerators"});
    return;
  }
  const std::string docs_rel = "docs/static-analysis.md";
  std::string docs;
  if (!read_file(ctx.root / docs_rel, docs)) {
    out.push_back({docs_rel, 1, "lockrank",
                   "missing — the canonical rank table must be documented "
                   "next to the suppression policy"});
    return;
  }
  std::vector<int> order;
  auto doc_ranks = parse_rank_table(docs, order);
  for (const auto& [name, rank] : code_ranks) {
    auto it = doc_ranks.find(name);
    if (it == doc_ranks.end()) {
      out.push_back({docs_rel, 1, "lockrank",
                     "rank table is missing `" + name + "` (= " +
                         std::to_string(rank) + " in src/common/lockrank.h)"});
    } else if (it->second != rank) {
      out.push_back({docs_rel, 1, "lockrank",
                     "rank drift: `" + name + "` is " +
                         std::to_string(it->second) + " in the table but " +
                         std::to_string(rank) + " in src/common/lockrank.h"});
    }
  }
  for (const auto& [name, rank] : doc_ranks) {
    if (code_ranks.find(name) == code_ranks.end()) {
      out.push_back({docs_rel, 1, "lockrank",
                     "rank table lists `" + name + "` (= " +
                         std::to_string(rank) +
                         ") which src/common/lockrank.h does not define"});
    }
  }
  if (!std::is_sorted(order.begin(), order.end())) {
    out.push_back({docs_rel, 1, "lockrank",
                   "rank table rows are not in ascending rank order"});
  }
}

// ---------------------------------------------------------------------------
// Rule: suppress — every waiver must be named, reasoned, and budgeted.
//
//  * clang-tidy: bare NOLINT / NOLINTNEXTLINE (no check name) is a
//    blanket waiver and is rejected.
//  * NO_THREAD_SAFETY_ANALYSIS is budgeted at kNtsaBudget uses in the
//    whole tree, and the "Current uses (N of B)" line in
//    docs/static-analysis.md must state the real count.
//  * nest-lint's own `nest-lint: allow(rule): reason` comments must name
//    a real rule and carry a reason.
constexpr int kNtsaBudget = 3;

bool known_rule(const std::string& name) {
  for (const auto& r : all_rules()) {
    if (name == r.name) return true;
  }
  return false;
}

void rule_suppress(const Context& ctx, std::vector<Finding>& out) {
  int ntsa_count = 0;
  for (const auto& f : ctx.files) {
    const bool is_shim = f.rel_path == "src/common/thread_annotations.h";
    for (const auto& t : f.toks) {
      if (t.kind == Tok::ident && !is_shim &&
          t.text == "NO_THREAD_SAFETY_ANALYSIS") {
        ++ntsa_count;
      }
      if (t.kind != Tok::comment) continue;
      for (std::size_t pos = t.text.find("NOLINT"); pos != std::string::npos;
           pos = t.text.find("NOLINT", pos + 1)) {
        std::size_t after = pos + 6;  // len("NOLINT")
        if (t.text.compare(after, 8, "NEXTLINE") == 0) after += 8;
        if (after >= t.text.size() || t.text[after] != '(') {
          out.push_back({f.rel_path, t.line, "suppress",
                         "bare NOLINT — name the check, e.g. "
                         "NOLINT(bugprone-foo), and say why"});
        }
        pos = after;
        if (pos >= t.text.size()) break;
      }
      auto mark = t.text.find("nest-lint:");
      if (mark != std::string::npos) {
        // Expected: nest-lint: allow(<rule>): <reason>
        std::string rest = t.text.substr(mark + 10);
        auto ws = rest.find_first_not_of(" \t");
        rest = (ws == std::string::npos) ? "" : rest.substr(ws);
        bool ok = false;
        if (rest.compare(0, 6, "allow(") == 0) {
          auto close = rest.find(')');
          if (close != std::string::npos && known_rule(rest.substr(6, close - 6))) {
            std::string reason = rest.substr(close + 1);
            auto colon = reason.find(':');
            ok = colon != std::string::npos &&
                 reason.find_first_not_of(" \t", colon + 1) !=
                     std::string::npos;
          }
        }
        if (!ok) {
          out.push_back(
              {f.rel_path, t.line, "suppress",
               "malformed nest-lint comment — use `nest-lint: "
               "allow(<rule>): <reason>` with a rule from --list-rules"});
        }
      }
    }
  }
  if (ntsa_count > kNtsaBudget) {
    out.push_back({"src", 0, "suppress",
                   "NO_THREAD_SAFETY_ANALYSIS used " +
                       std::to_string(ntsa_count) + " times; the budget is " +
                       std::to_string(kNtsaBudget) +
                       " (docs/static-analysis.md) — restructure instead"});
  }
  std::string docs;
  if (read_file(ctx.root / "docs/static-analysis.md", docs)) {
    auto pos = docs.find("Current uses (");
    if (pos != std::string::npos) {
      const int documented =
          static_cast<int>(std::strtol(docs.c_str() + pos + 14, nullptr, 10));
      if (documented != ntsa_count) {
        out.push_back({"docs/static-analysis.md", 0, "suppress",
                       "documented NO_THREAD_SAFETY_ANALYSIS count (" +
                           std::to_string(documented) +
                           ") != actual uses in src/ (" +
                           std::to_string(ntsa_count) + ")"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: errno — errno read twice in one full expression/statement.
//
// The second read is unsequenced against whatever call clobbers errno in
// the same expression (classic: strerror(errno) + errno as two args).
// Save errno to a const local first; src/net/socket.cpp shows the
// pattern.
void rule_errno(const Context& ctx, std::vector<Finding>& out) {
  for (const auto& f : ctx.files) {
    if (f.subdir.empty()) continue;
    auto code = code_only(f.toks);
    int reads_this_stmt = 0;
    for (const auto& t : code) {
      if (t.kind == Tok::punct &&
          (t.text == ";" || t.text == "{" || t.text == "}")) {
        reads_this_stmt = 0;
        continue;
      }
      if (t.kind == Tok::ident && t.text == "errno") {
        if (++reads_this_stmt == 2 &&
            !ctx.line_allowed(f.rel_path, "errno", t.line)) {
          out.push_back({f.rel_path, t.line, "errno",
                         "errno read twice in one statement — save it to a "
                         "const local first (unspecified evaluation order)"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: stdlocks — no naked standard lock primitives outside the wrapper.
//
// Every mutex in src/ must be a nest::Mutex/SharedMutex so it carries a
// lock rank and the thread-safety capability (docs/static-analysis.md).
void rule_stdlocks(const Context& ctx, std::vector<Finding>& out) {
  static const std::set<std::string> kLocks = {
      "mutex", "shared_mutex", "recursive_mutex", "timed_mutex",
      "condition_variable", "condition_variable_any", "lock_guard",
      "unique_lock", "scoped_lock", "shared_lock"};
  for (const auto& f : ctx.files) {
    if (f.subdir.empty()) continue;
    if (f.rel_path == "src/common/mutex.h" ||
        f.rel_path == "src/common/lockrank.h" ||
        f.rel_path == "src/common/lockrank.cpp" ||
        f.rel_path == "src/common/thread_annotations.h") {
      continue;
    }
    auto code = code_only(f.toks);
    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
      if (code[i].kind == Tok::ident && code[i].text == "std" &&
          code[i + 1].kind == Tok::punct && code[i + 1].text == "::" &&
          code[i + 2].kind == Tok::ident && kLocks.count(code[i + 2].text)) {
        if (ctx.line_allowed(f.rel_path, "stdlocks", code[i + 2].line)) {
          continue;
        }
        out.push_back({f.rel_path, code[i + 2].line, "stdlocks",
                       "naked std::" + code[i + 2].text +
                           " — use nest::Mutex / MutexLock "
                           "(src/common/mutex.h) so the lock carries a rank "
                           "and a capability"});
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: nodiscard — error returns must be impossible to drop silently.
//
// Every function declared in a src/ header returning Errc, Status, or
// Result<T> must carry NEST_NODISCARD (src/common/result.h). The class
// types are themselves [[nodiscard]], but Errc is a plain enum and the
// per-function marker keeps the contract visible at the declaration —
// and lets -Werror=unused-result (on in every preset) reject any caller
// that ignores the return.
bool body_open_brace(const std::vector<Token>& code, std::size_t i) {
  // code[i] == "{". Heuristic: a brace opens a *function body* (or other
  // statement scope) when what precedes it can only end a function
  // signature or a control clause; otherwise it is a class/enum/namespace
  // scope and declarations inside it are checked.
  if (i == 0) return false;
  const Token& p = code[i - 1];
  if (p.kind == Tok::punct) {
    return p.text == ")" || p.text == "=" || p.text == "," || p.text == "(" ||
           p.text == "[" || p.text == "{";
  }
  if (p.kind == Tok::ident) {
    return p.text == "const" || p.text == "noexcept" || p.text == "override" ||
           p.text == "final" || p.text == "try" || p.text == "else" ||
           p.text == "do" || p.text == "return" || p.text == "mutable";
  }
  return false;
}

bool is_specifier(const std::string& s) {
  return s == "virtual" || s == "static" || s == "inline" ||
         s == "constexpr" || s == "explicit" || s == "extern" ||
         s == "friend";
}

void rule_nodiscard(const Context& ctx, std::vector<Finding>& out) {
  for (const auto& f : ctx.files) {
    if (f.subdir.empty() || !f.is_header) continue;
    if (f.rel_path == "src/common/result.h") continue;  // defines the types
    auto code = code_only(f.toks);
    std::vector<bool> body_stack;  // true = inside a function/statement body
    int body_depth = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const Token& t = code[i];
      if (t.kind == Tok::punct && t.text == "{") {
        const bool body = body_open_brace(code, i);
        body_stack.push_back(body);
        body_depth += body ? 1 : 0;
        continue;
      }
      if (t.kind == Tok::punct && t.text == "}") {
        if (!body_stack.empty()) {
          body_depth -= body_stack.back() ? 1 : 0;
          body_stack.pop_back();
        }
        continue;
      }
      if (body_depth > 0) continue;  // statements, not declarations
      if (t.kind != Tok::ident) continue;
      if (t.text != "Errc" && t.text != "Status" && t.text != "Result") {
        continue;
      }
      // Return type must start the declarator: walk back over specifiers
      // (and a nest:: qualifier) to the anchor token.
      std::size_t b = i;
      if (b >= 2 && code[b - 1].kind == Tok::punct &&
          code[b - 1].text == "::" && code[b - 2].kind == Tok::ident &&
          code[b - 2].text == "nest") {
        b -= 2;
      }
      bool annotated = false;
      bool is_friend = false;
      while (b > 0 && code[b - 1].kind == Tok::ident &&
             (is_specifier(code[b - 1].text) ||
              code[b - 1].text == "NEST_NODISCARD")) {
        if (code[b - 1].text == "NEST_NODISCARD") annotated = true;
        if (code[b - 1].text == "friend") is_friend = true;
        --b;
      }
      if (b > 0) {
        const Token& anchor = code[b - 1];
        const bool decl_position =
            anchor.kind == Tok::punct &&
            (anchor.text == ";" || anchor.text == "{" || anchor.text == "}" ||
             anchor.text == ":" || anchor.text == ">");
        if (!decl_position) continue;
      }
      // Forward: Result needs <...>; then an unqualified name + '('.
      std::size_t j = i + 1;
      if (t.text == "Result") {
        if (j >= code.size() ||
            !(code[j].kind == Tok::punct && code[j].text == "<")) {
          continue;
        }
        int depth = 0;
        for (; j < code.size(); ++j) {
          if (code[j].kind != Tok::punct) continue;
          if (code[j].text == "<") ++depth;
          if (code[j].text == ">" && --depth == 0) break;
        }
        ++j;
      }
      if (j + 1 >= code.size()) continue;
      if (code[j].kind != Tok::ident) continue;
      if (!(code[j + 1].kind == Tok::punct && code[j + 1].text == "(")) {
        continue;
      }
      // Qualified names (out-of-line definitions) restate a declaration
      // that is already checked at class scope; attributes on friend
      // declarations are ill-formed — both exempt.
      if (j + 2 < code.size() && code[j + 1].text == "(" &&
          code[j].text == "operator") {
        continue;
      }
      if (is_friend) continue;
      // Confirm it parses as a function declaration, not a constructor
      // call: after the matching ')' must come a declaration tail.
      std::size_t k = j + 1;
      int pdepth = 0;
      for (; k < code.size(); ++k) {
        if (code[k].kind != Tok::punct) continue;
        if (code[k].text == "(") ++pdepth;
        if (code[k].text == ")" && --pdepth == 0) break;
      }
      if (k + 1 >= code.size()) continue;
      const Token& tail = code[k + 1];
      const bool decl_tail =
          (tail.kind == Tok::punct &&
           (tail.text == ";" || tail.text == "{" || tail.text == "=")) ||
          (tail.kind == Tok::ident &&
           (tail.text == "const" || tail.text == "noexcept" ||
            tail.text == "override" || tail.text == "final"));
      if (!decl_tail) continue;
      if (annotated) continue;
      if (ctx.line_allowed(f.rel_path, "nodiscard", t.line)) continue;
      out.push_back({f.rel_path, t.line, "nodiscard",
                     code[j].text + "() returns " + t.text +
                         " but is not NEST_NODISCARD (src/common/result.h) "
                         "— error returns must not be droppable"});
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: voidcast — explicit discards are audited, reasoned, and capped.
//
// `(void)expr` is the sanctioned escape from -Werror=unused-result, so
// each one must say *why* the error does not matter (a comment on the
// same line or the line above) and the total across src/ is budgeted: a
// rising count means
// error paths are being waved through instead of handled. Casting a bare
// parameter to void (`(void)len;`) silences an unused *argument*, not an
// error return, and is exempt.
// 49 discards exist today (journal crash-path cleanup, best-effort
// protocol replies, HSM scrub GC — all audited in the PR that added this
// rule); the headroom is deliberately thin so growth stays a conscious,
// reviewed act rather than a drift.
constexpr int kVoidDiscardBudget = 56;

void rule_voidcast(const Context& ctx, std::vector<Finding>& out) {
  int discards = 0;
  for (const auto& f : ctx.files) {
    if (f.subdir.empty()) continue;
    // Comment lines per file, for the same-line reason check.
    std::set<int> comment_lines;
    for (const auto& t : f.toks) {
      if (t.kind == Tok::comment) comment_lines.insert(t.line);
    }
    auto code = code_only(f.toks);
    for (std::size_t i = 0; i + 2 < code.size(); ++i) {
      if (!(code[i].kind == Tok::punct && code[i].text == "(")) continue;
      if (!(code[i + 1].kind == Tok::ident && code[i + 1].text == "void")) {
        continue;
      }
      if (!(code[i + 2].kind == Tok::punct && code[i + 2].text == ")")) {
        continue;
      }
      // `foo(void)` parameter list: the token before '(' is a name (or a
      // template close). `(*fp)(void)` and an empty `(void)` argument are
      // caught by the next-token check — a cast is always followed by the
      // expression it discards.
      if (i > 0 && (code[i - 1].kind == Tok::ident ||
                    (code[i - 1].kind == Tok::punct &&
                     code[i - 1].text == ">"))) {
        continue;
      }
      if (code[i + 3].kind == Tok::punct &&
          (code[i + 3].text == ";" || code[i + 3].text == ")" ||
           code[i + 3].text == "," || code[i + 3].text == "{")) {
        continue;
      }
      // Unused-parameter silencing: exactly `(void)name;`.
      if (i + 4 < code.size() && code[i + 3].kind == Tok::ident &&
          code[i + 4].kind == Tok::punct && code[i + 4].text == ";") {
        continue;
      }
      ++discards;
      if (comment_lines.count(code[i].line) == 0 &&
          comment_lines.count(code[i].line - 1) == 0 &&
          !ctx.line_allowed(f.rel_path, "voidcast", code[i].line)) {
        out.push_back({f.rel_path, code[i].line, "voidcast",
                       "(void) discard without a reason — say on this line "
                       "(or the one above) why dropping the result is safe"});
      }
    }
  }
  if (discards > kVoidDiscardBudget) {
    out.push_back({"src", 0, "voidcast",
                   std::to_string(discards) +
                       " (void) discards in src/ exceed the budget of " +
                       std::to_string(kVoidDiscardBudget) +
                       " — handle the error or raise the budget in "
                       "tools/nest-lint/rules.cpp with a rationale"});
  }
}

}  // namespace

const std::vector<Rule>& all_rules() {
  static const std::vector<Rule> kRules = {
      {"layering", "include DAG between src/ subdirs (no back-edges)",
       rule_layering},
      {"syscalls", "blocking syscalls confined to storage/journal/net/hsm",
       rule_syscalls},
      {"lockrank", "lockrank.h ranks match the docs rank table",
       rule_lockrank},
      {"suppress", "NOLINT must name a check; NTSA budget; allow() syntax",
       rule_suppress},
      {"errno", "no statement reads errno twice", rule_errno},
      {"stdlocks", "no naked std lock primitives outside the wrapper",
       rule_stdlocks},
      {"nodiscard", "Errc/Status/Result headers carry NEST_NODISCARD",
       rule_nodiscard},
      {"voidcast", "(void) discards need a reason and fit the budget",
       rule_voidcast},
  };
  return kRules;
}

}  // namespace nestlint
