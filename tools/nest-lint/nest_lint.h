// nest-lint: NeST's repo-specific static checker (docs/static-analysis.md).
//
// The binary loads every source file under <root>/src — the file list
// comes from compile_commands.json when one is supplied (plus all
// headers, which have no compile command), or from a directory walk when
// it is not (graceful degradation: the rules are per-TU token passes, so
// nothing needs compiler flags) — tokenizes each once, and runs every
// enabled rule over the token streams. Findings print as
// `path:line: [rule] message`; exit status is 0 clean / 1 findings /
// 2 usage or I/O error.
//
// Suppressions: a comment containing `nest-lint: allow(<rule>): <reason>`
// silences that rule on its own line and the next. The reason is
// mandatory; the suppress rule rejects malformed allow comments, so a
// suppression can never silently rot into a blanket waiver.
#pragma once

#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace nestlint {

struct Finding {
  std::string file;  // repo-relative path
  int line = 0;
  std::string rule;
  std::string message;
};

// One loaded source file: repo-relative path, the src/ subdir it lives
// in ("" when outside src/), and its token stream.
struct SourceFile {
  std::string rel_path;
  std::string subdir;
  bool is_header = false;
  std::vector<Token> toks;
};

struct Context {
  std::filesystem::path root;       // repo root (contains src/, docs/)
  std::vector<SourceFile> files;    // every file under src/
  // Lines granted per file by `nest-lint: allow(rule)` comments:
  // rel_path -> rule -> set of allowed lines.
  std::map<std::string, std::map<std::string, std::set<int>>> allowed;

  bool line_allowed(const std::string& rel_path, const std::string& rule,
                    int line) const {
    auto f = allowed.find(rel_path);
    if (f == allowed.end()) return false;
    auto r = f->second.find(rule);
    if (r == f->second.end()) return false;
    return r->second.count(line) != 0;
  }
};

using RuleFn = void (*)(const Context&, std::vector<Finding>&);

struct Rule {
  const char* name;
  const char* summary;
  RuleFn fn;
};

// The rule catalog, in the order rules run and print.
const std::vector<Rule>& all_rules();

// Shared helper: read a whole file; returns false on I/O error.
bool read_file(const std::filesystem::path& p, std::string& out);

}  // namespace nestlint
