// nest-lint's tokenizer: a single-pass C++ lexer good enough for the
// rule engine — identifiers, punctuation, literals, comments, and whole
// preprocessor directives, each tagged with its source line. It does not
// build an AST; rules pattern-match over the token stream, which is what
// lets the checker run with no libclang dependency while still seeing
// through comments and string literals (the failure mode of the grep
// rules this tool replaced).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nestlint {

enum class Tok {
  ident,    // identifiers and keywords
  punct,    // single-char punctuation, plus "::" as one token
  number,   // numeric literal (pp-number: good enough for rank values)
  str,      // string literal, including raw strings; text excludes quotes
  chr,      // character literal
  comment,  // // or /* */ comment; text excludes the comment markers
  pp,       // one full preprocessor directive (continuations joined)
};

struct Token {
  Tok kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

// Tokenize a whole file. Never fails: unrecognized bytes become
// single-char punct tokens, unterminated literals run to end of file.
std::vector<Token> lex(std::string_view src);

// The subset rules usually want: everything except comments and pp
// directives (kept in the full stream for the rules that need them).
std::vector<Token> code_only(const std::vector<Token>& toks);

}  // namespace nestlint
