# Empty compiler generated dependencies file for fig3_multiprotocol.
# This may be replaced when dependencies are built.
