file(REMOVE_RECURSE
  "CMakeFiles/fig3_multiprotocol.dir/fig3_multiprotocol.cpp.o"
  "CMakeFiles/fig3_multiprotocol.dir/fig3_multiprotocol.cpp.o.d"
  "fig3_multiprotocol"
  "fig3_multiprotocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_multiprotocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
