
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_adapt_period.cpp" "bench/CMakeFiles/abl_adapt_period.dir/abl_adapt_period.cpp.o" "gcc" "bench/CMakeFiles/abl_adapt_period.dir/abl_adapt_period.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simnest/CMakeFiles/nest_simnest.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/nest_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/nest_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
