file(REMOVE_RECURSE
  "CMakeFiles/abl_adapt_period.dir/abl_adapt_period.cpp.o"
  "CMakeFiles/abl_adapt_period.dir/abl_adapt_period.cpp.o.d"
  "abl_adapt_period"
  "abl_adapt_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adapt_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
