# Empty compiler generated dependencies file for abl_adapt_period.
# This may be replaced when dependencies are built.
