file(REMOVE_RECURSE
  "CMakeFiles/abl_staged.dir/abl_staged.cpp.o"
  "CMakeFiles/abl_staged.dir/abl_staged.cpp.o.d"
  "abl_staged"
  "abl_staged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_staged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
