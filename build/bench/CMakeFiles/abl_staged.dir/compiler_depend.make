# Empty compiler generated dependencies file for abl_staged.
# This may be replaced when dependencies are built.
