# Empty dependencies file for abl_lot_enforcement.
# This may be replaced when dependencies are built.
