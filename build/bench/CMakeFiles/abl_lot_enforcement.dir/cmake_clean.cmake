file(REMOVE_RECURSE
  "CMakeFiles/abl_lot_enforcement.dir/abl_lot_enforcement.cpp.o"
  "CMakeFiles/abl_lot_enforcement.dir/abl_lot_enforcement.cpp.o.d"
  "abl_lot_enforcement"
  "abl_lot_enforcement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lot_enforcement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
