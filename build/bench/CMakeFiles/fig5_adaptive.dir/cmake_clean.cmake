file(REMOVE_RECURSE
  "CMakeFiles/fig5_adaptive.dir/fig5_adaptive.cpp.o"
  "CMakeFiles/fig5_adaptive.dir/fig5_adaptive.cpp.o.d"
  "fig5_adaptive"
  "fig5_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
