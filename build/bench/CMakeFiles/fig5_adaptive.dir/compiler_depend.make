# Empty compiler generated dependencies file for fig5_adaptive.
# This may be replaced when dependencies are built.
