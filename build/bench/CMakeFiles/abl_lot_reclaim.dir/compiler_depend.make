# Empty compiler generated dependencies file for abl_lot_reclaim.
# This may be replaced when dependencies are built.
