file(REMOVE_RECURSE
  "CMakeFiles/abl_lot_reclaim.dir/abl_lot_reclaim.cpp.o"
  "CMakeFiles/abl_lot_reclaim.dir/abl_lot_reclaim.cpp.o.d"
  "abl_lot_reclaim"
  "abl_lot_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_lot_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
