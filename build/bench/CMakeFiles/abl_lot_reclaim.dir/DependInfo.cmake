
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_lot_reclaim.cpp" "bench/CMakeFiles/abl_lot_reclaim.dir/abl_lot_reclaim.cpp.o" "gcc" "bench/CMakeFiles/abl_lot_reclaim.dir/abl_lot_reclaim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/nest_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/nest_classad.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
