# Empty compiler generated dependencies file for abl_cache_aware.
# This may be replaced when dependencies are built.
