file(REMOVE_RECURSE
  "CMakeFiles/abl_cache_aware.dir/abl_cache_aware.cpp.o"
  "CMakeFiles/abl_cache_aware.dir/abl_cache_aware.cpp.o.d"
  "abl_cache_aware"
  "abl_cache_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_cache_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
