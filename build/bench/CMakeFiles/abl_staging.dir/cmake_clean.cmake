file(REMOVE_RECURSE
  "CMakeFiles/abl_staging.dir/abl_staging.cpp.o"
  "CMakeFiles/abl_staging.dir/abl_staging.cpp.o.d"
  "abl_staging"
  "abl_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
