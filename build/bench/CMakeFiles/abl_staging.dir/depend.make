# Empty dependencies file for abl_staging.
# This may be replaced when dependencies are built.
