# Empty compiler generated dependencies file for abl_user_share.
# This may be replaced when dependencies are built.
