file(REMOVE_RECURSE
  "CMakeFiles/abl_user_share.dir/abl_user_share.cpp.o"
  "CMakeFiles/abl_user_share.dir/abl_user_share.cpp.o.d"
  "abl_user_share"
  "abl_user_share.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_user_share.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
