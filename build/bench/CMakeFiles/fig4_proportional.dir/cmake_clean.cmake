file(REMOVE_RECURSE
  "CMakeFiles/fig4_proportional.dir/fig4_proportional.cpp.o"
  "CMakeFiles/fig4_proportional.dir/fig4_proportional.cpp.o.d"
  "fig4_proportional"
  "fig4_proportional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_proportional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
