# Empty compiler generated dependencies file for fig4_proportional.
# This may be replaced when dependencies are built.
