file(REMOVE_RECURSE
  "CMakeFiles/abl_nonwork_conserving.dir/abl_nonwork_conserving.cpp.o"
  "CMakeFiles/abl_nonwork_conserving.dir/abl_nonwork_conserving.cpp.o.d"
  "abl_nonwork_conserving"
  "abl_nonwork_conserving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_nonwork_conserving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
