# Empty dependencies file for abl_nonwork_conserving.
# This may be replaced when dependencies are built.
