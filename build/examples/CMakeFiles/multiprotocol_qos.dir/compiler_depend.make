# Empty compiler generated dependencies file for multiprotocol_qos.
# This may be replaced when dependencies are built.
