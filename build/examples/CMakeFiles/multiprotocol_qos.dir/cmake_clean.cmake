file(REMOVE_RECURSE
  "CMakeFiles/multiprotocol_qos.dir/multiprotocol_qos.cpp.o"
  "CMakeFiles/multiprotocol_qos.dir/multiprotocol_qos.cpp.o.d"
  "multiprotocol_qos"
  "multiprotocol_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprotocol_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
