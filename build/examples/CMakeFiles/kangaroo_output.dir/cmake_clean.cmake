file(REMOVE_RECURSE
  "CMakeFiles/kangaroo_output.dir/kangaroo_output.cpp.o"
  "CMakeFiles/kangaroo_output.dir/kangaroo_output.cpp.o.d"
  "kangaroo_output"
  "kangaroo_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kangaroo_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
