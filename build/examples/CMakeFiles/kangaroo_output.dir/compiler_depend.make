# Empty compiler generated dependencies file for kangaroo_output.
# This may be replaced when dependencies are built.
