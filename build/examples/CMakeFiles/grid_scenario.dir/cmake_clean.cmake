file(REMOVE_RECURSE
  "CMakeFiles/grid_scenario.dir/grid_scenario.cpp.o"
  "CMakeFiles/grid_scenario.dir/grid_scenario.cpp.o.d"
  "grid_scenario"
  "grid_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
