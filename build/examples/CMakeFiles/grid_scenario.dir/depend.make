# Empty dependencies file for grid_scenario.
# This may be replaced when dependencies are built.
