# Empty compiler generated dependencies file for grid_scenario.
# This may be replaced when dependencies are built.
