# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/classad_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/transfer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/simnest_test[1]_include.cmake")
include("/root/repo/build/tests/jbos_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/server_test[1]_include.cmake")
include("/root/repo/build/tests/kangaroo_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/extentfs_test[1]_include.cmake")
