file(REMOVE_RECURSE
  "CMakeFiles/jbos_test.dir/jbos_test.cpp.o"
  "CMakeFiles/jbos_test.dir/jbos_test.cpp.o.d"
  "jbos_test"
  "jbos_test.pdb"
  "jbos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jbos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
