# Empty compiler generated dependencies file for jbos_test.
# This may be replaced when dependencies are built.
