file(REMOVE_RECURSE
  "CMakeFiles/classad_test.dir/classad_test.cpp.o"
  "CMakeFiles/classad_test.dir/classad_test.cpp.o.d"
  "classad_test"
  "classad_test.pdb"
  "classad_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
