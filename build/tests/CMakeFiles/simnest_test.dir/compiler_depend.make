# Empty compiler generated dependencies file for simnest_test.
# This may be replaced when dependencies are built.
