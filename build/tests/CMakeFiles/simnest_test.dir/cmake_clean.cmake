file(REMOVE_RECURSE
  "CMakeFiles/simnest_test.dir/simnest_test.cpp.o"
  "CMakeFiles/simnest_test.dir/simnest_test.cpp.o.d"
  "simnest_test"
  "simnest_test.pdb"
  "simnest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
