file(REMOVE_RECURSE
  "CMakeFiles/kangaroo_test.dir/kangaroo_test.cpp.o"
  "CMakeFiles/kangaroo_test.dir/kangaroo_test.cpp.o.d"
  "kangaroo_test"
  "kangaroo_test.pdb"
  "kangaroo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kangaroo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
