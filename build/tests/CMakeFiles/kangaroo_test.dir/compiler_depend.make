# Empty compiler generated dependencies file for kangaroo_test.
# This may be replaced when dependencies are built.
