# Empty dependencies file for extentfs_test.
# This may be replaced when dependencies are built.
