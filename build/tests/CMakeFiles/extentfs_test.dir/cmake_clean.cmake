file(REMOVE_RECURSE
  "CMakeFiles/extentfs_test.dir/extentfs_test.cpp.o"
  "CMakeFiles/extentfs_test.dir/extentfs_test.cpp.o.d"
  "extentfs_test"
  "extentfs_test.pdb"
  "extentfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extentfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
