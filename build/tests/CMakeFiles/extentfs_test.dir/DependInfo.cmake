
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extentfs_test.cpp" "tests/CMakeFiles/extentfs_test.dir/extentfs_test.cpp.o" "gcc" "tests/CMakeFiles/extentfs_test.dir/extentfs_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/nest_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/nest_server_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/nest_client.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/nest_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/dispatcher/CMakeFiles/nest_dispatcher.dir/DependInfo.cmake"
  "/root/repo/build/src/discovery/CMakeFiles/nest_discovery.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/nest_classad.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/nest_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nest_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
