file(REMOVE_RECURSE
  "libnest_jbos.a"
)
