# Empty dependencies file for nest_jbos.
# This may be replaced when dependencies are built.
