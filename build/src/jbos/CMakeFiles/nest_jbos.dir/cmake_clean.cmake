file(REMOVE_RECURSE
  "CMakeFiles/nest_jbos.dir/jbos.cpp.o"
  "CMakeFiles/nest_jbos.dir/jbos.cpp.o.d"
  "libnest_jbos.a"
  "libnest_jbos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_jbos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
