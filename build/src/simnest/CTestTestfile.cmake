# CMake generated Testfile for 
# Source directory: /root/repo/src/simnest
# Build directory: /root/repo/build/src/simnest
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
