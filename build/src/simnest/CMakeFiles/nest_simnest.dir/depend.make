# Empty dependencies file for nest_simnest.
# This may be replaced when dependencies are built.
