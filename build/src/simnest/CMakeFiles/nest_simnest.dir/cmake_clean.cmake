file(REMOVE_RECURSE
  "CMakeFiles/nest_simnest.dir/protocol_model.cpp.o"
  "CMakeFiles/nest_simnest.dir/protocol_model.cpp.o.d"
  "CMakeFiles/nest_simnest.dir/simnest.cpp.o"
  "CMakeFiles/nest_simnest.dir/simnest.cpp.o.d"
  "CMakeFiles/nest_simnest.dir/workload.cpp.o"
  "CMakeFiles/nest_simnest.dir/workload.cpp.o.d"
  "libnest_simnest.a"
  "libnest_simnest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_simnest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
