file(REMOVE_RECURSE
  "libnest_simnest.a"
)
