# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("classad")
subdirs("sim")
subdirs("storage")
subdirs("transfer")
subdirs("simnest")
subdirs("net")
subdirs("discovery")
subdirs("dispatcher")
subdirs("protocol")
subdirs("server")
subdirs("client")
subdirs("jbos")
