file(REMOVE_RECURSE
  "CMakeFiles/nest-cli.dir/nest_cli.cpp.o"
  "CMakeFiles/nest-cli.dir/nest_cli.cpp.o.d"
  "nest-cli"
  "nest-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
