# Empty compiler generated dependencies file for nest-cli.
# This may be replaced when dependencies are built.
