file(REMOVE_RECURSE
  "libnest_client.a"
)
