# Empty dependencies file for nest_client.
# This may be replaced when dependencies are built.
