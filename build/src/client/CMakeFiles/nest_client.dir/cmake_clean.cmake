file(REMOVE_RECURSE
  "CMakeFiles/nest_client.dir/chirp_client.cpp.o"
  "CMakeFiles/nest_client.dir/chirp_client.cpp.o.d"
  "CMakeFiles/nest_client.dir/ftp_client.cpp.o"
  "CMakeFiles/nest_client.dir/ftp_client.cpp.o.d"
  "CMakeFiles/nest_client.dir/http_client.cpp.o"
  "CMakeFiles/nest_client.dir/http_client.cpp.o.d"
  "CMakeFiles/nest_client.dir/kangaroo.cpp.o"
  "CMakeFiles/nest_client.dir/kangaroo.cpp.o.d"
  "CMakeFiles/nest_client.dir/nfs_client.cpp.o"
  "CMakeFiles/nest_client.dir/nfs_client.cpp.o.d"
  "libnest_client.a"
  "libnest_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
