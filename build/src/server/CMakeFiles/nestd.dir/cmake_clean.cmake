file(REMOVE_RECURSE
  "CMakeFiles/nestd.dir/nestd.cpp.o"
  "CMakeFiles/nestd.dir/nestd.cpp.o.d"
  "nestd"
  "nestd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nestd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
