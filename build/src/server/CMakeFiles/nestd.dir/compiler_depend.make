# Empty compiler generated dependencies file for nestd.
# This may be replaced when dependencies are built.
