file(REMOVE_RECURSE
  "CMakeFiles/nest_server_lib.dir/config.cpp.o"
  "CMakeFiles/nest_server_lib.dir/config.cpp.o.d"
  "CMakeFiles/nest_server_lib.dir/endpoints.cpp.o"
  "CMakeFiles/nest_server_lib.dir/endpoints.cpp.o.d"
  "CMakeFiles/nest_server_lib.dir/nest_server.cpp.o"
  "CMakeFiles/nest_server_lib.dir/nest_server.cpp.o.d"
  "libnest_server_lib.a"
  "libnest_server_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_server_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
