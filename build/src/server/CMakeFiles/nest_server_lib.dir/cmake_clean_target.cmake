file(REMOVE_RECURSE
  "libnest_server_lib.a"
)
