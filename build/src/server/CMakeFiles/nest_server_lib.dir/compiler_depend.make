# Empty compiler generated dependencies file for nest_server_lib.
# This may be replaced when dependencies are built.
