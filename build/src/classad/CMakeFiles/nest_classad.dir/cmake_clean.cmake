file(REMOVE_RECURSE
  "CMakeFiles/nest_classad.dir/builtins.cpp.o"
  "CMakeFiles/nest_classad.dir/builtins.cpp.o.d"
  "CMakeFiles/nest_classad.dir/classad.cpp.o"
  "CMakeFiles/nest_classad.dir/classad.cpp.o.d"
  "CMakeFiles/nest_classad.dir/expr.cpp.o"
  "CMakeFiles/nest_classad.dir/expr.cpp.o.d"
  "CMakeFiles/nest_classad.dir/lexer.cpp.o"
  "CMakeFiles/nest_classad.dir/lexer.cpp.o.d"
  "CMakeFiles/nest_classad.dir/parser.cpp.o"
  "CMakeFiles/nest_classad.dir/parser.cpp.o.d"
  "CMakeFiles/nest_classad.dir/value.cpp.o"
  "CMakeFiles/nest_classad.dir/value.cpp.o.d"
  "libnest_classad.a"
  "libnest_classad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_classad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
