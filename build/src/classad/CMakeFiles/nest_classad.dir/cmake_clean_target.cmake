file(REMOVE_RECURSE
  "libnest_classad.a"
)
