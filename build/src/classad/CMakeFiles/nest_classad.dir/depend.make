# Empty dependencies file for nest_classad.
# This may be replaced when dependencies are built.
