file(REMOVE_RECURSE
  "libnest_protocol.a"
)
