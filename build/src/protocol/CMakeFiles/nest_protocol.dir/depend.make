# Empty dependencies file for nest_protocol.
# This may be replaced when dependencies are built.
