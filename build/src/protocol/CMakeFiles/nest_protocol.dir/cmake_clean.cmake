file(REMOVE_RECURSE
  "CMakeFiles/nest_protocol.dir/chirp_handler.cpp.o"
  "CMakeFiles/nest_protocol.dir/chirp_handler.cpp.o.d"
  "CMakeFiles/nest_protocol.dir/executor.cpp.o"
  "CMakeFiles/nest_protocol.dir/executor.cpp.o.d"
  "CMakeFiles/nest_protocol.dir/ftp_handler.cpp.o"
  "CMakeFiles/nest_protocol.dir/ftp_handler.cpp.o.d"
  "CMakeFiles/nest_protocol.dir/gsi.cpp.o"
  "CMakeFiles/nest_protocol.dir/gsi.cpp.o.d"
  "CMakeFiles/nest_protocol.dir/http_handler.cpp.o"
  "CMakeFiles/nest_protocol.dir/http_handler.cpp.o.d"
  "CMakeFiles/nest_protocol.dir/nfs_handler.cpp.o"
  "CMakeFiles/nest_protocol.dir/nfs_handler.cpp.o.d"
  "CMakeFiles/nest_protocol.dir/request.cpp.o"
  "CMakeFiles/nest_protocol.dir/request.cpp.o.d"
  "CMakeFiles/nest_protocol.dir/xdr.cpp.o"
  "CMakeFiles/nest_protocol.dir/xdr.cpp.o.d"
  "libnest_protocol.a"
  "libnest_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
