# Empty compiler generated dependencies file for nest_dispatcher.
# This may be replaced when dependencies are built.
