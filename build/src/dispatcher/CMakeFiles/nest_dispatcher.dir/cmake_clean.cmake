file(REMOVE_RECURSE
  "CMakeFiles/nest_dispatcher.dir/dispatcher.cpp.o"
  "CMakeFiles/nest_dispatcher.dir/dispatcher.cpp.o.d"
  "libnest_dispatcher.a"
  "libnest_dispatcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_dispatcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
