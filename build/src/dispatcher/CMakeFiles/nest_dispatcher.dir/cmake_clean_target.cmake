file(REMOVE_RECURSE
  "libnest_dispatcher.a"
)
