file(REMOVE_RECURSE
  "CMakeFiles/nest_discovery.dir/collector.cpp.o"
  "CMakeFiles/nest_discovery.dir/collector.cpp.o.d"
  "libnest_discovery.a"
  "libnest_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
