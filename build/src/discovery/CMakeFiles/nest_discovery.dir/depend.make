# Empty dependencies file for nest_discovery.
# This may be replaced when dependencies are built.
