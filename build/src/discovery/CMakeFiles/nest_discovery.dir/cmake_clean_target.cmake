file(REMOVE_RECURSE
  "libnest_discovery.a"
)
