file(REMOVE_RECURSE
  "libnest_transfer.a"
)
