file(REMOVE_RECURSE
  "CMakeFiles/nest_transfer.dir/cache_model.cpp.o"
  "CMakeFiles/nest_transfer.dir/cache_model.cpp.o.d"
  "CMakeFiles/nest_transfer.dir/concurrency.cpp.o"
  "CMakeFiles/nest_transfer.dir/concurrency.cpp.o.d"
  "CMakeFiles/nest_transfer.dir/scheduler.cpp.o"
  "CMakeFiles/nest_transfer.dir/scheduler.cpp.o.d"
  "CMakeFiles/nest_transfer.dir/transfer_manager.cpp.o"
  "CMakeFiles/nest_transfer.dir/transfer_manager.cpp.o.d"
  "libnest_transfer.a"
  "libnest_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
