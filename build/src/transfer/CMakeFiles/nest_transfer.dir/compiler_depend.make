# Empty compiler generated dependencies file for nest_transfer.
# This may be replaced when dependencies are built.
