
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/cache_model.cpp" "src/transfer/CMakeFiles/nest_transfer.dir/cache_model.cpp.o" "gcc" "src/transfer/CMakeFiles/nest_transfer.dir/cache_model.cpp.o.d"
  "/root/repo/src/transfer/concurrency.cpp" "src/transfer/CMakeFiles/nest_transfer.dir/concurrency.cpp.o" "gcc" "src/transfer/CMakeFiles/nest_transfer.dir/concurrency.cpp.o.d"
  "/root/repo/src/transfer/scheduler.cpp" "src/transfer/CMakeFiles/nest_transfer.dir/scheduler.cpp.o" "gcc" "src/transfer/CMakeFiles/nest_transfer.dir/scheduler.cpp.o.d"
  "/root/repo/src/transfer/transfer_manager.cpp" "src/transfer/CMakeFiles/nest_transfer.dir/transfer_manager.cpp.o" "gcc" "src/transfer/CMakeFiles/nest_transfer.dir/transfer_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
