file(REMOVE_RECURSE
  "libnest_common.a"
)
