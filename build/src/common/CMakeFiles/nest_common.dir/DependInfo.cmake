
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/config.cpp" "src/common/CMakeFiles/nest_common.dir/config.cpp.o" "gcc" "src/common/CMakeFiles/nest_common.dir/config.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/common/CMakeFiles/nest_common.dir/log.cpp.o" "gcc" "src/common/CMakeFiles/nest_common.dir/log.cpp.o.d"
  "/root/repo/src/common/metrics.cpp" "src/common/CMakeFiles/nest_common.dir/metrics.cpp.o" "gcc" "src/common/CMakeFiles/nest_common.dir/metrics.cpp.o.d"
  "/root/repo/src/common/result.cpp" "src/common/CMakeFiles/nest_common.dir/result.cpp.o" "gcc" "src/common/CMakeFiles/nest_common.dir/result.cpp.o.d"
  "/root/repo/src/common/string_util.cpp" "src/common/CMakeFiles/nest_common.dir/string_util.cpp.o" "gcc" "src/common/CMakeFiles/nest_common.dir/string_util.cpp.o.d"
  "/root/repo/src/common/units.cpp" "src/common/CMakeFiles/nest_common.dir/units.cpp.o" "gcc" "src/common/CMakeFiles/nest_common.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
