file(REMOVE_RECURSE
  "CMakeFiles/nest_common.dir/config.cpp.o"
  "CMakeFiles/nest_common.dir/config.cpp.o.d"
  "CMakeFiles/nest_common.dir/log.cpp.o"
  "CMakeFiles/nest_common.dir/log.cpp.o.d"
  "CMakeFiles/nest_common.dir/metrics.cpp.o"
  "CMakeFiles/nest_common.dir/metrics.cpp.o.d"
  "CMakeFiles/nest_common.dir/result.cpp.o"
  "CMakeFiles/nest_common.dir/result.cpp.o.d"
  "CMakeFiles/nest_common.dir/string_util.cpp.o"
  "CMakeFiles/nest_common.dir/string_util.cpp.o.d"
  "CMakeFiles/nest_common.dir/units.cpp.o"
  "CMakeFiles/nest_common.dir/units.cpp.o.d"
  "libnest_common.a"
  "libnest_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
