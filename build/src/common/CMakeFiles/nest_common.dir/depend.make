# Empty dependencies file for nest_common.
# This may be replaced when dependencies are built.
