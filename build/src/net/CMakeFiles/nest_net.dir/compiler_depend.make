# Empty compiler generated dependencies file for nest_net.
# This may be replaced when dependencies are built.
