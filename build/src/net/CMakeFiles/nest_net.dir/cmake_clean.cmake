file(REMOVE_RECURSE
  "CMakeFiles/nest_net.dir/socket.cpp.o"
  "CMakeFiles/nest_net.dir/socket.cpp.o.d"
  "libnest_net.a"
  "libnest_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
