file(REMOVE_RECURSE
  "libnest_net.a"
)
