
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/acl.cpp" "src/storage/CMakeFiles/nest_storage.dir/acl.cpp.o" "gcc" "src/storage/CMakeFiles/nest_storage.dir/acl.cpp.o.d"
  "/root/repo/src/storage/extentfs.cpp" "src/storage/CMakeFiles/nest_storage.dir/extentfs.cpp.o" "gcc" "src/storage/CMakeFiles/nest_storage.dir/extentfs.cpp.o.d"
  "/root/repo/src/storage/localfs.cpp" "src/storage/CMakeFiles/nest_storage.dir/localfs.cpp.o" "gcc" "src/storage/CMakeFiles/nest_storage.dir/localfs.cpp.o.d"
  "/root/repo/src/storage/lot.cpp" "src/storage/CMakeFiles/nest_storage.dir/lot.cpp.o" "gcc" "src/storage/CMakeFiles/nest_storage.dir/lot.cpp.o.d"
  "/root/repo/src/storage/memfs.cpp" "src/storage/CMakeFiles/nest_storage.dir/memfs.cpp.o" "gcc" "src/storage/CMakeFiles/nest_storage.dir/memfs.cpp.o.d"
  "/root/repo/src/storage/quota.cpp" "src/storage/CMakeFiles/nest_storage.dir/quota.cpp.o" "gcc" "src/storage/CMakeFiles/nest_storage.dir/quota.cpp.o.d"
  "/root/repo/src/storage/storage_manager.cpp" "src/storage/CMakeFiles/nest_storage.dir/storage_manager.cpp.o" "gcc" "src/storage/CMakeFiles/nest_storage.dir/storage_manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nest_common.dir/DependInfo.cmake"
  "/root/repo/build/src/classad/CMakeFiles/nest_classad.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
