file(REMOVE_RECURSE
  "libnest_storage.a"
)
