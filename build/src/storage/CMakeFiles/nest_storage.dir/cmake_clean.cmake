file(REMOVE_RECURSE
  "CMakeFiles/nest_storage.dir/acl.cpp.o"
  "CMakeFiles/nest_storage.dir/acl.cpp.o.d"
  "CMakeFiles/nest_storage.dir/extentfs.cpp.o"
  "CMakeFiles/nest_storage.dir/extentfs.cpp.o.d"
  "CMakeFiles/nest_storage.dir/localfs.cpp.o"
  "CMakeFiles/nest_storage.dir/localfs.cpp.o.d"
  "CMakeFiles/nest_storage.dir/lot.cpp.o"
  "CMakeFiles/nest_storage.dir/lot.cpp.o.d"
  "CMakeFiles/nest_storage.dir/memfs.cpp.o"
  "CMakeFiles/nest_storage.dir/memfs.cpp.o.d"
  "CMakeFiles/nest_storage.dir/quota.cpp.o"
  "CMakeFiles/nest_storage.dir/quota.cpp.o.d"
  "CMakeFiles/nest_storage.dir/storage_manager.cpp.o"
  "CMakeFiles/nest_storage.dir/storage_manager.cpp.o.d"
  "libnest_storage.a"
  "libnest_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
