# Empty compiler generated dependencies file for nest_storage.
# This may be replaced when dependencies are built.
