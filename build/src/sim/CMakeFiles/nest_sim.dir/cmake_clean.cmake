file(REMOVE_RECURSE
  "CMakeFiles/nest_sim.dir/cache.cpp.o"
  "CMakeFiles/nest_sim.dir/cache.cpp.o.d"
  "CMakeFiles/nest_sim.dir/disk.cpp.o"
  "CMakeFiles/nest_sim.dir/disk.cpp.o.d"
  "CMakeFiles/nest_sim.dir/engine.cpp.o"
  "CMakeFiles/nest_sim.dir/engine.cpp.o.d"
  "CMakeFiles/nest_sim.dir/link.cpp.o"
  "CMakeFiles/nest_sim.dir/link.cpp.o.d"
  "CMakeFiles/nest_sim.dir/platform.cpp.o"
  "CMakeFiles/nest_sim.dir/platform.cpp.o.d"
  "CMakeFiles/nest_sim.dir/store.cpp.o"
  "CMakeFiles/nest_sim.dir/store.cpp.o.d"
  "libnest_sim.a"
  "libnest_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nest_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
