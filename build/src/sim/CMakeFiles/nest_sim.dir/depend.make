# Empty dependencies file for nest_sim.
# This may be replaced when dependencies are built.
