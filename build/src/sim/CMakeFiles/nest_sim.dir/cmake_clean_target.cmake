file(REMOVE_RECURSE
  "libnest_sim.a"
)
