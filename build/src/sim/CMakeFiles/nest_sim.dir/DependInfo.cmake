
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/nest_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/nest_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/disk.cpp" "src/sim/CMakeFiles/nest_sim.dir/disk.cpp.o" "gcc" "src/sim/CMakeFiles/nest_sim.dir/disk.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/sim/CMakeFiles/nest_sim.dir/engine.cpp.o" "gcc" "src/sim/CMakeFiles/nest_sim.dir/engine.cpp.o.d"
  "/root/repo/src/sim/link.cpp" "src/sim/CMakeFiles/nest_sim.dir/link.cpp.o" "gcc" "src/sim/CMakeFiles/nest_sim.dir/link.cpp.o.d"
  "/root/repo/src/sim/platform.cpp" "src/sim/CMakeFiles/nest_sim.dir/platform.cpp.o" "gcc" "src/sim/CMakeFiles/nest_sim.dir/platform.cpp.o.d"
  "/root/repo/src/sim/store.cpp" "src/sim/CMakeFiles/nest_sim.dir/store.cpp.o" "gcc" "src/sim/CMakeFiles/nest_sim.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/nest_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
