// Quickstart: boot a NeST appliance in-process, authenticate with the
// native Chirp protocol, reserve space with a lot, store and fetch a file,
// and read the appliance's published resource ClassAd.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "client/chirp_client.h"
#include "client/http_client.h"
#include "server/nest_server.h"

int main() {
  using namespace nest;

  // 1. Start an appliance on loopback (in-memory backend, ephemeral ports).
  server::NestServerOptions opts;
  opts.capacity = 50'000'000;
  opts.name = "quickstart-nest";
  auto server = server::NestServer::start(opts);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.error().to_string().c_str());
    return 1;
  }
  (*server)->gsi().add_user("alice", "alice-secret", {"demo"});
  std::printf("NeST up: chirp=%u http=%u ftp=%u gridftp=%u nfs=%u\n",
              (*server)->chirp_port(), (*server)->http_port(),
              (*server)->ftp_port(), (*server)->gridftp_port(),
              (*server)->nfs_port());

  // 2. Connect with Chirp and authenticate (simulated GSI).
  auto chirp = client::ChirpClient::connect(
      "127.0.0.1", (*server)->chirp_port(), "alice", "alice-secret");
  if (!chirp.ok()) {
    std::fprintf(stderr, "chirp: %s\n", chirp.error().to_string().c_str());
    return 1;
  }
  std::printf("authenticated as alice\n");

  // 3. Guarantee space with a lot, then store a file against it.
  auto lot = chirp->lot_create(10'000'000, /*seconds=*/3600);
  std::printf("lot %llu created: 10 MB for one hour\n",
              static_cast<unsigned long long>(lot.value()));
  chirp->mkdir("/results").ok();
  const std::string payload = "simulation output: 42\n";
  chirp->put("/results/run-001.txt", payload).ok();
  std::printf("stored /results/run-001.txt (%zu bytes)\n", payload.size());
  std::printf("lot state: %s\n", chirp->lot_query(*lot)->c_str());

  // 4. The same file is immediately visible over HTTP — the virtual
  //    protocol layer shares one namespace across all protocols.
  client::HttpClient http("127.0.0.1", (*server)->http_port());
  auto via_http = http.get("/results/run-001.txt");
  std::printf("HTTP GET -> %d, body: %s", via_http->status,
              via_http->body.c_str());

  // 5. Inspect what the dispatcher would publish for discovery.
  std::printf("resource ad: %s\n", chirp->query_ad()->c_str());

  chirp->quit().ok();
  (*server)->stop();
  std::printf("done\n");
  return 0;
}
