// "NeST in the Grid" — the paper's Figure 2 scenario, end to end on real
// sockets:
//
//   A user's input data lives on a NeST in Madison. A global execution
//   manager discovers (via ClassAd matchmaking) that the Argonne site has
//   both cycles and storage, reserves space there with a Chirp lot (step 2),
//   stages the input with a GridFTP third-party transfer (step 3), runs
//   jobs that read input and write output over NFS (step 4), moves the
//   output home with GridFTP (step 5), and finally terminates the lot
//   (step 6).
#include <cstdio>

#include "client/chirp_client.h"
#include "client/ftp_client.h"
#include "client/nfs_client.h"
#include "discovery/collector.h"
#include "server/nest_server.h"

using namespace nest;

namespace {

std::unique_ptr<server::NestServer> start_site(const std::string& name) {
  server::NestServerOptions opts;
  opts.capacity = 100'000'000;
  opts.name = name;
  auto server = server::NestServer::start(opts);
  if (!server.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 server.error().to_string().c_str());
    std::exit(1);
  }
  (*server)->gsi().add_user("alice", "alice-secret", {"physics"});
  return std::move(server.value());
}

}  // namespace

int main() {
  // Two NeST appliances: the user's home site and the compute site.
  auto madison = start_site("nest@madison");
  auto argonne = start_site("nest@argonne");
  std::printf("sites up: madison (gridftp=%u) argonne (gridftp=%u)\n",
              madison->gridftp_port(), argonne->gridftp_port());

  // The user's input data is permanently stored at the home site.
  auto home = client::ChirpClient::connect("127.0.0.1",
                                           madison->chirp_port(), "alice",
                                           "alice-secret");
  const std::string input(1'000'000, 'i');
  home->mkdir("/alice").ok();
  home->put("/alice/input.dat", input).ok();
  std::printf("input staged at madison: /alice/input.dat (%zu bytes)\n",
              input.size());

  // Both dispatchers publish availability ads — resource AND data
  // (paper Section 2.1) — into the discovery system.
  discovery::Collector collector(RealClock::instance());
  madison->dispatcher().publish_once(collector);
  argonne->dispatcher().publish_once(collector);

  // Step 0: the manager locates the input by its advertised data
  // availability rather than by configuration.
  auto locate = classad::ClassAd::parse(
      "[ Requirements = member(\"/alice/input.dat\", other.Files); ]");
  const auto sources = collector.match(*locate);
  if (sources.empty()) {
    std::fprintf(stderr, "input not found anywhere\n");
    return 1;
  }
  std::printf("step 0: discovery locates /alice/input.dat at '%s'\n",
              sources.front().c_str());

  // Step 1: the user submits jobs; the execution manager matchmakes a
  // storage ad with enough guaranteed-free space.
  auto query = classad::ClassAd::parse(
      "[ Type = \"Job\"; NeedSpace = 10000000; "
      "Requirements = other.Type == \"Storage\" && "
      "other.AvailableLotSpace >= NeedSpace && "
      "other.Name != \"nest@madison\"; "
      "Rank = other.AvailableLotSpace; ]");
  const auto matches = collector.match(*query);
  if (matches.empty()) {
    std::fprintf(stderr, "no storage site matched\n");
    return 1;
  }
  std::printf("step 1: matchmaker selected '%s' for execution\n",
              matches.front().c_str());

  // Step 2: reserve space at the compute site with a Chirp lot.
  auto remote = client::ChirpClient::connect("127.0.0.1",
                                             argonne->chirp_port(), "alice",
                                             "alice-secret");
  auto lot = remote->lot_create(10'000'000, /*seconds=*/3600);
  remote->mkdir("/scratch").ok();
  // Jobs will access the scratch space over NFS (anonymous), so open it up.
  remote->acl_set("/scratch",
                  "[ Principal = \"system:anyuser\"; Rights = \"rwlid\"; ]")
      .ok();
  std::printf("step 2: lot %llu reserved at argonne (10 MB, 1 h)\n",
              static_cast<unsigned long long>(lot.value()));

  // Step 3: GridFTP third-party transfer madison -> argonne. The manager
  // holds both control connections; data flows site to site directly.
  auto src = client::FtpClient::connect(
      "127.0.0.1", madison->gridftp_port(),
      client::FtpClient::GsiIdentity{"alice", "alice-secret"});
  auto dst = client::FtpClient::connect(
      "127.0.0.1", argonne->gridftp_port(),
      client::FtpClient::GsiIdentity{"alice", "alice-secret"});
  auto addr = dst->pasv();
  src->port(addr->first, addr->second).ok();
  dst->begin("STOR", "/scratch/input.dat").ok();
  src->begin("RETR", "/alice/input.dat").ok();
  src->finish().ok();
  dst->finish().ok();
  std::printf("step 3: staged input to argonne via third-party GridFTP\n");

  // Step 4: jobs run at Argonne and access the NeST via NFS, like any
  // local filesystem.
  auto nfs = client::NfsClient::connect("127.0.0.1", argonne->nfs_port());
  auto scratch = nfs->mount("/scratch");
  auto job_input = nfs->read_file(*scratch, "input.dat");
  std::printf("step 4: job read %zu input bytes over NFS\n",
              job_input->size());
  // The "computation": summarize the input.
  const std::string output =
      "processed " + std::to_string(job_input->size()) + " bytes\n";
  nfs->write_file(*scratch, "output.dat", output).ok();
  std::printf("step 4: job wrote output.dat over NFS\n");

  // Step 5: move the output home, again via third-party GridFTP
  // (argonne -> madison this time).
  auto home_addr = src->pasv();  // madison listens
  dst->port(home_addr->first, home_addr->second).ok();
  src->begin("STOR", "/alice/output.dat").ok();
  dst->begin("RETR", "/scratch/output.dat").ok();
  dst->finish().ok();
  src->finish().ok();
  std::printf("step 5: output returned to madison\n");

  // Step 6: terminate the lot; the user is told results are home.
  remote->lot_terminate(*lot).ok();
  auto final_output = home->get("/alice/output.dat");
  std::printf("step 6: lot terminated; /alice/output.dat at madison: %s",
              final_output->c_str());

  madison->stop();
  argonne->stop();
  std::printf("scenario complete\n");
  return 0;
}
