// Kangaroo-style output movement (paper Section 6: "Other data movement
// protocols such as Kangaroo could also be utilized to move data from site
// to site"). A simulated compute job writes checkpoints; each write
// returns at spool speed while the mover hops the data to the home NeST in
// the background — including across a destination outage.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>

#include "client/chirp_client.h"
#include "client/kangaroo.h"
#include "server/nest_server.h"

using namespace nest;

namespace {

std::unique_ptr<server::NestServer> start_home(int port,
                                               const std::string& root) {
  server::NestServerOptions opts;
  opts.name = "nest@home";
  opts.chirp_port = port;
  opts.root_dir = root;  // durable backend: data survives the outage
  auto home = server::NestServer::start(opts);
  if (!home.ok()) {
    std::fprintf(stderr, "%s\n", home.error().to_string().c_str());
    std::exit(1);
  }
  (*home)->gsi().add_user("alice", "alice-secret");
  return std::move(home.value());
}

}  // namespace

int main() {
  const auto root = std::filesystem::temp_directory_path() /
                    ("nest_kangaroo_" + std::to_string(::getpid()));
  std::filesystem::create_directories(root);
  auto home = start_home(0, root.string());
  const uint16_t home_port = home->chirp_port();
  std::printf("home NeST up (chirp=%u)\n", home_port);

  client::KangarooMover::Options kopts;
  kopts.port = home_port;
  kopts.user = "alice";
  kopts.secret = "alice-secret";
  client::KangarooMover mover(kopts);

  // The "job": each checkpoint put returns at spool speed — the job never
  // waits on the WAN.
  auto write_checkpoint = [&](int i) {
    const auto begin = std::chrono::steady_clock::now();
    mover.put("/ckpt-" + std::to_string(i) + ".dat",
              std::string(2'000'000, static_cast<char>('a' + i)))
        .ok();
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - begin)
                        .count();
    std::printf("job: checkpoint %d spooled in %lld us (2 MB)\n", i,
                static_cast<long long>(us));
  };

  write_checkpoint(0);
  write_checkpoint(1);

  // Home site goes down mid-run; the job keeps writing regardless.
  std::printf("-- home NeST goes down --\n");
  home->stop();
  home.reset();
  write_checkpoint(2);
  write_checkpoint(3);
  std::printf("mover stats while down: retries=%lld delivered=%lld\n",
              static_cast<long long>(mover.stats().retries),
              static_cast<long long>(mover.stats().files_delivered));

  // Site returns on the same port; the mover's retries drain the spool.
  std::printf("-- home NeST back up --\n");
  home = start_home(home_port, root.string());
  const Status flushed = mover.flush();
  std::printf("flush: %s; delivered=%lld files (%lld bytes), retries=%lld\n",
              flushed.to_string().c_str(),
              static_cast<long long>(mover.stats().files_delivered),
              static_cast<long long>(mover.stats().bytes_delivered),
              static_cast<long long>(mover.stats().retries));

  // Verify all four checkpoints arrived.
  auto c = client::ChirpClient::connect("127.0.0.1", home_port, "alice",
                                        "alice-secret");
  for (int i = 0; i < 4; ++i) {
    auto st = c->stat("/ckpt-" + std::to_string(i) + ".dat");
    std::printf("home: ckpt-%d %s (%lld bytes)\n", i,
                st.ok() ? "present" : "MISSING",
                st.ok() ? static_cast<long long>(st->size) : 0);
  }
  home->stop();
  std::filesystem::remove_all(root);
  std::printf("done\n");
  return 0;
}
