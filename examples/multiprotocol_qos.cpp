// Multi-protocol quality of service: the capability the paper argues JBOS
// cannot provide (Section 4.2). One NeST serves Chirp and FTP clients
// concurrently while the stride scheduler is configured to give Chirp twice
// the bandwidth of FTP; the example measures the achieved ratio.
//
// (This demo runs on real loopback sockets with the appliance's bandwidth
// cap supplying the contention that makes shares bind; the *ratio* is what
// the scheduler controls. The fig4_proportional bench does the full
// calibrated version on the simulated substrate.)
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "client/chirp_client.h"
#include "common/units.h"
#include "client/ftp_client.h"
#include "client/http_client.h"
#include "server/nest_server.h"

using namespace nest;

int main() {
  server::NestServerOptions opts;
  opts.capacity = 200'000'000;
  opts.tm.scheduler = "stride";
  opts.tm.adaptive = false;
  opts.transfer_slots = 1;
  // Cap the appliance at 400 MB/s: loopback is far faster, so without a
  // cap the server is never the bottleneck and a work-conserving scheduler
  // (correctly) lets every class run at demand speed. At the cap, the
  // configured shares bind.
  opts.bandwidth_limit = 400 * kMB;
  auto server = server::NestServer::start(opts);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.error().to_string().c_str());
    return 1;
  }
  (*server)->gsi().add_user("admin", "s");

  // Administrator preference: Chirp gets 2x the bandwidth of FTP.
  (*server)->tm().stride()->set_tickets("chirp", 2);
  (*server)->tm().stride()->set_tickets("ftp", 1);

  // Stage a 4 MB file.
  auto admin = client::ChirpClient::connect(
      "127.0.0.1", (*server)->chirp_port(), "admin", "s");
  const std::string payload(16'000'000, 'q');
  admin->put("/data.bin", payload).ok();

  std::printf("serving /data.bin to 2 Chirp + 2 FTP client loops for ~3s "
              "with tickets chirp:ftp = 2:1...\n");

  std::atomic<bool> stop{false};
  std::atomic<std::int64_t> chirp_bytes{0};
  std::atomic<std::int64_t> ftp_bytes{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < 2; ++i) {
    clients.emplace_back([&] {
      auto chirp = client::ChirpClient::connect(
          "127.0.0.1", (*server)->chirp_port(), "admin", "s");
      if (!chirp.ok()) return;
      while (!stop) {
        auto r = chirp->get("/data.bin");
        if (r.ok()) chirp_bytes += static_cast<std::int64_t>(r->size());
      }
    });
    clients.emplace_back([&] {
      auto ftp = client::FtpClient::connect("127.0.0.1",
                                            (*server)->ftp_port());
      if (!ftp.ok()) return;
      while (!stop) {
        auto r = ftp->retr("/data.bin");
        if (r.ok()) ftp_bytes += static_cast<std::int64_t>(r->size());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(3));
  stop = true;
  for (auto& t : clients) t.join();

  const double h = static_cast<double>(chirp_bytes.load());
  const double f = static_cast<double>(ftp_bytes.load());
  std::printf(
      "delivered: chirp=%.1f MB ftp=%.1f MB ratio=%.2f (target 2.0)\n",
      h / 1e6, f / 1e6, f > 0 ? h / f : 0.0);

  // Per-class accounting as the transfer manager saw it.
  for (const auto& [cls, bytes] : (*server)->tm().meter().per_class()) {
    std::printf("  transfer manager meter: %-6s %lld bytes\n", cls.c_str(),
                static_cast<long long>(bytes));
  }
  (*server)->stop();
  return 0;
}
