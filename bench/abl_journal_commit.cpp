// Ablation A10 — journal commit strategy: acknowledged metadata ops/sec
// with no journal (seed behaviour, volatile), per-operation fsync
// (sync=always), and group commit at several commit intervals.
//
// Workload: N connection threads, each looping lot_create + lot_terminate
// against one StorageManager (every iteration seals and commits two
// journal batches). The journal is the only variable — the filesystem is
// in-memory — so the delta is pure durability cost, and the fsync count
// shows how group commit amortizes it.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "journal/journal.h"
#include "storage/memfs.h"
#include "storage/storage_manager.h"

using namespace nest;

namespace {

struct ModeResult {
  double ops_per_sec = 0;
  std::uint64_t fsyncs = 0;
};

struct Mode {
  std::string name;
  bool journaled = false;
  journal::SyncMode sync = journal::SyncMode::none;
  Nanos interval = 0;
};

storage::Principal user(int t) {
  return storage::Principal{.name = "u" + std::to_string(t),
                            .groups = {},
                            .authenticated = true,
                            .protocol = "chirp"};
}

ModeResult run_mode(const Mode& mode, int conns, std::int64_t total_ops) {
  static int run_counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("nest_abl_journal_" + std::to_string(::getpid()) + "_" +
                    std::to_string(run_counter++));
  std::filesystem::remove_all(dir);

  storage::StorageOptions sopts;
  sopts.lot_capacity = 1'000'000;
  storage::StorageManager sm(
      RealClock::instance(),
      std::make_unique<storage::MemFs>(RealClock::instance()), sopts);

  std::unique_ptr<journal::Journal> j;
  if (mode.journaled) {
    journal::JournalOptions jopts;
    jopts.dir = dir.string();
    jopts.sync = mode.sync;
    jopts.commit_interval = mode.interval;
    auto opened = journal::Journal::open(RealClock::instance(), jopts);
    if (!opened.ok()) {
      std::fprintf(stderr, "journal open failed: %s\n",
                   opened.error().to_string().c_str());
      std::exit(1);
    }
    j = std::move(opened.value());
    if (auto s = sm.attach_journal(*j); !s.ok()) {
      std::fprintf(stderr, "attach failed: %s\n", s.to_string().c_str());
      std::exit(1);
    }
  }

  // Each iteration = 2 acknowledged metadata mutations.
  const std::int64_t iters_per_conn = total_ops / (2 * conns);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&sm, c, iters_per_conn] {
      for (std::int64_t i = 0; i < iters_per_conn; ++i) {
        auto id = sm.lot_create(user(c), 1, 3600 * kSecond);
        if (!id.ok()) continue;
        (void)sm.lot_terminate(user(c), *id);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::chrono::duration<double> secs =
      std::chrono::steady_clock::now() - t0;

  ModeResult r;
  r.ops_per_sec =
      static_cast<double>(2 * iters_per_conn * conns) / secs.count();
  if (auto st = sm.journal_stats()) r.fsyncs = st->fsyncs;
  j.reset();
  std::filesystem::remove_all(dir);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t total_ops = 4000;
  if (argc > 1) total_ops = std::atoll(argv[1]);

  const std::vector<Mode> modes = {
      {"none", false, journal::SyncMode::none, 0},
      {"always", true, journal::SyncMode::always, 0},
      {"group-1ms", true, journal::SyncMode::group, 1 * kMillisecond},
      {"group-5ms", true, journal::SyncMode::group, 5 * kMillisecond},
      {"group-20ms", true, journal::SyncMode::group, 20 * kMillisecond},
  };

  std::printf("Ablation A10: metadata journal commit strategy\n");
  std::printf("(%lld acknowledged lot ops per run; memfs backend, journal "
              "on local disk)\n\n",
              static_cast<long long>(total_ops));
  std::printf("  %-11s  %-6s  %12s  %10s\n", "mode", "conns", "ops/sec",
              "fsyncs");
  struct Row {
    std::string mode;
    int conns;
    ModeResult res;
  };
  std::vector<Row> rows;
  for (const Mode& mode : modes) {
    for (const int conns : {1, 8}) {
      const ModeResult res = run_mode(mode, conns, total_ops);
      rows.push_back(Row{mode.name, conns, res});
      std::printf("  %-11s  %-6d  %12.0f  %10llu\n", mode.name.c_str(),
                  conns, res.ops_per_sec,
                  static_cast<unsigned long long>(res.fsyncs));
    }
  }
  std::printf("\n");
  for (const Row& row : rows) {
    std::printf("{\"bench\":\"abl_journal_commit\",\"mode\":\"%s\","
                "\"conns\":%d,\"ops_per_sec\":%.0f,\"fsyncs\":%llu}\n",
                row.mode.c_str(), row.conns, row.res.ops_per_sec,
                static_cast<unsigned long long>(row.res.fsyncs));
  }
  return 0;
}
