// Ablation A11 — wire-speed data path: loopback HTTP GET throughput with
// the zero-copy sendfile(2) path versus the buffered pread+send path
// (docs/net.md), measured in one process via the net-layer fallback
// toggle, plus a connection-scaling sweep over SO_REUSEPORT acceptor
// shards.
//
// Workload: a real NestServer on a local-directory backend serving one
// large patterned file; clients are raw HTTP/1.0 sockets that drop the
// body in the kernel (TcpStream::discard, i.e. MSG_TRUNC) with batched
// wake-ups (SO_RCVLOWAT). On a single CPU the client shares the core with
// the server, so a copying reader would itself become the bottleneck and
// mask the difference this ablation measures; the kernel-side drain makes
// the server's per-byte cost the measured quantity. Byte *content*
// equivalence between the two modes is covered by zerocopy_test.
// Single-stream speedup is the headline: the same bytes, the same
// grant-sized blocks, the only variable is whether they cross user space.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "server/nest_server.h"

using namespace nest;

namespace {

constexpr std::int64_t kMiB = 1024 * 1024;

// One raw HTTP/1.0 GET, draining the body; returns body bytes received.
std::int64_t drain_get(uint16_t port, const std::string& path) {
  auto stream = net::TcpStream::connect("127.0.0.1", port);
  if (!stream.ok()) return -1;
  if (!stream->write_all("GET " + path + " HTTP/1.0\r\n\r\n").ok()) return -1;
  while (true) {  // headers
    auto line = stream->read_line();
    if (!line.ok()) return -1;
    if (line->empty()) break;
  }
  // HTTP/1.0 responses are close-delimited, so EOF releases a reader
  // parked below the low-water mark at the tail.
  (void)stream->set_receive_lowat(256 * 1024);
  std::int64_t total = 0;
  while (true) {
    auto n = stream->discard(8 * kMiB);
    if (!n.ok()) return -1;
    if (*n == 0) return total;
    total += *n;
  }
}

// Aggregate MB/s for `conns` concurrent full-file GETs (best of `iters`).
double run_sweep(uint16_t port, const std::string& path, std::int64_t bytes,
                 int conns, int iters) {
  double best = 0;
  for (int it = 0; it < iters; ++it) {
    std::vector<std::thread> clients;
    std::vector<std::int64_t> got(static_cast<std::size_t>(conns), 0);
    const auto t0 = std::chrono::steady_clock::now();
    for (int c = 0; c < conns; ++c) {
      clients.emplace_back(
          [&, c] { got[static_cast<std::size_t>(c)] = drain_get(port, path); });
    }
    for (auto& t : clients) t.join();
    const std::chrono::duration<double> secs =
        std::chrono::steady_clock::now() - t0;
    std::int64_t total = 0;
    for (const std::int64_t g : got) {
      if (g != bytes) {
        std::fprintf(stderr, "short GET: %lld of %lld bytes\n",
                     static_cast<long long>(g), static_cast<long long>(bytes));
        std::exit(1);
      }
      total += g;
    }
    const double mbps =
        static_cast<double>(total) / kMiB / secs.count();
    if (mbps > best) best = mbps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t file_mb = 64;
  int iters = 3;
  if (argc > 1) file_mb = std::atoll(argv[1]);
  if (argc > 2) iters = std::atoi(argv[2]);
  const std::int64_t file_bytes = file_mb * kMiB;

  const auto dir = std::filesystem::temp_directory_path() /
                   ("nest_abl_wire_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Patterned payload written straight into the backend's directory.
  {
    std::FILE* f = std::fopen((dir / "big").c_str(), "wb");
    if (f == nullptr) return 1;
    std::vector<char> block(static_cast<std::size_t>(kMiB));
    for (std::size_t i = 0; i < block.size(); ++i)
      block[i] = static_cast<char>('a' + (i * 131) % 26);
    for (std::int64_t written = 0; written < file_bytes; written += kMiB)
      std::fwrite(block.data(), 1, block.size(), f);
    std::fclose(f);
  }

  server::NestServerOptions opts;
  opts.backend = "local";
  opts.root_dir = dir.string();
  opts.capacity = file_bytes * 2;
  opts.tm.adaptive = false;
  opts.tm.fixed_model = transfer::ConcurrencyModel::threads;
  // Large quantum: the scheduler still admits per block, but block
  // bookkeeping is the same in both modes, so the copy is the variable.
  opts.block_bytes = kMiB;
  opts.acceptor_shards = 4;
  opts.chirp_port = -1;
  opts.ftp_port = -1;
  opts.gridftp_port = -1;
  opts.nfs_port = -1;
  auto server = server::NestServer::start(opts);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.error().to_string().c_str());
    return 1;
  }
  const uint16_t port = (*server)->http_port();

  std::printf("Ablation A11: wire-speed data path (loopback HTTP GET, "
              "%lld MiB file, best of %d)\n\n",
              static_cast<long long>(file_mb), iters);
  std::printf("  %-9s  %-6s  %12s\n", "mode", "conns", "MB/s");

  struct Row {
    const char* mode;
    int conns;
    double mbps;
  };
  std::vector<Row> rows;
  double single[2] = {0, 0};  // [buffered, zerocopy]
  for (const bool zero_copy : {false, true}) {
    net::set_zero_copy(zero_copy);
    const char* mode = zero_copy ? "zerocopy" : "buffered";
    for (const int conns : {1, 2, 4, 8}) {
      const double mbps = run_sweep(port, "/big", file_bytes, conns, iters);
      rows.push_back(Row{mode, conns, mbps});
      if (conns == 1) single[zero_copy ? 1 : 0] = mbps;
      std::printf("  %-9s  %-6d  %12.0f\n", mode, conns, mbps);
    }
  }
  net::set_zero_copy(true);
  const double speedup = single[0] > 0 ? single[1] / single[0] : 0;
  std::printf("\nsingle-stream speedup (zerocopy / buffered): %.2fx\n\n",
              speedup);

  for (const Row& row : rows) {
    std::printf("{\"bench\":\"abl_wire_speed\",\"mode\":\"%s\",\"conns\":%d,"
                "\"mb_per_sec\":%.1f}\n",
                row.mode, row.conns, row.mbps);
  }
  std::printf("{\"bench\":\"abl_wire_speed\",\"mode\":\"speedup\",\"conns\":1,"
              "\"single_stream_speedup\":%.3f}\n",
              speedup);

  (*server)->stop();
  std::filesystem::remove_all(dir);
  return 0;
}
