// Ablation A3 — cache-aware scheduling vs FIFO (paper Section 4.2).
//
// NeST's gray-box model of the buffer cache lets the transfer manager
// serve predicted-resident files first, approximating shortest-job-first:
// client response time improves and disk contention drops. This bench runs
// a mixed hot/cold GET workload under both schedulers.
#include <cstdio>
#include <string>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/workload.h"

using namespace nest;
using namespace nest::simnest;

namespace {

WorkloadResult run(const std::string& scheduler) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNestConfig cfg;
  cfg.tm.scheduler = scheduler;
  cfg.tm.adaptive = false;
  cfg.tm.cache_model_bytes = host.platform().cache_bytes;
  // Fewer service slots than clients: requests queue at the transfer
  // manager, which is where scheduling policy acts.
  cfg.service_slots = 2;
  SimNest server(host, cfg);
  WorkloadSpec spec;
  spec.duration = 60 * kSecond;
  // Hot population: 6 clients hitting small cached files.
  spec.groups.push_back(ClientGroup{.server = &server,
                                    .protocol = "http",
                                    .clients = 6,
                                    .file_size = 1'000'000,
                                    .cached = true,
                                    .files_per_client = 1});
  // Cold population: 2 clients dragging big uncached files off the disk.
  spec.groups.push_back(ClientGroup{.server = &server,
                                    .protocol = "chirp",
                                    .clients = 2,
                                    .file_size = 40'000'000,
                                    .cached = false,
                                    .files_per_client = 6});
  return run_get_workload(eng, spec);
}

}  // namespace

int main() {
  std::printf("Ablation A3: cache-aware scheduling vs FIFO\n");
  std::printf("(6 hot 1 MB clients + 2 cold 40 MB clients, Linux profile)\n\n");
  std::printf("  %-12s  %10s  %22s  %20s\n", "scheduler", "total MB/s",
              "hot mean latency (ms)", "hot requests done");
  for (const std::string sched : {"fifo", "cache-aware"}) {
    const WorkloadResult r = run(sched);
    std::printf("  %-12s  %10.1f  %22.1f  %20lld\n", sched.c_str(),
                r.total_mbps, r.class_latency_ms.at("http"),
                static_cast<long long>(r.completed_requests));
  }
  std::printf(
      "\nExpectation: cache-aware serves resident (hot) requests first,\n"
      "cutting their response time without hurting total throughput.\n");
  return 0;
}
