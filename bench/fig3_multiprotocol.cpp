// Figure 3 — "Multiple Protocols": bandwidth delivered to four clients
// requesting 10 MB (in-cache) files, for each protocol alone (NeST vs the
// native single-protocol server) and for the mixed all-protocol workload
// (NeST vs JBOS). Paper shape: Chirp/HTTP at the network peak (~35 MB/s),
// GridFTP/NFS at roughly half; NeST within a hair of each native server;
// mixed totals similar (~33-35 MB/s) but FIFO NeST delivers less to NFS
// than JBOS does.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/workload.h"

using namespace nest;
using namespace nest::simnest;

namespace {

constexpr std::int64_t kFileSize = 10'000'000;
constexpr int kClients = 4;
const std::vector<std::string> kProtocols = {"chirp", "http", "gridftp",
                                             "nfs"};

SimNestConfig nest_config() {
  SimNestConfig cfg;
  cfg.tm.scheduler = "fifo";  // the default transfer manager, per the paper
  cfg.tm.adaptive = false;    // isolate protocol effects
  cfg.tm.fixed_model = transfer::ConcurrencyModel::threads;
  return cfg;
}

WorkloadResult run_single(const std::string& proto, bool native) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNest server(host, native ? jbos_config() : nest_config());
  WorkloadSpec spec;
  spec.duration = 30 * kSecond;
  spec.groups.push_back(ClientGroup{.server = &server,
                                    .protocol = proto,
                                    .clients = kClients,
                                    .file_size = kFileSize,
                                    .cached = true,
                                    .files_per_client = 1});
  return run_get_workload(eng, spec);
}

// Mixed workload on one NeST appliance.
WorkloadResult run_mixed_nest() {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNest server(host, nest_config());
  WorkloadSpec spec;
  spec.duration = 30 * kSecond;
  for (const auto& proto : kProtocols) {
    spec.groups.push_back(ClientGroup{.server = &server,
                                      .protocol = proto,
                                      .clients = kClients,
                                      .file_size = kFileSize,
                                      .cached = true,
                                      .files_per_client = 1});
  }
  return run_get_workload(eng, spec);
}

// Mixed workload against JBOS: four native servers sharing the host.
WorkloadResult run_mixed_jbos() {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  std::vector<std::unique_ptr<SimNest>> servers;
  WorkloadSpec spec;
  spec.duration = 30 * kSecond;
  for (const auto& proto : kProtocols) {
    servers.push_back(std::make_unique<SimNest>(host, jbos_config()));
    spec.groups.push_back(ClientGroup{.server = servers.back().get(),
                                      .protocol = proto,
                                      .clients = kClients,
                                      .file_size = kFileSize,
                                      .cached = true,
                                      .files_per_client = 1});
  }
  return run_get_workload(eng, spec);
}

}  // namespace

int main() {
  std::printf("Figure 3: Multiple Protocols\n");
  std::printf(
      "(4 clients/protocol, 10 MB in-cache files, Linux 2.2 / GigE "
      "profile)\n\n");

  std::printf("Single-protocol workloads, server bandwidth (MB/s):\n");
  std::printf("  %-8s  %8s  %8s\n", "protocol", "NeST", "native");
  for (const auto& proto : kProtocols) {
    const auto nest_r = run_single(proto, /*native=*/false);
    const auto native_r = run_single(proto, /*native=*/true);
    std::printf("  %-8s  %8.1f  %8.1f\n", proto.c_str(), nest_r.total_mbps,
                native_r.total_mbps);
  }

  std::printf("\nMixed workload (all protocols concurrently), MB/s:\n");
  std::printf("  %-6s  %7s  %7s  %7s  %7s  %7s\n", "server", "total",
              "chirp", "gridftp", "http", "nfs");
  const auto mixed_nest = run_mixed_nest();
  const auto mixed_jbos = run_mixed_jbos();
  auto row = [](const char* name, const WorkloadResult& r) {
    std::printf("  %-6s  %7.1f  %7.1f  %7.1f  %7.1f  %7.1f\n", name,
                r.total_mbps, r.class_mbps.at("chirp"),
                r.class_mbps.at("gridftp"), r.class_mbps.at("http"),
                r.class_mbps.at("nfs"));
  };
  row("NeST", mixed_nest);
  row("JBOS", mixed_jbos);
  return 0;
}
