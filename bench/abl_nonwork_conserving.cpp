// Ablation A1 — work-conserving vs non-work-conserving stride scheduling.
//
// Paper Section 7.2: the 1:1:1:4 (NFS-heavy) configuration misses its
// allocation because the work-conserving scheduler hands NFS's slots to
// competitors whenever no NFS request is pending; the authors were
// implementing a non-work-conserving policy (citing anticipatory
// scheduling) that waits briefly instead, trading some response time for
// allocation control. This bench runs that future-work policy.
#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/workload.h"

using namespace nest;
using namespace nest::simnest;

namespace {

const std::vector<std::string> kProtocols = {"chirp", "gridftp", "http",
                                             "nfs"};

struct Outcome {
  WorkloadResult result;
  double fairness = 0;
};

Outcome run(const std::string& scheduler,
            const std::vector<std::int64_t>& tickets) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNestConfig cfg;
  cfg.tm.scheduler = scheduler;
  cfg.tm.adaptive = false;
  SimNest server(host, cfg);
  for (std::size_t i = 0; i < kProtocols.size(); ++i) {
    server.tm().stride()->set_tickets(kProtocols[i], tickets[i]);
  }
  WorkloadSpec spec;
  spec.duration = 30 * kSecond;
  for (const auto& proto : kProtocols) {
    spec.groups.push_back(ClientGroup{.server = &server,
                                      .protocol = proto,
                                      .clients = 4,
                                      .file_size = 10'000'000,
                                      .cached = true,
                                      .files_per_client = 1});
  }
  Outcome out;
  out.result = run_get_workload(eng, spec);
  double ticket_sum = 0;
  for (const auto t : tickets) ticket_sum += static_cast<double>(t);
  std::vector<double> ratios;
  for (std::size_t i = 0; i < kProtocols.size(); ++i) {
    const double desired = out.result.total_mbps *
                           static_cast<double>(tickets[i]) / ticket_sum;
    ratios.push_back(desired > 0
                         ? out.result.class_mbps.at(kProtocols[i]) / desired
                         : 0);
  }
  out.fairness = jain_fairness(ratios);
  return out;
}

}  // namespace

int main() {
  std::printf("Ablation A1: work-conserving vs non-work-conserving stride\n");
  std::printf("(1:1:1:4 Chirp:GridFTP:HTTP:NFS — the paper's hard case)\n\n");
  std::printf("  %-12s  %6s  %6s  %9s  %16s\n", "scheduler", "total", "nfs",
              "fairness", "mean latency(ms)");
  for (const std::string sched : {"stride", "stride-nwc"}) {
    const Outcome o = run(sched, {1, 1, 1, 4});
    double mean_latency = 0;
    double classes = 0;
    for (const auto& [cls, ms] : o.result.class_latency_ms) {
      mean_latency += ms;
      classes += 1;
    }
    std::printf("  %-12s  %6.1f  %6.1f  %9.3f  %16.1f\n", sched.c_str(),
                o.result.total_mbps, o.result.class_mbps.at("nfs"),
                o.fairness, classes > 0 ? mean_latency / classes : 0.0);
  }
  std::printf(
      "\nExpectation: stride-nwc improves fairness toward the 4x NFS\n"
      "allocation at the cost of total bandwidth / response time\n"
      "(the server idles briefly waiting for NFS requests).\n");
  return 0;
}
