// Ablation A4 — kernel-quota lots vs NeST-managed lot enforcement.
//
// Paper Section 7.4: lots via the kernel quota mechanism cost up to ~50%
// of write bandwidth but let clients bypass NeST and still respect the
// guarantee; the authors were "investigating whether the additional
// complexity of implementing lots by directly monitoring write operations
// within NeST is worth the performance improvement." NeST-managed
// enforcement (a user-level ledger) costs essentially nothing at the disk
// but only meters traffic that flows through NeST.
#include <cstdio>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/simnest.h"

using namespace nest;
using namespace nest::simnest;

namespace {

double run_write(std::int64_t size, bool kernel_quota) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  // NeST-managed enforcement = the ledger meters bytes in user space; the
  // simulated disk sees no quota traffic. Kernel enforcement = quota
  // bookkeeping on every flush.
  host.store().set_quota_enabled(kernel_quota);
  SimNestConfig cfg;
  cfg.tm.adaptive = false;
  SimNest server(host, cfg);
  Nanos done = 0;
  sim::spawn([](sim::Engine& e, SimNest& s, std::int64_t sz,
                Nanos& out) -> sim::Co<void> {
    co_await s.client_put(ProtocolBehavior::chirp(), "/stream", sz);
    out = e.now();
  }(eng, server, size, done));
  eng.run();
  return mb_per_sec(size, done);
}

}  // namespace

int main() {
  std::printf("Ablation A4: lot enforcement mechanism\n");
  std::printf("(sequential write stream, Linux profile)\n\n");
  std::printf("  %-10s  %16s  %16s  %9s\n", "write size", "kernel quota",
              "nest-managed", "penalty");
  for (const std::int64_t mb : {20, 60, 100, 200}) {
    const double kernel = run_write(mb * 1'000'000, true);
    const double managed = run_write(mb * 1'000'000, false);
    std::printf("  %6lld MB  %11.1f MB/s  %11.1f MB/s  %8.0f%%\n",
                static_cast<long long>(mb), kernel, managed,
                managed > 0 ? 100.0 * (managed - kernel) / managed : 0.0);
  }
  std::printf(
      "\nTrade-off: NeST-managed enforcement recovers the quota write\n"
      "penalty entirely, but only meters I/O that passes through NeST —\n"
      "direct local-filesystem writes would evade the guarantee, which is\n"
      "exactly the compatibility the paper kept kernel quotas for.\n");
  return 0;
}
