// Figure 5 — "Adaptive Concurrency".
//
// Left panel: Solaris (Netra) profile, clients fetching 1 KB in-cache
// files; average request latency under events, threads, and the adaptive
// selector. Paper shape: events < adaptive < threads (thread creation and
// context switches are expensive on this platform; the adaptive scheme
// lands between because it keeps probing all models).
//
// Right panel: Linux profile, 10 MB files with a working set larger than
// the buffer cache; delivered bandwidth under the same three schemes.
// Paper shape: threads > adaptive > events (blocking disk reads stall the
// single event loop; threads overlap disk and network).
//
// The process model is disabled in both experiments "for the sake of
// clarity", exactly as in the paper.
#include <cstdio>
#include <string>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/workload.h"

using namespace nest;
using namespace nest::simnest;
using transfer::AdaptMetric;
using transfer::ConcurrencyModel;

namespace {

enum class Scheme { events, threads, adaptive };

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::events: return "events";
    case Scheme::threads: return "threads";
    case Scheme::adaptive: return "adaptive";
  }
  return "?";
}

SimNestConfig config_for(Scheme s, AdaptMetric metric) {
  SimNestConfig cfg;
  cfg.tm.scheduler = "fifo";
  switch (s) {
    case Scheme::events:
      cfg.tm.adaptive = false;
      cfg.tm.fixed_model = ConcurrencyModel::events;
      break;
    case Scheme::threads:
      cfg.tm.adaptive = false;
      cfg.tm.fixed_model = ConcurrencyModel::threads;
      break;
    case Scheme::adaptive:
      cfg.tm.adaptive = true;
      cfg.tm.adapt.metric = metric;
      cfg.tm.adapt.enabled = {ConcurrencyModel::threads,
                              ConcurrencyModel::events};
      cfg.tm.adapt.warmup_per_model = 8;
      cfg.tm.adapt.explore_fraction = 0.1;
      break;
  }
  return cfg;
}

// Left: Solaris, 1 KB cached requests, average latency (ms).
double run_solaris_latency(Scheme s) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::solaris8());
  SimNest server(host, config_for(s, AdaptMetric::latency));
  WorkloadSpec spec;
  spec.duration = 20 * kSecond;
  spec.groups.push_back(ClientGroup{.server = &server,
                                    .protocol = "chirp",
                                    .clients = 8,
                                    .file_size = 1000,
                                    .cached = true,
                                    .files_per_client = 1});
  const WorkloadResult r = run_get_workload(eng, spec);
  return r.class_latency_ms.at("chirp");
}

// Right: Linux, 10 MB files, working set ~25% over the cache: the steady
// state mixes cache hits with disk misses, which is where the event loop's
// blocking-read weakness shows.
double run_linux_bandwidth(Scheme s) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNest server(host, config_for(s, AdaptMetric::throughput));
  WorkloadSpec spec;
  spec.duration = 60 * kSecond;
  spec.groups.push_back(ClientGroup{.server = &server,
                                    .protocol = "chirp",
                                    .clients = 4,
                                    .file_size = 10'000'000,
                                    .cached = true,
                                    .files_per_client = 12});
  const WorkloadResult r = run_get_workload(eng, spec);
  return r.total_mbps;
}

}  // namespace

int main() {
  std::printf("Figure 5: Adaptive Concurrency (process model disabled)\n\n");

  std::printf(
      "Left: Solaris / Netra profile, 1 KB in-cache requests —\n"
      "average time per request (ms):\n");
  for (const Scheme s : {Scheme::events, Scheme::threads, Scheme::adaptive}) {
    std::printf("  %-9s  %7.2f\n", scheme_name(s), run_solaris_latency(s));
  }

  std::printf(
      "\nRight: Linux / GigE profile, 10 MB requests, working set > cache —\n"
      "server bandwidth (MB/s):\n");
  for (const Scheme s : {Scheme::events, Scheme::threads, Scheme::adaptive}) {
    std::printf("  %-9s  %7.1f\n", scheme_name(s), run_linux_bandwidth(s));
  }
  return 0;
}
