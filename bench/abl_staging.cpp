// Ablation A8 — why stage data at all?
//
// The paper's Figure 2 deployment stages input from the home NeST to a
// NeST at the compute site before jobs run, instead of letting jobs read
// the home site directly over the WAN. This bench quantifies that choice:
// a job reads a 100 MB input k times, either
//   (a) directly from the home NeST over the wide area via NFS (the
//       "local filesystem protocol" jobs speak, now paying WAN latency on
//       every 8 KB RPC),
//   (b) directly over the WAN via GridFTP (streaming, so latency hurts
//       less, but every re-read pays the WAN's bandwidth), or
//   (c) staged once via GridFTP to the local NeST, then read over LAN NFS.
#include <cstdio>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/simnest.h"

using namespace nest;
using namespace nest::simnest;

namespace {

constexpr std::int64_t kInput = 100'000'000;

// 2002-era wide area path: ~45 Mbit/s effective, 40 ms RTT.
sim::PlatformProfile wan_profile() {
  sim::PlatformProfile p = sim::PlatformProfile::linux2_2();
  p.name = "wan-path";
  p.link_bw = 5.6e6;
  p.link_rtt = 40 * kMillisecond;
  return p;
}

double run_reads(const sim::PlatformProfile& profile,
                 const ProtocolBehavior& proto, int reads, bool stage_first) {
  sim::Engine eng;
  SimHost host(eng, profile);
  SimNestConfig cfg;
  cfg.tm.adaptive = false;
  SimNest server(host, cfg);
  server.add_file("/input.dat", kInput, /*cached=*/true);
  Nanos done = 0;
  sim::spawn([](sim::Engine& e, SimNest& s, ProtocolBehavior p, int n,
                bool stage, Nanos& out) -> sim::Co<void> {
    if (stage) {
      // One bulk GridFTP staging pass over this (WAN) host...
      co_await s.client_get(ProtocolBehavior::gridftp(), "/input.dat");
      // ...after which reads happen on the LAN (simulated by a second,
      // local-profile engine below, so nothing more to do here).
      out = e.now();
      co_return;
    }
    for (int i = 0; i < n; ++i) {
      co_await s.client_get(p, "/input.dat");
    }
    out = e.now();
  }(eng, server, proto, reads, stage_first, done));
  eng.run();
  return to_seconds(done);
}

double lan_nfs_reads(int reads) {
  return run_reads(sim::PlatformProfile::linux2_2(), ProtocolBehavior::nfs(),
                   reads, false);
}

}  // namespace

int main() {
  std::printf("Ablation A8: staging vs direct wide-area access\n");
  std::printf("(job reads a 100 MB input k times; WAN: 5.6 MB/s, 40 ms "
              "RTT)\n\n");
  std::printf("  %2s  %16s  %16s  %22s\n", "k", "WAN NFS (s)",
              "WAN GridFTP (s)", "stage + LAN NFS (s)");
  const double stage_cost =
      run_reads(wan_profile(), ProtocolBehavior::gridftp(), 1, true);
  for (const int k : {1, 2, 4, 8}) {
    const double wan_nfs =
        run_reads(wan_profile(), ProtocolBehavior::nfs(), k, false);
    const double wan_gftp =
        run_reads(wan_profile(), ProtocolBehavior::gridftp(), k, false);
    const double staged = stage_cost + lan_nfs_reads(k);
    std::printf("  %2d  %16.1f  %16.1f  %22.1f\n", k, wan_nfs, wan_gftp,
                staged);
  }
  std::printf(
      "\nExpectation: WAN NFS is catastrophic (every 8 KB RPC pays 40 ms);\n"
      "WAN GridFTP is tolerable once but scales with k; staging pays the\n"
      "WAN exactly once and wins for any k — the Figure 2 deployment\n"
      "model in numbers.\n");
  return 0;
}
