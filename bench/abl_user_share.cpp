// Ablation A6 — per-user proportional share (paper Section 4.2's named
// future extension). The stride scheduler classes on the authenticated
// principal instead of the protocol: a user with 3 tickets gets 3x the
// bandwidth of a 1-ticket user even when both arrive over the same
// protocol, and the allocation holds across *different* protocols too —
// something per-protocol shaping cannot express.
#include <cstdio>
#include <string>
#include <vector>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/simnest.h"
#include "sim/sync.h"

using namespace nest;
using namespace nest::simnest;

namespace {

struct UserSpec {
  std::string name;
  std::string protocol;
  std::int64_t tickets;
};

std::map<std::string, double> run(const std::vector<UserSpec>& users) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNestConfig cfg;
  cfg.tm.scheduler = "stride-user";
  cfg.tm.adaptive = false;
  cfg.service_slots = 4;  // fewer slots than clients: scheduler arbitrates
  SimNest server(host, cfg);
  for (const auto& u : users) {
    server.tm().stride()->set_tickets(u.name, u.tickets);
  }
  constexpr Nanos kDeadline = 30 * kSecond;
  constexpr int kClientsPerUser = 4;
  auto bytes = std::make_shared<std::map<std::string, std::int64_t>>();
  for (const auto& u : users) {
    for (int c = 0; c < kClientsPerUser; ++c) {
      const std::string path = "/" + u.name + "-" + std::to_string(c);
      server.add_file(path, 10'000'000, /*cached=*/true);
      sim::spawn([](sim::Engine& e, SimNest& s, ProtocolBehavior proto,
                    std::string p, std::string user,
                    std::shared_ptr<std::map<std::string, std::int64_t>> acc,
                    Nanos deadline) -> sim::Co<void> {
        while (e.now() < deadline) {
          co_await s.client_get(proto, p, user);
          if (e.now() <= deadline) (*acc)[user] += s.file_size(p);
        }
      }(eng, server, ProtocolBehavior::by_name(u.protocol), path, u.name,
        bytes, kDeadline));
    }
  }
  eng.run();
  std::map<std::string, double> mbps;
  for (const auto& [user, b] : *bytes) {
    mbps[user] = mb_per_sec(b, kDeadline);
  }
  return mbps;
}

}  // namespace

int main() {
  std::printf("Ablation A6: per-user proportional share (stride-user)\n\n");

  std::printf("Same protocol (both users via HTTP), tickets alice:bob = 3:1\n");
  auto same = run({{"alice", "http", 3}, {"bob", "http", 1}});
  std::printf("  alice %.1f MB/s, bob %.1f MB/s, ratio %.2f (target 3.0)\n\n",
              same["alice"], same["bob"],
              same["bob"] > 0 ? same["alice"] / same["bob"] : 0.0);

  std::printf(
      "Cross protocol (alice via NFS, bob via HTTP), tickets 2:1 —\n"
      "per-protocol shaping could not even express this allocation:\n");
  auto cross = run({{"alice", "nfs", 2}, {"bob", "http", 1}});
  std::printf("  alice %.1f MB/s, bob %.1f MB/s, ratio %.2f (target 2.0)\n",
              cross["alice"], cross["bob"],
              cross["bob"] > 0 ? cross["alice"] / cross["bob"] : 0.0);
  std::printf(
      "  (NFS is a synchronous block protocol; like the paper's 1:1:1:4\n"
      "   case, its achievable share is bounded by request availability.)\n");
  return 0;
}
