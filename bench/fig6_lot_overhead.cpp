// Figure 6 — "Overhead of lots": NeST implements lots with the kernel
// quota mechanism; this measures the write-bandwidth cost of that choice.
// A single client writes one sequential stream of S MB (S = 4..200) with
// quotas disabled vs enabled. Paper shape: negligible overhead for small
// writes (they stay in the buffer cache), growing with file size to
// roughly 50% once the stream is disk-bound — each synchronous quota
// record update costs a seek away from the data stream and another seek
// back. Reads are unaffected (also verified below).
#include <cstdio>
#include <vector>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/simnest.h"

using namespace nest;
using namespace nest::simnest;

namespace {

double run_write(std::int64_t size, bool quotas) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  host.store().set_quota_enabled(quotas);
  SimNestConfig cfg;
  cfg.tm.adaptive = false;
  cfg.tm.fixed_model = transfer::ConcurrencyModel::threads;
  SimNest server(host, cfg);
  Nanos done = 0;
  sim::spawn([](sim::Engine& e, SimNest& s, std::int64_t sz,
                Nanos& out) -> sim::Co<void> {
    co_await s.client_put(ProtocolBehavior::chirp(), "/stream", sz);
    out = e.now();
  }(eng, server, size, done));
  eng.run();
  return mb_per_sec(size, done);
}

double run_read(std::int64_t size, bool quotas) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  host.store().set_quota_enabled(quotas);
  SimNestConfig cfg;
  cfg.tm.adaptive = false;
  cfg.tm.fixed_model = transfer::ConcurrencyModel::threads;
  SimNest server(host, cfg);
  server.add_file("/cold", size, /*cached=*/false);
  Nanos done = 0;
  sim::spawn([](sim::Engine& e, SimNest& s, Nanos& out) -> sim::Co<void> {
    co_await s.client_get(ProtocolBehavior::chirp(), "/cold");
    out = e.now();
  }(eng, server, done));
  eng.run();
  return mb_per_sec(size, done);
}

}  // namespace

int main() {
  std::printf("Figure 6: Performance Overhead of Lots (kernel quota model)\n");
  std::printf("(single sequential write stream, Linux profile)\n\n");
  std::printf("  %-10s  %12s  %12s  %9s\n", "write size", "quotas off",
              "quotas on", "overhead");
  const std::vector<std::int64_t> sizes = {4,  10, 20,  40,  60,  80,
                                           100, 120, 140, 160, 180, 200};
  for (const std::int64_t mb : sizes) {
    const double off = run_write(mb * 1'000'000, false);
    const double on = run_write(mb * 1'000'000, true);
    std::printf("  %6lld MB   %9.1f MB/s %9.1f MB/s  %8.0f%%\n",
                static_cast<long long>(mb), off, on,
                off > 0 ? 100.0 * (off - on) / off : 0.0);
  }

  const double r_off = run_read(100'000'000, false);
  const double r_on = run_read(100'000'000, true);
  std::printf(
      "\nRead check (100 MB cold sequential read): %.1f MB/s without "
      "quotas, %.1f MB/s with (paper: reads unaffected)\n",
      r_off, r_on);
  return 0;
}
