// Ablation — the cold tier (docs/hsm.md): what does CASTOR-style HSM
// cost, and can migration be paced so live clients barely notice?
//
// Three sweeps on the simulated substrate:
//   1. Recall latency: first read of a cold file pays the tape mount and
//      stream; the follow-up hot read is the control.
//   2. Recall storm: N concurrent readers of one cold file cost ONE
//      staged pass (the fan-in contract), so per-client cost amortizes.
//   3. Migration pacing: a 32 MB drain shares the stride scheduler with
//      a live client at three ticket ratios; live P50/P99 per-get
//      latency vs the no-migration baseline shows the pacing lever.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/simnest.h"

using namespace nest;
using namespace nest::simnest;

namespace {

double pct(std::vector<Nanos> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1) / 100.0);
  return to_seconds(v[idx]) * 1e3;  // ms
}

// ---------- 1. recall latency vs file size ----------

void recall_latency() {
  std::printf("-- recall latency (tape2002 cold store: 2 s mount, "
              "12 MB/s stream) --\n");
  std::printf("  %8s  %12s  %12s\n", "size", "cold (s)", "hot (s)");
  for (const std::int64_t mb : {1, 8, 32, 128}) {
    sim::Engine eng;
    SimHost host(eng, sim::PlatformProfile::linux2_2());
    SimNestConfig cfg;
    cfg.tm.adaptive = false;
    SimNest server(host, cfg);
    server.attach_cold_tier(sim::PlatformProfile::tape2002());
    server.add_cold_file("/archive", mb * 1'000'000);

    Nanos cold_done = 0;
    sim::spawn([](sim::Engine& e, SimNest& s, Nanos& out) -> sim::Co<void> {
      co_await s.client_get(ProtocolBehavior::chirp(), "/archive");
      out = e.now();
    }(eng, server, cold_done));
    eng.run();

    Nanos hot_done = 0;
    sim::spawn([](sim::Engine& e, SimNest& s, Nanos& out) -> sim::Co<void> {
      co_await s.client_get(ProtocolBehavior::chirp(), "/archive");
      out = e.now();
    }(eng, server, hot_done));
    eng.run();
    const double cold_s = to_seconds(cold_done);
    const double hot_s = to_seconds(hot_done - cold_done);
    std::printf("  %5lld MB  %12.2f  %12.2f\n",
                static_cast<long long>(mb), cold_s, hot_s);
    std::printf("{\"bench\":\"abl_hsm\",\"metric\":\"recall_latency\","
                "\"size_mb\":%lld,\"cold_s\":%.3f,\"hot_s\":%.3f}\n",
                static_cast<long long>(mb), cold_s, hot_s);
  }
}

// ---------- 2. recall storm fan-in ----------

void recall_storm() {
  std::printf("\n-- recall storm: N clients, one 8 MB cold file --\n");
  std::printf("  %4s  %8s  %6s  %14s\n", "N", "recalls", "joins",
              "storm done (s)");
  for (const int n : {1, 4, 16, 64}) {
    sim::Engine eng;
    SimHost host(eng, sim::PlatformProfile::linux2_2());
    SimNestConfig cfg;
    cfg.tm.adaptive = false;
    SimNest server(host, cfg);
    server.attach_cold_tier(sim::PlatformProfile::tape2002());
    server.add_cold_file("/storm", 8'000'000);
    for (int i = 0; i < n; ++i) {
      sim::spawn([](SimNest& s) -> sim::Co<void> {
        co_await s.client_get(ProtocolBehavior::chirp(), "/storm");
      }(server));
    }
    eng.run();
    const auto& c = server.hsm_counters();
    const double done_s = to_seconds(eng.now());
    std::printf("  %4d  %8lld  %6lld  %14.2f\n", n,
                static_cast<long long>(c.recalls),
                static_cast<long long>(c.recall_joins), done_s);
    std::printf("{\"bench\":\"abl_hsm\",\"metric\":\"recall_storm\","
                "\"clients\":%d,\"recalls\":%lld,\"joins\":%lld,"
                "\"done_s\":%.3f}\n",
                n, static_cast<long long>(c.recalls),
                static_cast<long long>(c.recall_joins), done_s);
  }
}

// ---------- 3. migration pacing vs live latency ----------

struct PacingRow {
  double p50_ms = 0;
  double p99_ms = 0;
  double live_done_s = 0;
  double mig_done_s = 0;
  double mig_mbps = 0;
};

PacingRow run_pacing(std::int64_t live_tickets, std::int64_t mig_tickets,
                     bool with_migration) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNestConfig cfg;
  cfg.tm.adaptive = false;
  cfg.tm.scheduler = "stride";
  cfg.service_slots = 1;  // every grant goes through the scheduler
  cfg.hsm_block = 64 * 1024;
  SimNest server(host, cfg);
  server.tm().stride()->set_tickets("chirp", live_tickets);
  server.tm().stride()->set_tickets("migrate", mig_tickets);
  // Nearline disk pool: pacing is under test, not the mount cost.
  auto cold = sim::PlatformProfile::tape2002();
  cold.disk_seek = kMillisecond;
  cold.disk_bw = 20.0e6;
  server.attach_cold_tier(cold);
  server.add_file("/live", 1'000'000, /*cached=*/true);
  server.add_file("/old", 32'000'000, /*cached=*/true);

  std::vector<Nanos> lat;
  Nanos live_done = 0;
  Nanos mig_done = 0;
  sim::spawn([](sim::Engine& e, SimNest& s, std::vector<Nanos>& l,
                Nanos& out) -> sim::Co<void> {
    for (int i = 0; i < 64; ++i) {
      const Nanos t0 = e.now();
      co_await s.client_get(ProtocolBehavior::chirp(), "/live");
      l.push_back(e.now() - t0);
    }
    out = e.now();
  }(eng, server, lat, live_done));
  if (with_migration) {
    sim::spawn([](sim::Engine& e, SimNest& s, Nanos& out) -> sim::Co<void> {
      co_await s.migrate_file("/old");
      out = e.now();
    }(eng, server, mig_done));
  }
  eng.run();

  PacingRow r;
  r.p50_ms = pct(lat, 50);
  r.p99_ms = pct(lat, 99);
  r.live_done_s = to_seconds(live_done);
  r.mig_done_s = to_seconds(mig_done);
  if (mig_done > 0) {
    r.mig_mbps = static_cast<double>(server.hsm_counters().bytes_migrated) /
                 to_seconds(mig_done) / 1e6;
  }
  return r;
}

void migration_pacing() {
  std::printf("\n-- migration pacing: 32 MB drain vs 64 x 1 MB live gets "
              "(stride tickets live:migrate) --\n");
  std::printf("  %10s  %10s  %10s  %12s  %12s\n", "tickets", "p50 (ms)",
              "p99 (ms)", "drain (s)", "drain MB/s");
  const PacingRow base = run_pacing(8, 1, /*with_migration=*/false);
  std::printf("  %10s  %10.1f  %10.1f  %12s  %12s\n", "baseline",
              base.p50_ms, base.p99_ms, "-", "-");
  std::printf("{\"bench\":\"abl_hsm\",\"metric\":\"pacing\","
              "\"live_tickets\":8,\"mig_tickets\":0,\"p50_ms\":%.2f,"
              "\"p99_ms\":%.2f,\"mig_done_s\":0,\"mig_mbps\":0}\n",
              base.p50_ms, base.p99_ms);
  struct Level {
    std::int64_t live, mig;
    const char* label;
  };
  for (const Level lv : {Level{8, 1, "8:1"}, Level{1, 1, "1:1"},
                         Level{1, 8, "1:8"}}) {
    const PacingRow r = run_pacing(lv.live, lv.mig, /*with_migration=*/true);
    std::printf("  %10s  %10.1f  %10.1f  %12.2f  %12.1f\n", lv.label,
                r.p50_ms, r.p99_ms, r.mig_done_s, r.mig_mbps);
    std::printf("{\"bench\":\"abl_hsm\",\"metric\":\"pacing\","
                "\"live_tickets\":%lld,\"mig_tickets\":%lld,"
                "\"p50_ms\":%.2f,\"p99_ms\":%.2f,\"mig_done_s\":%.2f,"
                "\"mig_mbps\":%.2f}\n",
                static_cast<long long>(lv.live),
                static_cast<long long>(lv.mig), r.p50_ms, r.p99_ms,
                r.mig_done_s, r.mig_mbps);
  }
  std::printf("\nExpectation: at 8:1 the drain trickles and live P99 stays "
              "within 2x of\nbaseline; at 1:8 the drain finishes fastest "
              "and live latency visibly\ndegrades — the pacing lever in "
              "numbers.\n");
}

}  // namespace

int main() {
  std::printf("Ablation: hierarchical cold tier (docs/hsm.md)\n\n");
  recall_latency();
  recall_storm();
  migration_pacing();
  return 0;
}
