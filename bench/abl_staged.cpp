// Ablation A7 — SEDA-style staged concurrency (paper Section 4.1: "in the
// future, we plan to investigate more advanced concurrency architectures
// (e.g., SEDA ...)"). The staged model runs a small disk-stage pool and a
// small network-stage pool with queues between: it avoids both the event
// loop's blocking-I/O stall and the thread model's per-request creation
// and context-switch costs. This bench pits all four models against the
// two Figure 5 workloads.
#include <cstdio>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/workload.h"

using namespace nest;
using namespace nest::simnest;
using transfer::ConcurrencyModel;

namespace {

SimNestConfig fixed(ConcurrencyModel model) {
  SimNestConfig cfg;
  cfg.tm.adaptive = false;
  cfg.tm.fixed_model = model;
  return cfg;
}

// Figure 5 right: Linux, 10 MB files, working set > cache (bandwidth).
double linux_bulk(ConcurrencyModel model) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNest server(host, fixed(model));
  WorkloadSpec spec;
  spec.duration = 60 * kSecond;
  spec.groups.push_back(ClientGroup{&server, "chirp", 4, 10'000'000, true, 12});
  return run_get_workload(eng, spec).total_mbps;
}

// Figure 5 left: Solaris, 1 KB cached requests (latency).
double solaris_small(ConcurrencyModel model) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::solaris8());
  SimNest server(host, fixed(model));
  WorkloadSpec spec;
  spec.duration = 20 * kSecond;
  spec.groups.push_back(ClientGroup{&server, "chirp", 8, 1000, true, 1});
  return run_get_workload(eng, spec).class_latency_ms.at("chirp");
}

}  // namespace

int main() {
  std::printf("Ablation A7: SEDA-style staged model vs the paper's three\n\n");
  std::printf("  %-10s  %22s  %26s\n", "model", "Linux bulk (MB/s)",
              "Solaris 1KB latency (ms)");
  for (const ConcurrencyModel m :
       {ConcurrencyModel::events, ConcurrencyModel::threads,
        ConcurrencyModel::processes, ConcurrencyModel::staged}) {
    std::printf("  %-10s  %22.1f  %26.2f\n", transfer::model_name(m),
                linux_bulk(m), solaris_small(m));
  }
  std::printf(
      "\nExpectation: staged matches threads on the disk-bound bulk\n"
      "workload (no loop stall) while staying near events on small cached\n"
      "requests (no thread create/switch per request) — the best of both,\n"
      "which is why the paper pointed at SEDA.\n");
  return 0;
}
