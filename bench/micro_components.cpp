// Microbenchmarks for NeST's hot paths: ClassAd evaluation (runs on every
// ACL check and matchmaking pass), stride scheduler decisions (every
// transfer quantum), the gray-box cache model (every block charged), and
// XDR encode/decode (every NFS RPC).
#include <benchmark/benchmark.h>

#include "classad/classad.h"
#include "common/clock.h"
#include "protocol/xdr.h"
#include "storage/acl.h"
#include "storage/extentfs.h"
#include "storage/memfs.h"
#include "transfer/cache_model.h"
#include "transfer/scheduler.h"

namespace {

using namespace nest;

void BM_ClassAdParse(benchmark::State& state) {
  const std::string text =
      "[ Type = \"Storage\"; FreeSpace = 1000000; "
      "Requirements = other.NeedSpace <= FreeSpace && "
      "member(other.Protocol, {\"chirp\", \"nfs\"}); ]";
  for (auto _ : state) {
    auto ad = classad::ClassAd::parse(text);
    benchmark::DoNotOptimize(ad);
  }
}
BENCHMARK(BM_ClassAdParse);

void BM_ClassAdMatch(benchmark::State& state) {
  auto storage = classad::ClassAd::parse(
      "[ Type = \"Storage\"; FreeSpace = 1000000; "
      "Requirements = other.NeedSpace <= FreeSpace; ]");
  auto job = classad::ClassAd::parse(
      "[ Type = \"Job\"; NeedSpace = 500; Protocol = \"chirp\"; "
      "Requirements = other.Type == \"Storage\"; ]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(classad::match(*job, *storage));
  }
}
BENCHMARK(BM_ClassAdMatch);

void BM_AclCheck(benchmark::State& state) {
  storage::AccessControl acl;
  auto entry = classad::ClassAd::parse(
      "[ Principal = \"group:physics\"; Rights = \"rwl\"; ]");
  (void)acl.set_entry("/data/deep/dir", *entry);
  storage::Principal who{.name = "alice",
                         .groups = {"physics"},
                         .authenticated = true,
                         .protocol = "chirp"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        acl.check(who, "/data/deep/dir/file", storage::Right::read));
  }
}
BENCHMARK(BM_AclCheck);

void BM_StrideSchedulerQuantum(benchmark::State& state) {
  ManualClock clock;
  transfer::StrideScheduler sched(clock);
  const int classes = static_cast<int>(state.range(0));
  std::vector<transfer::TransferRequest> reqs(
      static_cast<std::size_t>(classes));
  for (int i = 0; i < classes; ++i) {
    reqs[static_cast<std::size_t>(i)].protocol = "p" + std::to_string(i);
    sched.set_tickets(reqs[static_cast<std::size_t>(i)].protocol, i + 1);
    sched.enqueue(&reqs[static_cast<std::size_t>(i)]);
  }
  for (auto _ : state) {
    transfer::TransferRequest* r = sched.next();
    sched.charge(r, 65536);
    sched.enqueue(r);
  }
}
BENCHMARK(BM_StrideSchedulerQuantum)->Arg(2)->Arg(4)->Arg(16);

void BM_CacheModelObserve(benchmark::State& state) {
  transfer::CacheModel model(64LL * 1024 * 1024, 8192);
  std::int64_t off = 0;
  for (auto _ : state) {
    model.observe_access("/f", off % (128LL * 1024 * 1024), 65536);
    off += 65536;
  }
}
BENCHMARK(BM_CacheModelObserve);

void BM_CacheModelPredict(benchmark::State& state) {
  transfer::CacheModel model(64LL * 1024 * 1024, 8192);
  model.observe_access("/f", 0, 10'000'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.resident_fraction("/f", 10'000'000));
  }
}
BENCHMARK(BM_CacheModelPredict);

void BM_XdrNfsReadCall(benchmark::State& state) {
  for (auto _ : state) {
    protocol::xdr::Encoder enc;
    protocol::xdr::encode_call(enc, 7, 100003, 2, 6);
    char fh[32] = {};
    enc.put_fixed(std::span<const char>(fh, 32));
    enc.put_u32(0);
    enc.put_u32(8192);
    enc.put_u32(0);
    protocol::xdr::Decoder dec(enc.span());
    auto call = protocol::xdr::decode_call(dec);
    benchmark::DoNotOptimize(call);
  }
}
BENCHMARK(BM_XdrNfsReadCall);

void BM_MemFsWrite64K(benchmark::State& state) {
  ManualClock clock;
  storage::MemFs fs(clock, 1'000'000'000);
  auto h = fs.create("/bench");
  std::vector<char> block(64 * 1024, 'm');
  std::int64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*h)->pwrite(std::span(block.data(), block.size()),
                     off % 100'000'000));
    off += 64 * 1024;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 1024);
}
BENCHMARK(BM_MemFsWrite64K);

void BM_ExtentFsWrite64K(benchmark::State& state) {
  ManualClock clock;
  storage::ExtentFs fs(clock, 256LL * 1024 * 1024);
  auto h = fs.create("/bench");
  std::vector<char> block(64 * 1024, 'e');
  std::int64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*h)->pwrite(std::span(block.data(), block.size()),
                     off % (128LL * 1024 * 1024)));
    off += 64 * 1024;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 1024);
}
BENCHMARK(BM_ExtentFsWrite64K);

void BM_ExtentFsRead64K(benchmark::State& state) {
  ManualClock clock;
  storage::ExtentFs fs(clock, 256LL * 1024 * 1024);
  auto h = fs.create("/bench");
  std::vector<char> block(64 * 1024, 'r');
  (void)(*h)->truncate(128LL * 1024 * 1024);
  std::int64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*h)->pread(std::span(block.data(), block.size()),
                    off % (128LL * 1024 * 1024)));
    off += 64 * 1024;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          64 * 1024);
}
BENCHMARK(BM_ExtentFsRead64K);

}  // namespace

BENCHMARK_MAIN();
