// Figure 4 — "Proportional Protocol Scheduling": the Figure 3 mixed
// workload on NeST only, with the stride scheduler shaping bandwidth
// across protocol classes. Paper shape: proportional share costs a little
// total bandwidth versus FIFO (~24-28 vs ~33 MB/s); Jain's fairness vs the
// desired ratios is >= 0.98 for 1:1:1:1, 1:2:1:1 and 3:1:2:1 but drops to
// ~0.87 for 1:1:1:4 because the work-conserving scheduler cannot find
// enough NFS requests (the clients are synchronous block requesters).
#include <cstdio>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/workload.h"

using namespace nest;
using namespace nest::simnest;

namespace {

constexpr std::int64_t kFileSize = 10'000'000;
constexpr int kClients = 4;
// Class order follows the paper: Chirp : GridFTP : HTTP : NFS.
const std::vector<std::string> kProtocols = {"chirp", "gridftp", "http",
                                             "nfs"};

struct Config {
  std::string label;
  bool stride = true;
  std::vector<std::int64_t> tickets;  // chirp, gridftp, http, nfs
};

WorkloadResult run_config(const Config& cfg) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNestConfig scfg;
  scfg.tm.scheduler = cfg.stride ? "stride" : "fifo";
  scfg.tm.adaptive = false;
  scfg.tm.fixed_model = transfer::ConcurrencyModel::threads;
  SimNest server(host, scfg);
  if (cfg.stride) {
    auto* stride = server.tm().stride();
    for (std::size_t i = 0; i < kProtocols.size(); ++i) {
      stride->set_tickets(kProtocols[i], cfg.tickets[i]);
    }
  }
  WorkloadSpec spec;
  spec.duration = 30 * kSecond;
  for (const auto& proto : kProtocols) {
    spec.groups.push_back(ClientGroup{.server = &server,
                                      .protocol = proto,
                                      .clients = kClients,
                                      .file_size = kFileSize,
                                      .cached = true,
                                      .files_per_client = 1});
  }
  return run_get_workload(eng, spec);
}

double fairness(const WorkloadResult& r, const std::vector<std::int64_t>& t) {
  double ticket_sum = 0;
  for (const std::int64_t x : t) ticket_sum += static_cast<double>(x);
  std::vector<double> ratios;
  for (std::size_t i = 0; i < kProtocols.size(); ++i) {
    const double desired =
        r.total_mbps * static_cast<double>(t[i]) / ticket_sum;
    const double delivered = r.class_mbps.at(kProtocols[i]);
    ratios.push_back(desired > 0 ? delivered / desired : 0.0);
  }
  return jain_fairness(ratios);
}

}  // namespace

int main() {
  std::printf("Figure 4: Proportional Protocol Scheduling\n");
  std::printf(
      "(Figure 3 mixed workload, NeST only; ratios are "
      "Chirp:GridFTP:HTTP:NFS)\n\n");
  std::printf("  %-8s  %6s  %6s  %7s  %6s  %6s  %9s\n", "config", "total",
              "chirp", "gridftp", "http", "nfs", "fairness");

  const std::vector<Config> configs = {
      {"FIFO", false, {1, 1, 1, 1}},
      {"1:1:1:1", true, {1, 1, 1, 1}},
      {"1:2:1:1", true, {1, 2, 1, 1}},
      {"3:1:2:1", true, {3, 1, 2, 1}},
      {"1:1:1:4", true, {1, 1, 1, 4}},
  };
  for (const Config& cfg : configs) {
    const WorkloadResult r = run_config(cfg);
    std::printf("  %-8s  %6.1f  %6.1f  %7.1f  %6.1f  %6.1f",
                cfg.label.c_str(), r.total_mbps, r.class_mbps.at("chirp"),
                r.class_mbps.at("gridftp"), r.class_mbps.at("http"),
                r.class_mbps.at("nfs"));
    if (cfg.stride) {
      std::printf("  %9.3f\n", fairness(r, cfg.tickets));
    } else {
      std::printf("  %9s\n", "-");
    }
  }
  return 0;
}
