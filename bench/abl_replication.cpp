// Ablation A12 — cluster replication: journal-ship throughput and
// failover-to-first-byte latency over the live Chirp wire.
//
// Topology: one primary + one follower, socket-backed, loopback TCP.
// Part 1 measures how fast acked writes become servable on the follower:
// a client PUTs a batch of files to the primary and we time from the
// first PUT to full convergence (follower's applied LSN reaches the
// primary's last shipped LSN and every content push has drained), at
// several file sizes. Part 2 measures what a replica death costs a
// reader: ClusterClient GET latency with the ranked-first replica
// healthy versus stopped-but-still-advertised (the client burns one
// failed connect, demotes the node, and takes the bytes from the next
// candidate). The heartbeat timeout is set long so the primary keeps
// ranking the corpse — the bench isolates the client-side failover cost,
// not the membership detector.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/chirp_client.h"
#include "client/cluster_client.h"
#include "common/clock.h"
#include "server/nest_server.h"

using namespace nest;

namespace {

struct Pair {
  std::unique_ptr<server::NestServer> follower;
  std::unique_ptr<server::NestServer> primary;
};

// Follower first (its port seeds the primary's peer list); identities
// cross-registered so the REPL stream authorizes.
Pair start_pair(const std::string& scratch) {
  Pair pair;
  server::NestServerOptions fopts;
  fopts.name = "nest-f";
  fopts.chirp_port = 0;
  fopts.http_port = fopts.ftp_port = fopts.gridftp_port = fopts.nfs_port = -1;
  fopts.journal_dir = scratch + "/journal-f";
  fopts.journal_sync = journal::SyncMode::none;
  fopts.own_subject = "nest-f";
  fopts.own_secret = "fsecret";
  fopts.cluster.role = cluster::Role::follower;
  fopts.cluster.heartbeat_interval = 10 * kMillisecond;
  fopts.cluster.heartbeat_timeout = 600 * kSecond;
  fopts.cluster.peers.push_back(
      cluster::PeerAddress{"nest-p", "127.0.0.1", 1});
  auto f = server::NestServer::start(fopts);
  if (!f.ok()) return pair;
  pair.follower = std::move(f.value());
  pair.follower->gsi().add_user("nest-p", "psecret", {});
  pair.follower->gsi().add_user("alice", "wonder", {});

  server::NestServerOptions popts;
  popts.name = "nest-p";
  popts.chirp_port = 0;
  popts.http_port = popts.ftp_port = popts.gridftp_port = popts.nfs_port = -1;
  popts.journal_dir = scratch + "/journal-p";
  popts.journal_sync = journal::SyncMode::none;
  popts.own_subject = "nest-p";
  popts.own_secret = "psecret";
  popts.cluster.role = cluster::Role::primary;
  popts.cluster.heartbeat_interval = 10 * kMillisecond;
  popts.cluster.heartbeat_timeout = 600 * kSecond;
  popts.cluster.peers.push_back(cluster::PeerAddress{
      "nest-f", "127.0.0.1", pair.follower->chirp_port()});
  auto p = server::NestServer::start(popts);
  if (!p.ok()) {
    pair.follower.reset();
    return pair;
  }
  pair.primary = std::move(p.value());
  pair.primary->gsi().add_user("nest-f", "fsecret", {});
  pair.primary->gsi().add_user("alice", "wonder", {});
  return pair;
}

template <typename Pred>
bool wait_for(Pred pred, int ms = 30'000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

struct ShipRow {
  std::int64_t file_kb = 0;
  int files = 0;
  double put_mbps = 0;
  double repl_mbps = 0;
  std::uint64_t batches = 0;
  double batches_per_sec = 0;
};

// PUT `files` files of `file_kb` KB each to the primary; time from the
// first PUT until the follower has applied every shipped batch and the
// content push queue has drained.
ShipRow run_ship(const std::string& scratch, std::int64_t file_kb,
                 int files) {
  auto pair = start_pair(scratch);
  if (!pair.primary || !pair.follower) {
    std::fprintf(stderr, "server pair failed to start\n");
    std::exit(1);
  }
  auto cli = client::ChirpClient::connect(
      "127.0.0.1", pair.primary->chirp_port(), "alice", "wonder");
  if (!cli.ok()) std::exit(1);
  auto lot = cli->lot_create(file_kb * 1024 * files + 1'000'000, 3600);
  if (!lot.ok() || !cli->lot_set_replicas(*lot, 1).ok()) std::exit(1);

  const std::string body(static_cast<std::size_t>(file_kb) * 1024, 'S');
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < files; ++i) {
    if (auto s = cli->put("/s" + std::to_string(i), body); !s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.to_string().c_str());
      std::exit(1);
    }
  }
  const double put_ms = ms_since(t0);

  auto* pc = pair.primary->cluster();
  auto* fc = pair.follower->cluster();
  const bool converged = wait_for([&] {
    return fc->applied_primary_lsn() == pc->last_shipped_lsn() &&
           pc->pending_pushes() == 0;
  });
  if (!converged) {
    std::fprintf(stderr, "follower never converged\n");
    std::exit(1);
  }
  const double total_ms = ms_since(t0);

  const double mb = static_cast<double>(file_kb) * files / 1024.0;
  ShipRow row;
  row.file_kb = file_kb;
  row.files = files;
  row.put_mbps = mb / (put_ms / 1000.0);
  row.repl_mbps = mb / (total_ms / 1000.0);
  row.batches = pc->last_shipped_lsn();
  row.batches_per_sec = static_cast<double>(row.batches) / (total_ms / 1000.0);
  return row;
}

struct LatRow {
  double median_ms = 0;
  double p99_ms = 0;
};

LatRow summarize(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  LatRow row;
  row.median_ms = samples[samples.size() / 2];
  row.p99_ms = samples[samples.size() - 1 - (samples.size() - 1) / 100];
  return row;
}

// GET latency through ClusterClient with both nodes healthy (the ranked
// replica — the follower, the only peer in the primary's table — serves)
// versus with the follower stopped (one refused connect, then the
// primary serves). A fresh client per sample keeps the EWMA from
// learning the corpse away after the first failover.
void run_failover(const std::string& scratch, int samples, LatRow* healthy,
                  LatRow* failover) {
  auto pair = start_pair(scratch);
  if (!pair.primary || !pair.follower) std::exit(1);
  auto cli = client::ChirpClient::connect(
      "127.0.0.1", pair.primary->chirp_port(), "alice", "wonder");
  if (!cli.ok()) std::exit(1);
  auto lot = cli->lot_create(1'000'000, 3600);
  if (!lot.ok() || !cli->lot_set_replicas(*lot, 1).ok()) std::exit(1);
  const std::string body(64 * 1024, 'F');
  if (!cli->put("/hot.bin", body).ok()) std::exit(1);
  if (!wait_for([&] {
        return pair.follower->cluster()->applied_primary_lsn() ==
                   pair.primary->cluster()->last_shipped_lsn() &&
               pair.primary->cluster()->pending_pushes() == 0;
      })) {
    std::fprintf(stderr, "replica never converged\n");
    std::exit(1);
  }

  const std::vector<client::ClusterClient::Contact> contacts = {
      {"nest-f", "127.0.0.1", pair.follower->chirp_port()},
      {"nest-p", "127.0.0.1", pair.primary->chirp_port()},
  };
  auto measure = [&](const char* phase) {
    std::vector<double> lat;
    for (int i = 0; i < samples; ++i) {
      client::ClusterClient cc(RealClock::instance(), contacts, "alice",
                               "wonder");
      const auto t0 = std::chrono::steady_clock::now();
      auto got = cc.get("/hot.bin");
      if (!got.ok() || got->size() != body.size()) {
        std::fprintf(stderr, "%s get failed\n", phase);
        std::exit(1);
      }
      lat.push_back(ms_since(t0));
    }
    return summarize(std::move(lat));
  };

  *healthy = measure("healthy");
  // Stop the follower. The long heartbeat timeout keeps it "alive" in the
  // primary's ranking, so every sample walks the failover path.
  pair.follower->stop();
  *failover = measure("failover");
}

}  // namespace

int main() {
  const auto scratch_root =
      std::filesystem::temp_directory_path() /
      ("nest_abl_replication_" + std::to_string(::getpid()));
  std::filesystem::remove_all(scratch_root);
  int run = 0;
  auto scratch = [&] {
    auto dir = scratch_root / std::to_string(run++);
    std::filesystem::create_directories(dir);
    return dir.string();
  };

  std::printf("Ablation A12: journal-shipped replication "
              "(live Chirp wire, primary + follower)\n\n");

  std::printf("  ship throughput (PUT batch -> follower convergence)\n");
  std::printf("  %-8s  %-6s  %10s  %10s  %8s  %12s\n", "file_kb", "files",
              "put_MB/s", "repl_MB/s", "batches", "batches/s");
  std::vector<ShipRow> ship;
  for (auto [kb, files] : {std::pair<std::int64_t, int>{4, 128},
                           {64, 64},
                           {256, 32}}) {
    auto row = run_ship(scratch(), kb, files);
    ship.push_back(row);
    std::printf("  %-8lld  %-6d  %10.1f  %10.1f  %8llu  %12.0f\n",
                static_cast<long long>(row.file_kb), row.files, row.put_mbps,
                row.repl_mbps, static_cast<unsigned long long>(row.batches),
                row.batches_per_sec);
  }

  LatRow healthy, failover;
  run_failover(scratch(), 40, &healthy, &failover);
  std::printf("\n  failover-to-first-byte (ClusterClient GET, 64 KB)\n");
  std::printf("  %-14s  %10s  %10s\n", "mode", "median_ms", "p99_ms");
  std::printf("  %-14s  %10.2f  %10.2f\n", "healthy", healthy.median_ms,
              healthy.p99_ms);
  std::printf("  %-14s  %10.2f  %10.2f\n", "replica_down", failover.median_ms,
              failover.p99_ms);
  std::printf("\n");

  for (const auto& row : ship) {
    std::printf(
        "{\"bench\":\"abl_replication\",\"metric\":\"ship\","
        "\"file_kb\":%lld,\"files\":%d,\"put_mbps\":%.1f,"
        "\"repl_mbps\":%.1f,\"batches\":%llu,\"batches_per_sec\":%.0f}\n",
        static_cast<long long>(row.file_kb), row.files, row.put_mbps,
        row.repl_mbps, static_cast<unsigned long long>(row.batches),
        row.batches_per_sec);
  }
  std::printf(
      "{\"bench\":\"abl_replication\",\"metric\":\"failover\","
      "\"mode\":\"healthy\",\"median_ms\":%.2f,\"p99_ms\":%.2f}\n",
      healthy.median_ms, healthy.p99_ms);
  std::printf(
      "{\"bench\":\"abl_replication\",\"metric\":\"failover\","
      "\"mode\":\"replica_down\",\"median_ms\":%.2f,\"p99_ms\":%.2f}\n",
      failover.median_ms, failover.p99_ms);

  std::filesystem::remove_all(scratch_root);
  return 0;
}
