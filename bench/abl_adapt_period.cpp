// Ablation A5 — the cost of adaptation (paper Section 7.3).
//
// "In both experiments, one can discern that there is a cost for
// adaptation, since NeST tries all models periodically in order to find
// the best one for the current workload." The probe rate is the knob: more
// probing reacts faster to workload shifts but wastes work on the worse
// model. This bench sweeps the exploration fraction on the Figure 5
// (right) workload.
#include <cstdio>

#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/workload.h"

using namespace nest;
using namespace nest::simnest;

namespace {

double run(double explore_fraction) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNestConfig cfg;
  cfg.tm.scheduler = "fifo";
  cfg.tm.adaptive = true;
  cfg.tm.adapt.metric = transfer::AdaptMetric::throughput;
  cfg.tm.adapt.enabled = {transfer::ConcurrencyModel::threads,
                          transfer::ConcurrencyModel::events};
  cfg.tm.adapt.warmup_per_model = 8;
  cfg.tm.adapt.explore_fraction = explore_fraction;
  SimNest server(host, cfg);
  WorkloadSpec spec;
  spec.duration = 60 * kSecond;
  spec.groups.push_back(ClientGroup{.server = &server,
                                    .protocol = "chirp",
                                    .clients = 4,
                                    .file_size = 10'000'000,
                                    .cached = true,
                                    .files_per_client = 12});
  return run_get_workload(eng, spec).total_mbps;
}

}  // namespace

int main() {
  std::printf("Ablation A5: adaptation probe-rate sensitivity\n");
  std::printf("(Figure 5 right workload; threads is the best model)\n\n");
  std::printf("  %-18s  %12s\n", "explore fraction", "bandwidth");
  for (const double f : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    std::printf("  %17.0f%%  %7.1f MB/s\n", 100.0 * f, run(f));
  }
  std::printf(
      "\nExpectation: bandwidth decreases as more requests are routed\n"
      "through the losing (event) model to keep its score fresh — the\n"
      "adaptation cost visible in Figure 5.\n");
  return 0;
}
