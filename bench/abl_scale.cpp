// Ablation A7 — appliance throughput vs open-loop offered load, at three
// user-population sizes (ROADMAP item 4).
//
// The open-loop generator offers load at a configured rate regardless of
// how the server keeps up — the regime a grid population creates and the
// one a closed-loop bench client can never produce. Two things to see:
//  * Scale-invariance: the goodput-vs-offered-load curve is a property
//    of offered *rate*, not population size — 10^3 and 10^5 users at the
//    same rate land on the same curve, and server-side state stays
//    bounded (peak active sessions track rate x session length).
//  * Admission control: past saturation, the shedder holds goodput at
//    capacity and admitted-request latency near the target while the
//    no-admission server's latency grows with the backlog; the busy
//    replies carry the overload instead of the queues.
#include <cstdio>
#include <string>

#include "loadgen/loadgen.h"
#include "sim/engine.h"
#include "sim/platform.h"
#include "simnest/simnest.h"
#include "transfer/admission.h"

using namespace nest;
using namespace nest::simnest;

namespace {

// Measured service capacity for this workload shape (64 KB cached files
// on the 36 MB/s simulated link): roughly 570 ops/s.
constexpr double kCapacityOpsPerSec = 570.0;
// Mean ops per session for mean_extra_ops = 1: 1 + E[floor(Exp(1))].
constexpr double kMeanOpsPerSession = 1.582;

struct RunResult {
  double offered_ops_per_sec = 0;
  double goodput_ops_per_sec = 0;
  double shed_fraction = 0;
  double admitted_p99_ms = 0;
  std::int64_t peak_active = 0;
};

RunResult run_one(std::size_t users, double load_factor, bool admission_on) {
  sim::Engine eng;
  SimHost host(eng, sim::PlatformProfile::linux2_2());
  SimNestConfig cfg;
  cfg.tm.adaptive = false;
  if (admission_on) {
    cfg.admission.target_ms = 400.0;
    cfg.admission.max_queue = 16;
  }
  SimNest server(host, cfg);

  loadgen::LoadGenOptions lg;
  lg.seed = 99 + users;
  lg.sessions = users;
  lg.arrivals.rate_per_sec =
      load_factor * kCapacityOpsPerSec / kMeanOpsPerSession;
  lg.session.mean_extra_ops = 1.0;
  lg.files = 64;
  lg.file_size = 64 * 1024;
  loadgen::OpenLoopGenerator gen(server, lg);
  gen.start();
  eng.run();

  const auto& st = gen.stats();
  // Rate over the span the load was actually offered (first arrival to
  // engine drain; the drain tail is part of serving the load).
  const double span = to_seconds(eng.now());
  RunResult r;
  r.offered_ops_per_sec = static_cast<double>(st.ops_issued) / span;
  r.goodput_ops_per_sec = static_cast<double>(st.ops_completed) / span;
  r.shed_fraction = st.ops_issued == 0
                        ? 0.0
                        : static_cast<double>(st.ops_shed) /
                              static_cast<double>(st.ops_issued);
  r.admitted_p99_ms = server.tm().latencies().percentile_ms(99);
  r.peak_active = st.peak_active_sessions;
  return r;
}

}  // namespace

int main() {
  std::printf("Ablation A7: throughput vs open-loop offered load\n");
  std::printf(
      "64 KB cached files, capacity ~%.0f ops/s; admission target 400 ms, "
      "queue bound 16\n\n",
      kCapacityOpsPerSec);

  const std::size_t kUserCounts[] = {1'000, 10'000, 100'000};
  const double kLoadFactors[] = {0.5, 1.0, 2.0, 4.0};

  std::printf("  %-9s %5s  %9s  %9s  %6s  %8s  %8s\n", "users", "load",
              "offered/s", "goodput/s", "shed%", "p99(ms)", "peak-act");
  for (const std::size_t users : kUserCounts) {
    for (const double f : kLoadFactors) {
      const RunResult r = run_one(users, f, /*admission_on=*/true);
      std::printf("  %-9zu %4.1fx  %9.1f  %9.1f  %5.1f%%  %8.1f  %8lld\n",
                  users, f, r.offered_ops_per_sec, r.goodput_ops_per_sec,
                  100.0 * r.shed_fraction, r.admitted_p99_ms,
                  static_cast<long long>(r.peak_active));
      std::printf(
          "{\"bench\":\"abl_scale\",\"admission\":true,\"users\":%zu,"
          "\"load_factor\":%.1f,\"offered_ops_per_sec\":%.1f,"
          "\"goodput_ops_per_sec\":%.1f,\"shed_fraction\":%.3f,"
          "\"admitted_p99_ms\":%.1f,\"peak_active_sessions\":%lld}\n",
          users, f, r.offered_ops_per_sec, r.goodput_ops_per_sec,
          r.shed_fraction, r.admitted_p99_ms,
          static_cast<long long>(r.peak_active));
    }
  }

  std::printf(
      "\nNo admission control (10^4 users): the backlog absorbs the "
      "overload\nand admitted latency grows with it\n");
  std::printf("  %-9s %5s  %9s  %9s  %6s  %8s  %8s\n", "users", "load",
              "offered/s", "goodput/s", "shed%", "p99(ms)", "peak-act");
  for (const double f : kLoadFactors) {
    const RunResult r = run_one(10'000, f, /*admission_on=*/false);
    std::printf("  %-9d %4.1fx  %9.1f  %9.1f  %5.1f%%  %8.1f  %8lld\n",
                10'000, f, r.offered_ops_per_sec, r.goodput_ops_per_sec,
                100.0 * r.shed_fraction, r.admitted_p99_ms,
                static_cast<long long>(r.peak_active));
    std::printf(
        "{\"bench\":\"abl_scale\",\"admission\":false,\"users\":10000,"
        "\"load_factor\":%.1f,\"offered_ops_per_sec\":%.1f,"
        "\"goodput_ops_per_sec\":%.1f,\"shed_fraction\":%.3f,"
        "\"admitted_p99_ms\":%.1f,\"peak_active_sessions\":%lld}\n",
        f, r.offered_ops_per_sec, r.goodput_ops_per_sec, r.shed_fraction,
        r.admitted_p99_ms, static_cast<long long>(r.peak_active));
  }
  return 0;
}
