// Ablation A9 — real-mode gate contention: global-mutex BlockGate vs the
// sharded TransferCore.
//
// The seed dispatcher serialized every create/charge/complete/acquire
// through one mutex and woke waiters with a broadcast notify_all. This
// bench replays that design (LegacyGate below is a faithful copy of the
// seed BlockGate) against transfer::TransferCore on an identical
// synthetic block workload: N connection threads, each acquiring a
// service slot, charging a 64 KB block, and releasing, for a fixed total
// number of blocks per run. Reported MB/s is gate throughput (no actual
// byte movement), so the delta is pure synchronization cost.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "transfer/core.h"
#include "transfer/transfer_manager.h"

using namespace nest;
using namespace nest::transfer;

namespace {

constexpr std::int64_t kBlockBytes = 64 * 1024;
constexpr int kSlots = 4;

// The seed's BlockGate, verbatim modulo naming: one mutex around the whole
// TransferManager, one condition variable broadcast to every waiter on
// each grant.
class LegacyGate {
 public:
  LegacyGate(TransferManager& tm, int slots) : tm_(tm), free_(slots) {}

  TransferRequest* create_request(const std::string& protocol, Direction dir,
                                  const std::string& path, std::int64_t size,
                                  const std::string& user = {}) {
    std::lock_guard lock(mu_);
    return tm_.create_request(protocol, dir, path, size, user);
  }

  void charge(TransferRequest* r, std::int64_t bytes) {
    std::lock_guard lock(mu_);
    tm_.charge(r, bytes);
  }

  void complete(TransferRequest* r) {
    std::lock_guard lock(mu_);
    tm_.complete(r);
  }

  void acquire(TransferRequest* r) {
    std::unique_lock lock(mu_);
    tm_.enqueue(r);
    pump_locked();
    cv_.wait(lock, [&] { return granted_.count(r) != 0; });
    granted_.erase(r);
  }

  void release() {
    std::lock_guard lock(mu_);
    ++free_;
    pump_locked();
  }

 private:
  void pump_locked() {
    while (free_ > 0) {
      TransferRequest* r = tm_.next();
      if (r == nullptr) break;
      --free_;
      granted_.insert(r);
    }
    if (!granted_.empty()) cv_.notify_all();
  }

  TransferManager& tm_;
  std::mutex mu_;
  std::condition_variable cv_;
  int free_;
  std::set<TransferRequest*> granted_;
};

TransferManager::Options bench_options() {
  TransferManager::Options o;
  o.scheduler = "fifo";
  o.adaptive = false;
  return o;
}

// Drive `gate` with `conns` threads until `total_blocks` blocks have been
// charged; returns aggregate gate throughput in MB/s.
template <typename Gate>
double run_one(Gate& gate, int conns, std::int64_t total_blocks) {
  const std::int64_t blocks_per_conn = total_blocks / conns;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&gate, c, blocks_per_conn] {
      TransferRequest* r =
          gate.create_request("chirp", Direction::read,
                              "/bench/c" + std::to_string(c),
                              blocks_per_conn * kBlockBytes);
      for (std::int64_t b = 0; b < blocks_per_conn; ++b) {
        gate.acquire(r);
        gate.charge(r, kBlockBytes);
        gate.release();
      }
      gate.complete(r);
    });
  }
  for (std::thread& t : threads) t.join();
  const std::chrono::duration<double> secs =
      std::chrono::steady_clock::now() - t0;
  const double bytes =
      static_cast<double>(conns * blocks_per_conn) * kBlockBytes;
  return bytes / secs.count() / 1e6;
}

double run_path(const std::string& path, int conns,
                std::int64_t total_blocks, int reps) {
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    TransferManager tm(RealClock::instance(), bench_options());
    double mbps = 0;
    if (path == "legacy") {
      LegacyGate gate(tm, kSlots);
      mbps = run_one(gate, conns, total_blocks);
    } else {
      TransferCore core(tm, kSlots);
      mbps = run_one(core, conns, total_blocks);
    }
    if (mbps > best) best = mbps;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::int64_t total_blocks = 64 * 1024;
  int reps = 3;
  if (argc > 1) total_blocks = std::atoll(argv[1]);
  if (argc > 2) reps = std::atoi(argv[2]);

  std::printf("Ablation A9: gate contention — legacy BlockGate vs sharded "
              "TransferCore\n");
  std::printf("(%lld x 64 KB blocks per run, %d service slots, best of %d "
              "reps)\n\n",
              static_cast<long long>(total_blocks), kSlots, reps);
  struct Row {
    int conns;
    double legacy;
    double sharded;
  };
  std::vector<Row> rows;
  std::printf("  %-6s  %14s  %14s  %8s\n", "conns", "legacy MB/s",
              "sharded MB/s", "speedup");
  for (const int conns : {1, 4, 16, 64}) {
    const double legacy = run_path("legacy", conns, total_blocks, reps);
    const double sharded = run_path("sharded", conns, total_blocks, reps);
    rows.push_back(Row{conns, legacy, sharded});
    std::printf("  %-6d  %14.0f  %14.0f  %7.2fx\n", conns, legacy, sharded,
                sharded / legacy);
  }
  std::printf("\n");
  for (const Row& row : rows) {
    for (const std::string path : {"legacy", "sharded"}) {
      std::printf("{\"bench\":\"abl_gate_contention\",\"conns\":%d,"
                  "\"path\":\"%s\",\"block_bytes\":%lld,\"mbps\":%.0f}\n",
                  row.conns, path.c_str(),
                  static_cast<long long>(kBlockBytes),
                  path == "legacy" ? row.legacy : row.sharded);
    }
  }
  return 0;
}
