// Ablation A2 — best-effort lot reclamation policies.
//
// Paper Section 5: when a lot's duration expires its files linger until
// space is needed; the paper says "we are currently investigating
// different selection policies for reclaiming this space." This bench
// compares the three implemented policies under a synthetic workload where
// recently-used expired data is more likely to be re-read (a standard
// temporal-locality assumption): the quality metric is the fraction of
// post-reclaim accesses that still find their file.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "storage/lot.h"

using namespace nest;
using namespace nest::storage;

namespace {

struct Outcome {
  double hit_rate = 0;
  std::int64_t reclaimed_files = 0;
};

Outcome run_policy(ReclaimPolicy policy, std::uint64_t seed) {
  ManualClock clock;
  std::set<std::string> dead;
  LotManager lots(clock, 100'000'000, policy,
                  [&](const std::string& path) { dead.insert(path); });
  Rng rng(seed);

  // 20 users each create a lot, fill it with files, and let it expire.
  // Recency (last_use, staggered by creation order) and expiry time
  // (random duration) are deliberately *uncorrelated*, so the LRU and
  // oldest-expiry policies pick different victims.
  std::vector<std::string> files;
  for (int u = 0; u < 20; ++u) {
    auto lot = lots.create("user" + std::to_string(u), 4'000'000,
                           kSecond * (1 + rng.uniform(0, 25)));
    if (!lot.ok()) continue;
    for (int f = 0; f < 4; ++f) {
      const std::string path =
          "/u" + std::to_string(u) + "/f" + std::to_string(f);
      if (lots.charge("user" + std::to_string(u), {}, path, 900'000).ok()) {
        files.push_back(path);
      }
    }
    clock.advance(kSecond / 4);  // stagger creation/last-use times
  }
  clock.advance(30 * kSecond);  // everything expires -> best effort
  lots.tick();

  // New demand forces reclamation of about half the space.
  (void)lots.create("newcomer", 40'000'000, kSecond);

  // Future accesses favor recently-used files (temporal locality):
  // user u's files are accessed with weight proportional to u (created
  // later = used more recently).
  std::int64_t hits = 0;
  std::int64_t accesses = 0;
  for (int i = 0; i < 4000; ++i) {
    // Weighted user pick: triangular distribution toward high u.
    const auto a = rng.uniform(0, 19);
    const auto b = rng.uniform(0, 19);
    const std::int64_t u = std::max(a, b);
    const std::string path = "/u" + std::to_string(u) + "/f" +
                             std::to_string(rng.uniform(0, 3));
    ++accesses;
    if (!dead.count(path)) ++hits;
  }
  Outcome out;
  out.hit_rate = static_cast<double>(hits) / static_cast<double>(accesses);
  out.reclaimed_files = static_cast<std::int64_t>(dead.size());
  return out;
}

const char* policy_name(ReclaimPolicy p) {
  switch (p) {
    case ReclaimPolicy::expired_lru: return "expired-lru";
    case ReclaimPolicy::expired_largest: return "expired-largest";
    case ReclaimPolicy::oldest_expiry: return "oldest-expiry";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("Ablation A2: best-effort lot reclamation policies\n");
  std::printf("(locality-weighted re-accesses after forced reclamation)\n\n");
  std::printf("  %-16s  %14s  %16s\n", "policy", "reclaimed", "post hit-rate");
  for (const ReclaimPolicy policy :
       {ReclaimPolicy::expired_lru, ReclaimPolicy::expired_largest,
        ReclaimPolicy::oldest_expiry}) {
    double hit_sum = 0;
    std::int64_t reclaimed = 0;
    constexpr int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const Outcome o = run_policy(policy, static_cast<std::uint64_t>(seed));
      hit_sum += o.hit_rate;
      reclaimed += o.reclaimed_files;
    }
    std::printf("  %-16s  %8.1f files  %15.1f%%\n", policy_name(policy),
                static_cast<double>(reclaimed) / kSeeds,
                100.0 * hit_sum / kSeeds);
  }
  std::printf(
      "\nExpectation: expired-lru preserves recently-used data and wins on\n"
      "hit rate under temporal locality; expired-largest frees space with\n"
      "the fewest victims.\n");
  return 0;
}
