#include "common/metrics.h"

#include "common/units.h"

namespace nest {

double jain_fairness(const std::vector<double>& ratios) {
  if (ratios.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : ratios) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(ratios.size());
  return (sum * sum) / (n * sum_sq);
}

double LatencyRecorder::mean_ms() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (const Nanos s : samples_) total += static_cast<double>(s);
  return total / static_cast<double>(samples_.size()) / 1e6;
}

double LatencyRecorder::percentile_ms(double p) const {
  if (samples_.empty()) return 0.0;
  std::sort(samples_.begin(), samples_.end());
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(rank);
  return static_cast<double>(samples_[idx]) / 1e6;
}

double BandwidthMeter::total_mbps() const {
  return mb_per_sec(total_, end_ - start_);
}

double BandwidthMeter::class_mbps(const std::string& cls) const {
  const auto it = bytes_.find(cls);
  if (it == bytes_.end()) return 0.0;
  return mb_per_sec(it->second, end_ - start_);
}

}  // namespace nest
