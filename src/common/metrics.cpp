#include "common/metrics.h"

#include <algorithm>
#include <thread>

#include "common/units.h"

namespace nest {

double jain_fairness(const std::vector<double>& ratios) {
  if (ratios.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : ratios) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(ratios.size());
  return (sum * sum) / (n * sum_sq);
}

int metric_stripe_of_thread() {
  return static_cast<int>(
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      static_cast<std::size_t>(kMetricStripes));
}

void LatencyRecorder::record(Nanos latency) {
  Stripe& s = stripes_[metric_stripe_of_thread()];
  std::lock_guard lock(s.mu);
  s.samples.push_back(latency);
}

std::size_t LatencyRecorder::count() const {
  std::size_t n = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    n += s.samples.size();
  }
  return n;
}

std::vector<Nanos> LatencyRecorder::snapshot() const {
  std::vector<Nanos> all;
  for (const Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    all.insert(all.end(), s.samples.begin(), s.samples.end());
  }
  return all;
}

double LatencyRecorder::mean_ms() const {
  const std::vector<Nanos> all = snapshot();
  if (all.empty()) return 0.0;
  double total = 0.0;
  for (const Nanos s : all) total += static_cast<double>(s);
  return total / static_cast<double>(all.size()) / 1e6;
}

double LatencyRecorder::percentile_ms(double p) const {
  std::vector<Nanos> all = snapshot();
  if (all.empty()) return 0.0;
  std::sort(all.begin(), all.end());
  const double rank = p / 100.0 * static_cast<double>(all.size() - 1);
  const auto idx = static_cast<std::size_t>(rank);
  return static_cast<double>(all[idx]) / 1e6;
}

void BandwidthMeter::add(const std::string& cls, std::int64_t bytes) {
  Stripe& s = stripes_[metric_stripe_of_thread()];
  {
    std::lock_guard lock(s.mu);
    s.bytes[cls] += bytes;
  }
  total_.fetch_add(bytes, std::memory_order_relaxed);
}

double BandwidthMeter::total_mbps() const {
  return mb_per_sec(total_.load(std::memory_order_relaxed), end_ - start_);
}

double BandwidthMeter::class_mbps(const std::string& cls) const {
  std::int64_t bytes = 0;
  for (const Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    const auto it = s.bytes.find(cls);
    if (it != s.bytes.end()) bytes += it->second;
  }
  return mb_per_sec(bytes, end_ - start_);
}

std::map<std::string, std::int64_t> BandwidthMeter::per_class() const {
  std::map<std::string, std::int64_t> out;
  for (const Stripe& s : stripes_) {
    std::lock_guard lock(s.mu);
    for (const auto& [cls, bytes] : s.bytes) out[cls] += bytes;
  }
  return out;
}

}  // namespace nest
