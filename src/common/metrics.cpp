#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <thread>

#include "common/units.h"

namespace nest {

double jain_fairness(const std::vector<double>& ratios) {
  if (ratios.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double x : ratios) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const double n = static_cast<double>(ratios.size());
  return (sum * sum) / (n * sum_sq);
}

int metric_stripe_of_thread() {
  return static_cast<int>(
      std::hash<std::thread::id>()(std::this_thread::get_id()) %
      static_cast<std::size_t>(kMetricStripes));
}

void LatencyRecorder::record(Nanos latency) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(latency, std::memory_order_relaxed);
  Stripe& s = stripes_[metric_stripe_of_thread()];
  MutexLock lock(s.mu);
  if (cap_ == 0 || s.samples.size() < cap_) {
    s.samples.push_back(latency);
  } else {
    // Ring overwrite: the stripe holds the most recent cap_ samples.
    s.samples[s.next] = latency;
    s.next = (s.next + 1) % cap_;
  }
}

std::size_t LatencyRecorder::retained() const {
  std::size_t n = 0;
  for (const Stripe& s : stripes_) {
    MutexLock lock(s.mu);
    n += s.samples.size();
  }
  return n;
}

std::vector<Nanos> LatencyRecorder::snapshot() const {
  std::vector<Nanos> all;
  for (const Stripe& s : stripes_) {
    MutexLock lock(s.mu);
    all.insert(all.end(), s.samples.begin(), s.samples.end());
  }
  return all;
}

double LatencyRecorder::mean_ms() const {
  const std::int64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n) / 1e6;
}

double LatencyRecorder::percentile_ms(double p) const {
  std::vector<Nanos> all = snapshot();
  if (all.empty()) return 0.0;
  std::sort(all.begin(), all.end());
  const double rank = p / 100.0 * static_cast<double>(all.size() - 1);
  const auto idx = static_cast<std::size_t>(rank);
  return static_cast<double>(all[idx]) / 1e6;
}

int Histogram::bucket_of(Nanos v) {
  if (v < kBucket0Ceiling) return 0;
  const int b = std::bit_width(static_cast<std::uint64_t>(v) / kBucket0Ceiling);
  return b < kBuckets ? b : kBuckets - 1;
}

Nanos Histogram::bucket_floor(int b) {
  if (b <= 0) return 0;
  return kBucket0Ceiling << (b - 1);
}

Nanos Histogram::bucket_ceiling(int b) {
  if (b >= kBuckets - 1) return std::numeric_limits<Nanos>::max();
  return kBucket0Ceiling << b;
}

void Histogram::record(Nanos v) {
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v > 0 ? v : 0, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot out;
  for (int b = 0; b < kBuckets; ++b) {
    const std::int64_t n =
        buckets_[static_cast<std::size_t>(b)].load(std::memory_order_relaxed);
    out.buckets[static_cast<std::size_t>(b)] = n;
    out.count += n;
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::mean_ms() const {
  if (count == 0) return 0.0;
  return static_cast<double>(sum) / static_cast<double>(count) / 1e6;
}

double Histogram::Snapshot::percentile_ms(double p) const {
  if (count == 0) return 0.0;
  const auto rank = static_cast<std::int64_t>(
      p / 100.0 * static_cast<double>(count - 1));
  std::int64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += buckets[static_cast<std::size_t>(b)];
    if (cum > rank) {
      const Nanos ceil = Histogram::bucket_ceiling(b);
      // The open-ended last bucket reports its floor instead of +inf.
      const Nanos rep =
          ceil == std::numeric_limits<Nanos>::max()
              ? Histogram::bucket_floor(b)
              : ceil;
      return static_cast<double>(rep) / 1e6;
    }
  }
  return 0.0;
}

void BandwidthMeter::add(const std::string& cls, std::int64_t bytes) {
  Stripe& s = stripes_[metric_stripe_of_thread()];
  {
    MutexLock lock(s.mu);
    s.bytes[cls] += bytes;
  }
  total_.fetch_add(bytes, std::memory_order_relaxed);
}

double BandwidthMeter::total_mbps() const {
  return mb_per_sec(total_.load(std::memory_order_relaxed), end_ - start_);
}

double BandwidthMeter::class_mbps(const std::string& cls) const {
  std::int64_t bytes = 0;
  for (const Stripe& s : stripes_) {
    MutexLock lock(s.mu);
    const auto it = s.bytes.find(cls);
    if (it != s.bytes.end()) bytes += it->second;
  }
  return mb_per_sec(bytes, end_ - start_);
}

std::map<std::string, std::int64_t> BandwidthMeter::per_class() const {
  std::map<std::string, std::int64_t> out;
  for (const Stripe& s : stripes_) {
    MutexLock lock(s.mu);
    for (const auto& [cls, bytes] : s.bytes) out[cls] += bytes;
  }
  return out;
}

}  // namespace nest
