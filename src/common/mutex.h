// nest::Mutex / nest::SharedMutex: the only lock types NeST code may use
// (scripts/lint.sh rejects naked std::mutex outside this header).
//
// Each wrapper carries:
//   * the Clang thread-safety CAPABILITY attribute, so members declared
//     GUARDED_BY(mu_) and helpers declared REQUIRES(mu_) are checked at
//     compile time under the `analyze` preset;
//   * a lockrank::Rank, so acquisitions are checked at run time against
//     the canonical lock order when the detector is enabled.
//
// Use the RAII guards (MutexLock / ReaderLock / WriterLock) rather than
// calling lock()/unlock() directly; they carry the SCOPED_CAPABILITY
// annotations the analysis needs. Condition waits go through nest::CondVar
// (a condition_variable_any over MutexLock), which keeps the rank stack
// exact across the unlock/relock inside wait().
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lockrank.h"
#include "common/thread_annotations.h"

namespace nest {

class CAPABILITY("mutex") Mutex {
 public:
  // `name` labels the lock in lock-rank diagnostics; static storage only.
  explicit Mutex(lockrank::Rank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    lockrank::check_acquire(rank_, name_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    mu_.unlock();
    lockrank::note_released(rank_);
  }

  lockrank::Rank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::mutex mu_;
  const lockrank::Rank rank_;
  const char* const name_;
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(lockrank::Rank rank, const char* name) noexcept
      : rank_(rank), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    lockrank::check_acquire(rank_, name_);
    mu_.lock();
  }
  void unlock() RELEASE() {
    mu_.unlock();
    lockrank::note_released(rank_);
  }
  // Shared (reader) side: rank rules are identical — readers and writers
  // deadlock the same way when ordered inconsistently.
  void lock_shared() ACQUIRE_SHARED() {
    lockrank::check_acquire(rank_, name_);
    mu_.lock_shared();
  }
  void unlock_shared() RELEASE_SHARED() {
    mu_.unlock_shared();
    lockrank::note_released(rank_);
  }

  lockrank::Rank rank() const noexcept { return rank_; }
  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex mu_;
  const lockrank::Rank rank_;
  const char* const name_;
};

// Scoped exclusive lock; re-lockable (std::unique_lock-style) so CondVar
// can release/reacquire it inside wait().
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& m) ACQUIRE(m) : m_(&m) { m_->lock(); }
  ~MutexLock() RELEASE() {
    if (owns_) m_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() ACQUIRE() {
    m_->lock();
    owns_ = true;
  }
  void unlock() RELEASE() {
    m_->unlock();
    owns_ = false;
  }
  bool owns_lock() const noexcept { return owns_; }

 private:
  Mutex* m_;
  bool owns_ = true;
};

// Scoped shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& m) ACQUIRE_SHARED(m) : m_(&m) {
    m_->lock_shared();
  }
  ~ReaderLock() RELEASE() { m_->unlock_shared(); }
  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* m_;
};

// Scoped exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& m) ACQUIRE(m) : m_(&m) { m_->lock(); }
  ~WriterLock() RELEASE() { m_->unlock(); }
  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* m_;
};

// Condition variable for nest::Mutex. Waits take the MutexLock guard, so
// the wait's internal unlock/relock flows through the rank bookkeeping
// (the thread's held-rank stack is exact while it sleeps).
class CondVar {
 public:
  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  void wait(MutexLock& lk) { cv_.wait(lk); }
  template <typename Pred>
  void wait(MutexLock& lk, Pred pred) {
    cv_.wait(lk, std::move(pred));
  }
  template <typename Rep, typename Period, typename Pred>
  bool wait_for(MutexLock& lk, const std::chrono::duration<Rep, Period>& d,
                Pred pred) {
    return cv_.wait_for(lk, d, std::move(pred));
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace nest
