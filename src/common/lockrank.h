// Runtime lock-rank deadlock detector (the dynamic half of the lock
// discipline; the static half is common/thread_annotations.h).
//
// Every nest::Mutex / nest::SharedMutex carries a Rank from the registry
// below — one rank per subsystem lock, ordered by the canonical
// acquisition order (outermost first). A thread may only acquire a lock
// whose rank is STRICTLY GREATER than every rank it already holds:
//
//   * acquiring a lower rank while holding a higher one is a lock-order
//     inversion — two threads doing it in opposite orders deadlock, a
//     cycle TSan's happens-before model cannot see (it needs the deadly
//     schedule; the rank check fires on EITHER order the first time it
//     runs);
//   * acquiring a rank already held (same lock or a sibling at the same
//     rank) is rejected too: std::mutex self-lock is UB, and two
//     same-rank locks have no defined order between them.
//
// On violation the detector prints the held-lock stack (each entry with
// the backtrace captured when it was acquired) plus the current backtrace,
// then aborts. Enabled by default in !NDEBUG builds; NEST_LOCKRANK=1/0 in
// the environment overrides (tier1.sh runs the plain test leg with it on).
// Disabled cost: one relaxed atomic load per acquire/release.
#pragma once

#include <cstdint>

namespace nest::lockrank {

// Canonical lock order, outermost (acquired first) to innermost. The
// numeric gaps leave room for future locks without renumbering. A thread
// holding rank R may only acquire ranks > R. docs/static-analysis.md
// documents the reasoning per edge; the load-bearing nestings today:
//
//   storage_meta < storage_file   (stat/create touch file data under mu_)
//   storage_meta < journal        (seal_batch appends under mu_)
//   journal < fault_point         (journal I/O failpoints fire under mu_)
//   cluster_membership < storage_meta/journal  (membership before journal,
//       never inverse: the heartbeat/status paths read the peer table and
//       then consult storage/journal state; the apply path must never hold
//       journal state while taking membership)
//   storage_meta < cluster_ship   (the replication hook enqueues sealed
//       batches under storage mu_)
//   hsm_state < storage_meta      (the recall executor election holds the
//       in-flight table while consulting residency; storage calls under
//       hsm_state are legal, the inverse is not)
//   transfer_sched < transfer_shard   (drain empties shards under sched)
//   dispatcher_load < obs_load    (observe_load samples trackers)
//   fault_registry < fault_point  (fault-list reads specs per point)
//   anything < metrics_stripe/logger  (leaf utilities, used everywhere)
enum class Rank : int {
  server_conn = 10,          // NestServer connection registry
  jbos_conn = 12,            // jbos::MiniServer connection registry
  kangaroo_spool = 14,       // KangarooMover spool queue
  nfs_handles = 16,          // NFS file-handle id maps
  dispatcher_pub = 18,       // Dispatcher publisher thread control
  hsm_worker = 19,           // HsmManager background worker control
  executor_queue = 20,       // EventLoop work queue
  executor_throttle = 22,    // TransferExecutor token bucket
  dispatcher_load = 24,      // Dispatcher rolling load trackers
  transfer_admission = 25,   // AdmissionController shed/outstanding state
  discovery_collector = 26,  // discovery::Collector ad table
  cluster_membership = 27,   // cluster::PeerTable peer/liveness view
  cluster_selector = 28,     // cluster::ReplicaSelector EWMA state
  hsm_state = 29,            // hsm::RecallManager in-flight recall table
  storage_meta = 30,         // StorageManager lot/ACL/quota state
  storage_file = 34,         // MemFs per-file payload (shared)
  cluster_ship = 36,         // cluster replication ship queue + cursors
  journal = 38,              // journal::Journal append/commit state
  transfer_sched = 42,       // TransferCore scheduler + drain
  transfer_shard = 44,       // TransferCore per-class op shards
  transfer_registry = 46,    // TransferCore request registry
  transfer_cache = 48,       // TransferCore gray-box cache model
  transfer_selector = 50,    // TransferCore adaptive model selector
  obs_load = 60,             // obs::RollingRate / obs::LoadAverage
  obs_rings = 62,            // TraceBuffer ring registry
  obs_live = 64,             // trace live-buffer id registry
  fault_registry = 70,       // fault::Registry point table
  fault_point = 72,          // fault::FailPoint action state
  metrics_stripe = 80,       // BandwidthMeter / LatencyRecorder stripes
  logger = 90,               // Logger output lock (innermost: any code logs)
};

// Human-readable rank name for diagnostics.
const char* rank_name(Rank r) noexcept;

// Whether checking is active. Resolution order: set_enabled() override,
// else $NEST_LOCKRANK (read once), else on iff NDEBUG is not defined.
bool enabled() noexcept;
void set_enabled(bool on) noexcept;  // test hook / programmatic override

// Called by the nest::Mutex wrappers. `what` is the lock's display name
// and must point at static storage. check_acquire runs BEFORE blocking on
// the underlying mutex (an inversion is reported even on schedules where
// the deadlock does not materialize); note_released runs after unlock.
void check_acquire(Rank r, const char* what) noexcept;
void note_released(Rank r) noexcept;

// Number of locks the calling thread currently holds (test hook).
int held_count() noexcept;

}  // namespace nest::lockrank
