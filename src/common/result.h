// Result<T>: lightweight expected-like return type used across NeST.
//
// std::expected is C++23; this project targets C++20, so we carry a small
// purpose-built variant. Error payloads are an Errc plus a human-readable
// message so protocol handlers can map failures onto wire status codes.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

// Marks a function whose Errc/Status/Result return value is part of the
// error-path contract: callers must consume it, and every preset builds
// with -Werror=unused-result so a dropped return is a compile error. The
// Result/Status class types are [[nodiscard]] themselves, but Errc is a
// plain enum, and the per-function marker keeps the contract visible at
// the declaration; nest-lint's `nodiscard` rule rejects any src/ header
// function returning one of the three without it. Genuinely
// fire-and-forget call sites use `(void)` with a same-line reason
// comment (nest-lint's `voidcast` rule counts and caps those).
#define NEST_NODISCARD [[nodiscard]]

namespace nest {

// Error categories shared by every NeST component. Protocol handlers map
// these onto their wire protocol's status codes (HTTP 404, NFSERR_NOENT, ...).
enum class Errc {
  ok = 0,
  not_found,
  exists,
  not_dir,
  is_dir,
  permission_denied,
  not_authenticated,
  no_space,          // lot/quota capacity exhausted
  lot_expired,
  lot_unknown,
  invalid_argument,
  protocol_error,    // malformed wire request
  io_error,
  would_block,
  connection_closed,
  timed_out,
  unsupported,
  busy,
  staging,           // data is on the cold tier; recall in progress, retry
  internal,
};

// Short stable identifier, suitable for logs and wire error strings.
const char* errc_name(Errc e) noexcept;

struct Error {
  Errc code = Errc::internal;
  std::string message;

  std::string to_string() const {
    return message.empty() ? std::string(errc_name(code))
                           : std::string(errc_name(code)) + ": " + message;
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error err) : v_(std::move(err)) {}  // NOLINT(google-explicit-constructor)
  Result(Errc code, std::string msg = {}) : v_(Error{code, std::move(msg)}) {}

  bool ok() const noexcept { return std::holds_alternative<T>(v_); }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }
  T value_or(T alt) const& { return ok() ? std::get<T>(v_) : std::move(alt); }

  const Error& error() const& {
    assert(!ok());
    return std::get<Error>(v_);
  }
  Errc code() const noexcept { return ok() ? Errc::ok : error().code; }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, Error> v_;
};

// Specialization-free void flavor.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error err)  // NOLINT(google-explicit-constructor)
      : err_(std::move(err)), fail_(true) {}
  Status(Errc code, std::string msg = {})
      : err_{code, std::move(msg)}, fail_(code != Errc::ok) {}

  static Status success() { return {}; }

  bool ok() const noexcept { return !fail_; }
  explicit operator bool() const noexcept { return ok(); }
  const Error& error() const {
    assert(fail_);
    return err_;
  }
  Errc code() const noexcept { return fail_ ? err_.code : Errc::ok; }
  std::string to_string() const { return fail_ ? err_.to_string() : "ok"; }

 private:
  Error err_;
  bool fail_ = false;
};

}  // namespace nest
