// Clock abstraction. All NeST policy code (lots, schedulers, adaptive
// concurrency selection) takes a Clock& so the same logic runs unmodified
// against wall-clock time in the real server and virtual time in the
// discrete-event simulator.
#pragma once

#include <chrono>
#include <cstdint>

namespace nest {

// Simulation/wall time in nanoseconds. Signed so durations subtract cleanly.
using Nanos = std::int64_t;

constexpr Nanos kMicrosecond = 1'000;
constexpr Nanos kMillisecond = 1'000'000;
constexpr Nanos kSecond = 1'000'000'000;

constexpr double to_seconds(Nanos t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr Nanos from_seconds(double s) noexcept {
  return static_cast<Nanos>(s * static_cast<double>(kSecond));
}

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Nanos now() const = 0;
};

// Monotonic wall clock for the real appliance.
class RealClock final : public Clock {
 public:
  Nanos now() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  static RealClock& instance() {
    static RealClock c;
    return c;
  }
};

// Manually advanced clock for unit tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(Nanos start = 0) : t_(start) {}
  Nanos now() const override { return t_; }
  void advance(Nanos d) { t_ += d; }
  void set(Nanos t) { t_ = t; }

 private:
  Nanos t_;
};

}  // namespace nest
