#include "common/log.h"

#include <chrono>
#include <string>

namespace nest {
namespace {

const char* level_tag(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void Logger::write(LogLevel lvl, std::string_view component,
                   std::string_view msg) {
  if (lvl < level_) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  MutexLock lock(mu_);
  std::fprintf(stderr, "[%lld.%03lld] %s %.*s: %.*s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), level_tag(lvl),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

void Logger::writef(LogLevel lvl, const char* component, const char* fmt,
                    ...) {
  if (lvl < level_) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  write(lvl, component, buf);
}

}  // namespace nest
