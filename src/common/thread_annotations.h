// Clang Thread Safety Analysis attribute shims.
//
// The macros below expand to Clang's -Wthread-safety attributes when the
// compiler supports them and to nothing elsewhere (GCC builds see plain
// C++). They are the *compile-time* half of NeST's lock discipline:
//
//   * data members protected by a lock are declared GUARDED_BY(mu_);
//   * private helpers that assume the lock is held (the `_locked()`
//     convention) are declared REQUIRES(mu_);
//   * public entry points that must NOT be called with the lock held
//     (they take it themselves) may be declared EXCLUDES(mu_).
//
// The `analyze` CMake preset builds the whole tree with clang and
// -Wthread-safety -Werror, turning any unguarded access into a build
// failure. The runtime half — lock-rank deadlock detection — lives in
// common/lockrank.h and is wired into the nest::Mutex wrappers
// (common/mutex.h), which are the only place std::mutex may appear
// (enforced by scripts/lint.sh's nest-lint pass).
//
// Conventions and the canonical lock-rank order: docs/static-analysis.md.
#pragma once

#if defined(__clang__)
#define NEST_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NEST_THREAD_ANNOTATION(x)  // no-op for non-Clang compilers
#endif

// Type attributes -----------------------------------------------------------

// Marks a class as a lockable capability ("mutex" by convention).
#define CAPABILITY(x) NEST_THREAD_ANNOTATION(capability(x))

// Marks an RAII class whose constructor acquires and destructor releases.
#define SCOPED_CAPABILITY NEST_THREAD_ANNOTATION(scoped_lockable)

// Data member attributes ----------------------------------------------------

// Reads and writes of the member require holding `x` (exclusively for
// writes, at least shared for reads).
#define GUARDED_BY(x) NEST_THREAD_ANNOTATION(guarded_by(x))

// As GUARDED_BY, but for the data *pointed to* by a pointer/smart-pointer
// member (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) NEST_THREAD_ANNOTATION(pt_guarded_by(x))

// Function attributes -------------------------------------------------------

// The function acquires the capability and holds it on return.
#define ACQUIRE(...) NEST_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  NEST_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

// The function releases the capability (which must be held on entry).
#define RELEASE(...) NEST_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  NEST_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

// The function acquires the capability iff it returns `b`.
#define TRY_ACQUIRE(b, ...) \
  NEST_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

// Caller must hold the capability (exclusively / at least shared).
#define REQUIRES(...) \
  NEST_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  NEST_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Caller must NOT hold the capability (the function takes it itself, or
// would deadlock / invert the rank order if it were already held).
#define EXCLUDES(...) NEST_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// The function returns a reference to the named capability.
#define RETURN_CAPABILITY(x) NEST_THREAD_ANNOTATION(lock_returned(x))

// Runtime assertion that the calling thread holds the capability; tells
// the analysis to treat it as held from here on. This is the preferred
// "escape" for code the analysis cannot follow (e.g. a lock proven held
// by an ownership protocol) — it keeps checking downstream accesses,
// unlike NO_THREAD_SAFETY_ANALYSIS which turns the function off entirely.
#define ASSERT_CAPABILITY(x) NEST_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  NEST_THREAD_ANNOTATION(assert_shared_capability(x))

// Last resort: disables the analysis for one function. Each use must carry
// a comment justifying why the analysis cannot model the code; the
// acceptance budget is <= 3 uses in the whole tree.
#define NO_THREAD_SAFETY_ANALYSIS \
  NEST_THREAD_ANNOTATION(no_thread_safety_analysis)
