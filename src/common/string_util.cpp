#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace nest {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool starts_with_icase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return std::equal(prefix.begin(), prefix.end(), s.begin(),
                    [](char a, char b) {
                      return std::tolower(static_cast<unsigned char>(a)) ==
                             std::tolower(static_cast<unsigned char>(b));
                    });
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end || s.empty()) return std::nullopt;
  return v;
}

std::string join_path(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  if (out.back() == '/' && b.front() == '/') {
    out.append(b.substr(1));
  } else if (out.back() != '/' && b.front() != '/') {
    out.push_back('/');
    out.append(b);
  } else {
    out.append(b);
  }
  return out;
}

std::string normalize_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    std::size_t start = i;
    while (i < path.size() && path[i] != '/') ++i;
    if (i == start) continue;
    std::string_view part = path.substr(start, i - start);
    if (part == ".") continue;
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
      continue;  // '..' at root stays at root: clients cannot escape
    }
    parts.push_back(part);
  }
  std::string out = "/";
  for (std::size_t k = 0; k < parts.size(); ++k) {
    out.append(parts[k]);
    if (k + 1 < parts.size()) out.push_back('/');
  }
  return out;
}

std::string parent_path(std::string_view path) {
  const std::string norm = normalize_path(path);
  const std::size_t pos = norm.rfind('/');
  if (pos == 0) return "/";
  return norm.substr(0, pos);
}

std::string basename_of(std::string_view path) {
  const std::string norm = normalize_path(path);
  if (norm == "/") return "";
  return norm.substr(norm.rfind('/') + 1);
}

}  // namespace nest
