// Measurement helpers shared by the benchmark harnesses and the transfer
// accounting hot path: per-class byte counters, latency recorders, and
// Jain's fairness index exactly as defined in the paper (footnote 2 of
// Section 7.2).
//
// Thread-safety contract
// ----------------------
// BandwidthMeter and LatencyRecorder are mutated from concurrent
// connection threads in real mode (TransferCore charges bytes and records
// latencies while other transfers are in flight), so both are internally
// synchronized:
//   * writes (add / record) go to a stripe selected by the calling
//     thread's id — threads on different stripes never contend, and a
//     stripe's lock is only ever held for a map/vector update;
//   * reads (total_mbps, per_class, mean_ms, ...) aggregate across all
//     stripes under the stripe locks and may run concurrently with
//     writers; they see a consistent per-stripe snapshot, which is exact
//     once writers have quiesced (how the benches use them);
//   * the running totals are plain atomics, so total-byte reads never
//     take any lock.
// set_window is the exception: it is a benchmark-harness call, expected
// from a single thread with no concurrent rate reads.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"

namespace nest {

// Jain's fairness index over per-component ratios X_i = delivered/desired.
// 1.0 is a perfectly proportional allocation.
double jain_fairness(const std::vector<double>& ratios);

// Stripe count for the meters below; a small power of two well above the
// core count keeps same-stripe collisions rare without bloating snapshots.
inline constexpr int kMetricStripes = 16;

// Index of the stripe the calling thread writes to.
int metric_stripe_of_thread();

// Records request latencies and reports mean / percentiles. Thread-safe
// per the contract above.
//
// With the default capacity of 0 every sample is retained (exact
// percentiles over the whole run — what the benches want). A non-zero
// `max_samples_per_stripe` turns each stripe into a ring that overwrites
// its oldest samples, bounding memory and snapshot cost no matter how
// many requests churn through — the long-running-server configuration,
// where monitoring surfaces poll mean/percentiles forever. count() and
// mean_ms() always cover *every* sample recorded (running atomics, O(1));
// percentiles cover the retained window.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;
  explicit LatencyRecorder(std::size_t max_samples_per_stripe)
      : cap_(max_samples_per_stripe) {}

  void record(Nanos latency);
  std::size_t count() const {
    return static_cast<std::size_t>(count_.load(std::memory_order_relaxed));
  }
  double mean_ms() const;
  double percentile_ms(double p) const;  // p in [0,100]
  // Samples currently retained for percentile queries (= count() when
  // unbounded; bounded by stripes * capacity otherwise).
  std::size_t retained() const;

 private:
  struct alignas(64) Stripe {
    mutable Mutex mu{lockrank::Rank::metrics_stripe, "latency.stripe"};
    std::vector<Nanos> samples GUARDED_BY(mu);
    std::size_t next GUARDED_BY(mu) = 0;  // ring cursor (bounded mode)
  };
  std::vector<Nanos> snapshot() const;
  std::size_t cap_ = 0;  // per-stripe sample cap; 0 = unbounded
  std::array<Stripe, kMetricStripes> stripes_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};  // nanoseconds
};

// Fixed-size log2-bucketed latency histogram. Unlike LatencyRecorder it
// never allocates after construction and both record() and snapshot() are
// wait-free (plain atomic counters), so it is safe on the block-transfer
// hot path and inside signal-adjacent code.
//
// Bucket 0 holds everything below 1 µs (and non-positive samples); bucket
// b >= 1 holds [1024 << (b-1), 1024 << b) ns, i.e. buckets double from
// 1 µs up. The last bucket absorbs the tail.
//
// snapshot() derives the total count from the bucket sum it read, so the
// returned object is internally consistent even while writers race; the
// sum (and thus the mean) may trail by in-flight records.
class Histogram {
 public:
  static constexpr int kBuckets = 48;
  static constexpr Nanos kBucket0Ceiling = 1024;  // ~1 µs

  struct Snapshot {
    std::array<std::int64_t, kBuckets> buckets{};
    std::int64_t count = 0;
    std::int64_t sum = 0;  // nanoseconds
    double mean_ms() const;
    // Upper bound (ms) of the bucket containing the p-th percentile
    // sample, p in [0,100]; 0 when empty.
    double percentile_ms(double p) const;
  };

  void record(Nanos v);
  Snapshot snapshot() const;
  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double mean_ms() const { return snapshot().mean_ms(); }
  double percentile_ms(double p) const { return snapshot().percentile_ms(p); }
  // Test hook: not linearizable against concurrent writers.
  void reset();

  // Bucket index a sample lands in, and the [floor, ceiling) range of a
  // bucket in nanoseconds (exposed for bucket-math tests and JSON export).
  static int bucket_of(Nanos v);
  static Nanos bucket_floor(int b);
  static Nanos bucket_ceiling(int b);

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
};

// Per-class byte counter over a measurement window. Thread-safe per the
// contract above.
class BandwidthMeter {
 public:
  void add(const std::string& cls, std::int64_t bytes);
  void set_window(Nanos start, Nanos end) {
    start_ = start;
    end_ = end;
  }
  std::int64_t total_bytes() const {
    return total_.load(std::memory_order_relaxed);
  }
  double total_mbps() const;
  double class_mbps(const std::string& cls) const;
  // Aggregated snapshot across stripes (by value: the per-stripe maps keep
  // changing underneath).
  std::map<std::string, std::int64_t> per_class() const;

 private:
  struct alignas(64) Stripe {
    mutable Mutex mu{lockrank::Rank::metrics_stripe, "bandwidth.stripe"};
    std::map<std::string, std::int64_t> bytes GUARDED_BY(mu);
  };
  std::array<Stripe, kMetricStripes> stripes_;
  std::atomic<std::int64_t> total_{0};
  Nanos start_ = 0;
  Nanos end_ = 0;
};

}  // namespace nest
