// Measurement helpers shared by the benchmark harnesses: per-class byte
// counters, latency recorders, and Jain's fairness index exactly as defined
// in the paper (footnote 2 of Section 7.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"

namespace nest {

// Jain's fairness index over per-component ratios X_i = delivered/desired.
// 1.0 is a perfectly proportional allocation.
double jain_fairness(const std::vector<double>& ratios);

// Records request latencies and reports mean / percentiles.
class LatencyRecorder {
 public:
  void record(Nanos latency) { samples_.push_back(latency); }
  std::size_t count() const { return samples_.size(); }
  double mean_ms() const;
  double percentile_ms(double p) const;  // p in [0,100]

 private:
  mutable std::vector<Nanos> samples_;
};

// Per-class byte counter over a measurement window.
class BandwidthMeter {
 public:
  void add(const std::string& cls, std::int64_t bytes) {
    bytes_[cls] += bytes;
    total_ += bytes;
  }
  void set_window(Nanos start, Nanos end) {
    start_ = start;
    end_ = end;
  }
  double total_mbps() const;
  double class_mbps(const std::string& cls) const;
  const std::map<std::string, std::int64_t>& per_class() const {
    return bytes_;
  }

 private:
  std::map<std::string, std::int64_t> bytes_;
  std::int64_t total_ = 0;
  Nanos start_ = 0;
  Nanos end_ = 0;
};

}  // namespace nest
