// Seeded RNG wrapper. Every stochastic component (workload generators,
// adaptive probing jitter) draws from an explicitly seeded Rng so benchmark
// runs are reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace nest {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : eng_(seed) {}

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(eng_);
  }
  double uniform_real(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(eng_);
  }
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(eng_); }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace nest
