#include "common/config.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "common/units.h"

namespace nest {

Result<Config> Config::parse(std::string_view text) {
  Config cfg;
  std::size_t lineno = 0;
  for (const auto& raw_line : split(text, '\n')) {
    ++lineno;
    std::string_view line = raw_line;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      return Error{Errc::invalid_argument,
                   "config line " + std::to_string(lineno) + ": missing '='"};
    }
    auto key = std::string(trim(line.substr(0, eq)));
    auto value = std::string(trim(line.substr(eq + 1)));
    if (key.empty()) {
      return Error{Errc::invalid_argument,
                   "config line " + std::to_string(lineno) + ": empty key"};
    }
    cfg.entries_[std::move(key)] = std::move(value);
  }
  return cfg;
}

Result<Config> Config::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Error{Errc::not_found, "cannot open config: " + path};
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void Config::set(std::string key, std::string value) {
  entries_[std::move(key)] = std::move(value);
}

bool Config::has(const std::string& key) const {
  return entries_.count(key) != 0;
}

std::string Config::get_string(const std::string& key,
                               std::string default_value) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? default_value : it->second;
}

std::int64_t Config::get_int(const std::string& key,
                             std::int64_t default_value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  return parse_int(it->second).value_or(default_value);
}

bool Config::get_bool(const std::string& key, bool default_value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  const std::string v = to_lower(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  return default_value;
}

std::int64_t Config::get_size(const std::string& key,
                              std::int64_t default_value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  std::string_view v = trim(it->second);
  if (v.empty()) return default_value;
  std::int64_t mult = 1;
  switch (v.back()) {
    case 'K': case 'k': mult = kKB; v.remove_suffix(1); break;
    case 'M': case 'm': mult = kMB; v.remove_suffix(1); break;
    case 'G': case 'g': mult = kMB * 1000; v.remove_suffix(1); break;
    default: break;
  }
  const auto n = parse_int(v);
  return n ? *n * mult : default_value;
}

Nanos Config::get_duration(const std::string& key,
                           Nanos default_value) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return default_value;
  std::string_view v = trim(it->second);
  if (v.empty()) return default_value;
  Nanos mult = kMillisecond;  // bare numbers are milliseconds
  if (v.size() >= 2 && v.substr(v.size() - 2) == "ns") {
    mult = 1;
    v.remove_suffix(2);
  } else if (v.size() >= 2 && v.substr(v.size() - 2) == "us") {
    mult = kMicrosecond;
    v.remove_suffix(2);
  } else if (v.size() >= 2 && v.substr(v.size() - 2) == "ms") {
    mult = kMillisecond;
    v.remove_suffix(2);
  } else if (v.size() >= 1 && v.back() == 's') {
    mult = kSecond;
    v.remove_suffix(1);
  }
  const auto n = parse_int(trim(v));
  return n ? *n * mult : default_value;
}

}  // namespace nest
