#include "common/lockrank.h"

#include <execinfo.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nest::lockrank {

namespace {

constexpr int kMaxHeld = 32;    // deepest legal chain is far shorter
constexpr int kMaxFrames = 24;  // acquire-site backtrace depth

struct Held {
  Rank rank;
  const char* what;
  void* frames[kMaxFrames];
  int frame_count;
};

struct ThreadStack {
  Held held[kMaxHeld];
  int n = 0;
};

ThreadStack& stack() {
  thread_local ThreadStack s;
  return s;
}

// -1 = resolve from env/build, 0 = off, 1 = on.
std::atomic<int> g_state{-1};

int resolve_default() {
  if (const char* env = std::getenv("NEST_LOCKRANK")) {
    return (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0) ? 0
                                                                        : 1;
  }
#ifdef NDEBUG
  return 0;
#else
  return 1;
#endif
}

void print_backtrace(void* const* frames, int n) {
  if (n <= 0) {
    // nest-lint: allow(syscalls): signal-safe abort diagnostics to stderr.
    (void)!::write(STDERR_FILENO, "    (no backtrace)\n", 19);
    return;
  }
  ::backtrace_symbols_fd(frames, n, STDERR_FILENO);
}

[[noreturn]] void violation(const char* kind, Rank acquiring,
                            const char* what) {
  // stderr only: this runs on arbitrary threads holding arbitrary locks,
  // so it must not re-enter the logger (rank `logger` may be below us).
  std::fprintf(stderr,
               "\n=== lock-rank violation: %s ===\n"
               "thread attempted to acquire '%s' (rank %d %s) while "
               "holding:\n",
               kind, what, static_cast<int>(acquiring), rank_name(acquiring));
  ThreadStack& s = stack();
  for (int i = s.n - 1; i >= 0; --i) {
    std::fprintf(stderr, "  [%d] '%s' (rank %d %s), acquired at:\n", i,
                 s.held[i].what, static_cast<int>(s.held[i].rank),
                 rank_name(s.held[i].rank));
    print_backtrace(s.held[i].frames, s.held[i].frame_count);
  }
  std::fprintf(stderr, "acquisition attempted at:\n");
  void* here[kMaxFrames];
  const int n = ::backtrace(here, kMaxFrames);
  print_backtrace(here, n);
  std::fprintf(stderr,
               "canonical order: common/lockrank.h / "
               "docs/static-analysis.md\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace

const char* rank_name(Rank r) noexcept {
  switch (r) {
    case Rank::server_conn: return "server_conn";
    case Rank::jbos_conn: return "jbos_conn";
    case Rank::kangaroo_spool: return "kangaroo_spool";
    case Rank::nfs_handles: return "nfs_handles";
    case Rank::dispatcher_pub: return "dispatcher_pub";
    case Rank::hsm_worker: return "hsm_worker";
    case Rank::executor_queue: return "executor_queue";
    case Rank::executor_throttle: return "executor_throttle";
    case Rank::dispatcher_load: return "dispatcher_load";
    case Rank::transfer_admission: return "transfer_admission";
    case Rank::discovery_collector: return "discovery_collector";
    case Rank::cluster_membership: return "cluster_membership";
    case Rank::cluster_selector: return "cluster_selector";
    case Rank::hsm_state: return "hsm_state";
    case Rank::storage_meta: return "storage_meta";
    case Rank::storage_file: return "storage_file";
    case Rank::cluster_ship: return "cluster_ship";
    case Rank::journal: return "journal";
    case Rank::transfer_sched: return "transfer_sched";
    case Rank::transfer_shard: return "transfer_shard";
    case Rank::transfer_registry: return "transfer_registry";
    case Rank::transfer_cache: return "transfer_cache";
    case Rank::transfer_selector: return "transfer_selector";
    case Rank::obs_load: return "obs_load";
    case Rank::obs_rings: return "obs_rings";
    case Rank::obs_live: return "obs_live";
    case Rank::fault_registry: return "fault_registry";
    case Rank::fault_point: return "fault_point";
    case Rank::metrics_stripe: return "metrics_stripe";
    case Rank::logger: return "logger";
  }
  return "?";
}

bool enabled() noexcept {
  int v = g_state.load(std::memory_order_relaxed);
  if (v < 0) {
    v = resolve_default();
    g_state.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) noexcept {
  g_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

void check_acquire(Rank r, const char* what) noexcept {
  if (!enabled()) return;
  ThreadStack& s = stack();
  if (s.n > 0) {
    const Rank top = s.held[s.n - 1].rank;
    if (r == top) violation("same-rank re-entry", r, what);
    if (r < top) violation("rank inversion", r, what);
    // Ranks below the top but not held would already have tripped when
    // the deeper lock was acquired; comparing against the top suffices
    // because the held stack is strictly increasing by construction.
  }
  if (s.n < kMaxHeld) {
    Held& h = s.held[s.n];
    h.rank = r;
    h.what = what;
    h.frame_count = ::backtrace(h.frames, kMaxFrames);
    ++s.n;
  }
}

void note_released(Rank r) noexcept {
  if (!enabled()) return;
  ThreadStack& s = stack();
  // Almost always LIFO; scan from the innermost for the unlock-out-of-
  // order cases (std::unique_lock-style juggling, enable/disable races).
  for (int i = s.n - 1; i >= 0; --i) {
    if (s.held[i].rank == r) {
      for (int j = i; j < s.n - 1; ++j) s.held[j] = s.held[j + 1];
      --s.n;
      return;
    }
  }
}

int held_count() noexcept { return stack().n; }

}  // namespace nest::lockrank
