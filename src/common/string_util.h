// Small string helpers shared by protocol parsers and config loading.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nest {

// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

bool starts_with_icase(std::string_view s, std::string_view prefix);

std::optional<std::int64_t> parse_int(std::string_view s);

// Join path components, collapsing duplicate '/'.
std::string join_path(std::string_view a, std::string_view b);

// Normalize an absolute virtual path: resolves '.', '..' (never escaping
// the root), collapses '//', guarantees a leading '/'. Used by every
// protocol handler to sandbox client-supplied paths.
std::string normalize_path(std::string_view path);

// Parent directory of a normalized path ("/" for top-level entries).
std::string parent_path(std::string_view path);

// Final component of a normalized path ("" for "/").
std::string basename_of(std::string_view path);

}  // namespace nest
