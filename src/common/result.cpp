#include "common/result.h"

namespace nest {

const char* errc_name(Errc e) noexcept {
  switch (e) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::exists: return "exists";
    case Errc::not_dir: return "not_dir";
    case Errc::is_dir: return "is_dir";
    case Errc::permission_denied: return "permission_denied";
    case Errc::not_authenticated: return "not_authenticated";
    case Errc::no_space: return "no_space";
    case Errc::lot_expired: return "lot_expired";
    case Errc::lot_unknown: return "lot_unknown";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::protocol_error: return "protocol_error";
    case Errc::io_error: return "io_error";
    case Errc::would_block: return "would_block";
    case Errc::connection_closed: return "connection_closed";
    case Errc::timed_out: return "timed_out";
    case Errc::unsupported: return "unsupported";
    case Errc::busy: return "busy";
    case Errc::staging: return "staging";
    case Errc::internal: return "internal";
  }
  return "unknown";
}

}  // namespace nest
