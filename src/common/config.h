// key = value configuration, in the spirit of NeST's nest.conf. Supports
// '#' comments, string/int/bool/size lookups with defaults, and size
// suffixes (K/M/G, decimal) for capacities.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/result.h"

namespace nest {

class Config {
 public:
  Config() = default;

  NEST_NODISCARD static Result<Config> parse(std::string_view text);
  NEST_NODISCARD static Result<Config> load_file(const std::string& path);

  void set(std::string key, std::string value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         std::string default_value = {}) const;
  std::int64_t get_int(const std::string& key,
                       std::int64_t default_value = 0) const;
  bool get_bool(const std::string& key, bool default_value = false) const;
  // Accepts raw byte counts or suffixed values: "64K", "10M", "2G".
  std::int64_t get_size(const std::string& key,
                        std::int64_t default_value = 0) const;
  // Durations with ns/us/ms/s suffixes ("5ms", "250us", "2s"); a bare
  // number means milliseconds.
  Nanos get_duration(const std::string& key, Nanos default_value = 0) const;

  const std::map<std::string, std::string>& entries() const {
    return entries_;
  }

 private:
  std::map<std::string, std::string> entries_;
};

}  // namespace nest
