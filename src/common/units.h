// Byte-size units and formatting helpers. The paper reports bandwidth in
// MB/s (decimal megabytes, 2002 convention); we follow that for all
// benchmark output so numbers compare directly against the figures.
#pragma once

#include <cstdint>
#include <string>

namespace nest {

constexpr std::int64_t kKB = 1'000;
constexpr std::int64_t kMB = 1'000'000;
constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * 1024;

// Bandwidth in MB/s given bytes moved over a nanosecond interval.
double mb_per_sec(std::int64_t bytes, std::int64_t nanos);

std::string format_bytes(std::int64_t bytes);

}  // namespace nest
