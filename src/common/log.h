// Minimal leveled logger. NeST is a long-running daemon; components log
// through here rather than writing to stderr directly so a server embedding
// the library can redirect or silence output. printf-style formatting
// (GCC 12 ships no <format>).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string_view>

#include "common/mutex.h"

namespace nest {

enum class LogLevel { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

class Logger {
 public:
  static Logger& instance() {
    static Logger l;
    return l;
  }

  void set_level(LogLevel lvl) noexcept { level_ = lvl; }
  LogLevel level() const noexcept { return level_; }

  void write(LogLevel lvl, std::string_view component, std::string_view msg);

  __attribute__((format(printf, 4, 5))) void writef(LogLevel lvl,
                                                    const char* component,
                                                    const char* fmt, ...);

 private:
  LogLevel level_ = LogLevel::warn;
  // Innermost rank: components log while holding any subsystem lock.
  Mutex mu_{lockrank::Rank::logger, "log.mu"};
};

#define NEST_LOG_DEBUG(component, ...)                                     \
  ::nest::Logger::instance().writef(::nest::LogLevel::debug, component,    \
                                    __VA_ARGS__)
#define NEST_LOG_INFO(component, ...)                                      \
  ::nest::Logger::instance().writef(::nest::LogLevel::info, component,     \
                                    __VA_ARGS__)
#define NEST_LOG_WARN(component, ...)                                      \
  ::nest::Logger::instance().writef(::nest::LogLevel::warn, component,     \
                                    __VA_ARGS__)
#define NEST_LOG_ERROR(component, ...)                                     \
  ::nest::Logger::instance().writef(::nest::LogLevel::error, component,    \
                                    __VA_ARGS__)

}  // namespace nest
