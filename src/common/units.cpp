#include "common/units.h"

#include <cstdio>

namespace nest {

double mb_per_sec(std::int64_t bytes, std::int64_t nanos) {
  if (nanos <= 0) return 0.0;
  return (static_cast<double>(bytes) / 1e6) /
         (static_cast<double>(nanos) / 1e9);
}

std::string format_bytes(std::int64_t bytes) {
  char buf[64];
  if (bytes >= kMB) {
    std::snprintf(buf, sizeof buf, "%.1f MB",
                  static_cast<double>(bytes) / static_cast<double>(kMB));
  } else if (bytes >= kKB) {
    std::snprintf(buf, sizeof buf, "%.1f KB",
                  static_cast<double>(bytes) / static_cast<double>(kKB));
  } else {
    std::snprintf(buf, sizeof buf, "%lld B", static_cast<long long>(bytes));
  }
  return buf;
}

}  // namespace nest
