// The dispatcher (paper Section 2.1): the main macro-request router.
//
// Protocol handlers hand it NestRequests. Non-transfer requests execute
// synchronously at the storage manager (which serializes them). Transfer
// requests are *approved* by the storage manager and then registered with
// the transfer manager, whose scheduler orders the actual data movement
// through the BlockGate. The dispatcher also consolidates resource and
// data availability and publishes it as a ClassAd into a discovery system.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "discovery/collector.h"
#include "protocol/request.h"
#include "storage/storage_manager.h"
#include "transfer/transfer_manager.h"

namespace nest::dispatcher {

// Real-mode analogue of the simulator's service gate: connection threads
// block here until the transfer manager's scheduler grants their next
// block a service slot.
class BlockGate {
 public:
  BlockGate(transfer::TransferManager& tm, int slots)
      : tm_(tm), free_(slots) {}

  // Blocks until `r` is granted a slot. Thread-safe.
  void acquire(transfer::TransferRequest* r);
  void release();

  // Thread-safe facade over the (single-threaded) TransferManager: all
  // real-mode request lifecycle calls go through the gate's lock.
  transfer::TransferRequest* create_request(const std::string& protocol,
                                            transfer::Direction dir,
                                            const std::string& path,
                                            std::int64_t size,
                                            const std::string& user = {});
  void charge(transfer::TransferRequest* r, std::int64_t bytes);
  void complete(transfer::TransferRequest* r);
  transfer::ConcurrencyModel pick_model();
  void report_model(transfer::ConcurrencyModel m, double metric_value);

 private:
  void pump_locked();

  transfer::TransferManager& tm_;
  std::mutex mu_;
  std::condition_variable cv_;
  int free_;
  std::set<transfer::TransferRequest*> granted_;
};

// Reply for non-transfer requests: a status plus a textual payload whose
// meaning depends on the op (directory listing, lot description, ACL
// entries, resource ad).
struct Reply {
  Status status;
  std::string text;
  std::int64_t value = 0;  // stat size / created lot id

  static Reply ok(std::string text = {}, std::int64_t value = 0) {
    Reply r;
    r.text = std::move(text);
    r.value = value;
    return r;
  }
  static Reply fail(Status s) {
    Reply r;
    r.status = std::move(s);
    return r;
  }
};

class Dispatcher {
 public:
  struct Options {
    int transfer_slots = 8;
    std::string advertised_name = "nest";
    Nanos publish_interval = 5 * kSecond;
  };

  Dispatcher(Clock& clock, storage::StorageManager& storage,
             transfer::TransferManager& tm);
  Dispatcher(Clock& clock, storage::StorageManager& storage,
             transfer::TransferManager& tm, Options options);
  ~Dispatcher();

  // Execute a non-transfer request synchronously.
  Reply execute(const protocol::NestRequest& req);

  // Approve a transfer (ACL + lot admission) and register it with the
  // transfer manager. The handler then moves blocks via the gate.
  Result<storage::TransferTicket> approve_get(
      const protocol::NestRequest& req);
  Result<storage::TransferTicket> approve_put(
      const protocol::NestRequest& req);

  transfer::TransferManager& tm() { return tm_; }
  storage::StorageManager& storage() { return storage_; }
  BlockGate& gate() { return gate_; }

  // Consolidated availability ad (storage state + transfer load).
  classad::ClassAd snapshot_ad() const;

  // Periodic ClassAd publishing into a discovery collector; stops on
  // destruction. One publisher at a time.
  void start_publishing(discovery::Collector& collector);
  void stop_publishing();
  void publish_once(discovery::Collector& collector);

 private:
  Clock& clock_;
  storage::StorageManager& storage_;
  transfer::TransferManager& tm_;
  Options options_;
  BlockGate gate_;

  std::thread publisher_;
  std::mutex pub_mu_;
  std::condition_variable pub_cv_;
  bool pub_stop_ = false;
};

}  // namespace nest::dispatcher
