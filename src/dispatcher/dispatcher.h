// The dispatcher (paper Section 2.1): the main macro-request router.
//
// Protocol handlers hand it NestRequests. Non-transfer requests execute
// synchronously at the storage manager (which serializes them). Transfer
// requests are *approved* by the storage manager and then registered with
// the transfer manager, whose scheduler orders the actual data movement
// through the BlockGate. The dispatcher also consolidates resource and
// data availability and publishes it as a ClassAd into a discovery system.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "discovery/collector.h"
#include "hsm/hsm_manager.h"
#include "obs/stats.h"
#include "protocol/request.h"
#include "storage/storage_manager.h"
#include "transfer/admission.h"
#include "transfer/core.h"
#include "transfer/transfer_manager.h"

namespace nest::dispatcher {

// Real-mode analogue of the simulator's service gate: connection threads
// block here until the transfer manager's scheduler grants their next
// block a service slot.
//
// Thin adapter over transfer::TransferCore, which owns the whole
// concurrent lifecycle (sharded submission, lock-free charging,
// per-request grant wakeups). Kept as the dispatcher-level name for the
// admission point; new code can take the TransferCore directly.
class BlockGate {
 public:
  BlockGate(transfer::TransferManager& tm, int slots) : core_(tm, slots) {}

  // Blocks until `r` is granted a slot. Thread-safe.
  void acquire(transfer::TransferRequest* r) { core_.acquire(r); }
  void release() { core_.release(); }

  transfer::TransferRequest* create_request(const std::string& protocol,
                                            transfer::Direction dir,
                                            const std::string& path,
                                            std::int64_t size,
                                            const std::string& user = {}) {
    return core_.create_request(protocol, dir, path, size, user);
  }
  void charge(transfer::TransferRequest* r, std::int64_t bytes) {
    core_.charge(r, bytes);
  }
  void complete(transfer::TransferRequest* r) { core_.complete(r); }
  transfer::ConcurrencyModel pick_model() { return core_.pick_model(); }
  void report_model(transfer::ConcurrencyModel m, double metric_value) {
    core_.report_model(m, metric_value);
  }

  transfer::TransferCore& core() { return core_; }

 private:
  transfer::TransferCore core_;
};

// Reply for non-transfer requests: a status plus a textual payload whose
// meaning depends on the op (directory listing, lot description, ACL
// entries, resource ad).
struct Reply {
  Status status;
  std::string text;
  std::int64_t value = 0;  // stat size / created lot id

  static Reply ok(std::string text = {}, std::int64_t value = 0) {
    Reply r;
    r.text = std::move(text);
    r.value = value;
    return r;
  }
  static Reply fail(Status s) {
    Reply r;
    r.status = std::move(s);
    return r;
  }
};

class Dispatcher {
 public:
  struct Options {
    int transfer_slots = 8;
    std::string advertised_name = "nest";
    Nanos publish_interval = 5 * kSecond;
    // Overload shedding at transfer approval (admission_target_ms /
    // admission_max_queue in the server config; disabled by default).
    transfer::AdmissionOptions admission;
  };

  Dispatcher(Clock& clock, storage::StorageManager& storage,
             transfer::TransferManager& tm);
  Dispatcher(Clock& clock, storage::StorageManager& storage,
             transfer::TransferManager& tm, Options options);
  ~Dispatcher();

  // Execute a non-transfer request synchronously.
  Reply execute(const protocol::NestRequest& req);

  // Approve a transfer (ACL + lot admission) and register it with the
  // transfer manager. The handler then moves blocks via the gate.
  NEST_NODISCARD
  Result<storage::TransferTicket> approve_get(
      const protocol::NestRequest& req);
  NEST_NODISCARD
  Result<storage::TransferTicket> approve_put(
      const protocol::NestRequest& req);

  transfer::TransferManager& tm() { return tm_; }
  storage::StorageManager& storage() { return storage_; }
  // Optional cold-tier subsystem. When set, reads that hit cold data get
  // an automatic recall queued behind the retryable staging reply, and
  // the HSM ops (hsm_status/recall/migrate, lot_pin) become live.
  void set_hsm(hsm::HsmManager* hsm) { hsm_ = hsm; }
  hsm::HsmManager* hsm() { return hsm_; }
  BlockGate& gate() { return gate_; }
  transfer::TransferCore& core() { return gate_.core(); }
  transfer::AdmissionController& admission() { return admission_; }

  // Consolidated availability ad (storage state + transfer load +
  // rolling load averages / per-protocol throughput from obs::Stats).
  classad::ClassAd snapshot_ad() const;

  // Live appliance statistics as JSON: request/transfer histograms,
  // throughput, load, storage and journal state. Served by `GET /stats`,
  // the Chirp STATS op, and `nest-cli stats`.
  std::string stats_json() const;

  // Periodic ClassAd publishing into a discovery collector; stops on
  // destruction. One publisher at a time.
  void start_publishing(discovery::Collector& collector);
  void stop_publishing();
  void publish_once(discovery::Collector& collector);

 private:
  Reply execute_impl(const protocol::NestRequest& req);
  // Admission gate shared by the approve paths: nullopt admits, an Error
  // (Errc::busy) sheds. Monitoring ops never pass through here, so the
  // appliance stays observable while it sheds.
  std::optional<Error> admit(const protocol::NestRequest& req);
  // Sample the rolling rate/load trackers at `now` (under load_mu_) and
  // report {total MBps, load average}. Every stats surface calls this, so
  // whichever of the publisher / /stats pollers runs keeps the windows
  // warm.
  std::pair<double, double> observe_load(Nanos now) const;

  Clock& clock_;
  storage::StorageManager& storage_;
  transfer::TransferManager& tm_;
  hsm::HsmManager* hsm_ = nullptr;
  Options options_;
  BlockGate gate_;
  // Latency-target shedder consulted by approve_get/approve_put; fed by
  // TransferCore's create/complete hooks (wired in the constructor).
  transfer::AdmissionController admission_;
  Nanos started_;

  // Rolling views over the monotone transfer counters; mutable because
  // snapshot_ad()/stats_json() are conceptually const reads. The trackers
  // carry their own obs_load-rank lock, acquired under load_mu_ (the map
  // itself is what load_mu_ guards against concurrent growth).
  mutable Mutex load_mu_{lockrank::Rank::dispatcher_load, "dispatcher.load"};
  mutable obs::RollingRate total_rate_ GUARDED_BY(load_mu_);
  mutable std::map<std::string, obs::RollingRate> proto_rates_
      GUARDED_BY(load_mu_);
  mutable obs::LoadAverage load_ GUARDED_BY(load_mu_);

  std::thread publisher_;
  Mutex pub_mu_{lockrank::Rank::dispatcher_pub, "dispatcher.pub"};
  CondVar pub_cv_;
  bool pub_stop_ GUARDED_BY(pub_mu_) = false;
};

}  // namespace nest::dispatcher
