#include "dispatcher/dispatcher.h"

#include <sstream>

#include "common/log.h"
#include "common/units.h"
#include "fault/failpoint.h"
#include "obs/trace.h"

namespace nest::dispatcher {

using protocol::NestOp;
using protocol::NestRequest;

Dispatcher::Dispatcher(Clock& clock, storage::StorageManager& storage,
                       transfer::TransferManager& tm)
    : Dispatcher(clock, storage, tm, Options{}) {}

Dispatcher::Dispatcher(Clock& clock, storage::StorageManager& storage,
                       transfer::TransferManager& tm, Options options)
    : clock_(clock),
      storage_(storage),
      tm_(tm),
      options_(std::move(options)),
      gate_(tm, options_.transfer_slots),
      admission_(clock, options_.admission),
      started_(clock.now()) {
  gate_.core().set_admission(&admission_);
}

Dispatcher::~Dispatcher() { stop_publishing(); }

Reply Dispatcher::execute(const NestRequest& req) {
  obs::Span span(obs::Layer::dispatcher, protocol::op_name(req.op));
  const Nanos start = clock_.now();
  Reply r = execute_impl(req);
  auto& stats = obs::Stats::global();
  stats.requests.fetch_add(1, std::memory_order_relaxed);
  if (!r.status.ok()) stats.errors.fetch_add(1, std::memory_order_relaxed);
  const Nanos elapsed = clock_.now() - start;
  stats.request_latency(req.protocol).record(elapsed);
  stats.request_all.record(elapsed);
  return r;
}

Reply Dispatcher::execute_impl(const NestRequest& req) {
  switch (req.op) {
    case NestOp::mkdir:
      return Reply{storage_.mkdir(req.principal, req.path), {}, 0};
    case NestOp::rmdir:
      return Reply{storage_.rmdir(req.principal, req.path), {}, 0};
    case NestOp::unlink:
      return Reply{storage_.remove(req.principal, req.path), {}, 0};
    case NestOp::stat: {
      auto st = storage_.stat(req.principal, req.path);
      if (!st.ok()) return Reply::fail(Status{st.error()});
      std::ostringstream os;
      os << (st->is_dir ? "dir" : "file") << " " << st->size << " "
         << st->owner;
      return Reply::ok(os.str(), st->size);
    }
    case NestOp::list: {
      auto entries = storage_.list(req.principal, req.path);
      if (!entries.ok()) return Reply::fail(Status{entries.error()});
      std::ostringstream os;
      for (const auto& e : *entries) {
        os << (e.is_dir ? "d " : "f ") << e.size << " " << e.name << "\n";
      }
      return Reply::ok(os.str());
    }
    case NestOp::rename:
      return Reply{storage_.rename(req.principal, req.path, req.path2),
                   {},
                   0};
    case NestOp::lot_create: {
      auto id = storage_.lot_create(req.principal, req.lot_capacity,
                                    req.lot_duration, req.group_lot);
      if (!id.ok()) return Reply::fail(Status{id.error()});
      return Reply::ok(std::to_string(*id), static_cast<std::int64_t>(*id));
    }
    case NestOp::lot_renew:
      return Reply{
          storage_.lot_renew(req.principal, req.lot_id, req.lot_duration),
          {},
          0};
    case NestOp::lot_terminate:
      return Reply{storage_.lot_terminate(req.principal, req.lot_id), {}, 0};
    case NestOp::lot_set_replicas:
      return Reply{storage_.lot_set_replicas(req.principal, req.lot_id,
                                             req.lot_replicas),
                   {},
                   0};
    case NestOp::lot_pin:
      // lot_replicas carries the 0|1 pin flag on the wire.
      return Reply{storage_.lot_set_pin(req.principal, req.lot_id,
                                        req.lot_replicas != 0),
                   {},
                   0};
    case NestOp::hsm_status: {
      auto tier = storage_.hsm_tier(req.principal, req.path);
      if (!tier.ok()) return Reply::fail(Status{tier.error()});
      return Reply::ok(hsm::tier_name(*tier),
                       static_cast<std::int64_t>(*tier));
    }
    case NestOp::hsm_recall: {
      if (!hsm_) return Reply::fail(Status{Errc::unsupported, "no cold tier"});
      return Reply{hsm_->recall(req.principal, req.path), {}, 0};
    }
    case NestOp::hsm_migrate: {
      if (!hsm_) return Reply::fail(Status{Errc::unsupported, "no cold tier"});
      return Reply{hsm_->migrate(req.principal, req.path), {}, 0};
    }
    case NestOp::lot_query: {
      auto lot = storage_.lot_query(req.principal, req.lot_id);
      if (!lot.ok()) return Reply::fail(Status{lot.error()});
      std::ostringstream os;
      os << "owner=" << lot->owner << " capacity=" << lot->capacity
         << " used=" << lot->used
         << " best_effort=" << (lot->best_effort ? 1 : 0)
         << " files=" << lot->files.size()
         << " replicas=" << lot->replicas;
      return Reply::ok(os.str(), lot->capacity - lot->used);
    }
    case NestOp::lot_list: {
      std::ostringstream os;
      for (const auto& lot : storage_.lot_list(req.principal)) {
        os << "id=" << lot.id << " owner=" << lot.owner
           << (lot.group_lot ? " group" : "") << " capacity=" << lot.capacity
           << " used=" << lot.used
           << " best_effort=" << (lot.best_effort ? 1 : 0)
           << " files=" << lot.files.size()
           << " replicas=" << lot.replicas << "\n";
      }
      return Reply::ok(os.str());
    }
    case NestOp::journal_stat: {
      const auto stats = storage_.journal_stats();
      if (!stats) return Reply::fail(Status{Errc::unsupported, "no journal"});
      std::ostringstream os;
      os << "last_lsn=" << stats->last_lsn
         << " durable_lsn=" << stats->durable_lsn
         << " snapshot_lsn=" << stats->snapshot_lsn
         << " segments=" << stats->segment_count
         << " records_since_snapshot=" << stats->records_since_snapshot
         << " snapshot_age_ms="
         << (stats->snapshot_time == 0
                 ? -1
                 : (clock_.now() - stats->snapshot_time) / kMillisecond)
         << " appends=" << stats->appends << " commits=" << stats->commits
         << " fsyncs=" << stats->fsyncs;
      return Reply::ok(os.str(),
                       static_cast<std::int64_t>(stats->last_lsn));
    }
    case NestOp::acl_set: {
      auto entry = classad::ClassAd::parse(req.acl_entry);
      if (!entry.ok()) return Reply::fail(Status{entry.error()});
      return Reply{storage_.acl_set(req.principal, req.path, *entry), {}, 0};
    }
    case NestOp::acl_clear:
      // acl_entry carries the principal spec to remove.
      return Reply{
          storage_.acl_clear(req.principal, req.path, req.acl_entry), {}, 0};
    case NestOp::acl_get: {
      auto entries = storage_.acl_get(req.principal, req.path);
      if (!entries.ok()) return Reply::fail(Status{entries.error()});
      std::ostringstream os;
      for (const auto& e : *entries) os << e << "\n";
      return Reply::ok(os.str());
    }
    case NestOp::query_ad:
      return Reply::ok(snapshot_ad().to_string());
    case NestOp::stats_query:
      return Reply::ok(stats_json());
    case NestOp::fault_set:
    case NestOp::fault_list: {
      // Live fault drills can take the whole appliance down (crash specs);
      // only the superuser may touch them.
      if (!req.principal.authenticated ||
          req.principal.name != storage_.options().superuser) {
        return Reply::fail(
            Status{Errc::permission_denied, "fault ops are superuser-only"});
      }
      if (req.op == NestOp::fault_set) {
        return Reply{fault::registry().arm(req.path, req.acl_entry), {}, 0};
      }
      std::ostringstream os;
      for (const auto& fp : fault::registry().list()) {
        os << fp.name << " " << fp.spec << " evals=" << fp.evals
           << " trips=" << fp.trips << "\n";
      }
      return Reply::ok(os.str());
    }
    case NestOp::noop:
      return Reply::ok();
    case NestOp::get:
    case NestOp::put:
    case NestOp::read_block:
    case NestOp::write_block:
      return Reply::fail(
          Status{Errc::internal, "transfer op routed to execute()"});
  }
  return Reply::fail(Status{Errc::unsupported, "unknown op"});
}

std::optional<Error> Dispatcher::admit(const NestRequest& req) {
  // Forced shed for chaos drills: the failpoint models the controller
  // rejecting, so the reply path (explicit busy, no queueing) is
  // exercised without needing real overload.
  bool force_shed = false;
  NEST_FAILPOINT("dispatcher.admit", force_shed = true);
  if (force_shed) {
    obs::Stats::global().shed.fetch_add(1, std::memory_order_relaxed);
    return Error{Errc::busy, "admission: shed (failpoint)"};
  }
  const auto v = admission_.admit(req.protocol, req.principal.name);
  if (v == transfer::AdmissionController::Verdict::admitted) {
    return std::nullopt;
  }
  return Error{Errc::busy,
               std::string("admission: server overloaded (") +
                   transfer::verdict_name(v) + ")"};
}

Result<storage::TransferTicket> Dispatcher::approve_get(
    const NestRequest& req) {
  obs::Span span(obs::Layer::dispatcher, "approve_get");
  if (auto shed = admit(req)) {
    obs::Stats::global().errors.fetch_add(1, std::memory_order_relaxed);
    return *shed;
  }
  auto t = storage_.approve_read(req.principal, req.path);
  if (!t.ok()) {
    // A read of cold data is answered with the retryable staging error,
    // but it also *starts* the recall: the client's retry loop is the
    // wait, the HSM worker is the motor (CASTOR-style implicit staging).
    if (t.error().code == Errc::staging && hsm_) {
      hsm_->note_cold_read(req.principal, req.path);
    }
    obs::Stats::global().errors.fetch_add(1, std::memory_order_relaxed);
  }
  return t;
}

Result<storage::TransferTicket> Dispatcher::approve_put(
    const NestRequest& req) {
  obs::Span span(obs::Layer::dispatcher, "approve_put");
  if (auto shed = admit(req)) {
    obs::Stats::global().errors.fetch_add(1, std::memory_order_relaxed);
    return *shed;
  }
  auto t = storage_.approve_write(req.principal, req.path, req.size);
  if (!t.ok()) {
    obs::Stats::global().errors.fetch_add(1, std::memory_order_relaxed);
  }
  return t;
}

std::pair<double, double> Dispatcher::observe_load(Nanos now) const {
  MutexLock lock(load_mu_);
  const double total_bps =
      total_rate_.observe(now, tm_.total_bytes());
  for (const auto& [cls, bytes] : tm_.meter().per_class()) {
    proto_rates_[cls].observe(now, bytes);
  }
  // Instantaneous load = occupied transfer slots as a fraction of the
  // configured slot count; > 1 means admissions are queueing.
  const double inst =
      static_cast<double>(tm_.in_flight()) /
      static_cast<double>(options_.transfer_slots > 0
                              ? options_.transfer_slots
                              : 1);
  return {total_bps / 1e6, load_.observe(now, inst)};
}

classad::ClassAd Dispatcher::snapshot_ad() const {
  classad::ClassAd ad = storage_.resource_ad();
  ad.insert("Name", classad::Value::string(options_.advertised_name));
  ad.insert("ActiveTransfers",
            classad::Value::integer(static_cast<std::int64_t>(
                tm_.in_flight())));
  ad.insert("CompletedTransfers",
            classad::Value::integer(tm_.completed_requests()));
  ad.insert("BytesMoved", classad::Value::integer(tm_.total_bytes()));
  ad.insert("MeanTransferMs",
            classad::Value::real(tm_.latencies().mean_ms()));
  ad.insert("Scheduler",
            classad::Value::string(tm_.options().scheduler));

  // Live load section (paper Section 3: ads should reflect resource *and*
  // data availability, not just static capacity).
  const Nanos now = clock_.now();
  const auto [mbps, load_avg] = observe_load(now);
  ad.insert("LoadAvg", classad::Value::real(load_avg));
  ad.insert("ThroughputMBps", classad::Value::real(mbps));
  {
    MutexLock lock(load_mu_);
    for (const auto& [cls, bytes] : tm_.meter().per_class()) {
      // Window-averaged per-protocol rate; attribute per protocol class.
      const double rate =
          proto_rates_[cls].observe(now, bytes) / 1e6;
      ad.insert("Throughput_" + cls, classad::Value::real(rate));
    }
  }
  auto& stats = obs::Stats::global();
  ad.insert("BytesQueued",
            classad::Value::integer(
                stats.bytes_queued.load(std::memory_order_relaxed)));
  ad.insert("Requests",
            classad::Value::integer(
                stats.requests.load(std::memory_order_relaxed)));
  ad.insert("Errors",
            classad::Value::integer(
                stats.errors.load(std::memory_order_relaxed)));
  ad.insert("MeanRequestMs",
            classad::Value::real(stats.request_all.mean_ms()));
  ad.insert("P99RequestMs",
            classad::Value::real(stats.request_all.percentile_ms(99)));
  // Admission section: clients picking a replica can prefer an appliance
  // that is not shedding. Every field is an O(1) counter read.
  const auto adm = admission_.snapshot();
  ad.insert("AdmissionEnabled",
            classad::Value::boolean(admission_.enabled()));
  ad.insert("AdmissionOutstanding",
            classad::Value::integer(adm.outstanding));
  ad.insert("AdmissionShed", classad::Value::integer(adm.shed));
  ad.insert("AdmissionPredictedWaitMs",
            classad::Value::real(adm.predicted_wait_ms));
  return ad;
}

std::string Dispatcher::stats_json() const {
  const Nanos now = clock_.now();
  const auto [mbps, load_avg] = observe_load(now);
  auto& stats = obs::Stats::global();
  const classad::ClassAd res = storage_.resource_ad();
  auto res_int = [&res](const std::string& name) {
    return res.eval_int(name).value_or(0);
  };

  std::ostringstream os;
  os << "{\"name\":\"" << options_.advertised_name << "\""
     << ",\"scheduler\":\"" << tm_.options().scheduler << "\""
     << ",\"uptime_sec\":" << to_seconds(now - started_)
     << ",\"load\":{\"load_avg\":" << load_avg
     << ",\"throughput_mbps\":" << mbps << ",\"per_protocol_mbps\":{";
  {
    MutexLock lock(load_mu_);
    bool first = true;
    for (const auto& [cls, bytes] : tm_.meter().per_class()) {
      if (!first) os << ",";
      first = false;
      os << "\"" << cls
         << "\":" << proto_rates_[cls].observe(now, bytes) / 1e6;
    }
  }
  os << "}}"
     << ",\"transfers\":{\"active\":" << tm_.in_flight()
     << ",\"completed\":" << tm_.completed_requests()
     << ",\"bytes_moved\":" << tm_.total_bytes()
     << ",\"bytes_queued\":"
     << stats.bytes_queued.load(std::memory_order_relaxed)
     << ",\"slots\":" << options_.transfer_slots << "}";
  {
    const auto adm = admission_.snapshot();
    os << ",\"admission\":{\"enabled\":"
       << (admission_.enabled() ? "true" : "false")
       << ",\"outstanding\":" << adm.outstanding
       << ",\"admitted\":" << adm.admitted << ",\"shed\":" << adm.shed
       << ",\"shed_queue\":" << adm.shed_queue
       << ",\"shed_user\":" << adm.shed_user
       << ",\"shed_latency\":" << adm.shed_latency
       << ",\"predicted_wait_ms\":" << adm.predicted_wait_ms
       << ",\"completion_rate_per_sec\":" << adm.completion_rate_per_sec
       << ",\"active_users\":" << adm.active_users << "}";
  }
  os << ",\"storage\":{\"total_space\":" << res_int("TotalSpace")
     << ",\"used_space\":" << res_int("UsedSpace")
     << ",\"free_space\":" << res_int("FreeSpace")
     << ",\"free_lot_space\":" << res_int("AvailableLotSpace")
     << ",\"reclaimable_space\":" << res_int("ReclaimableSpace") << "}";
  if (storage_.cold_tier_attached()) {
    const auto hs = storage_.hsm_stats();
    os << ",\"hsm\":{\"cold_files\":" << hs.cold_files
       << ",\"cold_bytes\":" << hs.cold_bytes
       << ",\"migrating\":" << hs.migrating
       << ",\"recalling\":" << hs.recalling
       << ",\"recalls_pending\":" << (hsm_ ? hsm_->recalls().pending() : 0)
       << "}";
  }
  os << ",\"journal\":";
  if (const auto js = storage_.journal_stats()) {
    os << "{\"last_lsn\":" << js->last_lsn
       << ",\"durable_lsn\":" << js->durable_lsn
       << ",\"appends\":" << js->appends << ",\"commits\":" << js->commits
       << ",\"fsyncs\":" << js->fsyncs << "}";
  } else {
    os << "null";
  }
  os << ",\"metrics\":" << stats.to_json() << "}";
  return os.str();
}

void Dispatcher::publish_once(discovery::Collector& collector) {
  // Models a collector outage: the ad is skipped, never blocked on.
  bool drop = false;
  NEST_FAILPOINT("dispatcher.publish", drop = true);
  if (drop) {
    NEST_LOG_WARN("dispatcher", "ad publication dropped (failpoint)");
    return;
  }
  collector.advertise(options_.advertised_name, snapshot_ad());
}

void Dispatcher::start_publishing(discovery::Collector& collector) {
  stop_publishing();
  {
    MutexLock lock(pub_mu_);
    pub_stop_ = false;
  }
  publisher_ = std::thread([this, &collector] {
    MutexLock lock(pub_mu_);
    while (!pub_stop_) {
      lock.unlock();
      publish_once(collector);
      lock.lock();
      pub_cv_.wait_for(
          lock, std::chrono::nanoseconds(options_.publish_interval),
          [this] { return pub_stop_; });
    }
  });
}

void Dispatcher::stop_publishing() {
  {
    MutexLock lock(pub_mu_);
    pub_stop_ = true;
  }
  pub_cv_.notify_all();
  if (publisher_.joinable()) publisher_.join();
}

}  // namespace nest::dispatcher
