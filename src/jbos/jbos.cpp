#include "jbos/jbos.h"

#include <sys/socket.h>

#include <sstream>
#include <vector>

#include "common/string_util.h"

namespace nest::jbos {

namespace {

constexpr std::int64_t kBlock = 64 * 1024;

bool reply(net::TcpStream& s, const std::string& line) {
  return s.write_all(line + "\r\n").ok();
}

// Stream a whole file to a socket (native servers: no scheduler, no gate).
Status send_whole_file(storage::VirtualFs& fs, const std::string& path,
                       net::TcpStream& out) {
  auto handle = fs.open(path);
  if (!handle.ok()) return Status{handle.error()};
  auto size = (*handle)->size();
  if (!size.ok()) return Status{size.error()};
  std::vector<char> buf(kBlock);
  std::int64_t off = 0;
  while (off < *size) {
    const std::int64_t len = std::min<std::int64_t>(kBlock, *size - off);
    auto n = (*handle)->pread(
        std::span(buf.data(), static_cast<std::size_t>(len)), off);
    if (!n.ok()) return Status{n.error()};
    if (auto s = out.write_all(std::span<const char>(
            buf.data(), static_cast<std::size_t>(*n)));
        !s.ok()) {
      return s;
    }
    off += *n;
  }
  return {};
}

Status recv_to_file(storage::VirtualFs& fs, const std::string& path,
                    net::TcpStream& in, std::int64_t size) {
  auto handle = fs.create(path);
  if (!handle.ok()) return Status{handle.error()};
  std::vector<char> buf(kBlock);
  std::int64_t off = 0;
  while (size < 0 || off < size) {
    const std::int64_t want =
        size < 0 ? kBlock : std::min<std::int64_t>(kBlock, size - off);
    auto n = in.read_some(std::span(buf.data(),
                                    static_cast<std::size_t>(want)));
    if (!n.ok()) return Status{n.error()};
    if (*n == 0) {
      if (size < 0) return {};  // EOF-terminated stream
      return Status{Errc::connection_closed, "short body"};
    }
    auto w = (*handle)->pwrite(
        std::span<const char>(buf.data(), static_cast<std::size_t>(*n)), off);
    if (!w.ok()) return Status{w.error()};
    off += *n;
  }
  return {};
}

}  // namespace

MiniServer::~MiniServer() { stop(); }

Status MiniServer::start(uint16_t port) {
  auto listener = net::TcpListener::bind(port);
  if (!listener.ok()) return Status{listener.error()};
  port_ = listener->port();
  listener_ = std::make_unique<net::TcpListener>(std::move(listener.value()));
  acceptor_ = std::thread([this] { accept_loop(); });
  return {};
}

void MiniServer::accept_loop() {
  while (!stopping_) {
    auto stream = listener_->accept();
    if (!stream.ok()) return;
    // Timeout setup is advisory: a stream without it still works.
    (void)stream->set_read_timeout(30'000);
    MutexLock lock(conn_mu_);
    const int fd = stream->fd();
    conn_fds_.insert(fd);
    connections_.emplace_back([this, fd,
                               s = std::move(stream.value())]() mutable {
      serve(s);
      MutexLock inner(conn_mu_);
      conn_fds_.erase(fd);
    });
  }
}

void MiniServer::stop() {
  if (stopping_.exchange(true)) return;
  if (listener_) listener_->close();
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> conns;
  {
    MutexLock lock(conn_mu_);
    conns.swap(connections_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
}

void MiniHttpServer::serve(net::TcpStream& stream) {
  while (true) {
    auto line = stream.read_line();
    if (!line.ok()) return;
    const auto words = split_ws(*line);
    if (words.size() != 3) return;
    const std::string method = to_lower(words[0]);
    const std::string path = words[1];
    std::int64_t content_length = -1;
    while (true) {
      auto header = stream.read_line();
      if (!header.ok()) return;
      if (header->empty()) break;
      if (starts_with_icase(*header, "content-length:")) {
        content_length =
            parse_int(header->substr(header->find(':') + 1)).value_or(-1);
      }
    }
    if (method == "get" || method == "head") {
      auto st = fs_.stat(path);
      if (!st.ok() || st->is_dir) {
        // Best-effort reply: a dead peer is handled by connection teardown.
        (void)stream.write_all(std::string(
            "HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"));
        return;
      }
      std::ostringstream os;
      os << "HTTP/1.0 200 OK\r\nContent-Length: " << st->size << "\r\n\r\n";
      if (!stream.write_all(os.str()).ok()) return;
      if (method == "get") {
        if (!send_whole_file(fs_, path, stream).ok()) return;
      }
      return;  // HTTP/1.0: one request per connection
    }
    if (method == "put" && writable_ && content_length >= 0) {
      if (!recv_to_file(fs_, path, stream, content_length).ok()) return;
      // Best-effort reply: a dead peer is handled by connection teardown.
      (void)stream.write_all(std::string(
          "HTTP/1.0 201 Created\r\nContent-Length: 0\r\n\r\n"));
      return;
    }
    // Best-effort reply: a dead peer is handled by connection teardown.
    (void)stream.write_all(std::string(
        "HTTP/1.0 405 Method Not Allowed\r\nContent-Length: 0\r\n\r\n"));
    return;
  }
}

void MiniFtpServer::serve(net::TcpStream& stream) {
  if (!reply(stream, "220 jbos ftp ready")) return;
  std::optional<net::TcpListener> pasv;
  bool logged_in = false;
  while (true) {
    auto line = stream.read_line();
    if (!line.ok()) return;
    const auto words = split_ws(*line);
    if (words.empty()) continue;
    const std::string cmd = to_lower(words[0]);
    if (cmd == "quit") {
      reply(stream, "221 bye");
      return;
    }
    if (cmd == "user") {
      reply(stream, "331 any password");
      continue;
    }
    if (cmd == "pass") {
      logged_in = true;
      reply(stream, "230 ok");
      continue;
    }
    if (!logged_in) {
      reply(stream, "530 login first");
      continue;
    }
    if (cmd == "type" || cmd == "noop") {
      reply(stream, "200 ok");
      continue;
    }
    if (cmd == "pasv") {
      auto listener = net::TcpListener::bind(0);
      if (!listener.ok()) {
        reply(stream, "425 no data port");
        continue;
      }
      const uint16_t p = listener->port();
      pasv.emplace(std::move(listener.value()));
      reply(stream, "227 Entering Passive Mode (127,0,0,1," +
                        std::to_string(p >> 8) + "," +
                        std::to_string(p & 0xff) + ")");
      continue;
    }
    if ((cmd == "retr" || cmd == "stor" || cmd == "list") && pasv) {
      reply(stream, "150 opening data connection");
      auto data = pasv->accept();
      pasv.reset();
      if (!data.ok()) {
        reply(stream, "425 data connection failed");
        continue;
      }
      Status s;
      if (cmd == "retr" && words.size() == 2) {
        s = send_whole_file(fs_, words[1], *data);
      } else if (cmd == "stor" && words.size() == 2 && writable_) {
        s = recv_to_file(fs_, words[1], *data, -1);
      } else if (cmd == "list") {
        auto entries = fs_.list(words.size() == 2 ? words[1] : "/");
        if (entries.ok()) {
          std::ostringstream os;
          for (const auto& e : *entries) {
            os << (e.is_dir ? "d " : "f ") << e.size << " " << e.name
               << "\r\n";
          }
          s = data->write_all(os.str());
        } else {
          s = Status{entries.error()};
        }
      } else {
        s = Status{Errc::unsupported, "verb"};
      }
      data->shutdown_send();
      reply(stream, s.ok() ? "226 done" : "550 failed");
      continue;
    }
    reply(stream, "500 unknown");
  }
}

void MiniChirpServer::serve(net::TcpStream& stream) {
  if (!reply(stream, "220 jbos chirp ready")) return;
  while (true) {
    auto line = stream.read_line();
    if (!line.ok()) return;
    const auto words = split_ws(*line);
    if (words.empty()) continue;
    const std::string cmd = to_lower(words[0]);
    if (cmd == "quit") {
      reply(stream, "221 bye");
      return;
    }
    if (cmd == "auth") {  // accepted but meaningless: no auth here
      reply(stream, "230 ok");
      continue;
    }
    if (cmd == "get" && words.size() == 2) {
      auto st = fs_.stat(words[1]);
      if (!st.ok() || st->is_dir) {
        reply(stream, "550 not found");
        continue;
      }
      if (!reply(stream, "150 " + std::to_string(st->size))) return;
      if (!send_whole_file(fs_, words[1], stream).ok()) return;
      continue;
    }
    if (cmd == "put" && words.size() == 3 && writable_) {
      const auto size = parse_int(words[2]);
      if (!size || *size < 0) {
        reply(stream, "501 bad size");
        continue;
      }
      if (!reply(stream, "150 ok")) return;
      if (!recv_to_file(fs_, words[1], stream, *size).ok()) return;
      reply(stream, "226 stored");
      continue;
    }
    if (cmd == "list" && words.size() == 2) {
      auto entries = fs_.list(words[1]);
      if (!entries.ok()) {
        reply(stream, "550 not found");
        continue;
      }
      std::ostringstream os;
      for (const auto& e : *entries) {
        os << (e.is_dir ? "d " : "f ") << e.size << " " << e.name << "\n";
      }
      const std::string payload = os.str();
      if (!reply(stream, "213 " + std::to_string(payload.size()))) return;
      if (!stream.write_all(payload).ok()) return;
      continue;
    }
    reply(stream, "500 unknown");
  }
}

}  // namespace nest::jbos
