// JBOS — "Just a Bunch Of Servers" (paper Section 3): the baseline NeST is
// compared against. Each server here speaks exactly one protocol, serves a
// VirtualFs directly, and has no shared transfer manager, no cross-protocol
// scheduling, no lots, and no ACL engine beyond all-or-nothing write
// permission. They are deliberately what you'd get by running independent
// native daemons (wu-ftpd, Apache, nfsd) side by side.
#pragma once

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "net/socket.h"
#include "storage/vfs.h"

namespace nest::jbos {

class MiniServer {
 public:
  // `fs` is shared among the bunch (same machine, same disk).
  MiniServer(storage::VirtualFs& fs, bool writable)
      : fs_(fs), writable_(writable) {}
  virtual ~MiniServer();

  NEST_NODISCARD
  Status start(uint16_t port = 0);  // 0: ephemeral
  void stop();
  uint16_t port() const { return port_; }

 protected:
  virtual void serve(net::TcpStream& stream) = 0;
  storage::VirtualFs& fs_;
  bool writable_;

 private:
  void accept_loop();
  std::unique_ptr<net::TcpListener> listener_;
  std::thread acceptor_;
  Mutex conn_mu_{lockrank::Rank::jbos_conn, "jbos.conn"};
  std::vector<std::thread> connections_ GUARDED_BY(conn_mu_);
  std::set<int> conn_fds_ GUARDED_BY(conn_mu_);
  std::atomic<bool> stopping_{false};
  uint16_t port_ = 0;
};

// Single-protocol HTTP file server (the "Apache" of the bunch).
class MiniHttpServer final : public MiniServer {
 public:
  using MiniServer::MiniServer;

 protected:
  void serve(net::TcpStream& stream) override;
};

// Single-protocol FTP server (the "wu-ftpd" of the bunch): USER/PASS
// (anonymous), PASV, RETR, STOR, LIST, QUIT.
class MiniFtpServer final : public MiniServer {
 public:
  using MiniServer::MiniServer;

 protected:
  void serve(net::TcpStream& stream) override;
};

// Single-protocol native Chirp server (NeST's own protocol, minus every
// NeST feature): GET/PUT/LIST/QUIT only, no auth, no lots.
class MiniChirpServer final : public MiniServer {
 public:
  using MiniServer::MiniServer;

 protected:
  void serve(net::TcpStream& stream) override;
};

}  // namespace nest::jbos
