// nestd: the standalone NeST appliance daemon.
//
// Usage: nestd [config-file]
//
// Config keys (all optional):
//   root        = /path/to/storage      (default: in-memory backend)
//   backend     = mem | local | extent  (extent: root is a volume file)
//   capacity    = 10G
//   name        = nest@host
//   chirp_port  = 9094     http_port = 9080   ftp_port = 9021
//   gridftp_port= 9811     nfs_port  = 9049   (-1 disables any of them)
//   scheduler   = fifo | stride | stride-nwc | stride-user | cache-aware
//   adaptive    = true
//   models      = threads,events,processes,staged
//   anonymous   = true
//   slots       = 8
//   bandwidth   = 400M                        (total rate cap; 0 = off)
//   journal     = /path/to/journal            (metadata WAL; empty = off)
//   journal_sync= always | group | none
//   journal_commit = 5ms                      (group-commit fsync cadence)
//   journal_snapshot_every = 4096             (records between snapshots)
//   failpoints  = journal.fsync=after(3)crash;net.send=prob(0.01)return(EPIPE)
//                 (fault drills; $NEST_FAILPOINTS overlays this at startup
//                  and the Chirp FAULT op re-arms at runtime)
//   cluster_role  = standalone | primary | follower
//   cluster_peers = n1@host1:9094,n2@host2:9094   (other cluster members)
//   replication_factor = 2                    (default content copies)
//   cluster_heartbeat  = 2s                   (ad poll cadence)
//   cluster_heartbeat_timeout = 15s           (silence before peer is dead)
//   tickets.<class> = <n>                     (stride share per class)
//   user.<name> = <secret>[:group1,group2]    (GSI subjects; cluster peers
//                  authenticate with their node names as subjects)
#include <csignal>
#include <cstdio>
#include <semaphore>

#include "common/config.h"
#include "fault/failpoint.h"
#include "server/config.h"
#include "server/nest_server.h"

namespace {
std::binary_semaphore g_shutdown(0);
void handle_signal(int) { g_shutdown.release(); }
}  // namespace

int main(int argc, char** argv) {
  using namespace nest;

  Config cfg;
  if (argc > 1) {
    auto loaded = Config::load_file(argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "nestd: %s\n", loaded.error().to_string().c_str());
      return 1;
    }
    cfg = std::move(loaded.value());
  }

  auto parsed = server::options_from_config(cfg);
  if (!parsed.ok()) {
    std::fprintf(stderr, "nestd: %s\n", parsed.error().to_string().c_str());
    return 1;
  }

  auto server = server::NestServer::start(parsed->options);
  if (!server.ok()) {
    std::fprintf(stderr, "nestd: %s\n", server.error().to_string().c_str());
    return 1;
  }
  server::apply_runtime_config(*parsed, **server);

  // $NEST_FAILPOINTS overlays (and wins over) config-armed failpoints:
  // it is the operator's one-shot drill hook, applied after startup so a
  // drill cannot be silently overridden by the config file.
  nest::fault::registry().apply_env();

  std::printf("nestd '%s' listening: chirp=%u http=%u ftp=%u gridftp=%u "
              "nfs(udp)=%u\n",
              parsed->options.name.c_str(), (*server)->chirp_port(),
              (*server)->http_port(), (*server)->ftp_port(),
              (*server)->gridftp_port(), (*server)->nfs_port());
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  g_shutdown.acquire();
  std::printf("nestd: shutting down\n");
  (*server)->stop();
  return 0;
}
