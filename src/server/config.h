// Config-file -> NestServerOptions mapping for nestd (and any embedder
// that wants file-driven configuration). Kept out of nestd's main() so it
// is unit-testable.
//
// Recognized keys (see nestd.cpp header for the full commented example):
//   root capacity name chirp_port http_port ftp_port gridftp_port nfs_port
//   scheduler adaptive anonymous slots models
//   journal journal_sync journal_commit journal_snapshot_every
//   cluster_role cluster_peers replication_factor
//   cluster_heartbeat cluster_heartbeat_timeout
//   cold_dir cold_backend cold_capacity cold_bandwidth cold_open_latency_ms
//   hsm_scan hsm_auto_migrate hsm_worker hsm_migrate_tickets
//   hsm_recall_tickets
//   tickets.<class> = <n>          (stride tickets per protocol/user class)
//   user.<name>     = <secret>[:group1,group2]
#pragma once

#include <string>
#include <vector>

#include "common/config.h"
#include "server/nest_server.h"

namespace nest::server {

struct ConfiguredUser {
  std::string name;
  std::string secret;
  std::vector<std::string> groups;
};

struct TicketEntry {
  std::string cls;
  std::int64_t tickets = 1;
};

struct NestdConfig {
  NestServerOptions options;
  std::vector<ConfiguredUser> users;
  std::vector<TicketEntry> tickets;
};

// Parse and validate; rejects unknown concurrency-model names and bad
// scheduler kinds rather than starting a misconfigured appliance.
NEST_NODISCARD Result<NestdConfig> options_from_config(const Config& cfg);

// Apply users + tickets to a started server.
void apply_runtime_config(const NestdConfig& cfg, NestServer& server);

}  // namespace nest::server
