// NestServer: the real (socket-backed) NeST appliance.
//
// One TCP listener per enabled protocol — the protocol layer invokes the
// handler for the connecting port (paper Section 2.2) — plus a UDP
// endpoint for NFS/ONC-RPC. Each accepted connection is served on its own
// thread by its protocol handler; all handlers share one storage manager,
// one dispatcher, one transfer manager (scheduling + adaptive concurrency)
// and one GSI registry.
#pragma once

#include <atomic>
#include <set>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_node.h"
#include "common/mutex.h"
#include "dispatcher/dispatcher.h"
#include "journal/journal.h"
#include "net/socket.h"
#include "protocol/executor.h"
#include "protocol/gsi.h"
#include "protocol/handler.h"
#include "protocol/nfs_handler.h"
#include "storage/storage_manager.h"
#include "transfer/transfer_manager.h"

namespace nest::server {

struct NestServerOptions {
  // Storage backend selection:
  //   "mem"    — in-memory (default when root_dir is empty)
  //   "local"  — sandboxed host directory at root_dir (default otherwise)
  //   "extent" — raw-disk-style extent store; root_dir is the volume file
  //              (empty root_dir = in-memory volume)
  std::string backend;
  // Host directory (local) or volume file (extent); empty = in-memory.
  std::string root_dir;
  std::int64_t capacity = 1'000'000'000;
  storage::StorageOptions storage;
  transfer::TransferManager::Options tm;
  int transfer_slots = 8;
  // Overload admission control (admission_target_ms / admission_max_queue
  // in nest.conf; both zero = disabled, transfers queue without bound).
  transfer::AdmissionOptions admission;
  // Total transfer-rate cap in bytes/sec (0 = unlimited). Scheduling
  // policies bind at this rate even on networks faster than it.
  std::int64_t bandwidth_limit = 0;
  // Acceptor shards per TCP endpoint: with > 1, each endpoint binds N
  // SO_REUSEPORT listeners and the kernel load-balances incoming
  // connections across their acceptor threads (no shared accept lock).
  int acceptor_shards = 1;
  // Transfer quantum: bytes moved (and charged) per scheduler admission.
  std::int64_t block_bytes = 64 * 1024;
  bool allow_anonymous = true;
  std::string name = "nest";
  // Appliance identity used when this NeST initiates transfers to peers
  // (Chirp THIRDPUT and cluster replica links). Register it in the peers'
  // GSI registries.
  std::string own_subject;
  std::string own_secret;

  // Hierarchical storage (docs/hsm.md). A cold tier is attached when
  // cold_dir is set or cold_backend is "mem"; reads of cold data then get
  // the retryable staging reply while the recall worker stages the file
  // back, and the migrator drains expired best-effort lot data per scan.
  std::string cold_backend;  // "mem" | "local" (default: by cold_dir)
  std::string cold_dir;      // host directory for the "local" cold tier
  std::int64_t cold_capacity = 10'000'000'000;
  // SlowFs tape model: sustained bandwidth (bytes/sec) and per-open
  // positioning cost. Zero disables the corresponding throttle.
  std::int64_t cold_bandwidth = 12LL * 1024 * 1024;
  int cold_open_latency_ms = 0;
  Nanos hsm_scan_interval = 10 * kSecond;  // migration/recall worker cadence
  bool hsm_auto_migrate = true;  // worker drains expired lots by policy
  bool hsm_worker = true;        // background worker (off: poll via hsm())
  // Stride tickets pinning the migrate/recall scheduler classes against
  // live protocol classes (0 = leave the scheduler default). Requires a
  // stride scheduler; this is the migration pacing lever.
  std::int64_t hsm_migrate_tickets = 0;
  std::int64_t hsm_recall_tickets = 0;

  // Cluster federation (docs/cluster.md). A node joins a cluster when
  // `peers` is non-empty or its role is not standalone; `cluster.name`
  // defaults to `name` when left empty.
  cluster::ClusterConfig cluster;

  // Listener ports: 0 = ephemeral (query after start), -1 = disabled.
  int chirp_port = 0;
  int http_port = 0;
  int ftp_port = 0;
  int gridftp_port = 0;
  int nfs_port = 0;  // UDP

  // Idle-connection read timeout, ms (bounds shutdown latency).
  int idle_timeout_ms = 30'000;

  // Metadata journal directory; empty = no journal (lot/ACL/quota state
  // dies with the process). With a journal, recovery runs before any
  // endpoint binds, and every metadata mutation is acknowledged only
  // once durable per journal_sync.
  std::string journal_dir;
  journal::SyncMode journal_sync = journal::SyncMode::always;
  Nanos journal_commit_interval = 5 * kMillisecond;  // group-commit cadence
  std::uint64_t journal_snapshot_every = 4096;       // compaction cadence

  // Failpoints to arm at startup, "name=spec;name=spec" (action grammar:
  // docs/fault-injection.md). Armed in init() before any endpoint binds;
  // the process-wide registry can also be driven at runtime via the Chirp
  // FAULT op and $NEST_FAILPOINTS.
  std::string failpoints;
};

class NestServer {
 public:
  NEST_NODISCARD
  static Result<std::unique_ptr<NestServer>> start(NestServerOptions options);
  ~NestServer();
  NestServer(const NestServer&) = delete;
  NestServer& operator=(const NestServer&) = delete;

  void stop();

  uint16_t chirp_port() const { return chirp_port_; }
  uint16_t http_port() const { return http_port_; }
  uint16_t ftp_port() const { return ftp_port_; }
  uint16_t gridftp_port() const { return gridftp_port_; }
  uint16_t nfs_port() const { return nfs_port_; }

  protocol::GsiRegistry& gsi() { return gsi_; }
  dispatcher::Dispatcher& dispatcher() { return *dispatcher_; }
  storage::StorageManager& storage() { return *storage_; }
  transfer::TransferManager& tm() { return *tm_; }
  // Null when the node is not clustered.
  cluster::ClusterNode* cluster() { return cluster_.get(); }
  // Null when no cold tier is configured.
  hsm::HsmManager* hsm() { return hsm_.get(); }

 private:
  explicit NestServer(NestServerOptions options);
  NEST_NODISCARD Status init();
  // Binds the HTTP, FTP, and GridFTP endpoints (defined in endpoints.cpp).
  NEST_NODISCARD
  Status make_extra_endpoints(const protocol::ServerContext& ctx);
  NEST_NODISCARD
  Status bind_endpoint(int port,
                       std::unique_ptr<protocol::ProtocolHandler> handler,
                       uint16_t* out_port);
  void accept_loop(net::TcpListener* listener,
                   protocol::ProtocolHandler* handler);

  NestServerOptions options_;
  protocol::GsiRegistry gsi_;
  std::unique_ptr<journal::Journal> journal_;
  std::unique_ptr<storage::StorageManager> storage_;
  std::unique_ptr<transfer::TransferManager> tm_;
  std::unique_ptr<dispatcher::Dispatcher> dispatcher_;
  std::unique_ptr<protocol::TransferExecutor> executor_;
  std::unique_ptr<hsm::HsmManager> hsm_;
  std::unique_ptr<cluster::ClusterNode> cluster_;

  struct Endpoint {
    std::unique_ptr<net::TcpListener> listener;
    // Shared because REUSEPORT shards of one port serve through the same
    // handler instance (handlers keep per-connection state on the stack).
    std::shared_ptr<protocol::ProtocolHandler> handler;
    std::thread acceptor;
  };
  std::vector<Endpoint> endpoints_;
  std::unique_ptr<protocol::NfsService> nfs_;  // UDP RPC service

  Mutex conn_mu_{lockrank::Rank::server_conn, "server.conn"};
  std::vector<std::thread> connections_ GUARDED_BY(conn_mu_);
  // Live connection sockets, for shutdown-on-stop.
  std::set<int> conn_fds_ GUARDED_BY(conn_mu_);
  std::atomic<bool> stopping_{false};

  uint16_t chirp_port_ = 0;
  uint16_t http_port_ = 0;
  uint16_t ftp_port_ = 0;
  uint16_t gridftp_port_ = 0;
  uint16_t nfs_port_ = 0;
};

}  // namespace nest::server
