#include "server/config.h"

#include "common/string_util.h"

namespace nest::server {

namespace {

Result<transfer::ConcurrencyModel> model_by_name(const std::string& name) {
  if (name == "threads") return transfer::ConcurrencyModel::threads;
  if (name == "processes") return transfer::ConcurrencyModel::processes;
  if (name == "events") return transfer::ConcurrencyModel::events;
  if (name == "staged") return transfer::ConcurrencyModel::staged;
  return Error{Errc::invalid_argument, "unknown model '" + name + "'"};
}

}  // namespace

Result<NestdConfig> options_from_config(const Config& cfg) {
  NestdConfig out;
  NestServerOptions& opts = out.options;
  opts.root_dir = cfg.get_string("root");
  opts.backend = cfg.get_string("backend");  // mem | local | extent
  opts.capacity = cfg.get_size("capacity", 1'000'000'000);
  opts.name = cfg.get_string("name", "nest");
  opts.chirp_port = static_cast<int>(cfg.get_int("chirp_port", 9094));
  opts.http_port = static_cast<int>(cfg.get_int("http_port", 9080));
  opts.ftp_port = static_cast<int>(cfg.get_int("ftp_port", 9021));
  opts.gridftp_port = static_cast<int>(cfg.get_int("gridftp_port", 9811));
  opts.nfs_port = static_cast<int>(cfg.get_int("nfs_port", 9049));
  opts.allow_anonymous = cfg.get_bool("anonymous", true);
  opts.transfer_slots = static_cast<int>(cfg.get_int("slots", 8));
  opts.bandwidth_limit = cfg.get_size("bandwidth", 0);
  opts.acceptor_shards = static_cast<int>(cfg.get_int("acceptor_shards", 1));
  if (opts.acceptor_shards < 1 || opts.acceptor_shards > 64) {
    return Error{Errc::invalid_argument,
                 "acceptor_shards must be in [1, 64]"};
  }
  opts.block_bytes = cfg.get_size("block_bytes", 64 * 1024);
  if (opts.block_bytes < 4096) {
    return Error{Errc::invalid_argument, "block_bytes must be >= 4096"};
  }

  // Admission control (both default 0 = disabled: queue without bound).
  opts.admission.target_ms =
      static_cast<double>(cfg.get_int("admission_target_ms", 0));
  if (opts.admission.target_ms < 0) {
    return Error{Errc::invalid_argument,
                 "admission_target_ms must be >= 0"};
  }
  opts.admission.max_queue =
      static_cast<int>(cfg.get_int("admission_max_queue", 0));
  if (opts.admission.max_queue < 0) {
    return Error{Errc::invalid_argument,
                 "admission_max_queue must be >= 0"};
  }

  // Metadata journal (empty journal = disabled).
  opts.journal_dir = cfg.get_string("journal");
  if (cfg.has("journal_sync")) {
    auto mode = journal::sync_mode_by_name(cfg.get_string("journal_sync"));
    if (!mode.ok()) return mode.error();
    opts.journal_sync = *mode;
  }
  opts.journal_commit_interval =
      cfg.get_duration("journal_commit", 5 * kMillisecond);
  if (opts.journal_commit_interval <= 0) {
    return Error{Errc::invalid_argument, "journal_commit must be positive"};
  }
  opts.journal_snapshot_every = static_cast<std::uint64_t>(
      cfg.get_int("journal_snapshot_every", 4096));
  if (cfg.has("journal_sync") && opts.journal_dir.empty()) {
    return Error{Errc::invalid_argument,
                 "journal_sync set but no journal directory"};
  }

  // Hierarchical storage (docs/hsm.md); no cold_dir and no cold_backend
  // means no cold tier.
  opts.cold_dir = cfg.get_string("cold_dir");
  opts.cold_backend = cfg.get_string("cold_backend");
  opts.cold_capacity = cfg.get_size("cold_capacity", 10'000'000'000);
  opts.cold_bandwidth = cfg.get_size("cold_bandwidth", 12LL * 1024 * 1024);
  opts.cold_open_latency_ms =
      static_cast<int>(cfg.get_int("cold_open_latency_ms", 0));
  if (opts.cold_bandwidth < 0 || opts.cold_open_latency_ms < 0) {
    return Error{Errc::invalid_argument, "cold throttles must be >= 0"};
  }
  opts.hsm_scan_interval = cfg.get_duration("hsm_scan", 10 * kSecond);
  if (opts.hsm_scan_interval <= 0) {
    return Error{Errc::invalid_argument, "hsm_scan must be positive"};
  }
  opts.hsm_auto_migrate = cfg.get_bool("hsm_auto_migrate", true);
  opts.hsm_worker = cfg.get_bool("hsm_worker", true);
  opts.hsm_migrate_tickets = cfg.get_int("hsm_migrate_tickets", 0);
  opts.hsm_recall_tickets = cfg.get_int("hsm_recall_tickets", 0);
  if (opts.hsm_migrate_tickets < 0 || opts.hsm_recall_tickets < 0) {
    return Error{Errc::invalid_argument, "hsm tickets must be >= 0"};
  }
  if ((opts.hsm_migrate_tickets > 0 || opts.hsm_recall_tickets > 0) &&
      cfg.get_string("scheduler", "fifo").rfind("stride", 0) != 0) {
    return Error{Errc::invalid_argument,
                 "hsm_*_tickets requires a stride scheduler"};
  }

  // Startup failpoint drills, "name=spec;..." — validated at server init.
  opts.failpoints = cfg.get_string("failpoints");

  // Cluster federation (docs/cluster.md). The node name doubles as its
  // in-cluster identity; peers are "name@host:chirp_port".
  if (cfg.has("cluster_role")) {
    auto role = cluster::role_by_name(cfg.get_string("cluster_role"));
    if (!role.ok()) return role.error();
    opts.cluster.role = *role;
  }
  for (const auto& entry : split(cfg.get_string("cluster_peers"), ',')) {
    const auto text = trim(entry);
    if (text.empty()) continue;
    auto addr = cluster::parse_peer_address(std::string(text));
    if (!addr.ok()) return addr.error();
    opts.cluster.peers.push_back(std::move(*addr));
  }
  if (opts.cluster.role != cluster::Role::standalone &&
      opts.cluster.peers.empty()) {
    return Error{Errc::invalid_argument,
                 "cluster_role set but cluster_peers is empty"};
  }
  opts.cluster.replication_factor =
      static_cast<int>(cfg.get_int("replication_factor", 1));
  if (opts.cluster.replication_factor < 1) {
    return Error{Errc::invalid_argument,
                 "replication_factor must be >= 1"};
  }
  opts.cluster.heartbeat_interval =
      cfg.get_duration("cluster_heartbeat", 2 * kSecond);
  opts.cluster.heartbeat_timeout =
      cfg.get_duration("cluster_heartbeat_timeout", 15 * kSecond);
  if (opts.cluster.heartbeat_interval <= 0 ||
      opts.cluster.heartbeat_timeout < opts.cluster.heartbeat_interval) {
    return Error{Errc::invalid_argument,
                 "cluster heartbeat timeout must be >= interval > 0"};
  }
  opts.cluster.name = opts.name;
  // Outbound identity for peer links (REPL) and third-party transfers.
  // The subject defaults to the node name whenever a secret is given —
  // peers register each other under their node names.
  opts.own_subject = cfg.get_string("own_subject");
  opts.own_secret = cfg.get_string("own_secret");
  if (opts.own_subject.empty() && !opts.own_secret.empty()) {
    opts.own_subject = opts.name;
  }

  const std::string scheduler = cfg.get_string("scheduler", "fifo");
  {
    // Validate via the factory the transfer manager itself uses.
    ManualClock probe;
    if (transfer::make_scheduler(scheduler, probe) == nullptr) {
      return Error{Errc::invalid_argument,
                   "unknown scheduler '" + scheduler + "'"};
    }
  }
  opts.tm.scheduler = scheduler;
  opts.tm.adaptive = cfg.get_bool("adaptive", true);

  // models = threads,events[,processes,staged]: restrict/extend the set
  // the adaptive selector rotates through (or pick the fixed model when
  // adaptive = false: first entry wins).
  if (cfg.has("models")) {
    std::vector<transfer::ConcurrencyModel> models;
    for (const auto& name : split(cfg.get_string("models"), ',')) {
      auto m = model_by_name(std::string(trim(name)));
      if (!m.ok()) return m.error();
      models.push_back(*m);
    }
    if (models.empty())
      return Error{Errc::invalid_argument, "models list is empty"};
    opts.tm.adapt.enabled = models;
    opts.tm.fixed_model = models.front();
  }

  for (const auto& [key, value] : cfg.entries()) {
    if (key.rfind("user.", 0) == 0) {
      ConfiguredUser user;
      user.name = key.substr(5);
      const auto parts = split(value, ':');
      user.secret = parts[0];
      if (parts.size() > 1) user.groups = split(parts[1], ',');
      out.users.push_back(std::move(user));
    } else if (key.rfind("tickets.", 0) == 0) {
      const auto n = parse_int(value);
      if (!n || *n < 1) {
        return Error{Errc::invalid_argument,
                     "bad ticket count for " + key};
      }
      out.tickets.push_back(TicketEntry{key.substr(8), *n});
    }
  }
  if (!out.tickets.empty() && opts.tm.scheduler.rfind("stride", 0) != 0) {
    return Error{Errc::invalid_argument,
                 "tickets.* requires a stride scheduler"};
  }
  return out;
}

void apply_runtime_config(const NestdConfig& cfg, NestServer& server) {
  for (const auto& user : cfg.users) {
    server.gsi().add_user(user.name, user.secret, user.groups);
  }
  if (auto* stride = server.tm().stride()) {
    for (const auto& entry : cfg.tickets) {
      stride->set_tickets(entry.cls, entry.tickets);
    }
  }
}

}  // namespace nest::server
