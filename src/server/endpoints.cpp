#include "protocol/ftp_handler.h"
#include "protocol/http_handler.h"
#include "server/nest_server.h"

namespace nest::server {

Status NestServer::make_extra_endpoints(const protocol::ServerContext& ctx) {
  if (auto s = bind_endpoint(options_.http_port,
                             std::make_unique<protocol::HttpHandler>(ctx),
                             &http_port_);
      !s.ok()) {
    return s;
  }
  if (auto s = bind_endpoint(options_.ftp_port,
                             std::make_unique<protocol::FtpHandler>(ctx),
                             &ftp_port_);
      !s.ok()) {
    return s;
  }
  return bind_endpoint(options_.gridftp_port,
                       std::make_unique<protocol::GridFtpHandler>(ctx),
                       &gridftp_port_);
}

}  // namespace nest::server
