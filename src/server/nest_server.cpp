#include "server/nest_server.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "cluster/chirp_link.h"
#include "common/log.h"
#include "hsm/slowfs.h"
#include "fault/failpoint.h"
#include "protocol/chirp_handler.h"
#include "storage/extentfs.h"
#include "storage/localfs.h"
#include "storage/memfs.h"

namespace nest::server {

using protocol::ProtocolHandler;

namespace {

// GSI challenge/response over a fresh Chirp stream (banner already
// consumed), used by outbound cluster replica links. Mirrors the
// ChirpClient login sequence.
Status gsi_login(net::TcpStream& stream, const std::string& subject,
                 const std::string& secret) {
  if (subject.empty()) {
    if (auto s = stream.write_all(std::string("AUTH anonymous\r\n")); !s.ok())
      return s;
    auto reply = stream.read_line();
    if (!reply.ok()) return Status{reply.error()};
    if (reply->rfind("230", 0) != 0)
      return Status{Errc::not_authenticated, *reply};
    return {};
  }
  if (auto s = stream.write_all("AUTH " + subject + "\r\n"); !s.ok())
    return s;
  auto challenge = stream.read_line();
  if (!challenge.ok()) return Status{challenge.error()};
  if (challenge->rfind("334 ", 0) != 0)
    return Status{Errc::not_authenticated, *challenge};
  const std::string response =
      protocol::GsiRegistry::respond(secret, challenge->substr(4));
  if (auto s = stream.write_all("RESPONSE " + response + "\r\n"); !s.ok())
    return s;
  auto reply = stream.read_line();
  if (!reply.ok()) return Status{reply.error()};
  if (reply->rfind("230", 0) != 0)
    return Status{Errc::not_authenticated, *reply};
  return {};
}

}  // namespace

NestServer::NestServer(NestServerOptions options)
    : options_(std::move(options)) {}

Result<std::unique_ptr<NestServer>> NestServer::start(
    NestServerOptions options) {
  std::unique_ptr<NestServer> server(new NestServer(std::move(options)));
  if (auto s = server->init(); !s.ok()) return Error{s.error()};
  return server;
}

Status NestServer::init() {
  // Startup fault drills: arm configured failpoints first so even backend
  // bring-up and journal recovery run under them.
  if (!options_.failpoints.empty()) {
    if (auto s = fault::registry().arm_many(options_.failpoints); !s.ok())
      return s;
  }

  // Storage backend.
  std::unique_ptr<storage::VirtualFs> fs;
  std::string backend = options_.backend;
  if (backend.empty()) backend = options_.root_dir.empty() ? "mem" : "local";
  if (backend == "mem") {
    fs = std::make_unique<storage::MemFs>(RealClock::instance(),
                                          options_.capacity);
  } else if (backend == "local") {
    auto local =
        storage::LocalFs::open_root(options_.root_dir, options_.capacity);
    if (!local.ok()) return Status{local.error()};
    fs = std::move(local.value());
  } else if (backend == "extent") {
    if (options_.root_dir.empty()) {
      fs = std::make_unique<storage::ExtentFs>(RealClock::instance(),
                                               options_.capacity);
    } else {
      auto vol = storage::ExtentFs::open_volume(
          RealClock::instance(), options_.root_dir, options_.capacity);
      if (!vol.ok()) return Status{vol.error()};
      fs = std::move(vol.value());
    }
  } else {
    return Status{Errc::invalid_argument, "unknown backend '" + backend + "'"};
  }
  if (!options_.journal_dir.empty())
    options_.storage.journal_snapshot_every = options_.journal_snapshot_every;
  storage_ = std::make_unique<storage::StorageManager>(
      RealClock::instance(), std::move(fs), options_.storage);

  // Cold tier (attached before journal recovery so replayed residency
  // records can be scrubbed against the actual cold store afterwards).
  std::string cold_backend = options_.cold_backend;
  if (cold_backend.empty() && !options_.cold_dir.empty())
    cold_backend = "local";
  if (!cold_backend.empty()) {
    std::unique_ptr<storage::VirtualFs> cold;
    if (cold_backend == "mem") {
      cold = std::make_unique<storage::MemFs>(RealClock::instance(),
                                              options_.cold_capacity);
    } else if (cold_backend == "local") {
      auto local = storage::LocalFs::open_root(options_.cold_dir,
                                               options_.cold_capacity);
      if (!local.ok()) return Status{local.error()};
      cold = std::move(local.value());
    } else {
      return Status{Errc::invalid_argument,
                    "unknown cold backend '" + cold_backend + "'"};
    }
    if (options_.cold_bandwidth > 0 || options_.cold_open_latency_ms > 0) {
      cold = std::make_unique<hsm::SlowFs>(
          std::move(cold),
          hsm::SlowFsOptions{options_.cold_bandwidth,
                             options_.cold_open_latency_ms});
    }
    storage_->attach_cold_tier(std::move(cold));
  }

  // Metadata journal: recover lot/ACL/quota state and install the
  // write-ahead barrier before any endpoint can accept a request.
  if (!options_.journal_dir.empty()) {
    journal::JournalOptions jopts;
    jopts.dir = options_.journal_dir;
    jopts.sync = options_.journal_sync;
    jopts.commit_interval = options_.journal_commit_interval;
    jopts.apply_env();  // JOURNAL_CRASH_AFTER compat shim (see journal.h);
                        // new drills use journal.* failpoints instead
    auto j = journal::Journal::open(RealClock::instance(), jopts);
    if (!j.ok()) return Status{j.error()};
    journal_ = std::move(j.value());
    if (auto s = storage_->attach_journal(*journal_); !s.ok()) return s;
    // Resolve any migration/recall the crash interrupted: the journal only
    // records stable residency, so the scrub walks both tiers and deletes
    // whichever half-copy the records disown.
    if (storage_->cold_tier_attached()) {
      if (auto s = storage_->hsm_recover(); !s.ok()) return s;
    }
  }

  tm_ = std::make_unique<transfer::TransferManager>(RealClock::instance(),
                                                    options_.tm);
  dispatcher::Dispatcher::Options dopts;
  dopts.transfer_slots = options_.transfer_slots;
  dopts.advertised_name = options_.name;
  dopts.admission = options_.admission;
  dispatcher_ = std::make_unique<dispatcher::Dispatcher>(
      RealClock::instance(), *storage_, *tm_, dopts);
  executor_ = std::make_unique<protocol::TransferExecutor>(
      RealClock::instance(), *tm_, dispatcher_->core(),
      options_.block_bytes, options_.bandwidth_limit);

  if (storage_->cold_tier_attached()) {
    hsm::HsmOptions hopts;
    hopts.block_bytes = options_.block_bytes;
    hopts.scan_interval = options_.hsm_scan_interval;
    hopts.auto_migrate = options_.hsm_auto_migrate;
    hsm_ = std::make_unique<hsm::HsmManager>(RealClock::instance(), *storage_,
                                             &dispatcher_->core(), hopts);
    dispatcher_->set_hsm(hsm_.get());
    // HSM traffic is just another scheduler class: pinning its tickets is
    // how migration pacing trades against live client transfers.
    if (auto* stride = tm_->stride()) {
      if (options_.hsm_migrate_tickets > 0)
        stride->set_tickets("migrate", options_.hsm_migrate_tickets);
      if (options_.hsm_recall_tickets > 0)
        stride->set_tickets("recall", options_.hsm_recall_tickets);
    }
    if (options_.hsm_worker) hsm_->start();
  }

  // Cluster federation: built whenever peers are configured (a standalone
  // node with peers still heartbeats them so replica selection has a load
  // view), started only after every endpoint is up.
  if (!options_.cluster.peers.empty() ||
      options_.cluster.role != cluster::Role::standalone) {
    if (options_.cluster.name.empty()) options_.cluster.name = options_.name;
    cluster_ = std::make_unique<cluster::ClusterNode>(RealClock::instance(),
                                                      options_.cluster);
    cluster_->attach_storage(storage_.get());
    const std::string subject = options_.own_subject;
    const std::string secret = options_.own_secret;
    cluster_->set_link_factory(
        [subject, secret](const cluster::PeerAddress& addr)
            -> std::unique_ptr<cluster::ReplicaLink> {
          return std::make_unique<cluster::ChirpLink>(
              addr, [subject, secret](net::TcpStream& s) {
                return gsi_login(s, subject, secret);
              });
        });
    cluster_->set_file_reader(
        [this](const std::string& path) -> Result<std::string> {
          // Content pushes run as the appliance itself: superuser read,
          // outside any client session.
          storage::Principal self;
          self.name = storage_->options().superuser;
          self.authenticated = true;
          self.protocol = "cluster";
          auto ticket = storage_->approve_read(self, path);
          if (!ticket.ok()) return ticket.error();
          std::string data(static_cast<std::size_t>(ticket->size), '\0');
          std::size_t off = 0;
          while (off < data.size()) {
            auto n = ticket->handle->pread(
                std::span(data.data() + off, data.size() - off),
                static_cast<std::int64_t>(off));
            if (!n.ok()) return n.error();
            if (*n <= 0)
              return Error{Errc::io_error, "short read of " + path};
            off += static_cast<std::size_t>(*n);
          }
          return data;
        });
  }

  protocol::ServerContext ctx;
  ctx.dispatcher = dispatcher_.get();
  ctx.gsi = &gsi_;
  ctx.executor = executor_.get();
  ctx.allow_anonymous = options_.allow_anonymous;
  ctx.own_subject = options_.own_subject;
  ctx.own_secret = options_.own_secret;
  ctx.cluster = cluster_.get();

  if (auto s = bind_endpoint(options_.chirp_port,
                             std::make_unique<protocol::ChirpHandler>(ctx),
                             &chirp_port_);
      !s.ok()) {
    return s;
  }
  if (auto s = make_extra_endpoints(ctx); !s.ok()) return s;

  // NFS runs over UDP with its own service loop.
  if (options_.nfs_port >= 0) {
    protocol::NfsService::Options nopts;
    nopts.port = options_.nfs_port;
    nfs_ = std::make_unique<protocol::NfsService>(*dispatcher_, *executor_,
                                                  nopts);
    if (auto s = nfs_->start(); !s.ok()) return s;
    nfs_port_ = nfs_->port();
  }

  // Launch acceptors last so handlers observe fully-built state.
  for (Endpoint& ep : endpoints_) {
    ep.acceptor = std::thread(
        [this, &ep] { accept_loop(ep.listener.get(), ep.handler.get()); });
  }
  // Heartbeat/ship timers start only once this node can itself answer
  // REPL and AD requests (peers dial back concurrently).
  if (cluster_) cluster_->start();
  NEST_LOG_INFO("server", "nest '%s' up (chirp=%u http=%u ftp=%u gftp=%u "
                          "nfs=%u)",
                options_.name.c_str(), chirp_port_, http_port_, ftp_port_,
                gridftp_port_, nfs_port_);
  return {};
}

Status NestServer::bind_endpoint(
    int port, std::unique_ptr<ProtocolHandler> handler, uint16_t* out_port) {
  if (port < 0) return {};
  const int shards = std::max(1, options_.acceptor_shards);
  net::ListenOptions lopts;
  lopts.reuseport = shards > 1;
  auto listener = net::TcpListener::bind(static_cast<uint16_t>(port), lopts);
  if (!listener.ok()) return Status{listener.error()};
  // Shard 0 resolves an ephemeral request to a concrete port; the other
  // shards REUSEPORT-bind that same port and the kernel load-balances
  // connections across all of their accept queues.
  *out_port = listener->port();
  std::shared_ptr<ProtocolHandler> shared(std::move(handler));
  Endpoint ep;
  ep.listener =
      std::make_unique<net::TcpListener>(std::move(listener.value()));
  ep.handler = shared;
  endpoints_.push_back(std::move(ep));
  for (int i = 1; i < shards; ++i) {
    auto shard = net::TcpListener::bind(*out_port, lopts);
    if (!shard.ok()) return Status{shard.error()};
    Endpoint extra;
    extra.listener =
        std::make_unique<net::TcpListener>(std::move(shard.value()));
    extra.handler = shared;
    endpoints_.push_back(std::move(extra));
  }
  return {};
}

void NestServer::accept_loop(net::TcpListener* listener,
                             ProtocolHandler* handler) {
  net::AcceptBackoff backoff;
  while (!stopping_) {
    auto stream = listener->accept();
    if (!stream.ok()) {
      // Transient exhaustion (EMFILE/ENFILE/ENOBUFS) surfaces as busy:
      // sleep-and-retry with bounded exponential backoff instead of
      // spinning a core or killing the acceptor. Anything else means the
      // listener itself is gone (normally: shutdown closed it).
      if (stream.code() == Errc::busy && !stopping_) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff.next_delay_ms()));
        continue;
      }
      return;
    }
    backoff.reset();
    // Timeout setup is advisory: a stream without it still works.
    (void)stream->set_read_timeout(options_.idle_timeout_ms);
    MutexLock lock(conn_mu_);
    const int fd = stream->fd();
    conn_fds_.insert(fd);
    connections_.emplace_back(
        [this, handler, fd, s = std::move(stream.value())]() mutable {
          handler->serve(s);
          // The lambda still owns the stream, so the fd stays open (and
          // thus unrecycled) until after it is unregistered.
          MutexLock inner(conn_mu_);
          conn_fds_.erase(fd);
        });
  }
}

void NestServer::stop() {
  if (stopping_.exchange(true)) return;
  if (hsm_) hsm_->stop();
  if (cluster_) cluster_->stop();
  for (Endpoint& ep : endpoints_) ep.listener->close();
  for (Endpoint& ep : endpoints_) {
    if (ep.acceptor.joinable()) ep.acceptor.join();
  }
  if (nfs_) nfs_->stop();
  std::vector<std::thread> conns;
  {
    MutexLock lock(conn_mu_);
    conns.swap(connections_);
    // Kick handler threads out of blocking reads on idle connections.
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  if (dispatcher_) dispatcher_->stop_publishing();
}

NestServer::~NestServer() { stop(); }

}  // namespace nest::server
