#include "obs/stats.h"

#include <cmath>
#include <sstream>

namespace nest::obs {

double RollingRate::observe(Nanos now, std::int64_t cumulative) {
  MutexLock lock(mu_);
  samples_.emplace_back(now, cumulative);
  while (samples_.size() > 1 && samples_.front().first < now - window_) {
    samples_.pop_front();
  }
  const auto& [t0, c0] = samples_.front();
  if (now <= t0) return 0.0;
  return static_cast<double>(cumulative - c0) /
         to_seconds(now - t0);
}

double LoadAverage::observe(Nanos now, double instantaneous) {
  MutexLock lock(mu_);
  if (!primed_) {
    value_ = instantaneous;
    primed_ = true;
  } else {
    const Nanos dt = now > last_ ? now - last_ : 0;
    const double alpha =
        1.0 - std::exp(-static_cast<double>(dt) / static_cast<double>(tau_));
    value_ += alpha * (instantaneous - value_);
  }
  last_ = now;
  return value_;
}

double LoadAverage::value() const {
  MutexLock lock(mu_);
  return value_;
}

Stats::Stats() {
  // Fixed key set: the five wire protocols plus a catch-all. operator[]
  // here is the only mutation the map ever sees; request_latency() below
  // only does find(), so concurrent readers are safe.
  for (const char* p : {"chirp", "http", "ftp", "gridftp", "nfs", "other"}) {
    per_protocol_[p];
  }
}

Stats& Stats::global() {
  static Stats s;
  return s;
}

Histogram& Stats::request_latency(const std::string& protocol) {
  const auto it = per_protocol_.find(protocol);
  if (it != per_protocol_.end()) return it->second;
  return per_protocol_.find("other")->second;
}

namespace {
void histogram_json(std::ostringstream& os, const Histogram& h) {
  const Histogram::Snapshot s = h.snapshot();
  os << "{\"count\":" << s.count << ",\"mean_ms\":" << s.mean_ms()
     << ",\"p50_ms\":" << s.percentile_ms(50)
     << ",\"p90_ms\":" << s.percentile_ms(90)
     << ",\"p99_ms\":" << s.percentile_ms(99) << ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::int64_t n = s.buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (!first) os << ",";
    first = false;
    // [floor_us, count] pairs; only populated buckets are emitted.
    os << "[" << Histogram::bucket_floor(b) / 1000 << "," << n << "]";
  }
  os << "]}";
}
}  // namespace

std::string Stats::to_json() const {
  std::ostringstream os;
  os << "{\"requests\":" << requests.load(std::memory_order_relaxed)
     << ",\"errors\":" << errors.load(std::memory_order_relaxed)
     << ",\"bytes_queued\":" << bytes_queued.load(std::memory_order_relaxed)
     << ",\"cache_hot\":" << cache_hot.load(std::memory_order_relaxed)
     << ",\"cache_cold\":" << cache_cold.load(std::memory_order_relaxed)
     << ",\"admitted\":" << admitted.load(std::memory_order_relaxed)
     << ",\"shed\":" << shed.load(std::memory_order_relaxed)
     << ",\"request_latency\":";
  histogram_json(os, request_all);
  os << ",\"request_latency_by_protocol\":{";
  bool first = true;
  for (const auto& [proto, hist] : per_protocol_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << proto << "\":";
    histogram_json(os, hist);
  }
  os << "},\"sched_hold\":";
  histogram_json(os, sched_hold);
  os << ",\"transfer_latency\":";
  histogram_json(os, transfer_latency);
  os << ",\"journal_fsync_wait\":";
  histogram_json(os, journal_fsync_wait);
  os << ",\"hsm\":{\"migrations\":"
     << hsm_migrations.load(std::memory_order_relaxed)
     << ",\"recalls\":" << hsm_recalls.load(std::memory_order_relaxed)
     << ",\"recall_joins\":"
     << hsm_recall_joins.load(std::memory_order_relaxed)
     << ",\"bytes_migrated\":"
     << hsm_bytes_migrated.load(std::memory_order_relaxed)
     << ",\"bytes_recalled\":"
     << hsm_bytes_recalled.load(std::memory_order_relaxed)
     << ",\"staging_busy\":"
     << hsm_staging_busy.load(std::memory_order_relaxed)
     << ",\"recall_wait\":";
  histogram_json(os, hsm_recall_wait);
  os << ",\"migrate_time\":";
  histogram_json(os, hsm_migrate_time);
  os << "}}";
  return os.str();
}

void Stats::reset() {
  requests.store(0, std::memory_order_relaxed);
  errors.store(0, std::memory_order_relaxed);
  bytes_queued.store(0, std::memory_order_relaxed);
  cache_hot.store(0, std::memory_order_relaxed);
  cache_cold.store(0, std::memory_order_relaxed);
  admitted.store(0, std::memory_order_relaxed);
  shed.store(0, std::memory_order_relaxed);
  hsm_migrations.store(0, std::memory_order_relaxed);
  hsm_recalls.store(0, std::memory_order_relaxed);
  hsm_recall_joins.store(0, std::memory_order_relaxed);
  hsm_bytes_migrated.store(0, std::memory_order_relaxed);
  hsm_bytes_recalled.store(0, std::memory_order_relaxed);
  hsm_staging_busy.store(0, std::memory_order_relaxed);
  request_all.reset();
  sched_hold.reset();
  transfer_latency.reset();
  journal_fsync_wait.reset();
  hsm_recall_wait.reset();
  hsm_migrate_time.reset();
  for (auto& [proto, hist] : per_protocol_) hist.reset();
}

}  // namespace nest::obs
