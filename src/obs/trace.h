// Per-request trace spans (observability tentpole, PR 3).
//
// A protocol handler opens a Span as it starts serving a request; with no
// active trace on the thread, that span mints a fresh trace id and becomes
// the root. Every nested layer (dispatcher, storage, journal, transfer)
// opens its own child Span; the parent link comes from a thread-local
// SpanContext that each Span saves and restores RAII-style, so the tree
// shape follows the call stack with no plumbing through signatures.
//
// Recording is a seqlock-style lock-free per-thread ring buffer:
//   * each recording thread owns (exclusively) one Ring; rings are handed
//     out from a registry under a mutex the first time a thread records
//     into a given buffer, and returned to a freelist when the thread
//     exits so connection-per-thread servers do not grow without bound;
//   * a finished span is written into the owner ring's next slot guarded
//     by a per-slot sequence word (odd = write in progress). Every slot
//     field is a relaxed std::atomic, so concurrent snapshot() readers are
//     data-race-free (TSan-clean); the sequence re-check discards slots
//     caught mid-write. Span names must point at static storage — a name
//     is published as a single atomic pointer store, never a char copy.
//   * writers never block and never allocate after their ring exists;
//     readers walk all rings under the registry mutex.
//
// Timestamps come from the buffer's Clock (RealClock by default,
// injectable for deterministic tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"

namespace nest::obs {

enum class Layer : std::uint8_t { protocol, dispatcher, transfer, storage,
                                  journal };
const char* layer_name(Layer l) noexcept;

// A completed span as read back out of the ring.
struct SpanData {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  // 0 = root of its trace
  Nanos start = 0;
  Nanos end = 0;
  const char* name = "";  // static storage
  Layer layer = Layer::protocol;
  std::int64_t value = 0;  // op-specific annotation (bytes, lsn, ...)
};

// The ambient trace position of the current thread.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  bool active() const { return trace_id != 0; }
};

SpanContext current_context();
void set_context(SpanContext ctx);

class TraceBuffer {
 public:
  // `ring_capacity` = spans retained per recording thread.
  explicit TraceBuffer(std::size_t ring_capacity = 2048);
  ~TraceBuffer();
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  // Process-wide buffer the instrumentation hooks record into.
  static TraceBuffer& instance();

  // Timestamp source; nullptr restores RealClock. Test hook.
  void set_clock(Clock* clock);

  std::uint64_t mint_trace_id() {
    return next_trace_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t mint_span_id() {
    return next_span_.fetch_add(1, std::memory_order_relaxed);
  }
  Nanos now() const;

  // Publish a finished span (called from Span's destructor).
  void record(const SpanData& s);

  // All retained spans (per-ring insertion order, oldest first within a
  // ring). Slots caught mid-write are skipped.
  std::vector<SpanData> snapshot() const;
  // Spans of one trace, sorted by start time.
  std::vector<SpanData> trace(std::uint64_t trace_id) const;
  // Trace id of the most recently *started* span matching layer+name
  // (0 when absent) — how tests and the CLI find "the last GET".
  std::uint64_t find_trace(Layer layer, const std::string& name) const;

  std::string dump_json() const;
  static std::string to_json(const std::vector<SpanData>& spans);
  // Indented parent→child rendering of one trace's spans.
  static std::string render_tree(const std::vector<SpanData>& spans);

  std::size_t ring_capacity() const { return cap_; }
  std::size_t ring_count() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // odd while a write is in flight
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> parent_id{0};
    std::atomic<Nanos> start{0};
    std::atomic<Nanos> end{0};
    std::atomic<const char*> name{""};
    std::atomic<std::uint8_t> layer{0};
    std::atomic<std::int64_t> value{0};
  };
  struct Ring {
    explicit Ring(std::size_t cap)
        : slots(std::make_unique<Slot[]>(cap)) {}
    std::unique_ptr<Slot[]> slots;
    std::atomic<std::uint64_t> head{0};   // total spans ever written
    std::atomic<bool> in_use{false};      // claimed by a live thread
  };

  Ring* claim_ring();   // registry path: reuse a free ring or grow
  Ring* local_ring();   // thread-local fast path

  const std::size_t cap_;
  const std::uint64_t buffer_id_;  // for thread-local cache validation
  std::atomic<std::uint64_t> next_trace_{1};
  std::atomic<std::uint64_t> next_span_{1};
  std::atomic<Clock*> clock_;
  mutable Mutex rings_mu_{lockrank::Rank::obs_rings, "trace.rings"};
  // The vector (not the rings it points at) is guarded: writers record
  // into their claimed ring's atomic slots with no lock held.
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(rings_mu_);
};

// RAII span. Construction captures the parent from the thread-local
// context (minting a trace id when none is active, i.e. at the protocol
// edge), installs itself as the current context, and stamps the start
// time; destruction stamps the end time, records into the buffer, and
// restores the saved context. `name` must be a string literal or other
// static storage.
class Span {
 public:
  explicit Span(Layer layer, const char* name,
                TraceBuffer& buf = TraceBuffer::instance());
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_value(std::int64_t v) { data_.value = v; }
  std::uint64_t trace_id() const { return data_.trace_id; }
  std::uint64_t span_id() const { return data_.span_id; }

 private:
  TraceBuffer& buf_;
  SpanContext saved_;
  SpanData data_;
};

}  // namespace nest::obs
