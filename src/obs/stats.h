// Appliance-wide histograms, counters, and rate trackers (observability
// tentpole, PR 3).
//
// Stats::global() is the registry every instrumentation hook records
// into; the dispatcher exports it as JSON (`GET /stats`, the Chirp STATS
// op) and folds rolled-up numbers into the periodic discovery ClassAd.
// All members are wait-free atomics or atomic-bucket Histograms, so hooks
// are safe on the block-transfer hot path. A separate Stats instance can
// be constructed for unit tests; reset() is a test hook (not linearizable
// against concurrent writers).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/mutex.h"

namespace nest::obs {

// Average rate (units/sec) of a monotone cumulative counter over a
// trailing time window. observe() both samples and reports, so callers
// that poll periodically (the ClassAd publisher) maintain the window for
// free. Mutex-guarded: callers are the publisher thread and stats
// queries, never the data path.
class RollingRate {
 public:
  explicit RollingRate(Nanos window = 30 * kSecond) : window_(window) {}
  double observe(Nanos now, std::int64_t cumulative);

 private:
  Nanos window_;
  Mutex mu_{lockrank::Rank::obs_load, "obs.rolling_rate"};
  std::deque<std::pair<Nanos, std::int64_t>> samples_ GUARDED_BY(mu_);
};

// Exponentially-weighted moving average with time constant `tau`; the
// classic load-average shape. observe() folds in an instantaneous sample.
class LoadAverage {
 public:
  explicit LoadAverage(Nanos tau = 60 * kSecond) : tau_(tau) {}
  double observe(Nanos now, double instantaneous);
  double value() const;

 private:
  Nanos tau_;
  mutable Mutex mu_{lockrank::Rank::obs_load, "obs.load_average"};
  Nanos last_ GUARDED_BY(mu_) = 0;
  double value_ GUARDED_BY(mu_) = 0.0;
  bool primed_ GUARDED_BY(mu_) = false;
};

class Stats {
 public:
  Stats();
  static Stats& global();

  // --- request accounting ---
  // Per-protocol request latency; unknown protocol names fall into the
  // "other" histogram. The key set is fixed at construction so concurrent
  // lookups never race a rehash.
  Histogram& request_latency(const std::string& protocol);
  const std::map<std::string, Histogram>& per_protocol() const {
    return per_protocol_;
  }
  Histogram request_all;                  // every request, all protocols
  std::atomic<std::int64_t> requests{0};  // completed (any outcome)
  std::atomic<std::int64_t> errors{0};    // completed with failure status

  // --- transfer path ---
  Histogram sched_hold;        // acquire→grant wait per block quantum
  Histogram transfer_latency;  // whole-transfer wall time
  // Bytes admitted (transfer registered) but not yet moved:
  // sum over live requests of max(0, size - done).
  std::atomic<std::int64_t> bytes_queued{0};
  // Cache-aware admission split: requests predicted resident vs not.
  std::atomic<std::int64_t> cache_hot{0};
  std::atomic<std::int64_t> cache_cold{0};
  // Admission control: transfers admitted vs shed with `busy` (all shed
  // reasons; the controller's snapshot breaks them down).
  std::atomic<std::int64_t> admitted{0};
  std::atomic<std::int64_t> shed{0};

  // --- journal ---
  Histogram journal_fsync_wait;  // barrier wait per durable metadata op

  // --- HSM (cold tier) ---
  Histogram hsm_recall_wait;   // cold->hot staging wall time per recall
  Histogram hsm_migrate_time;  // hot->cold drain wall time per file
  std::atomic<std::int64_t> hsm_migrations{0};     // files drained cold
  std::atomic<std::int64_t> hsm_recalls{0};        // staged recalls executed
  std::atomic<std::int64_t> hsm_recall_joins{0};   // readers that piggybacked
  std::atomic<std::int64_t> hsm_bytes_migrated{0};
  std::atomic<std::int64_t> hsm_bytes_recalled{0};
  // Reads answered with the retryable staging error (recall pending).
  std::atomic<std::int64_t> hsm_staging_busy{0};

  // Snapshot-consistent JSON export of everything above.
  std::string to_json() const;
  void reset();

 private:
  std::map<std::string, Histogram> per_protocol_;
};

}  // namespace nest::obs
