#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace nest::obs {

namespace {

// Thread-local ring cache. A thread may record into several TraceBuffers
// over its lifetime (the global one plus per-test instances), so the cache
// maps buffer id -> claimed ring. On thread exit the rings are returned to
// their buffers' freelists — but only if the buffer still exists, which a
// process-wide registry of live buffer ids tracks.
Mutex& live_mu() {
  static Mutex mu{lockrank::Rank::obs_live, "trace.live_buffers"};
  return mu;
}
std::map<std::uint64_t, TraceBuffer*>& live_buffers() {
  static std::map<std::uint64_t, TraceBuffer*> m;
  return m;
}
std::uint64_t register_buffer(TraceBuffer* b) {
  static std::uint64_t next_id = 1;
  MutexLock lock(live_mu());
  const std::uint64_t id = next_id++;
  live_buffers().emplace(id, b);
  return id;
}
void unregister_buffer(std::uint64_t id) {
  MutexLock lock(live_mu());
  live_buffers().erase(id);
}

thread_local SpanContext t_context;

}  // namespace

const char* layer_name(Layer l) noexcept {
  switch (l) {
    case Layer::protocol: return "protocol";
    case Layer::dispatcher: return "dispatcher";
    case Layer::transfer: return "transfer";
    case Layer::storage: return "storage";
    case Layer::journal: return "journal";
  }
  return "?";
}

SpanContext current_context() { return t_context; }
void set_context(SpanContext ctx) { t_context = ctx; }

TraceBuffer::TraceBuffer(std::size_t ring_capacity)
    : cap_(ring_capacity == 0 ? 1 : ring_capacity),
      buffer_id_(register_buffer(this)),
      clock_(&RealClock::instance()) {}

TraceBuffer::~TraceBuffer() { unregister_buffer(buffer_id_); }

TraceBuffer& TraceBuffer::instance() {
  static TraceBuffer buf;
  return buf;
}

void TraceBuffer::set_clock(Clock* clock) {
  clock_.store(clock != nullptr ? clock : &RealClock::instance(),
               std::memory_order_release);
}

Nanos TraceBuffer::now() const {
  return clock_.load(std::memory_order_acquire)->now();
}

TraceBuffer::Ring* TraceBuffer::claim_ring() {
  MutexLock lock(rings_mu_);
  for (auto& r : rings_) {
    if (!r->in_use.load(std::memory_order_relaxed)) {
      r->in_use.store(true, std::memory_order_relaxed);
      return r.get();
    }
  }
  rings_.push_back(std::make_unique<Ring>(cap_));
  rings_.back()->in_use.store(true, std::memory_order_relaxed);
  return rings_.back().get();
}

TraceBuffer::Ring* TraceBuffer::local_ring() {
  struct Cache {
    struct Entry {
      std::uint64_t buffer_id;
      TraceBuffer::Ring* ring;
    };
    std::vector<Entry> entries;
    ~Cache() {
      // Release claimed rings back to buffers that are still alive.
      MutexLock lock(live_mu());
      for (const Entry& e : entries) {
        if (live_buffers().count(e.buffer_id) != 0) {
          e.ring->in_use.store(false, std::memory_order_relaxed);
        }
      }
    }
  };
  thread_local Cache cache;
  for (const auto& e : cache.entries) {
    if (e.buffer_id == buffer_id_) return e.ring;
  }
  Ring* r = claim_ring();
  cache.entries.push_back({buffer_id_, r});
  return r;
}

void TraceBuffer::record(const SpanData& s) {
  Ring* r = local_ring();
  const std::uint64_t pos = r->head.load(std::memory_order_relaxed);
  Slot& slot = r->slots[pos % cap_];
  const std::uint64_t seq0 = slot.seq.load(std::memory_order_relaxed);
  slot.seq.store(seq0 + 1, std::memory_order_relaxed);  // mark in-flight
  std::atomic_thread_fence(std::memory_order_release);
  slot.trace_id.store(s.trace_id, std::memory_order_relaxed);
  slot.span_id.store(s.span_id, std::memory_order_relaxed);
  slot.parent_id.store(s.parent_id, std::memory_order_relaxed);
  slot.start.store(s.start, std::memory_order_relaxed);
  slot.end.store(s.end, std::memory_order_relaxed);
  slot.name.store(s.name, std::memory_order_relaxed);
  slot.layer.store(static_cast<std::uint8_t>(s.layer),
                   std::memory_order_relaxed);
  slot.value.store(s.value, std::memory_order_relaxed);
  slot.seq.store(seq0 + 2, std::memory_order_release);  // publish
  r->head.store(pos + 1, std::memory_order_release);
}

std::vector<SpanData> TraceBuffer::snapshot() const {
  std::vector<SpanData> out;
  MutexLock lock(rings_mu_);
  for (const auto& r : rings_) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(head, cap_);
    for (std::uint64_t i = head - n; i < head; ++i) {
      const Slot& slot = r->slots[i % cap_];
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if ((s1 & 1) != 0) continue;  // write in flight
      SpanData d;
      d.trace_id = slot.trace_id.load(std::memory_order_relaxed);
      d.span_id = slot.span_id.load(std::memory_order_relaxed);
      d.parent_id = slot.parent_id.load(std::memory_order_relaxed);
      d.start = slot.start.load(std::memory_order_relaxed);
      d.end = slot.end.load(std::memory_order_relaxed);
      d.name = slot.name.load(std::memory_order_relaxed);
      d.layer = static_cast<Layer>(slot.layer.load(std::memory_order_relaxed));
      d.value = slot.value.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
      if (d.trace_id == 0) continue;  // never-written slot
      out.push_back(d);
    }
  }
  return out;
}

std::vector<SpanData> TraceBuffer::trace(std::uint64_t trace_id) const {
  std::vector<SpanData> out;
  for (const SpanData& s : snapshot()) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  std::sort(out.begin(), out.end(), [](const SpanData& a, const SpanData& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.span_id < b.span_id;
  });
  return out;
}

std::uint64_t TraceBuffer::find_trace(Layer layer,
                                      const std::string& name) const {
  std::uint64_t best_trace = 0;
  Nanos best_start = -1;
  for (const SpanData& s : snapshot()) {
    if (s.layer == layer && name == s.name && s.start > best_start) {
      best_start = s.start;
      best_trace = s.trace_id;
    }
  }
  return best_trace;
}

std::size_t TraceBuffer::ring_count() const {
  MutexLock lock(rings_mu_);
  return rings_.size();
}

std::string TraceBuffer::to_json(const std::vector<SpanData>& spans) {
  std::ostringstream os;
  os << "{\"spans\":[";
  bool first = true;
  for (const SpanData& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"trace\":" << s.trace_id << ",\"span\":" << s.span_id
       << ",\"parent\":" << s.parent_id << ",\"layer\":\""
       << layer_name(s.layer) << "\",\"name\":\"" << s.name
       << "\",\"start_ns\":" << s.start << ",\"end_ns\":" << s.end
       << ",\"dur_ns\":" << (s.end - s.start) << ",\"value\":" << s.value
       << "}";
  }
  os << "]}";
  return os.str();
}

std::string TraceBuffer::dump_json() const { return to_json(snapshot()); }

std::string TraceBuffer::render_tree(const std::vector<SpanData>& spans) {
  // Children sorted by start under each parent; roots are spans whose
  // parent is absent from the set.
  std::map<std::uint64_t, std::vector<const SpanData*>> children;
  std::map<std::uint64_t, const SpanData*> by_id;
  for (const SpanData& s : spans) by_id[s.span_id] = &s;
  std::vector<const SpanData*> roots;
  for (const SpanData& s : spans) {
    if (s.parent_id != 0 && by_id.count(s.parent_id) != 0) {
      children[s.parent_id].push_back(&s);
    } else {
      roots.push_back(&s);
    }
  }
  auto by_start = [](const SpanData* a, const SpanData* b) {
    if (a->start != b->start) return a->start < b->start;
    return a->span_id < b->span_id;
  };
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_start);
  }
  std::sort(roots.begin(), roots.end(), by_start);

  std::ostringstream os;
  auto emit = [&](const SpanData* s, int depth, auto&& self) -> void {
    for (int i = 0; i < depth; ++i) os << "  ";
    os << layer_name(s->layer) << ":" << s->name << " "
       << (s->end - s->start) / 1000 << "us";
    if (s->value != 0) os << " value=" << s->value;
    os << "\n";
    const auto it = children.find(s->span_id);
    if (it != children.end()) {
      for (const SpanData* k : it->second) self(k, depth + 1, self);
    }
  };
  for (const SpanData* r : roots) emit(r, 0, emit);
  return os.str();
}

Span::Span(Layer layer, const char* name, TraceBuffer& buf)
    : buf_(buf), saved_(t_context) {
  data_.layer = layer;
  data_.name = name;
  if (saved_.active()) {
    data_.trace_id = saved_.trace_id;
    data_.parent_id = saved_.span_id;
  } else {
    data_.trace_id = buf_.mint_trace_id();
    data_.parent_id = 0;
  }
  data_.span_id = buf_.mint_span_id();
  t_context = SpanContext{data_.trace_id, data_.span_id};
  data_.start = buf_.now();
}

Span::~Span() {
  data_.end = buf_.now();
  buf_.record(data_);
  t_context = saved_;
}

}  // namespace nest::obs
