// Zipf-distributed popularity sampler (Gray et al., SIGMOD '94 method):
// O(n) setup, O(1) per sample, no per-sample table walk — a million-user
// generator draws file ranks at event-queue speed.
//
// P(rank i) ∝ 1 / i^theta over ranks 1..n, returned 0-based. theta in
// [0, 1): 0 is uniform, 0.8–0.99 matches measured web/grid traces (the
// EU DataGrid workload papers). theta = 1 exactly is excluded (the
// closed-form breaks down; use 0.999).
#pragma once

#include <cstddef>

#include "common/rng.h"

namespace nest::loadgen {

class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double theta);

  // 0-based rank: 0 is the most popular item.
  std::size_t sample(Rng& rng) const;

  std::size_t n() const { return n_; }
  double theta() const { return theta_; }
  // Model probability of a given 0-based rank (for distribution tests).
  double probability(std::size_t rank) const;

 private:
  std::size_t n_;
  double theta_;
  double zetan_;  // generalized harmonic number H_{n,theta}
  double alpha_;
  double eta_;
};

}  // namespace nest::loadgen
