#include "loadgen/loadgen.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/engine.h"

namespace nest::loadgen {

OpenLoopGenerator::OpenLoopGenerator(simnest::SimNest& server,
                                     LoadGenOptions opts)
    : server_(server),
      opts_(std::move(opts)),
      popularity_(opts_.files, opts_.zipf_theta),
      model_(opts_.session),
      arrivals_(opts_.arrivals),
      arrival_rng_(opts_.seed) {
  assert(opts_.files > 0);
}

void OpenLoopGenerator::start() {
  for (std::size_t i = 0; i < opts_.files; ++i) {
    server_.add_file(file_path(i), opts_.file_size, opts_.cached);
  }
  if (opts_.record_trace) trace_.reserve(opts_.sessions);
  schedule_next_arrival();
}

void OpenLoopGenerator::schedule_next_arrival() {
  if (next_session_ >= opts_.sessions) return;
  auto& eng = server_.host().engine();
  // The gap is drawn here, before any session work runs, from the RNG
  // only this chain touches: the arrival sequence is fixed by the seed
  // no matter how the server behaves in between.
  const Nanos gap = arrivals_.next_interval(arrival_rng_);
  eng.schedule_at(eng.now() + gap, [this] {
    const std::uint64_t index = next_session_++;
    auto script = model_.script(opts_.seed, index, popularity_);
    if (opts_.record_trace) {
      trace_.push_back(
          {index, server_.host().engine().now(), script});
    }
    sim::spawn(run_session(index, std::move(script)));
    schedule_next_arrival();
  });
}

sim::Co<void> OpenLoopGenerator::run_session(std::uint64_t index,
                                             std::vector<SessionOp> script) {
  auto& eng = server_.host().engine();
  ++stats_.sessions_started;
  ++stats_.active_sessions;
  stats_.peak_active_sessions =
      std::max(stats_.peak_active_sessions, stats_.active_sessions);
  const std::string user = user_name(index);
  for (const SessionOp& op : script) {
    if (op.think_before > 0) co_await eng.delay(op.think_before);
    const std::string& proto_name =
        opts_.session.protocol_mix[static_cast<std::size_t>(op.protocol)]
            .first;
    const auto proto = simnest::ProtocolBehavior::by_name(proto_name);
    ++stats_.ops_issued;
    ++stats_.issued_by_protocol[proto_name];
    const Nanos begin = eng.now();
    bool served;
    if (op.put) {
      ++stats_.puts;
      served = co_await server_.client_put(proto, file_path(op.file_rank),
                                           opts_.file_size, user);
    } else {
      ++stats_.gets;
      served = co_await server_.client_get(proto, file_path(op.file_rank),
                                           user);
    }
    if (served) {
      ++stats_.ops_completed;
      stats_.completed_latency_total += eng.now() - begin;
    } else {
      ++stats_.ops_shed;
      ++stats_.shed_by_protocol[proto_name];
    }
  }
  --stats_.active_sessions;
  ++stats_.sessions_finished;
}

}  // namespace nest::loadgen
