#include "loadgen/session.h"

#include <cassert>
#include <cmath>

#include "loadgen/zipf.h"

namespace nest::loadgen {

SessionModel::SessionModel(SessionOptions opts) : opts_(std::move(opts)) {
  assert(!opts_.protocol_mix.empty());
  double total = 0.0;
  for (const auto& [name, w] : opts_.protocol_mix) total += w;
  assert(total > 0.0);
  double acc = 0.0;
  for (const auto& [name, w] : opts_.protocol_mix) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding at the top
}

std::uint64_t SessionModel::session_seed(std::uint64_t gen_seed,
                                         std::uint64_t session_index) {
  // splitmix64: cheap, well-distributed stream split.
  std::uint64_t z = gen_seed + 0x9e3779b97f4a7c15ull * (session_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

int SessionModel::pick_protocol(Rng& rng) const {
  const double u = rng.uniform_real(0.0, 1.0);
  for (std::size_t i = 0; i < cumulative_.size(); ++i) {
    if (u <= cumulative_[i]) return static_cast<int>(i);
  }
  return static_cast<int>(cumulative_.size() - 1);
}

std::vector<SessionOp> SessionModel::script(
    std::uint64_t gen_seed, std::uint64_t session_index,
    const ZipfSampler& popularity) const {
  Rng rng(session_seed(gen_seed, session_index));
  // 1 + geometric: draw exponential and floor — deterministic given the
  // RNG stream, mean ≈ mean_extra_ops.
  std::size_t ops = 1;
  if (opts_.mean_extra_ops > 0) {
    ops += static_cast<std::size_t>(
        std::floor(rng.exponential(opts_.mean_extra_ops)));
  }
  std::vector<SessionOp> script;
  script.reserve(ops);
  for (std::size_t i = 0; i < ops; ++i) {
    SessionOp op;
    op.put = rng.bernoulli(opts_.put_fraction);
    op.file_rank = popularity.sample(rng);
    op.protocol = pick_protocol(rng);
    op.think_before =
        i == 0 ? 0
               : from_seconds(rng.exponential(to_seconds(opts_.think_mean)));
    script.push_back(op);
  }
  return script;
}

}  // namespace nest::loadgen
