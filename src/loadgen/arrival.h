// Open-loop arrival processes for session generation.
//
// Open-loop means arrival times are drawn from the process alone — never
// from the server's completion times — so offered load keeps arriving at
// the configured rate even when the server saturates. That is precisely
// the regime that exposes unbounded queueing (and that closed-loop bench
// clients, which wait for each reply, can never produce).
//
// Two shapes:
//  * Poisson — exponential inter-arrivals at `rate_per_sec` (burst_factor
//    == 1).
//  * MMPP-2 burst — a two-state Markov-modulated Poisson process: a base
//    state at the quiet rate and a burst state at burst_factor times it,
//    with exponentially distributed dwell times. The EU DataGrid traces
//    motivate this: grid populations arrive in correlated bursts
//    (production submissions), not as a smooth stream. Rates are derived
//    so the long-run average stays rate_per_sec regardless of the
//    burstiness knobs.
#pragma once

#include "common/clock.h"
#include "common/rng.h"

namespace nest::loadgen {

struct ArrivalOptions {
  double rate_per_sec = 1000.0;  // long-run average arrival rate
  // > 1 enables MMPP-2: the burst state arrives this many times faster
  // than the quiet state.
  double burst_factor = 1.0;
  // Long-run fraction of time spent in the burst state.
  double burst_fraction = 0.1;
  // Mean dwell per burst episode (quiet dwell follows from the fraction).
  Nanos burst_dwell = 500 * kMillisecond;
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalOptions opts);

  // Interval until the next arrival (>= 1 ns so sim time always moves).
  Nanos next_interval(Rng& rng);

  bool in_burst() const { return in_burst_; }

 private:
  ArrivalOptions opts_;
  double quiet_rate_;  // per second
  double burst_rate_;
  bool in_burst_ = false;
  Nanos state_left_ = 0;  // dwell remaining in the current state
};

}  // namespace nest::loadgen
