// Open-loop workload generator: 10^5–10^6 simulated users against a
// SimNest appliance, cheaply (tentpole of ROADMAP item 4).
//
// Architecture — why this scales where thread-per-user cannot:
//  * Session *arrivals* are one event chain in the discrete-event engine:
//    a single callback draws the next inter-arrival gap from a dedicated
//    arrival RNG and reschedules itself. A million registered users cost
//    one pending event, not a million stacks.
//  * Only *active* sessions (arrived, not yet departed) hold a coroutine
//    frame. With think times and finite scripts, the active population is
//    offered-load-sized — O(arrival rate × session length) — however many
//    total users the run models.
//  * Every random draw is partitioned by purpose: the arrival chain owns
//    the arrival RNG; each session's script comes from a per-session RNG
//    seeded by (seed, index). Service latency therefore cannot perturb
//    what load is offered — the open-loop property (loadgen_test proves
//    it by running identical seeds against servers of different speeds).
//
// The generator is a test instrument first: tests/scale_test.cpp drives
// it to expose O(users) state growth and unbounded-queueing bugs, and
// bench/abl_scale.cpp uses it for throughput-vs-offered-load curves.
// docs/loadgen.md documents the knobs and the seed-repro workflow.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "loadgen/arrival.h"
#include "loadgen/session.h"
#include "loadgen/zipf.h"
#include "simnest/simnest.h"

namespace nest::loadgen {

struct LoadGenOptions {
  std::uint64_t seed = 1;
  // Total user sessions to generate over the run.
  std::uint64_t sessions = 1000;
  ArrivalOptions arrivals;
  SessionOptions session;
  // Popularity set shared by all sessions, Zipf-ranked: rank 0 is the
  // hottest file.
  std::size_t files = 100;
  std::int64_t file_size = 256 * 1024;
  bool cached = true;
  double zipf_theta = 0.8;
  // Retain the full per-session trace (arrival time + op script) for
  // determinism tests. Off by default: a 10^6-user soak should not hold
  // its own history.
  bool record_trace = false;
};

struct LoadGenStats {
  std::uint64_t sessions_started = 0;
  std::uint64_t sessions_finished = 0;
  std::uint64_t ops_issued = 0;
  std::uint64_t ops_completed = 0;  // served to the last byte
  std::uint64_t ops_shed = 0;       // admission replied busy
  std::uint64_t gets = 0;
  std::uint64_t puts = 0;
  std::int64_t active_sessions = 0;
  std::int64_t peak_active_sessions = 0;
  Nanos completed_latency_total = 0;
  std::map<std::string, std::uint64_t> issued_by_protocol;
  std::map<std::string, std::uint64_t> shed_by_protocol;

  double mean_completed_ms() const {
    return ops_completed == 0
               ? 0.0
               : static_cast<double>(completed_latency_total) /
                     static_cast<double>(ops_completed) / 1e6;
  }
};

// One session's deterministic offered load (recorded when record_trace).
struct SessionTrace {
  std::uint64_t index = 0;
  Nanos arrival = 0;
  std::vector<SessionOp> script;
};

class OpenLoopGenerator {
 public:
  OpenLoopGenerator(simnest::SimNest& server, LoadGenOptions opts);

  // Create the popularity files and schedule the arrival chain. The
  // caller then runs the engine (eng.run() or bounded run_until).
  void start();

  const LoadGenStats& stats() const { return stats_; }
  const std::vector<SessionTrace>& trace() const { return trace_; }
  const LoadGenOptions& options() const { return opts_; }

  // Offered-load identity, independent of any server: the op script of
  // session k under these options.
  std::vector<SessionOp> script_of(std::uint64_t session_index) const {
    return model_.script(opts_.seed, session_index, popularity_);
  }
  static std::string user_name(std::uint64_t session_index) {
    return "u" + std::to_string(session_index);
  }
  std::string file_path(std::size_t rank) const {
    return "/pop/f" + std::to_string(rank);
  }

 private:
  void schedule_next_arrival();
  sim::Co<void> run_session(std::uint64_t index,
                            std::vector<SessionOp> script);

  simnest::SimNest& server_;
  LoadGenOptions opts_;
  ZipfSampler popularity_;
  SessionModel model_;
  ArrivalProcess arrivals_;
  Rng arrival_rng_;  // used ONLY by the arrival chain
  std::uint64_t next_session_ = 0;
  LoadGenStats stats_;
  std::vector<SessionTrace> trace_;
};

}  // namespace nest::loadgen
