// Per-user session model: what one simulated user does between arriving
// and departing.
//
// A session is a small state machine —
//
//   arrive -> [pick op -> issue -> (served | shed) -> think]* -> depart
//
// — whose every draw (op count, protocol, get/put, file rank, think time)
// comes from a *per-session* RNG seeded from (generator seed, session
// index). That isolation is the load generator's central invariant: the
// op trace of session k is a pure function of (seed, k), so the offered
// workload is bit-identical across runs and across server speeds — the
// open-loop property the tests assert. Only the *issue times* of ops
// after the first depend on service latency (a user thinks after the
// previous reply), which is the standard semi-open session model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace nest::loadgen {

struct SessionOptions {
  // Ops per session: 1 + geometric(mean_extra_ops) — every session issues
  // at least one op.
  double mean_extra_ops = 3.0;
  // Think time between a reply and the session's next op (exponential).
  Nanos think_mean = 200 * kMillisecond;
  // Fraction of ops that store data (the rest retrieve).
  double put_fraction = 0.1;
  // Per-protocol mix, weight-normalized at construction. Names must be
  // ProtocolBehavior names ("chirp", "http", "ftp", "gridftp", "nfs").
  std::vector<std::pair<std::string, double>> protocol_mix = {
      {"http", 0.5}, {"chirp", 0.2}, {"ftp", 0.2}, {"nfs", 0.1}};
};

struct SessionOp {
  bool put = false;
  std::size_t file_rank = 0;  // Zipf rank into the popularity set
  int protocol = 0;           // index into SessionOptions::protocol_mix
  Nanos think_before = 0;     // think time preceding this op (0 for op 0)
};

// Draws a whole session's op script from its own RNG. Pure: no sim-time
// or server state feeds in, so scripts are reproducible in isolation.
class SessionModel {
 public:
  explicit SessionModel(SessionOptions opts);

  // Deterministic per-session RNG seed (splitmix64 of generator seed and
  // session index — adjacent indices give uncorrelated streams).
  static std::uint64_t session_seed(std::uint64_t gen_seed,
                                    std::uint64_t session_index);

  // The complete op script of one session against a popularity set of
  // `files` items.
  std::vector<SessionOp> script(std::uint64_t gen_seed,
                                std::uint64_t session_index,
                                const class ZipfSampler& popularity) const;

  const SessionOptions& options() const { return opts_; }

 private:
  int pick_protocol(Rng& rng) const;

  SessionOptions opts_;
  std::vector<double> cumulative_;  // normalized protocol-mix CDF
};

}  // namespace nest::loadgen
