#include "loadgen/zipf.h"

#include <cassert>
#include <cmath>

namespace nest::loadgen {

namespace {
double zeta(std::size_t n, double theta) {
  double sum = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

ZipfSampler::ZipfSampler(std::size_t n, double theta)
    : n_(n), theta_(theta), zetan_(zeta(n, theta)) {
  assert(n >= 1);
  assert(theta >= 0.0 && theta < 1.0);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta(2, theta) / zetan_);
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  const double u = rng.uniform_real(0.0, 1.0);
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto rank = static_cast<std::size_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

double ZipfSampler::probability(std::size_t rank) const {
  return 1.0 / std::pow(static_cast<double>(rank + 1), theta_) / zetan_;
}

}  // namespace nest::loadgen
