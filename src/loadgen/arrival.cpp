#include "loadgen/arrival.h"

#include <algorithm>
#include <cassert>

namespace nest::loadgen {

ArrivalProcess::ArrivalProcess(ArrivalOptions opts) : opts_(opts) {
  assert(opts_.rate_per_sec > 0);
  assert(opts_.burst_factor >= 1.0);
  assert(opts_.burst_fraction > 0.0 && opts_.burst_fraction < 1.0);
  // Solve for the state rates so the time-weighted average equals
  // rate_per_sec: f*burst + (1-f)*quiet = avg with burst = k*quiet.
  const double f = opts_.burst_fraction;
  const double k = opts_.burst_factor;
  quiet_rate_ = opts_.rate_per_sec / (f * k + (1.0 - f));
  burst_rate_ = k * quiet_rate_;
}

Nanos ArrivalProcess::next_interval(Rng& rng) {
  if (opts_.burst_factor <= 1.0) {
    const double sec = rng.exponential(1.0 / opts_.rate_per_sec);
    return std::max<Nanos>(1, from_seconds(sec));
  }
  // MMPP-2: consume dwell time state by state until the next arrival
  // lands inside the current state's remaining dwell.
  Nanos elapsed = 0;
  for (;;) {
    if (state_left_ <= 0) {
      // Enter the next state with an exponential dwell; quiet dwell is
      // scaled so the long-run burst fraction comes out right.
      in_burst_ = !in_burst_;
      const double mean_dwell_sec =
          in_burst_ ? to_seconds(opts_.burst_dwell)
                    : to_seconds(opts_.burst_dwell) *
                          (1.0 - opts_.burst_fraction) / opts_.burst_fraction;
      state_left_ = std::max<Nanos>(1, from_seconds(rng.exponential(
                                           mean_dwell_sec)));
    }
    const double rate = in_burst_ ? burst_rate_ : quiet_rate_;
    const Nanos gap =
        std::max<Nanos>(1, from_seconds(rng.exponential(1.0 / rate)));
    if (gap <= state_left_) {
      state_left_ -= gap;
      return std::max<Nanos>(1, elapsed + gap);
    }
    // No arrival before the state flips; spend the dwell and redraw in
    // the next state (memorylessness makes the redraw exact).
    elapsed += state_left_;
    state_left_ = 0;
  }
}

}  // namespace nest::loadgen
