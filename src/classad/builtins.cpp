// Builtin ClassAd functions. The subset here covers what Condor-era ads and
// NeST's access-control / discovery ads use: string manipulation, numeric
// coercion and rounding, list membership, and undefined/error probes.
#include <algorithm>
#include <cmath>
#include <regex>

#include "classad/expr.h"
#include "common/string_util.h"

namespace nest::classad {
namespace {

bool want(const std::vector<Value>& args, std::size_t n) {
  return args.size() == n;
}

Value to_int(const Value& v) {
  switch (v.type()) {
    case ValueType::integer: return v;
    case ValueType::real:
      return Value::integer(static_cast<std::int64_t>(v.as_real()));
    case ValueType::boolean: return Value::integer(v.as_bool() ? 1 : 0);
    case ValueType::string: {
      const auto n = parse_int(v.as_string());
      return n ? Value::integer(*n) : Value::error();
    }
    default: return Value::error();
  }
}

Value to_real(const Value& v) {
  switch (v.type()) {
    case ValueType::integer:
      return Value::real(static_cast<double>(v.as_int()));
    case ValueType::real: return v;
    case ValueType::boolean: return Value::real(v.as_bool() ? 1.0 : 0.0);
    case ValueType::string:
      try {
        return Value::real(std::stod(v.as_string()));
      } catch (...) {
        return Value::error();
      }
    default: return Value::error();
  }
}

Value to_str(const Value& v) {
  if (v.type() == ValueType::string) return v;
  if (v.is_undefined() || v.is_error()) return v;
  if (v.type() == ValueType::boolean)
    return Value::string(v.as_bool() ? "true" : "false");
  if (v.type() == ValueType::integer)
    return Value::string(std::to_string(v.as_int()));
  if (v.type() == ValueType::real) {
    Value s = v;
    std::string text = s.to_string();
    return Value::string(std::move(text));
  }
  return Value::error();
}

}  // namespace

Value call_builtin(const std::string& name, const std::vector<Value>& args) {
  // Probes evaluate even on ERROR arguments.
  if (name == "isundefined") {
    if (!want(args, 1)) return Value::error();
    return Value::boolean(args[0].is_undefined());
  }
  if (name == "iserror") {
    if (!want(args, 1)) return Value::error();
    return Value::boolean(args[0].is_error());
  }
  if (name == "isstring") {
    if (!want(args, 1)) return Value::error();
    return Value::boolean(args[0].type() == ValueType::string);
  }
  if (name == "isinteger") {
    if (!want(args, 1)) return Value::error();
    return Value::boolean(args[0].type() == ValueType::integer);
  }

  // Everything else propagates UNDEFINED/ERROR from any argument.
  for (const auto& a : args) {
    if (a.is_error()) return Value::error();
    if (a.is_undefined()) return Value::undefined();
  }

  if (name == "strcat") {
    std::string out;
    for (const auto& a : args) {
      const Value s = to_str(a);
      if (s.type() != ValueType::string) return Value::error();
      out += s.as_string();
    }
    return Value::string(std::move(out));
  }
  if (name == "substr") {
    if (args.size() != 2 && args.size() != 3) return Value::error();
    if (args[0].type() != ValueType::string ||
        args[1].type() != ValueType::integer)
      return Value::error();
    const std::string& s = args[0].as_string();
    std::int64_t off = args[1].as_int();
    if (off < 0) off = std::max<std::int64_t>(0, off + std::ssize(s));
    if (off > std::ssize(s)) off = std::ssize(s);
    std::int64_t len = std::ssize(s) - off;
    if (args.size() == 3) {
      if (args[2].type() != ValueType::integer) return Value::error();
      len = std::min(len, args[2].as_int());
      if (len < 0) len = 0;
    }
    return Value::string(s.substr(static_cast<std::size_t>(off),
                                  static_cast<std::size_t>(len)));
  }
  if (name == "size" || name == "strlen") {
    if (!want(args, 1)) return Value::error();
    if (args[0].type() == ValueType::string)
      return Value::integer(std::ssize(args[0].as_string()));
    if (args[0].type() == ValueType::list)
      return Value::integer(std::ssize(*args[0].as_list()));
    return Value::error();
  }
  if (name == "toupper" || name == "tolower") {
    if (!want(args, 1) || args[0].type() != ValueType::string)
      return Value::error();
    std::string out = args[0].as_string();
    std::transform(out.begin(), out.end(), out.begin(), [&](unsigned char c) {
      return static_cast<char>(name == "toupper" ? std::toupper(c)
                                                 : std::tolower(c));
    });
    return Value::string(std::move(out));
  }
  if (name == "member") {
    if (!want(args, 2) || args[1].type() != ValueType::list)
      return Value::error();
    for (const auto& e : *args[1].as_list())
      if (e.same_as(args[0])) return Value::boolean(true);
    return Value::boolean(false);
  }
  if (name == "regexp") {
    if (!want(args, 2) || args[0].type() != ValueType::string ||
        args[1].type() != ValueType::string)
      return Value::error();
    try {
      const std::regex re(args[0].as_string(), std::regex::extended);
      return Value::boolean(std::regex_search(args[1].as_string(), re));
    } catch (const std::regex_error&) {
      return Value::error();
    }
  }
  if (name == "int") return want(args, 1) ? to_int(args[0]) : Value::error();
  if (name == "real") return want(args, 1) ? to_real(args[0]) : Value::error();
  if (name == "string")
    return want(args, 1) ? to_str(args[0]) : Value::error();
  if (name == "floor" || name == "ceiling" || name == "round") {
    if (!want(args, 1) || !args[0].is_number()) return Value::error();
    const double x = args[0].number();
    double r = 0.0;
    if (name == "floor") r = std::floor(x);
    else if (name == "ceiling") r = std::ceil(x);
    else r = std::round(x);
    return Value::integer(static_cast<std::int64_t>(r));
  }
  if (name == "abs") {
    if (!want(args, 1)) return Value::error();
    if (args[0].type() == ValueType::integer)
      return Value::integer(std::abs(args[0].as_int()));
    if (args[0].type() == ValueType::real)
      return Value::real(std::fabs(args[0].as_real()));
    return Value::error();
  }
  if (name == "min" || name == "max") {
    if (args.empty()) return Value::error();
    double best = args[0].number();
    bool all_int = true;
    for (const auto& a : args) {
      if (!a.is_number()) return Value::error();
      all_int = all_int && a.type() == ValueType::integer;
      const double x = a.number();
      if (name == "min" ? (x < best) : (x > best)) best = x;
    }
    return all_int ? Value::integer(static_cast<std::int64_t>(best))
                   : Value::real(best);
  }
  return Value::error();  // unknown function
}

}  // namespace nest::classad
