// ClassAd expression trees and evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "classad/value.h"

namespace nest::classad {

class ClassAd;

// Evaluation environment. 'self' is the ad the expression lives in; 'other'
// is the candidate ad during matchmaking (reachable via OTHER./TARGET.).
struct EvalContext {
  const ClassAd* self = nullptr;
  const ClassAd* other = nullptr;
  int depth = 0;  // recursion guard against self-referential ads

  static constexpr int kMaxDepth = 64;
};

class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value eval(EvalContext& ctx) const = 0;
  virtual std::string to_string() const = 0;
};

using ExprPtr = std::shared_ptr<const Expr>;

class Literal final : public Expr {
 public:
  explicit Literal(Value v) : v_(std::move(v)) {}
  Value eval(EvalContext&) const override { return v_; }
  std::string to_string() const override { return v_.to_string(); }

 private:
  Value v_;
};

enum class Scope { plain, self, other };

// Attribute reference: NAME, MY.NAME / SELF.NAME, TARGET.NAME / OTHER.NAME.
class AttrRef final : public Expr {
 public:
  AttrRef(Scope scope, std::string name)
      : scope_(scope), name_(std::move(name)) {}
  Value eval(EvalContext& ctx) const override;
  std::string to_string() const override;
  const std::string& name() const { return name_; }
  Scope scope() const { return scope_; }

 private:
  Scope scope_;
  std::string name_;
};

enum class UnaryOp { negate, logical_not };

class Unary final : public Expr {
 public:
  Unary(UnaryOp op, ExprPtr operand) : op_(op), operand_(std::move(operand)) {}
  Value eval(EvalContext& ctx) const override;
  std::string to_string() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

enum class BinaryOp {
  logical_or,
  logical_and,
  eq,
  ne,
  lt,
  le,
  gt,
  ge,
  add,
  sub,
  mul,
  div,
  mod,
  is,    // =?= strict equality (never UNDEFINED)
  isnt,  // =!=
};

class Binary final : public Expr {
 public:
  Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Value eval(EvalContext& ctx) const override;
  std::string to_string() const override;

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class Ternary final : public Expr {
 public:
  Ternary(ExprPtr cond, ExprPtr then_e, ExprPtr else_e)
      : cond_(std::move(cond)),
        then_(std::move(then_e)),
        else_(std::move(else_e)) {}
  Value eval(EvalContext& ctx) const override;
  std::string to_string() const override;

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

class FuncCall final : public Expr {
 public:
  FuncCall(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Value eval(EvalContext& ctx) const override;
  std::string to_string() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

class ListLiteral final : public Expr {
 public:
  explicit ListLiteral(std::vector<ExprPtr> elems) : elems_(std::move(elems)) {}
  Value eval(EvalContext& ctx) const override;
  std::string to_string() const override;

 private:
  std::vector<ExprPtr> elems_;
};

// Builtin function dispatch; returns ERROR for unknown functions.
Value call_builtin(const std::string& lower_name,
                   const std::vector<Value>& args);

}  // namespace nest::classad
