#include "classad/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "classad/classad.h"

namespace nest::classad {

std::string quote_string(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c); break;
    }
  }
  out.push_back('"');
  return out;
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::undefined: return "undefined";
    case ValueType::error: return "error";
    case ValueType::boolean: return as_bool() ? "true" : "false";
    case ValueType::integer: return std::to_string(as_int());
    case ValueType::real: {
      // Shortest representation that parses back to the same double: a
      // printed ad is a wire format (discovery ads feed peer load views),
      // so printing must not quantize. %g alone truncates to 6 significant
      // digits, which broke the load-ad round trip.
      char buf[64];
      const double v = as_real();
      for (const int prec : {6, 15, 17}) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, v);
        if (std::strtod(buf, nullptr) == v) break;
      }
      // Ensure reals round-trip as reals.
      std::string s = buf;
      if (s.find_first_of(".eE") == std::string::npos) s += ".0";
      return s;
    }
    case ValueType::string: return quote_string(as_string());
    case ValueType::list: {
      std::string out = "{";
      const auto& elems = *as_list();
      for (std::size_t i = 0; i < elems.size(); ++i) {
        if (i) out += ", ";
        out += elems[i].to_string();
      }
      out += "}";
      return out;
    }
    case ValueType::classad: return as_ad()->to_string();
  }
  return "error";
}

bool Value::same_as(const Value& o) const {
  if (type() != o.type()) {
    // ints and reals with equal numeric value compare equal structurally
    if (is_number() && o.is_number()) return number() == o.number();
    return false;
  }
  switch (type()) {
    case ValueType::undefined:
    case ValueType::error:
      return true;
    case ValueType::boolean: return as_bool() == o.as_bool();
    case ValueType::integer: return as_int() == o.as_int();
    case ValueType::real: return as_real() == o.as_real();
    case ValueType::string: return as_string() == o.as_string();
    case ValueType::list: {
      const auto& a = *as_list();
      const auto& b = *o.as_list();
      if (a.size() != b.size()) return false;
      for (std::size_t i = 0; i < a.size(); ++i)
        if (!a[i].same_as(b[i])) return false;
      return true;
    }
    case ValueType::classad:
      return as_ad()->to_string() == o.as_ad()->to_string();
  }
  return false;
}

}  // namespace nest::classad
