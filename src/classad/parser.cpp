// Recursive-descent parser for ClassAd expressions and ads.
//
// Grammar (precedence low to high):
//   expr     := ternary
//   ternary  := or ('?' expr ':' expr)?
//   or       := and ('||' and)*
//   and      := meta ('&&' meta)*
//   meta     := cmp (('=?=' | '=!=') cmp)*
//   cmp      := sum (('=='|'!='|'<'|'<='|'>'|'>=') sum)*
//   sum      := term (('+'|'-') term)*
//   term     := unary (('*'|'/'|'%') unary)*
//   unary    := ('-'|'!'|'+')* postfix
//   postfix  := primary ('.' IDENT)*        -- scope selection
//   primary  := literal | IDENT | IDENT '(' args ')' | '(' expr ')'
//             | '{' exprs '}' | '[' ad ']'
#include "classad/classad.h"
#include "classad/lexer.h"
#include "common/string_util.h"

namespace nest::classad {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<ExprPtr> parse_expression() {
    auto e = expr();
    if (!e) return e;
    if (!at(TokKind::end)) return fail("trailing input after expression");
    return e;
  }

  Result<ClassAd> parse_ad() {
    if (!accept(TokKind::lbracket)) return fail_ad("expected '['");
    auto ad = ad_body();
    if (!ad) return ad;
    if (!at(TokKind::end)) return fail_ad("trailing input after ']'");
    return ad;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }
  bool accept(TokKind k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  Error error(const std::string& what) const {
    return Error{Errc::invalid_argument,
                 "classad parse error at " + std::to_string(cur().pos) + ": " +
                     what};
  }
  Result<ExprPtr> fail(const std::string& what) const { return error(what); }
  Result<ClassAd> fail_ad(const std::string& what) const {
    return error(what);
  }

  // Parses attribute list up to and including the closing ']'.
  Result<ClassAd> ad_body() {
    ClassAd ad;
    while (!at(TokKind::rbracket)) {
      if (!at(TokKind::identifier)) return fail_ad("expected attribute name");
      std::string name = cur().text;
      ++pos_;
      if (!accept(TokKind::assign)) return fail_ad("expected '='");
      auto e = expr();
      if (!e) return e.error();
      ad.insert(name, std::move(e.value()));
      if (!accept(TokKind::semicolon)) break;  // trailing ';' optional
    }
    if (!accept(TokKind::rbracket)) return fail_ad("expected ']'");
    return ad;
  }

  Result<ExprPtr> expr() { return ternary(); }

  Result<ExprPtr> ternary() {
    auto c = logical_or();
    if (!c) return c;
    if (!accept(TokKind::question)) return c;
    auto t = expr();
    if (!t) return t;
    if (!accept(TokKind::colon)) return fail("expected ':' in ternary");
    auto f = expr();
    if (!f) return f;
    return ExprPtr(std::make_shared<Ternary>(std::move(c.value()),
                                             std::move(t.value()),
                                             std::move(f.value())));
  }

  Result<ExprPtr> logical_or() {
    auto lhs = logical_and();
    if (!lhs) return lhs;
    while (accept(TokKind::logical_or)) {
      auto rhs = logical_and();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_shared<Binary>(BinaryOp::logical_or,
                                             std::move(lhs.value()),
                                             std::move(rhs.value())));
    }
    return lhs;
  }

  Result<ExprPtr> logical_and() {
    auto lhs = meta();
    if (!lhs) return lhs;
    while (accept(TokKind::logical_and)) {
      auto rhs = meta();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_shared<Binary>(BinaryOp::logical_and,
                                             std::move(lhs.value()),
                                             std::move(rhs.value())));
    }
    return lhs;
  }

  Result<ExprPtr> meta() {
    auto lhs = cmp();
    if (!lhs) return lhs;
    while (at(TokKind::meta_eq) || at(TokKind::meta_ne)) {
      const BinaryOp op =
          at(TokKind::meta_eq) ? BinaryOp::is : BinaryOp::isnt;
      ++pos_;
      auto rhs = cmp();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_shared<Binary>(op, std::move(lhs.value()),
                                             std::move(rhs.value())));
    }
    return lhs;
  }

  Result<ExprPtr> cmp() {
    auto lhs = sum();
    if (!lhs) return lhs;
    while (true) {
      BinaryOp op;
      if (at(TokKind::eq)) op = BinaryOp::eq;
      else if (at(TokKind::ne)) op = BinaryOp::ne;
      else if (at(TokKind::lt)) op = BinaryOp::lt;
      else if (at(TokKind::le)) op = BinaryOp::le;
      else if (at(TokKind::gt)) op = BinaryOp::gt;
      else if (at(TokKind::ge)) op = BinaryOp::ge;
      else break;
      ++pos_;
      auto rhs = sum();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_shared<Binary>(op, std::move(lhs.value()),
                                             std::move(rhs.value())));
    }
    return lhs;
  }

  Result<ExprPtr> sum() {
    auto lhs = term();
    if (!lhs) return lhs;
    while (at(TokKind::plus) || at(TokKind::minus)) {
      const BinaryOp op = at(TokKind::plus) ? BinaryOp::add : BinaryOp::sub;
      ++pos_;
      auto rhs = term();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_shared<Binary>(op, std::move(lhs.value()),
                                             std::move(rhs.value())));
    }
    return lhs;
  }

  Result<ExprPtr> term() {
    auto lhs = unary();
    if (!lhs) return lhs;
    while (at(TokKind::star) || at(TokKind::slash) || at(TokKind::percent)) {
      BinaryOp op = BinaryOp::mul;
      if (at(TokKind::slash)) op = BinaryOp::div;
      else if (at(TokKind::percent)) op = BinaryOp::mod;
      ++pos_;
      auto rhs = unary();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_shared<Binary>(op, std::move(lhs.value()),
                                             std::move(rhs.value())));
    }
    return lhs;
  }

  Result<ExprPtr> unary() {
    if (accept(TokKind::minus)) {
      auto e = unary();
      if (!e) return e;
      return ExprPtr(
          std::make_shared<Unary>(UnaryOp::negate, std::move(e.value())));
    }
    if (accept(TokKind::bang)) {
      auto e = unary();
      if (!e) return e;
      return ExprPtr(
          std::make_shared<Unary>(UnaryOp::logical_not, std::move(e.value())));
    }
    if (accept(TokKind::plus)) return unary();  // unary plus is identity
    return primary();
  }

  Result<ExprPtr> primary() {
    const Token& t = cur();
    switch (t.kind) {
      case TokKind::integer:
        ++pos_;
        return ExprPtr(std::make_shared<Literal>(Value::integer(t.int_value)));
      case TokKind::real:
        ++pos_;
        return ExprPtr(std::make_shared<Literal>(Value::real(t.real_value)));
      case TokKind::string:
        ++pos_;
        return ExprPtr(std::make_shared<Literal>(Value::string(t.text)));
      case TokKind::lparen: {
        ++pos_;
        auto e = expr();
        if (!e) return e;
        if (!accept(TokKind::rparen)) return fail("expected ')'");
        return e;
      }
      case TokKind::lbrace: {
        ++pos_;
        std::vector<ExprPtr> elems;
        if (!at(TokKind::rbrace)) {
          while (true) {
            auto e = expr();
            if (!e) return e;
            elems.push_back(std::move(e.value()));
            if (!accept(TokKind::comma)) break;
          }
        }
        if (!accept(TokKind::rbrace)) return fail("expected '}'");
        return ExprPtr(std::make_shared<ListLiteral>(std::move(elems)));
      }
      case TokKind::lbracket: {
        ++pos_;
        auto ad = ad_body();
        if (!ad) return ad.error();
        auto boxed = std::make_shared<ClassAd>(std::move(ad.value()));
        return ExprPtr(std::make_shared<Literal>(Value::ad(std::move(boxed))));
      }
      case TokKind::identifier: {
        const std::string lower = to_lower(t.text);
        ++pos_;
        if (lower == "true")
          return ExprPtr(std::make_shared<Literal>(Value::boolean(true)));
        if (lower == "false")
          return ExprPtr(std::make_shared<Literal>(Value::boolean(false)));
        if (lower == "undefined")
          return ExprPtr(std::make_shared<Literal>(Value::undefined()));
        if (lower == "error")
          return ExprPtr(std::make_shared<Literal>(Value::error()));
        // Scoped reference: MY.x / SELF.x / TARGET.x / OTHER.x
        if ((lower == "my" || lower == "self" || lower == "target" ||
             lower == "other") &&
            at(TokKind::dot)) {
          ++pos_;
          if (!at(TokKind::identifier))
            return fail("expected attribute after scope");
          const std::string attr = cur().text;
          ++pos_;
          const Scope scope = (lower == "my" || lower == "self")
                                  ? Scope::self
                                  : Scope::other;
          return ExprPtr(std::make_shared<AttrRef>(scope, attr));
        }
        // Function call
        if (accept(TokKind::lparen)) {
          std::vector<ExprPtr> args;
          if (!at(TokKind::rparen)) {
            while (true) {
              auto e = expr();
              if (!e) return e;
              args.push_back(std::move(e.value()));
              if (!accept(TokKind::comma)) break;
            }
          }
          if (!accept(TokKind::rparen))
            return fail("expected ')' after arguments");
          return ExprPtr(std::make_shared<FuncCall>(t.text, std::move(args)));
        }
        return ExprPtr(std::make_shared<AttrRef>(Scope::plain, t.text));
      }
      default:
        return fail("unexpected token");
    }
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> parse_expr(std::string_view text) {
  auto toks = lex(text);
  if (!toks) return toks.error();
  Parser p(std::move(toks.value()));
  return p.parse_expression();
}

Result<ClassAd> ClassAd::parse(std::string_view text) {
  auto toks = lex(text);
  if (!toks) return toks.error();
  Parser p(std::move(toks.value()));
  return p.parse_ad();
}

}  // namespace nest::classad
