#include "classad/expr.h"

#include <cmath>

#include "classad/classad.h"
#include "common/string_util.h"

namespace nest::classad {
namespace {

// ClassAd three-valued logic for &&/||: false&&X == false, true||X == true,
// even when X is UNDEFINED; otherwise UNDEFINED/ERROR propagate.
Value logical_and_v(const Value& a, const Value& b) {
  auto truth = [](const Value& v) -> int {  // 0 false, 1 true, -1 other
    if (v.type() == ValueType::boolean) return v.as_bool() ? 1 : 0;
    if (v.type() == ValueType::integer) return v.as_int() != 0 ? 1 : 0;
    return -1;
  };
  const int ta = truth(a);
  const int tb = truth(b);
  if (a.is_error() || b.is_error()) {
    // false && error is still false per lazy semantics
    if (ta == 0 || tb == 0) return Value::boolean(false);
    return Value::error();
  }
  if (ta == 0 || tb == 0) return Value::boolean(false);
  if (ta == 1 && tb == 1) return Value::boolean(true);
  return Value::undefined();
}

Value logical_or_v(const Value& a, const Value& b) {
  auto truth = [](const Value& v) -> int {
    if (v.type() == ValueType::boolean) return v.as_bool() ? 1 : 0;
    if (v.type() == ValueType::integer) return v.as_int() != 0 ? 1 : 0;
    return -1;
  };
  const int ta = truth(a);
  const int tb = truth(b);
  if (a.is_error() || b.is_error()) {
    if (ta == 1 || tb == 1) return Value::boolean(true);
    return Value::error();
  }
  if (ta == 1 || tb == 1) return Value::boolean(true);
  if (ta == 0 && tb == 0) return Value::boolean(false);
  return Value::undefined();
}

// Comparison: numbers compare numerically, strings case-insensitively
// (ClassAd convention), booleans as false<true.
Value compare(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_error() || b.is_error()) return Value::error();
  if (a.is_undefined() || b.is_undefined()) return Value::undefined();
  int cmp = 0;
  if (a.is_number() && b.is_number()) {
    const double x = a.number();
    const double y = b.number();
    cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
  } else if (a.type() == ValueType::string && b.type() == ValueType::string) {
    const std::string x = to_lower(a.as_string());
    const std::string y = to_lower(b.as_string());
    cmp = (x < y) ? -1 : (x > y) ? 1 : 0;
  } else if (a.type() == ValueType::boolean &&
             b.type() == ValueType::boolean) {
    cmp = static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  } else {
    return Value::error();  // incomparable types
  }
  switch (op) {
    case BinaryOp::eq: return Value::boolean(cmp == 0);
    case BinaryOp::ne: return Value::boolean(cmp != 0);
    case BinaryOp::lt: return Value::boolean(cmp < 0);
    case BinaryOp::le: return Value::boolean(cmp <= 0);
    case BinaryOp::gt: return Value::boolean(cmp > 0);
    case BinaryOp::ge: return Value::boolean(cmp >= 0);
    default: return Value::error();
  }
}

Value arithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_error() || b.is_error()) return Value::error();
  if (a.is_undefined() || b.is_undefined()) return Value::undefined();
  // String concatenation via '+'.
  if (op == BinaryOp::add && a.type() == ValueType::string &&
      b.type() == ValueType::string) {
    return Value::string(a.as_string() + b.as_string());
  }
  if (!a.is_number() || !b.is_number()) return Value::error();
  const bool both_int = a.type() == ValueType::integer &&
                        b.type() == ValueType::integer;
  if (both_int) {
    const std::int64_t x = a.as_int();
    const std::int64_t y = b.as_int();
    switch (op) {
      case BinaryOp::add: return Value::integer(x + y);
      case BinaryOp::sub: return Value::integer(x - y);
      case BinaryOp::mul: return Value::integer(x * y);
      case BinaryOp::div:
        return y == 0 ? Value::error() : Value::integer(x / y);
      case BinaryOp::mod:
        return y == 0 ? Value::error() : Value::integer(x % y);
      default: return Value::error();
    }
  }
  const double x = a.number();
  const double y = b.number();
  switch (op) {
    case BinaryOp::add: return Value::real(x + y);
    case BinaryOp::sub: return Value::real(x - y);
    case BinaryOp::mul: return Value::real(x * y);
    case BinaryOp::div: return y == 0.0 ? Value::error() : Value::real(x / y);
    case BinaryOp::mod:
      return y == 0.0 ? Value::error() : Value::real(std::fmod(x, y));
    default: return Value::error();
  }
}

const char* binop_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::logical_or: return "||";
    case BinaryOp::logical_and: return "&&";
    case BinaryOp::eq: return "==";
    case BinaryOp::ne: return "!=";
    case BinaryOp::lt: return "<";
    case BinaryOp::le: return "<=";
    case BinaryOp::gt: return ">";
    case BinaryOp::ge: return ">=";
    case BinaryOp::add: return "+";
    case BinaryOp::sub: return "-";
    case BinaryOp::mul: return "*";
    case BinaryOp::div: return "/";
    case BinaryOp::mod: return "%";
    case BinaryOp::is: return "=?=";
    case BinaryOp::isnt: return "=!=";
  }
  return "?";
}

}  // namespace

Value AttrRef::eval(EvalContext& ctx) const {
  if (ctx.depth >= EvalContext::kMaxDepth) return Value::error();
  const ClassAd* scope_ad = nullptr;
  switch (scope_) {
    case Scope::plain:
    case Scope::self:
      scope_ad = ctx.self;
      break;
    case Scope::other:
      scope_ad = ctx.other;
      break;
  }
  if (scope_ad == nullptr) return Value::undefined();
  ExprPtr e = scope_ad->lookup(name_);
  if (!e && scope_ == Scope::plain && ctx.other != nullptr) {
    // Plain references fall back to the match candidate, matching Condor's
    // old-ClassAd lookup behaviour that the paper-era code relied on.
    scope_ad = ctx.other;
    e = scope_ad->lookup(name_);
  }
  if (!e) return Value::undefined();
  EvalContext sub;
  // Attribute lookups re-root 'self' in the ad that defines the attribute,
  // flipping self/other when we crossed into the candidate ad.
  sub.self = scope_ad;
  sub.other = (scope_ad == ctx.self) ? ctx.other : ctx.self;
  sub.depth = ctx.depth + 1;
  return e->eval(sub);
}

std::string AttrRef::to_string() const {
  switch (scope_) {
    case Scope::plain: return name_;
    case Scope::self: return "MY." + name_;
    case Scope::other: return "TARGET." + name_;
  }
  return name_;
}

Value Unary::eval(EvalContext& ctx) const {
  const Value v = operand_->eval(ctx);
  if (v.is_error()) return Value::error();
  if (v.is_undefined()) return Value::undefined();
  switch (op_) {
    case UnaryOp::negate:
      if (v.type() == ValueType::integer) return Value::integer(-v.as_int());
      if (v.type() == ValueType::real) return Value::real(-v.as_real());
      return Value::error();
    case UnaryOp::logical_not:
      if (v.type() == ValueType::boolean) return Value::boolean(!v.as_bool());
      if (v.type() == ValueType::integer)
        return Value::boolean(v.as_int() == 0);
      return Value::error();
  }
  return Value::error();
}

std::string Unary::to_string() const {
  return std::string(op_ == UnaryOp::negate ? "-" : "!") + "(" +
         operand_->to_string() + ")";
}

Value Binary::eval(EvalContext& ctx) const {
  if (op_ == BinaryOp::logical_and || op_ == BinaryOp::logical_or) {
    const Value a = lhs_->eval(ctx);
    // Short-circuit on determinate outcomes.
    if (a.type() == ValueType::boolean) {
      if (op_ == BinaryOp::logical_and && !a.as_bool())
        return Value::boolean(false);
      if (op_ == BinaryOp::logical_or && a.as_bool())
        return Value::boolean(true);
    }
    const Value b = rhs_->eval(ctx);
    return op_ == BinaryOp::logical_and ? logical_and_v(a, b)
                                        : logical_or_v(a, b);
  }
  const Value a = lhs_->eval(ctx);
  const Value b = rhs_->eval(ctx);
  switch (op_) {
    case BinaryOp::is:
      return Value::boolean(a.same_as(b));
    case BinaryOp::isnt:
      return Value::boolean(!a.same_as(b));
    case BinaryOp::eq:
    case BinaryOp::ne:
    case BinaryOp::lt:
    case BinaryOp::le:
    case BinaryOp::gt:
    case BinaryOp::ge:
      return compare(op_, a, b);
    default:
      return arithmetic(op_, a, b);
  }
}

std::string Binary::to_string() const {
  return "(" + lhs_->to_string() + " " + binop_text(op_) + " " +
         rhs_->to_string() + ")";
}

Value Ternary::eval(EvalContext& ctx) const {
  const Value c = cond_->eval(ctx);
  if (c.is_error()) return Value::error();
  if (c.is_undefined()) return Value::undefined();
  bool taken = false;
  if (c.type() == ValueType::boolean) {
    taken = c.as_bool();
  } else if (c.type() == ValueType::integer) {
    taken = c.as_int() != 0;
  } else {
    return Value::error();
  }
  return taken ? then_->eval(ctx) : else_->eval(ctx);
}

std::string Ternary::to_string() const {
  return "(" + cond_->to_string() + " ? " + then_->to_string() + " : " +
         else_->to_string() + ")";
}

Value FuncCall::eval(EvalContext& ctx) const {
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const auto& a : args_) args.push_back(a->eval(ctx));
  return call_builtin(to_lower(name_), args);
}

std::string FuncCall::to_string() const {
  std::string out = name_ + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) out += ", ";
    out += args_[i]->to_string();
  }
  out += ")";
  return out;
}

Value ListLiteral::eval(EvalContext& ctx) const {
  auto list = std::make_shared<std::vector<Value>>();
  list->reserve(elems_.size());
  for (const auto& e : elems_) list->push_back(e->eval(ctx));
  return Value::list(std::move(list));
}

std::string ListLiteral::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < elems_.size(); ++i) {
    if (i) out += ", ";
    out += elems_[i]->to_string();
  }
  out += "}";
  return out;
}

}  // namespace nest::classad
