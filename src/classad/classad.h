// The ClassAd record type and two-way matchmaking.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "classad/expr.h"
#include "common/result.h"

namespace nest::classad {

// A ClassAd: an attribute -> expression record. Attribute names are
// case-insensitive (stored lower-cased, original spelling retained for
// printing), per ClassAd convention.
class ClassAd {
 public:
  ClassAd() = default;

  // Parse a full ad: "[ a = 1; b = other.x > 2; ]".
  NEST_NODISCARD static Result<ClassAd> parse(std::string_view text);

  void insert(const std::string& name, ExprPtr expr);
  void insert(const std::string& name, Value v);
  NEST_NODISCARD
  Status insert_expr(const std::string& name, std::string_view expr_text);

  bool erase(const std::string& name);
  bool has(const std::string& name) const;
  std::size_t size() const { return attrs_.size(); }

  ExprPtr lookup(const std::string& name) const;

  // Evaluate an attribute in this ad's scope (optionally with a match
  // candidate reachable via TARGET./OTHER.).
  Value eval(const std::string& name, const ClassAd* other = nullptr) const;

  // Evaluate and coerce; nullopt when missing/UNDEFINED/ERROR or wrong type.
  std::optional<std::int64_t> eval_int(const std::string& name,
                                       const ClassAd* other = nullptr) const;
  std::optional<double> eval_real(const std::string& name,
                                  const ClassAd* other = nullptr) const;
  std::optional<bool> eval_bool(const std::string& name,
                                const ClassAd* other = nullptr) const;
  std::optional<std::string> eval_string(
      const std::string& name, const ClassAd* other = nullptr) const;

  std::string to_string() const;

  // Attribute names in insertion order (original spelling).
  std::vector<std::string> attribute_names() const;

 private:
  friend class AttrRef;

  struct Slot {
    std::string original_name;
    ExprPtr expr;
    std::size_t order = 0;
  };
  std::map<std::string, Slot> attrs_;  // keyed by lower-cased name
  std::size_t next_order_ = 0;
};

// Symmetric matchmaking as in Condor: both ads' Requirements must evaluate
// to true against each other.
bool match(const ClassAd& a, const ClassAd& b);

// Evaluate a's Rank with b as the candidate; UNDEFINED ranks as 0.
double rank(const ClassAd& a, const ClassAd& b);

// Parse a standalone expression.
NEST_NODISCARD Result<ExprPtr> parse_expr(std::string_view text);

}  // namespace nest::classad
