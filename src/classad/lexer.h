// Tokenizer for the ClassAd expression language.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace nest::classad {

enum class TokKind {
  end,
  identifier,   // also carries keywords true/false/undefined/error/is/isnt
  integer,
  real,
  string,
  lbracket,     // [
  rbracket,     // ]
  lbrace,       // {
  rbrace,       // }
  lparen,
  rparen,
  semicolon,
  comma,
  dot,
  assign,       // =
  plus,
  minus,
  star,
  slash,
  percent,
  lt,
  le,
  gt,
  ge,
  eq,           // ==
  ne,           // !=
  meta_eq,      // =?=
  meta_ne,      // =!=
  logical_and,  // &&
  logical_or,   // ||
  bang,         // !
  question,
  colon,
};

struct Token {
  TokKind kind = TokKind::end;
  std::string text;        // identifier spelling or string body (unescaped)
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::size_t pos = 0;     // byte offset, for error messages
};

NEST_NODISCARD Result<std::vector<Token>> lex(std::string_view text);

}  // namespace nest::classad
