// ClassAd value model.
//
// ClassAds (Classified Advertisements) are the Condor matchmaking language
// the paper uses for access control (Section 5) and for publishing resource
// availability into the Grid discovery system (Section 2.1). Values follow
// the ClassAd three-valued logic: in addition to ordinary types there are
// UNDEFINED (attribute missing) and ERROR (ill-typed operation) values that
// propagate through expressions.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace nest::classad {

class ClassAd;
class Value;

using ListPtr = std::shared_ptr<std::vector<Value>>;
using AdPtr = std::shared_ptr<ClassAd>;

enum class ValueType {
  undefined,
  error,
  boolean,
  integer,
  real,
  string,
  list,
  classad,
};

class Value {
 public:
  Value() : v_(Undefined{}) {}

  static Value undefined() { return Value(); }
  static Value error() {
    Value v;
    v.v_ = ErrorV{};
    return v;
  }
  static Value boolean(bool b) { return Value(std::in_place_t{}, b); }
  static Value integer(std::int64_t i) { return Value(std::in_place_t{}, i); }
  static Value real(double d) { return Value(std::in_place_t{}, d); }
  static Value string(std::string s) {
    return Value(std::in_place_t{}, std::move(s));
  }
  static Value list(ListPtr l) { return Value(std::in_place_t{}, std::move(l)); }
  static Value ad(AdPtr a) { return Value(std::in_place_t{}, std::move(a)); }

  ValueType type() const noexcept {
    return static_cast<ValueType>(v_.index());
  }
  bool is_undefined() const noexcept {
    return type() == ValueType::undefined;
  }
  bool is_error() const noexcept { return type() == ValueType::error; }
  bool is_number() const noexcept {
    return type() == ValueType::integer || type() == ValueType::real;
  }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_real() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const ListPtr& as_list() const { return std::get<ListPtr>(v_); }
  const AdPtr& as_ad() const { return std::get<AdPtr>(v_); }

  // Numeric promotion: integer or real as double.
  double number() const {
    return type() == ValueType::integer ? static_cast<double>(as_int())
                                        : as_real();
  }

  // Render in ClassAd syntax (strings quoted and escaped).
  std::string to_string() const;

  // Structural equality used by tests; UNDEFINED==UNDEFINED is true here
  // (unlike the '==' operator inside the language, which yields UNDEFINED).
  bool same_as(const Value& o) const;

 private:
  struct Undefined {};
  struct ErrorV {};
  using Storage = std::variant<Undefined, ErrorV, bool, std::int64_t, double,
                               std::string, ListPtr, AdPtr>;

  template <typename T>
  Value(std::in_place_t, T&& t) : v_(std::forward<T>(t)) {}

  Storage v_;
};

// Quote + escape a string literal in ClassAd syntax.
std::string quote_string(const std::string& s);

}  // namespace nest::classad
