#include "classad/classad.h"

#include <algorithm>

#include "common/string_util.h"

namespace nest::classad {

void ClassAd::insert(const std::string& name, ExprPtr expr) {
  const std::string key = to_lower(name);
  auto [it, inserted] = attrs_.try_emplace(key);
  if (inserted) it->second.order = next_order_++;
  it->second.original_name = name;
  it->second.expr = std::move(expr);
}

void ClassAd::insert(const std::string& name, Value v) {
  insert(name, ExprPtr(std::make_shared<Literal>(std::move(v))));
}

Status ClassAd::insert_expr(const std::string& name,
                            std::string_view expr_text) {
  auto e = parse_expr(expr_text);
  if (!e) return e.error();
  insert(name, std::move(e.value()));
  return {};
}

bool ClassAd::erase(const std::string& name) {
  return attrs_.erase(to_lower(name)) != 0;
}

bool ClassAd::has(const std::string& name) const {
  return attrs_.count(to_lower(name)) != 0;
}

ExprPtr ClassAd::lookup(const std::string& name) const {
  const auto it = attrs_.find(to_lower(name));
  return it == attrs_.end() ? nullptr : it->second.expr;
}

Value ClassAd::eval(const std::string& name, const ClassAd* other) const {
  const ExprPtr e = lookup(name);
  if (!e) return Value::undefined();
  EvalContext ctx;
  ctx.self = this;
  ctx.other = other;
  return e->eval(ctx);
}

std::optional<std::int64_t> ClassAd::eval_int(const std::string& name,
                                              const ClassAd* other) const {
  const Value v = eval(name, other);
  if (v.type() == ValueType::integer) return v.as_int();
  if (v.type() == ValueType::real)
    return static_cast<std::int64_t>(v.as_real());
  return std::nullopt;
}

std::optional<double> ClassAd::eval_real(const std::string& name,
                                         const ClassAd* other) const {
  const Value v = eval(name, other);
  if (v.is_number()) return v.number();
  return std::nullopt;
}

std::optional<bool> ClassAd::eval_bool(const std::string& name,
                                       const ClassAd* other) const {
  const Value v = eval(name, other);
  if (v.type() == ValueType::boolean) return v.as_bool();
  if (v.type() == ValueType::integer) return v.as_int() != 0;
  return std::nullopt;
}

std::optional<std::string> ClassAd::eval_string(const std::string& name,
                                                const ClassAd* other) const {
  const Value v = eval(name, other);
  if (v.type() == ValueType::string) return v.as_string();
  return std::nullopt;
}

std::vector<std::string> ClassAd::attribute_names() const {
  std::vector<const Slot*> slots;
  slots.reserve(attrs_.size());
  for (const auto& [key, slot] : attrs_) slots.push_back(&slot);
  std::sort(slots.begin(), slots.end(),
            [](const Slot* a, const Slot* b) { return a->order < b->order; });
  std::vector<std::string> names;
  names.reserve(slots.size());
  for (const Slot* s : slots) names.push_back(s->original_name);
  return names;
}

std::string ClassAd::to_string() const {
  std::string out = "[ ";
  for (const auto& name : attribute_names()) {
    const ExprPtr e = lookup(name);
    out += name + " = " + e->to_string() + "; ";
  }
  out += "]";
  return out;
}

bool match(const ClassAd& a, const ClassAd& b) {
  // An ad without Requirements accepts anything (vacuous truth), matching
  // old-ClassAd matchmaker behaviour.
  auto ok = [](const ClassAd& self, const ClassAd& other) {
    if (!self.has("Requirements")) return true;
    return self.eval_bool("Requirements", &other).value_or(false);
  };
  return ok(a, b) && ok(b, a);
}

double rank(const ClassAd& a, const ClassAd& b) {
  return a.eval_real("Rank", &b).value_or(0.0);
}

}  // namespace nest::classad
