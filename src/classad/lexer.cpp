#include "classad/lexer.h"

#include <cctype>
#include <charconv>

namespace nest::classad {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

Error lex_error(std::size_t pos, const std::string& what) {
  return Error{Errc::invalid_argument,
               "classad lex error at " + std::to_string(pos) + ": " + what};
}

}  // namespace

Result<std::vector<Token>> lex(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = text.size();

  auto push = [&](TokKind k, std::size_t pos) {
    Token t;
    t.kind = k;
    t.pos = pos;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {  // line comment
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    const std::size_t pos = i;
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      Token t;
      t.kind = TokKind::identifier;
      t.text = std::string(text.substr(start, i - start));
      t.pos = pos;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      bool is_real = false;
      if (i < n && text[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        is_real = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
      }
      if (i < n && (text[i] == 'e' || text[i] == 'E')) {
        std::size_t save = i;
        ++i;
        if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
        if (i < n && std::isdigit(static_cast<unsigned char>(text[i]))) {
          is_real = true;
          while (i < n && std::isdigit(static_cast<unsigned char>(text[i])))
            ++i;
        } else {
          i = save;  // not an exponent after all
        }
      }
      Token t;
      t.pos = pos;
      const std::string_view num = text.substr(start, i - start);
      if (is_real) {
        t.kind = TokKind::real;
        t.real_value = std::stod(std::string(num));
      } else {
        t.kind = TokKind::integer;
        std::from_chars(num.data(), num.data() + num.size(), t.int_value);
      }
      out.push_back(std::move(t));
      continue;
    }
    if (c == '"') {
      ++i;
      std::string body;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n) {
          const char esc = text[i + 1];
          switch (esc) {
            case 'n': body.push_back('\n'); break;
            case 't': body.push_back('\t'); break;
            case '\\': body.push_back('\\'); break;
            case '"': body.push_back('"'); break;
            default: body.push_back(esc); break;
          }
          i += 2;
          continue;
        }
        if (text[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        body.push_back(text[i]);
        ++i;
      }
      if (!closed) return lex_error(pos, "unterminated string");
      Token t;
      t.kind = TokKind::string;
      t.text = std::move(body);
      t.pos = pos;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '[': push(TokKind::lbracket, pos); ++i; break;
      case ']': push(TokKind::rbracket, pos); ++i; break;
      case '{': push(TokKind::lbrace, pos); ++i; break;
      case '}': push(TokKind::rbrace, pos); ++i; break;
      case '(': push(TokKind::lparen, pos); ++i; break;
      case ')': push(TokKind::rparen, pos); ++i; break;
      case ';': push(TokKind::semicolon, pos); ++i; break;
      case ',': push(TokKind::comma, pos); ++i; break;
      case '.': push(TokKind::dot, pos); ++i; break;
      case '+': push(TokKind::plus, pos); ++i; break;
      case '-': push(TokKind::minus, pos); ++i; break;
      case '*': push(TokKind::star, pos); ++i; break;
      case '/': push(TokKind::slash, pos); ++i; break;
      case '%': push(TokKind::percent, pos); ++i; break;
      case '?': push(TokKind::question, pos); ++i; break;
      case ':': push(TokKind::colon, pos); ++i; break;
      case '<':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokKind::le, pos);
          i += 2;
        } else {
          push(TokKind::lt, pos);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokKind::ge, pos);
          i += 2;
        } else {
          push(TokKind::gt, pos);
          ++i;
        }
        break;
      case '=':
        if (i + 2 < n && text[i + 1] == '?' && text[i + 2] == '=') {
          push(TokKind::meta_eq, pos);
          i += 3;
        } else if (i + 2 < n && text[i + 1] == '!' && text[i + 2] == '=') {
          push(TokKind::meta_ne, pos);
          i += 3;
        } else if (i + 1 < n && text[i + 1] == '=') {
          push(TokKind::eq, pos);
          i += 2;
        } else {
          push(TokKind::assign, pos);
          ++i;
        }
        break;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokKind::ne, pos);
          i += 2;
        } else {
          push(TokKind::bang, pos);
          ++i;
        }
        break;
      case '&':
        if (i + 1 < n && text[i + 1] == '&') {
          push(TokKind::logical_and, pos);
          i += 2;
        } else {
          return lex_error(pos, "single '&'");
        }
        break;
      case '|':
        if (i + 1 < n && text[i + 1] == '|') {
          push(TokKind::logical_or, pos);
          i += 2;
        } else {
          return lex_error(pos, "single '|'");
        }
        break;
      default:
        return lex_error(pos, std::string("unexpected character '") + c + "'");
    }
  }
  push(TokKind::end, n);
  return out;
}

}  // namespace nest::classad
