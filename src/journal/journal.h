// Durable write-ahead metadata journal (paper Section 5 manageability:
// lots are *guaranteed* reservations, so the state backing them must
// survive a nestd restart).
//
// Layout: a journal directory holds numbered segment files plus at most
// one live snapshot.
//
//   seg-<first-lsn>.wal     sequence of checksummed record frames
//   snap-<lsn>.snp          full-state snapshot superseding lsns <= lsn
//
// Frame format (little-endian):
//   u32 payload_len | u32 crc32c(lsn || payload) | u64 lsn | payload
//
// LSNs are assigned monotonically at append() and are contiguous; a gap
// or checksum mismatch marks the torn tail of the log, which recovery
// truncates (a crash mid-write never corrupts acknowledged records
// because acknowledgment waits for commit()).
//
// Durability modes:
//   always  every commit() flushes + fsyncs the caller's record
//   group   a committer thread batches appends and fsyncs once per
//           commit interval; commit() blocks until the caller's LSN is
//           covered by a batch fsync (group commit)
//   none    commit() returns immediately (benchmark baseline only)
//
// Crash-point fault injection: with crash_after_frames >= 0, the Nth
// frame write tears mid-frame, un-fsynced bytes are discarded (emulating
// page-cache loss), and the journal goes dead — every later append or
// commit fails. Tests reopen the directory and assert replay converges
// to exactly the acknowledged prefix. nestd wires the JOURNAL_CRASH_AFTER
// environment variable to this knob for out-of-process harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"

namespace nest::journal {

// Log sequence number; 1 is the first record, 0 means "nothing".
using Lsn = std::uint64_t;

enum class SyncMode { none, group, always };

// "none" | "group" | "always".
NEST_NODISCARD Result<SyncMode> sync_mode_by_name(const std::string& name);

struct JournalOptions {
  std::string dir;
  SyncMode sync = SyncMode::always;
  Nanos commit_interval = 5 * kMillisecond;  // group-commit fsync cadence
  std::int64_t segment_bytes = 4 * 1024 * 1024;  // roll threshold
  // Legacy per-instance crash point: tear the (N+1)th frame written to
  // the OS and go dead. -1 disables. New code should arm the process-wide
  // `journal.crash=after(n)return()` failpoint instead (same tear
  // semantics); this counter remains for test loops that need per-journal
  // isolation. Additional journal failpoints: journal.append,
  // journal.write, journal.fsync, journal.segment_roll, journal.snapshot.
  long crash_after_frames = -1;

  // Compat shim: overlay JOURNAL_CRASH_AFTER from the environment.
  void apply_env();
};

struct JournalStats {
  Lsn last_lsn = 0;
  Lsn durable_lsn = 0;
  Lsn snapshot_lsn = 0;
  int segment_count = 0;
  std::uint64_t records_since_snapshot = 0;
  Nanos snapshot_time = 0;  // clock time of the live snapshot (0 = none)
  std::uint64_t appends = 0;
  std::uint64_t commits = 0;
  std::uint64_t fsyncs = 0;
};

class Journal {
 public:
  // Opens (creating the directory if needed) and recovers: loads the
  // newest valid snapshot, scans the segment tail, truncates at the
  // first torn/corrupt frame, and positions the append head.
  NEST_NODISCARD
  static Result<std::unique_ptr<Journal>> open(Clock& clock,
                                               JournalOptions options);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Sequence a record. The record is buffered; it is durable only once
  // commit(lsn) returns ok.
  NEST_NODISCARD Result<Lsn> append(std::string payload);

  // Durability barrier for every record up to `upto`.
  NEST_NODISCARD Status commit(Lsn upto);

  // append + commit in one call.
  NEST_NODISCARD Result<Lsn> append_commit(std::string payload);

  // --- Recovery artifacts (valid after open, before the first append) ---
  const std::optional<std::string>& snapshot_payload() const {
    return snapshot_payload_;
  }
  Lsn snapshot_lsn() const {
    MutexLock lock(mu_);
    return snapshot_lsn_;
  }
  // Invoke `fn` for every recovered record with lsn > snapshot_lsn, in
  // LSN order. A failed callback aborts replay with its status.
  NEST_NODISCARD
  Status replay(const std::function<Status(Lsn, std::string_view)>& fn);
  // Release the recovered tail buffer once the owner has replayed it.
  void drop_recovered_tail();

  // Write a full-state snapshot covering every appended record, roll to
  // a fresh segment, and delete segments and snapshots it supersedes.
  NEST_NODISCARD Status write_snapshot(const std::string& payload);

  JournalStats stats() const;
  bool dead() const;

 private:
  explicit Journal(Clock& clock, JournalOptions options);

  // Runs under mu_ from open(): no other thread exists yet, but holding
  // the lock keeps every access to the guarded members analyzable.
  Status recover() REQUIRES(mu_);
  Status open_segment_locked(Lsn start_lsn) REQUIRES(mu_);
  // Write pending frames + fsync per mode.
  Status flush_locked() REQUIRES(mu_);
  void committer_main();

  Clock& clock_;
  JournalOptions options_;

  mutable Mutex mu_{lockrank::Rank::journal, "journal.mu"};
  CondVar durable_cv_;
  CondVar committer_cv_;

  // Append state.
  Lsn next_lsn_ GUARDED_BY(mu_) = 1;
  Lsn durable_lsn_ GUARDED_BY(mu_) = 0;
  // Encoded frames awaiting flush.
  std::vector<std::string> pending_ GUARDED_BY(mu_);
  Lsn pending_first_lsn_ GUARDED_BY(mu_) = 0;
  bool dead_ GUARDED_BY(mu_) = false;

  // Current segment.
  int fd_ GUARDED_BY(mu_) = -1;
  std::string seg_path_ GUARDED_BY(mu_);
  // Bytes written (incl. header).
  std::int64_t seg_size_ GUARDED_BY(mu_) = 0;
  // Bytes covered by the last fsync.
  std::int64_t seg_durable_size_ GUARDED_BY(mu_) = 0;

  struct Segment {
    std::string path;
    Lsn start_lsn = 0;
  };
  // In start-LSN order; back() is live.
  std::vector<Segment> segments_ GUARDED_BY(mu_);

  // Snapshot state.
  // snapshot_payload_ is a recovery artifact: written once under mu_ in
  // recover(), read-only afterwards (the unlocked accessor above is the
  // documented single-owner handoff to attach_journal before serving).
  std::optional<std::string> snapshot_payload_;
  Lsn snapshot_lsn_ GUARDED_BY(mu_) = 0;
  std::string snapshot_path_ GUARDED_BY(mu_);
  Nanos snapshot_time_ GUARDED_BY(mu_) = 0;
  std::uint64_t records_since_snapshot_ GUARDED_BY(mu_) = 0;

  // Recovery tail (lsn > snapshot_lsn_); same single-owner handoff as
  // snapshot_payload_: filled in recover(), consumed via replay()/
  // drop_recovered_tail() before the journal serves concurrent callers.
  std::vector<std::pair<Lsn, std::string>> recovered_;

  // Counters.
  std::uint64_t appends_ GUARDED_BY(mu_) = 0;
  std::uint64_t commits_ GUARDED_BY(mu_) = 0;
  std::uint64_t fsyncs_ GUARDED_BY(mu_) = 0;

  std::thread committer_;
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace nest::journal
