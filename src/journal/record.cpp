#include "journal/record.h"

#include <cstring>

namespace nest::journal {

void RecordWriter::u32(std::uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xff);
  b[1] = static_cast<char>((v >> 8) & 0xff);
  b[2] = static_cast<char>((v >> 16) & 0xff);
  b[3] = static_cast<char>((v >> 24) & 0xff);
  buf_.append(b, 4);
}

void RecordWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void RecordWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

Result<std::uint8_t> RecordReader::u8() {
  if (remaining() < 1)
    return Error{Errc::protocol_error, "record underflow (u8)"};
  return static_cast<std::uint8_t>(buf_[pos_++]);
}

Result<std::uint32_t> RecordReader::u32() {
  if (remaining() < 4)
    return Error{Errc::protocol_error, "record underflow (u32)"};
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  pos_ += 4;
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

Result<std::uint64_t> RecordReader::u64() {
  auto lo = u32();
  if (!lo.ok()) return lo.error();
  auto hi = u32();
  if (!hi.ok()) return hi.error();
  return static_cast<std::uint64_t>(*lo) |
         (static_cast<std::uint64_t>(*hi) << 32);
}

Result<std::int64_t> RecordReader::i64() {
  auto v = u64();
  if (!v.ok()) return v.error();
  return static_cast<std::int64_t>(*v);
}

Result<std::string> RecordReader::str() {
  auto len = u32();
  if (!len.ok()) return len.error();
  if (remaining() < *len)
    return Error{Errc::protocol_error, "record underflow (str)"};
  std::string out(buf_.substr(pos_, *len));
  pos_ += *len;
  return out;
}

}  // namespace nest::journal
