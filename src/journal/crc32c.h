// CRC32C (Castagnoli) — the checksum the journal stamps on every record
// frame and snapshot. Software table implementation (no SSE4.2
// dependency); the polynomial matches iSCSI/ext4 so external tooling can
// verify journal files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace nest::journal {

// One-shot CRC over a buffer. `seed` chains partial computations:
// crc32c(b, n, crc32c(a, m)) == crc32c(concat(a, b)).
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0);

inline std::uint32_t crc32c(std::string_view s, std::uint32_t seed = 0) {
  return crc32c(s.data(), s.size(), seed);
}

}  // namespace nest::journal
