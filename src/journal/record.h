// Byte-level codec for journal payloads.
//
// Payloads are flat little-endian records: fixed-width integers plus
// length-prefixed strings. The codec is deliberately schema-free — the
// storage layer defines what a payload means; the journal only frames,
// checksums, and sequences opaque payloads (see journal.h for the frame
// format).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"

namespace nest::journal {

class RecordWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  // Length-prefixed (u32) byte string.
  void str(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

// Sequential reader over a payload. All getters fail with
// Errc::protocol_error on underflow so a truncated or corrupt payload is
// rejected rather than misparsed.
class RecordReader {
 public:
  explicit RecordReader(std::string_view buf) : buf_(buf) {}

  NEST_NODISCARD Result<std::uint8_t> u8();
  NEST_NODISCARD Result<std::uint32_t> u32();
  NEST_NODISCARD Result<std::uint64_t> u64();
  NEST_NODISCARD Result<std::int64_t> i64();
  NEST_NODISCARD Result<std::string> str();

  bool done() const { return pos_ >= buf_.size(); }
  std::size_t remaining() const { return buf_.size() - pos_; }

 private:
  std::string_view buf_;
  std::size_t pos_ = 0;
};

}  // namespace nest::journal
