#include "journal/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.h"
#include "fault/failpoint.h"
#include "journal/crc32c.h"
#include "journal/record.h"

namespace nest::journal {

namespace {

constexpr std::uint32_t kSegmentMagic = 0x4a54534e;  // "NSTJ"
constexpr std::uint32_t kSnapshotMagic = 0x50534e4e;  // "NNSP"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kFrameHeaderBytes = 4 + 4 + 8;

std::string lsn_name(const char* prefix, Lsn lsn, const char* suffix) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%016llx%s", prefix,
                static_cast<unsigned long long>(lsn), suffix);
  return buf;
}

// Parse "<prefix><16 hex><suffix>"; returns the LSN or nullopt.
std::optional<Lsn> parse_lsn_name(const std::string& name,
                                  const char* prefix, const char* suffix) {
  const std::size_t plen = std::strlen(prefix);
  const std::size_t slen = std::strlen(suffix);
  if (name.size() != plen + 16 + slen) return std::nullopt;
  if (name.compare(0, plen, prefix) != 0) return std::nullopt;
  if (name.compare(plen + 16, slen, suffix) != 0) return std::nullopt;
  Lsn lsn = 0;
  for (std::size_t i = plen; i < plen + 16; ++i) {
    const char c = name[i];
    lsn <<= 4;
    if (c >= '0' && c <= '9') lsn |= static_cast<Lsn>(c - '0');
    else if (c >= 'a' && c <= 'f') lsn |= static_cast<Lsn>(c - 'a' + 10);
    else return std::nullopt;
  }
  return lsn;
}

Status write_all_fd(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{Errc::io_error,
                    std::string("journal write: ") + std::strerror(errno)};
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return {};
}

Status fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return Status{Errc::io_error, "fsync open " + path};
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Status{Errc::io_error, "fsync " + path};
  return {};
}

Result<std::string> read_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return Error{Errc::io_error, "open " + path + ": " + std::strerror(errno)};
  std::string out;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Error{Errc::io_error, "read " + path};
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

// Frame = len | crc | lsn | payload; crc covers lsn bytes + payload.
std::string encode_frame(Lsn lsn, std::string_view payload) {
  RecordWriter body;
  body.u64(lsn);
  std::string inner = body.take();
  inner.append(payload.data(), payload.size());
  RecordWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32c(inner));
  std::string out = frame.take();
  out += inner;
  return out;
}

}  // namespace

Result<SyncMode> sync_mode_by_name(const std::string& name) {
  if (name == "none") return SyncMode::none;
  if (name == "group") return SyncMode::group;
  if (name == "always") return SyncMode::always;
  return Error{Errc::invalid_argument, "unknown journal sync '" + name + "'"};
}

void JournalOptions::apply_env() {
  // Compat shim: JOURNAL_CRASH_AFTER predates the failpoint registry and
  // stays supported because it arms a *per-instance* counter — test loops
  // that open many journals in one process rely on that isolation. New
  // code should arm `journal.crash=after(n)return()` instead (same
  // semantics, process-wide; see docs/fault-injection.md).
  if (const char* v = std::getenv("JOURNAL_CRASH_AFTER")) {
    crash_after_frames = std::strtol(v, nullptr, 10);
  }
}

Journal::Journal(Clock& clock, JournalOptions options)
    : clock_(clock), options_(std::move(options)) {}

Result<std::unique_ptr<Journal>> Journal::open(Clock& clock,
                                               JournalOptions options) {
  if (options.dir.empty())
    return Error{Errc::invalid_argument, "journal dir is empty"};
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Error{Errc::io_error,
                 "mkdir " + options.dir + ": " + std::strerror(errno)};
  }
  std::unique_ptr<Journal> j(new Journal(clock, std::move(options)));
  {
    // No other thread exists yet; the lock is for analyzability only.
    MutexLock lock(j->mu_);
    if (auto s = j->recover(); !s.ok()) return Error{s.error()};
  }
  if (j->options_.sync == SyncMode::group) {
    j->committer_ = std::thread([p = j.get()] { p->committer_main(); });
  }
  return j;
}

Journal::~Journal() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    // Shutdown flush is best-effort; on failure flush_locked goes dead.
    if (!dead_ && !pending_.empty()) (void)flush_locked();
  }
  committer_cv_.notify_all();
  durable_cv_.notify_all();
  if (committer_.joinable()) committer_.join();
  MutexLock lock(mu_);
  if (fd_ >= 0) ::close(fd_);
}

Status Journal::recover() {
  // Enumerate snapshots and segments.
  DIR* d = ::opendir(options_.dir.c_str());
  if (!d) return Status{Errc::io_error, "opendir " + options_.dir};
  std::vector<std::pair<Lsn, std::string>> snaps;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (auto lsn = parse_lsn_name(name, "seg-", ".wal")) {
      segments_.push_back(Segment{options_.dir + "/" + name, *lsn});
    } else if (auto slsn = parse_lsn_name(name, "snap-", ".snp")) {
      snaps.emplace_back(*slsn, options_.dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(segments_.begin(), segments_.end(),
            [](const Segment& a, const Segment& b) {
              return a.start_lsn < b.start_lsn;
            });
  std::sort(snaps.begin(), snaps.end());

  // Newest snapshot that validates wins; corrupt ones are skipped.
  for (auto it = snaps.rbegin(); it != snaps.rend(); ++it) {
    auto bytes = read_file(it->second);
    if (!bytes.ok()) continue;
    RecordReader r(*bytes);
    const auto magic = r.u32();
    const auto version = r.u32();
    const auto lsn = r.u64();
    const auto time = r.i64();
    const auto crc = r.u32();
    const auto payload = r.str();
    if (!magic.ok() || *magic != kSnapshotMagic || !version.ok() ||
        *version != kVersion || !lsn.ok() || !time.ok() || !crc.ok() ||
        !payload.ok() || crc32c(*payload) != *crc) {
      NEST_LOG_WARN("journal", "ignoring corrupt snapshot %s",
                    it->second.c_str());
      continue;
    }
    snapshot_lsn_ = *lsn;
    snapshot_time_ = *time;
    snapshot_payload_ = std::move(payload.value());
    snapshot_path_ = it->second;
    break;
  }

  // Scan segments in order; collect records past the snapshot. The first
  // invalid frame is the torn tail: truncate there and discard anything
  // after it (later segments included — they cannot contain acknowledged
  // records if an earlier write never completed).
  Lsn last_lsn = snapshot_lsn_;
  bool torn = false;
  std::size_t keep_segments = segments_.size();
  for (std::size_t si = 0; si < segments_.size(); ++si) {
    if (torn) {
      keep_segments = std::min(keep_segments, si);
      break;
    }
    const Segment& seg = segments_[si];
    auto bytes = read_file(seg.path);
    if (!bytes.ok()) return Status{bytes.error()};
    std::size_t good = 0;
    do {
      if (bytes->size() < kSegmentHeaderBytes) { torn = true; break; }
      RecordReader hdr(*bytes);
      const auto magic = hdr.u32();
      const auto version = hdr.u32();
      const auto start = hdr.u64();
      if (!magic.ok() || *magic != kSegmentMagic || !version.ok() ||
          *version != kVersion || !start.ok() || *start != seg.start_lsn) {
        torn = true;
        break;
      }
      good = kSegmentHeaderBytes;
      while (good < bytes->size()) {
        if (bytes->size() - good < kFrameHeaderBytes) { torn = true; break; }
        RecordReader fr(std::string_view(*bytes).substr(good));
        const std::uint32_t len = *fr.u32();
        const std::uint32_t crc = *fr.u32();
        if (bytes->size() - good < kFrameHeaderBytes + len) {
          torn = true;
          break;
        }
        const std::string_view inner =
            std::string_view(*bytes).substr(good + 8, 8 + len);
        if (crc32c(inner) != crc) { torn = true; break; }
        const Lsn lsn = *fr.u64();
        // A sequence break also ends the trusted prefix.
        if (lsn != last_lsn + 1 && lsn > snapshot_lsn_) {
          torn = true;
          break;
        }
        if (lsn > snapshot_lsn_) {
          recovered_.emplace_back(
              lsn, std::string(inner.substr(8)));
          last_lsn = lsn;
        } else if (lsn > last_lsn) {
          last_lsn = lsn;
        }
        good += kFrameHeaderBytes + len;
      }
    } while (false);
    if (torn) {
      NEST_LOG_WARN("journal", "truncating torn tail of %s at %zu bytes",
                    seg.path.c_str(), good);
      if (good < kSegmentHeaderBytes) {
        // Not even a valid header: drop the segment file entirely.
        // Best-effort: an undeleted segment is re-dropped next recovery.
        (void)::unlink(seg.path.c_str());
        keep_segments = std::min(keep_segments, si);
      } else {
        if (::truncate(seg.path.c_str(), static_cast<off_t>(good)) != 0) {
          return Status{Errc::io_error, "truncate " + seg.path};
        }
        // Best-effort: an unsynced truncate is simply re-done next recovery.
        (void)fsync_path(seg.path);
        keep_segments = std::min(keep_segments, si + 1);
      }
    }
  }
  for (std::size_t si = keep_segments; si < segments_.size(); ++si) {
    NEST_LOG_WARN("journal", "dropping unreachable segment %s",
                  segments_[si].path.c_str());
    // Best-effort: an undeleted segment is re-dropped next recovery.
    (void)::unlink(segments_[si].path.c_str());
  }
  segments_.resize(keep_segments);

  next_lsn_ = last_lsn + 1;
  durable_lsn_ = last_lsn;
  records_since_snapshot_ = recovered_.size();

  // Append head: always start a fresh segment — cheap, and it never
  // reopens a file whose tail state we would otherwise have to trust.
  return open_segment_locked(next_lsn_);
}

Status Journal::open_segment_locked(Lsn start_lsn) {
  NEST_FAILPOINT("journal.segment_roll", return Status{err});
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  seg_path_ = options_.dir + "/" + lsn_name("seg-", start_lsn, ".wal");
  fd_ = ::open(seg_path_.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd_ < 0)
    return Status{Errc::io_error,
                  "create " + seg_path_ + ": " + std::strerror(errno)};
  RecordWriter hdr;
  hdr.u32(kSegmentMagic);
  hdr.u32(kVersion);
  hdr.u64(start_lsn);
  const std::string bytes = hdr.take();
  if (auto s = write_all_fd(fd_, bytes.data(), bytes.size()); !s.ok())
    return s;
  seg_size_ = static_cast<std::int64_t>(bytes.size());
  seg_durable_size_ = 0;
  if (options_.sync != SyncMode::none) {
    if (::fsync(fd_) != 0)
      return Status{Errc::io_error, "fsync " + seg_path_};
    ++fsyncs_;
    seg_durable_size_ = seg_size_;
    // Best-effort: a lost directory entry reads as a missing tail segment,
    // which recovery tolerates.
    (void)fsync_path(options_.dir);
  }
  // Re-creating a path already in the list (recovery truncated it to a
  // bare header) must not leave a duplicate entry behind.
  std::erase_if(segments_,
                [&](const Segment& s) { return s.path == seg_path_; });
  segments_.push_back(Segment{seg_path_, start_lsn});
  return {};
}

Result<Lsn> Journal::append(std::string payload) {
  MutexLock lock(mu_);
  if (dead_) return Error{Errc::io_error, "journal is dead (injected crash)"};
  // An append-layer failure kills the journal: the storage layer has
  // already mutated in-memory state when it seals a batch, so "record
  // refused but journal still live" would let later acked ops diverge
  // from what replay reconstructs.
  NEST_FAILPOINT("journal.append", {
    dead_ = true;
    durable_cv_.notify_all();
    return err;
  });
  const Lsn lsn = next_lsn_++;
  if (pending_.empty()) pending_first_lsn_ = lsn;
  pending_.push_back(encode_frame(lsn, payload));
  ++appends_;
  ++records_since_snapshot_;
  return lsn;
}

Status Journal::flush_locked() {
  if (dead_) return Status{Errc::io_error, "journal is dead"};
  if (pending_.empty()) return {};
  // Roll when the live segment is over the threshold; the new segment
  // starts at the first pending LSN.
  if (seg_size_ >= options_.segment_bytes) {
    if (auto s = open_segment_locked(pending_first_lsn_); !s.ok()) {
      // A WAL that cannot open its next segment is broken: marking it dead
      // keeps the pending frames from becoming durable on a later retry
      // after their ops were already reported as failed.
      dead_ = true;
      durable_cv_.notify_all();
      return s;
    }
  }
  Lsn written_upto = durable_lsn_;
  // A failed write or fsync leaves durability unknown for everything
  // since the last successful fsync: those ops were (or will be)
  // reported as failed, so the bytes must not survive into recovery.
  // Discard them before going dead, exactly like the crash path.
  const auto fail_discarding = [&](Status s) {
    const std::int64_t keep =
        seg_durable_size_ > 0
            ? seg_durable_size_
            : static_cast<std::int64_t>(kSegmentHeaderBytes);
    // Already failing: shrinking back to the durable prefix is damage control.
    (void)::ftruncate(fd_, static_cast<off_t>(keep));
    // Seek result is irrelevant once dead_ is set; nothing writes after.
    (void)::lseek(fd_, 0, SEEK_END);
    seg_size_ = keep;
    dead_ = true;
    durable_cv_.notify_all();
    return s;
  };
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const std::string& frame = pending_[i];
    bool tear = options_.crash_after_frames == 0;
    NEST_FAILPOINT("journal.crash", tear = true);
    if (tear) {
      // Injected crash: discard everything past the last fsync (emulating
      // page-cache loss — frames written earlier in this very flush die
      // too) and leave a torn half-frame behind for recovery to truncate.
      const std::int64_t keep =
          seg_durable_size_ > 0
              ? seg_durable_size_
              : static_cast<std::int64_t>(kSegmentHeaderBytes);
      // Emulated page-cache loss: errors cannot make the crash less crashed.
      (void)::ftruncate(fd_, static_cast<off_t>(keep));
      // Seek result is irrelevant; the journal is dead after this block.
      (void)::lseek(fd_, 0, SEEK_END);
      // The half-frame is deliberate tear bait; a short write tears just as
      // well.
      (void)write_all_fd(fd_, frame.data(), frame.size() / 2);
      seg_size_ = keep + static_cast<std::int64_t>(frame.size() / 2);
      dead_ = true;
      durable_cv_.notify_all();
      return Status{Errc::io_error, "journal crashed (injected)"};
    }
    if (options_.crash_after_frames > 0) --options_.crash_after_frames;
    Status ws;
    NEST_FAILPOINT("journal.write", ws = Status{err});
    if (ws.ok()) ws = write_all_fd(fd_, frame.data(), frame.size());
    if (!ws.ok()) return fail_discarding(ws);
    seg_size_ += static_cast<std::int64_t>(frame.size());
    ++written_upto;
  }
  if (options_.sync != SyncMode::none) {
    Status fs;
    NEST_FAILPOINT("journal.fsync", fs = Status{err});
    if (fs.ok() && ::fsync(fd_) != 0)
      fs = Status{Errc::io_error, "fsync " + seg_path_};
    if (!fs.ok()) return fail_discarding(fs);
    ++fsyncs_;
  }
  seg_durable_size_ = seg_size_;
  durable_lsn_ = written_upto;
  pending_.clear();
  durable_cv_.notify_all();
  return {};
}

Status Journal::commit(Lsn upto) {
  if (upto == 0) return {};
  ++commits_;
  switch (options_.sync) {
    case SyncMode::none: {
      // No durability barrier; still push bytes to the OS so a clean
      // shutdown leaves a replayable log.
      MutexLock lock(mu_);
      if (durable_lsn_ >= upto) return {};
      return flush_locked();
    }
    case SyncMode::always: {
      MutexLock lock(mu_);
      if (durable_lsn_ >= upto) return {};
      return flush_locked();
    }
    case SyncMode::group: {
      // Timer-driven batching: the committer fsyncs once per interval,
      // amortizing the flush across every record appended meanwhile.
      MutexLock lock(mu_);
      durable_cv_.wait(lock,
                       [&] { return durable_lsn_ >= upto || dead_ || stop_; });
      if (durable_lsn_ >= upto) return {};
      return Status{Errc::io_error, "journal died before commit"};
    }
  }
  return Status{Errc::internal, "bad sync mode"};
}

Result<Lsn> Journal::append_commit(std::string payload) {
  auto lsn = append(std::move(payload));
  if (!lsn.ok()) return lsn;
  if (auto s = commit(*lsn); !s.ok()) return Error{s.error()};
  return lsn;
}

void Journal::committer_main() {
  MutexLock lock(mu_);
  while (!stop_) {
    committer_cv_.wait_for(
        lock, std::chrono::nanoseconds(options_.commit_interval),
        [&] { return stop_; });
    if (stop_) break;
    // Flush failure marks the journal dead; the loop then idles until stop.
    if (!dead_ && !pending_.empty()) (void)flush_locked();
  }
}

Status Journal::replay(
    const std::function<Status(Lsn, std::string_view)>& fn) {
  for (const auto& [lsn, payload] : recovered_) {
    if (auto s = fn(lsn, payload); !s.ok()) return s;
  }
  return {};
}

void Journal::drop_recovered_tail() {
  recovered_.clear();
  recovered_.shrink_to_fit();
}

Status Journal::write_snapshot(const std::string& payload) {
  MutexLock lock(mu_);
  if (dead_) return Status{Errc::io_error, "journal is dead"};
  // The snapshot covers every appended record: flush them first so the
  // on-disk state never goes backwards if the snapshot write dies.
  if (auto s = flush_locked(); !s.ok()) return s;
  // Snapshot failures are non-fatal: segments are intact, replay stays
  // complete, the caller just keeps the longer tail.
  NEST_FAILPOINT("journal.snapshot", return Status{err});
  const Lsn snap_lsn = next_lsn_ - 1;

  const std::string path =
      options_.dir + "/" + lsn_name("snap-", snap_lsn, ".snp");
  const std::string tmp = path + ".tmp";
  RecordWriter w;
  w.u32(kSnapshotMagic);
  w.u32(kVersion);
  w.u64(snap_lsn);
  w.i64(clock_.now());
  w.u32(crc32c(payload));
  w.str(payload);
  {
    const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0) return Status{Errc::io_error, "create " + tmp};
    const std::string& bytes = w.bytes();
    auto s = write_all_fd(fd, bytes.data(), bytes.size());
    if (s.ok() && ::fsync(fd) != 0)
      s = Status{Errc::io_error, "fsync " + tmp};
    ::close(fd);
    if (!s.ok()) {
      // Best-effort cleanup of the half-written temp snapshot.
      (void)::unlink(tmp.c_str());
      return s;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    return Status{Errc::io_error, "rename " + tmp};
  // Best-effort: an unsynced rename re-runs snapshotting after a crash.
  (void)fsync_path(options_.dir);

  const std::string old_snapshot = snapshot_path_;
  snapshot_path_ = path;
  snapshot_lsn_ = snap_lsn;
  snapshot_time_ = clock_.now();
  records_since_snapshot_ = 0;

  // Compaction: roll to a fresh segment, then delete everything the
  // snapshot supersedes (all older segments and the previous snapshot).
  if (auto s = open_segment_locked(next_lsn_); !s.ok()) return s;
  while (segments_.size() > 1) {
    // Best-effort: an undeleted old segment is re-compacted next time.
    (void)::unlink(segments_.front().path.c_str());
    segments_.erase(segments_.begin());
  }
  if (!old_snapshot.empty() && old_snapshot != path) {
    // Best-effort: a leftover old snapshot is superseded, never replayed.
    (void)::unlink(old_snapshot.c_str());
  }
  // Best-effort: deletions re-run on the next compaction if not durable.
  (void)fsync_path(options_.dir);
  return {};
}

JournalStats Journal::stats() const {
  MutexLock lock(mu_);
  JournalStats st;
  st.last_lsn = next_lsn_ - 1;
  st.durable_lsn = durable_lsn_;
  st.snapshot_lsn = snapshot_lsn_;
  st.segment_count = static_cast<int>(segments_.size());
  st.records_since_snapshot = records_since_snapshot_;
  st.snapshot_time = snapshot_time_;
  st.appends = appends_;
  st.commits = commits_;
  st.fsyncs = fsyncs_;
  return st;
}

bool Journal::dead() const {
  MutexLock lock(mu_);
  return dead_;
}

}  // namespace nest::journal
