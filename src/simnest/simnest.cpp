#include "simnest/simnest.h"

#include <algorithm>
#include <cassert>

namespace nest::simnest {

using sim::Co;
using sim::SemGuard;
using transfer::ConcurrencyModel;
using transfer::Direction;
using transfer::TransferRequest;

SimNestConfig jbos_config() {
  SimNestConfig cfg;
  cfg.tm.scheduler = "fifo";
  cfg.tm.adaptive = false;
  cfg.tm.fixed_model = ConcurrencyModel::threads;
  cfg.dispatch_overhead = 0;  // native server: no virtual protocol layer
  return cfg;
}

SimNest::SimNest(SimHost& host, SimNestConfig config)
    : host_(host),
      config_(config),
      tm_(host.engine().clock(), config.tm),
      core_(tm_, config.service_slots),
      admission_(host.engine().clock(), config.admission),
      gate_(host.engine(), core_),
      event_loop_(host.engine(), 1),
      disk_stage_(host.engine(), 2),
      net_stage_(host.engine(), 2) {
  core_.set_admission(&admission_);
}

void SimNest::ServiceGate::schedule_pump() {
  if (pump_pending_) return;
  pump_pending_ = true;
  eng_.schedule(0, [this] {
    pump_pending_ = false;
    pump();
  });
}

void SimNest::ServiceGate::pump() {
  while (core_.free_slots() > 0) {
    TransferRequest* r = core_.try_grant();
    if (r == nullptr) {
      // Non-work-conserving hold: retry when the hold expires.
      const Nanos hold = core_.hold_until();
      if (hold > eng_.now() && !waiters_.empty()) {
        eng_.schedule_at(hold, [this] { schedule_pump(); });
      }
      break;
    }
    const auto it = waiters_.find(r);
    assert(it != waiters_.end());
    const std::coroutine_handle<> h = it->second;
    waiters_.erase(it);
    h.resume();
  }
}

void SimNest::add_file(const std::string& path, std::int64_t size,
                       bool cached) {
  FileInfo info{next_file_id_++, size};
  files_[path] = info;
  if (cached) {
    host_.store().preload(info.id, size);
    // Prime the gray-box model to mirror reality.
    tm_.cache_model().observe_access(path, 0, size);
  }
}

void SimNest::evict(const std::string& path) {
  const auto it = files_.find(path);
  if (it == files_.end()) return;
  host_.store().evict_file(it->second.id, it->second.size);
}

std::int64_t SimNest::file_size(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? -1 : it->second.size;
}

void SimNest::attach_cold_tier(const sim::PlatformProfile& profile) {
  cold_store_ = std::make_unique<sim::SimStore>(host_.engine(), profile);
}

void SimNest::add_cold_file(const std::string& path, std::int64_t size) {
  assert(cold_store_ != nullptr);
  FileInfo info{next_file_id_++, size};
  files_[path] = info;
  cold_files_.insert(path);
}

Co<bool> SimNest::migrate_file(std::string path) {
  const auto it = files_.find(path);
  if (cold_store_ == nullptr || it == files_.end() ||
      cold_files_.count(path)) {
    co_return false;
  }
  const FileInfo file = it->second;
  TransferRequest* req =
      core_.create_request("migrate", Direction::read, path, file.size);
  for (std::int64_t off = 0; off < file.size; off += config_.hsm_block) {
    const std::int64_t len = std::min(config_.hsm_block, file.size - off);
    co_await gate_.acquire(req);
    co_await host_.store().read(file.id, off, len);
    co_await cold_store_->write(file.id, off, len);
    core_.charge(req, len);
    gate_.release();
  }
  // The hot copy may go only once the cold copy is on media.
  co_await cold_store_->sync();
  core_.complete(req);
  cold_files_.insert(path);
  host_.store().evict_file(file.id, file.size);
  ++hsm_.migrations;
  hsm_.bytes_migrated += file.size;
  co_return true;
}

Co<void> SimNest::ensure_hot(std::string path) {
  if (cold_store_ == nullptr || !cold_files_.count(path)) co_return;
  const auto fit = recall_flights_.find(path);
  if (fit != recall_flights_.end()) {
    ++hsm_.recall_joins;
    co_await fit->second->wait();
    co_return;
  }
  auto flight = std::make_unique<sim::SimEvent>(host_.engine());
  sim::SimEvent* ev = flight.get();
  recall_flights_[path] = std::move(flight);
  const FileInfo file = files_[path];
  TransferRequest* req =
      core_.create_request("recall", Direction::write, path, file.size);
  for (std::int64_t off = 0; off < file.size; off += config_.hsm_block) {
    const std::int64_t len = std::min(config_.hsm_block, file.size - off);
    co_await gate_.acquire(req);
    co_await cold_store_->read(file.id, off, len);
    co_await host_.store().write(file.id, off, len);
    core_.charge(req, len);
    gate_.release();
  }
  core_.complete(req);
  cold_files_.erase(path);
  ++hsm_.recalls;
  hsm_.bytes_recalled += file.size;
  // Erase the flight before waking joiners: a read arriving after this
  // instant sees a hot file, not a phantom in-flight recall.
  const auto node = recall_flights_.extract(path);
  ev->set();
}

Nanos SimNest::model_block_cost(ConcurrencyModel model) const {
  const auto& p = host_.platform();
  switch (model) {
    case ConcurrencyModel::threads: return p.thread_ctx_switch + p.syscall;
    case ConcurrencyModel::processes:
      return p.process_ctx_switch + p.syscall;
    case ConcurrencyModel::events: return p.event_dispatch + p.syscall;
    case ConcurrencyModel::staged:
      // Two stage handoffs (enqueue + dispatch) per block, no per-request
      // thread costs.
      return 2 * p.event_dispatch + p.syscall;
  }
  return 0;
}

Nanos SimNest::model_setup_cost(ConcurrencyModel model) const {
  const auto& p = host_.platform();
  switch (model) {
    case ConcurrencyModel::threads: return p.thread_create;
    case ConcurrencyModel::processes: return p.process_fork;
    case ConcurrencyModel::events: return 0;  // handler registration only
    case ConcurrencyModel::staged: return 0;  // stages pre-exist
  }
  return 0;
}

void SimNest::report_completion(ConcurrencyModel model, Nanos latency,
                                std::int64_t bytes) {
  if (tm_.options().adapt.metric == transfer::AdaptMetric::latency) {
    core_.report_model(model, static_cast<double>(latency));
  } else {
    const double secs = to_seconds(latency);
    core_.report_model(model,
                       secs > 0 ? static_cast<double>(bytes) / secs : 0.0);
  }
}

Co<void> SimNest::serve_read_block(const ProtocolBehavior& proto,
                                   const FileInfo& file, std::int64_t offset,
                                   std::int64_t len, ConcurrencyModel model,
                                   Nanos setup_cost) {
  const Nanos cpu = model_block_cost(model) + proto.per_block_cpu;
  const Nanos per_byte_cpu =
      proto.per_byte_cpu_bw > 0
          ? from_seconds(static_cast<double>(len) / proto.per_byte_cpu_bw)
          : 0;
  if (model == ConcurrencyModel::events) {
    // The single event loop performs dispatch, the (blocking!) disk read,
    // and the protocol processing. While it does, every other event-model
    // request stalls — the Flash-paper weakness the adaptive design works
    // around. The socket send itself is non-blocking and proceeds outside
    // the loop.
    co_await event_loop_.acquire();
    {
      SemGuard loop(event_loop_);
      co_await host_.cpu_work(setup_cost + cpu + per_byte_cpu);
      co_await host_.store().read(file.id, offset, len);
    }
    co_await host_.link().transfer(len);
  } else if (model == ConcurrencyModel::staged) {
    // SEDA-style: cache-resident blocks bypass the disk stage entirely
    // (the admission stage routes by residency), so hits never queue
    // behind misses; only misses occupy a disk-stage worker. The network
    // stage pool performs the sends.
    if (host_.store().range_cached(file.id, offset, len)) {
      co_await host_.cpu_work(setup_cost + cpu + per_byte_cpu);
      co_await host_.store().read(file.id, offset, len);
    } else {
      co_await disk_stage_.acquire();
      SemGuard stage(disk_stage_);
      co_await host_.cpu_work(setup_cost + cpu + per_byte_cpu);
      co_await host_.store().read(file.id, offset, len);
    }
    co_await net_stage_.acquire();
    {
      SemGuard stage(net_stage_);
      co_await host_.link().transfer(len);
    }
  } else {
    // Threads/processes: I/O overlaps across requests; CPU processing
    // still serializes on the host's single processor.
    co_await host_.cpu_work(setup_cost + cpu + per_byte_cpu);
    co_await host_.store().read(file.id, offset, len);
    co_await host_.link().transfer(len);
  }
  if (proto.per_block_ack) co_await host_.link().round_trip(64);
}

Co<void> SimNest::serve_write_block(const ProtocolBehavior& proto,
                                    const FileInfo& file, std::int64_t offset,
                                    std::int64_t len, ConcurrencyModel model,
                                    Nanos setup_cost) {
  const Nanos cpu = model_block_cost(model) + proto.per_block_cpu;
  // Bytes arrive over the link first, then pass through the OS write path
  // (cache insert, possible writeback throttling, quota charges).
  const Nanos per_byte_cpu =
      proto.per_byte_cpu_bw > 0
          ? from_seconds(static_cast<double>(len) / proto.per_byte_cpu_bw)
          : 0;
  co_await host_.link().transfer(len);
  if (model == ConcurrencyModel::events) {
    co_await event_loop_.acquire();
    SemGuard loop(event_loop_);
    co_await host_.cpu_work(setup_cost + cpu + per_byte_cpu);
    co_await host_.store().write(file.id, offset, len);
  } else if (model == ConcurrencyModel::staged) {
    co_await disk_stage_.acquire();
    SemGuard stage(disk_stage_);
    co_await host_.cpu_work(setup_cost + cpu + per_byte_cpu);
    co_await host_.store().write(file.id, offset, len);
  } else {
    co_await host_.cpu_work(setup_cost + cpu + per_byte_cpu);
    co_await host_.store().write(file.id, offset, len);
  }
  if (proto.per_block_ack) co_await host_.link().round_trip(64);
}

Co<bool> SimNest::client_get(ProtocolBehavior proto, std::string path,
                             std::string user) {
  auto& eng = host_.engine();
  const auto it = files_.find(path);
  assert(it != files_.end());
  const FileInfo file = it->second;

  // Session setup (includes authentication round trips) + the GET request.
  for (int i = 0; i < proto.connect_rtts; ++i) {
    co_await host_.link().round_trip(256);
  }
  co_await host_.link().round_trip(256);

  // The dispatcher consults the shedder before registering the transfer;
  // a shed request has paid the connection setup but moves no data (the
  // busy reply rides the request round trip already awaited above).
  if (admission_.admit(proto.name, user) !=
      transfer::AdmissionController::Verdict::admitted) {
    co_return false;
  }

  // Cold data must come back through the staged-recall path first; every
  // concurrent reader of the same file shares one recall (fan-in).
  if (cold_store_ && cold_files_.count(path)) co_await ensure_hot(path);

  TransferRequest* req = core_.create_request(proto.name, Direction::read,
                                              path, file.size, user);
  const ConcurrencyModel model = core_.pick_model();
  Nanos setup = model_setup_cost(model) + config_.dispatch_overhead;

  bool first = true;
  for (std::int64_t off = 0; off < file.size; off += proto.block) {
    const std::int64_t len = std::min(proto.block, file.size - off);
    if (proto.sync_per_block && !first) {
      // Block protocols: the client requests each block in its own RPC.
      co_await host_.link().round_trip(128);
    }
    co_await gate_.acquire(req);
    co_await serve_read_block(proto, file, off, len, model, setup);
    core_.charge(req, len);  // before release: grants must see fresh passes
    gate_.release();
    setup = 0;
    first = false;
  }
  const Nanos latency = eng.now() - req->arrival;
  report_completion(model, latency, file.size);
  core_.complete(req);
  co_return true;
}

Co<bool> SimNest::client_put(ProtocolBehavior proto, std::string path,
                             std::int64_t size, std::string user) {
  auto& eng = host_.engine();

  for (int i = 0; i < proto.connect_rtts; ++i) {
    co_await host_.link().round_trip(256);
  }
  co_await host_.link().round_trip(256);  // PUT request + approval

  if (admission_.admit(proto.name, user) !=
      transfer::AdmissionController::Verdict::admitted) {
    co_return false;
  }

  // The file springs into existence only once the store is admitted.
  if (!files_.count(path)) files_[path] = FileInfo{next_file_id_++, size};
  files_[path].size = size;
  const FileInfo file = files_[path];

  TransferRequest* req = core_.create_request(proto.name, Direction::write,
                                              path, size, user);
  const ConcurrencyModel model = core_.pick_model();
  Nanos setup = model_setup_cost(model) + config_.dispatch_overhead;

  bool first = true;
  for (std::int64_t off = 0; off < size; off += proto.block) {
    const std::int64_t len = std::min(proto.block, size - off);
    if (proto.sync_per_block && !first) {
      co_await host_.link().round_trip(128);
    }
    co_await gate_.acquire(req);
    co_await serve_write_block(proto, file, off, len, model, setup);
    core_.charge(req, len);
    gate_.release();
    setup = 0;
    first = false;
  }
  const Nanos latency = eng.now() - req->arrival;
  report_completion(model, latency, size);
  core_.complete(req);
  co_return true;
}

}  // namespace nest::simnest
