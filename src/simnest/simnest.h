// SimNest: a NeST appliance bound to the discrete-event substrate.
//
// The policy brain is the *production* transfer::TransferCore — the same
// lifecycle/admission core (and, under it, the same schedulers, adaptive
// selector, and gray-box cache model) the real epoll server drives from
// concurrent connection threads, here driven single-threaded by the event
// engine. This class supplies the byte-moving substrate: simulated
// clients call client_get/client_put; blocks pass through a service gate
// whose admission order is decided by the core's scheduler; the chosen
// concurrency model determines which simulated OS costs each block pays
// (the event model serializes disk reads and copies behind a single loop;
// threads/processes run concurrently but pay creation and context switch
// costs).
//
// A JBOS native server (paper's comparison baseline) is the same machinery
// with a fixed single protocol, FIFO scheduling, and no adaptation — built
// via jbos_config().
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>

#include "sim/coro.h"
#include "sim/sync.h"
#include "simnest/protocol_model.h"
#include "simnest/simhost.h"
#include "transfer/core.h"
#include "transfer/transfer_manager.h"

namespace nest::simnest {

struct SimNestConfig {
  transfer::TransferManager::Options tm;
  // Concurrent block services admitted at once. Bounded so the scheduler's
  // queueing decisions matter, as in the real server's worker pool.
  int service_slots = 8;
  // Fixed per-request dispatcher overhead (virtual-protocol translation +
  // routing); this is the "implementation penalty" Figure 3 shows to be
  // small. Zero for JBOS native servers.
  Nanos dispatch_overhead = 15 * kMicrosecond;
  // Overload shedding, same policy object the real dispatcher consults
  // (disabled by default — transfers queue without bound, as before).
  transfer::AdmissionOptions admission;
  // Copy quantum for cold-tier migration/recall streams ("migrate" and
  // "recall" scheduler classes).
  std::int64_t hsm_block = 256 * 1024;
};

// Configuration for a JBOS-style native single-protocol server.
SimNestConfig jbos_config();

class SimNest {
 public:
  SimNest(SimHost& host, SimNestConfig config);

  // --- namespace setup (bench workload construction) ---
  void add_file(const std::string& path, std::int64_t size, bool cached);
  void evict(const std::string& path);
  std::int64_t file_size(const std::string& path) const;

  // --- cold tier (CASTOR-style HSM, docs/hsm.md) ---
  // Attach a second SimStore built from `profile` (use
  // PlatformProfile::tape2002()) as the cold tier.
  void attach_cold_tier(const sim::PlatformProfile& profile);
  // Register a file already resident on the cold tier.
  void add_cold_file(const std::string& path, std::int64_t size);
  bool is_cold(const std::string& path) const {
    return cold_files_.count(path) != 0;
  }
  // Drain a hot file to the cold tier; blocks move through the service
  // gate under the "migrate" class, so the stride scheduler paces the
  // drain against live clients. false when already cold or unknown.
  sim::Co<bool> migrate_file(std::string path);

  struct HsmCounters {
    std::int64_t migrations = 0;
    std::int64_t recalls = 0;       // staged recall executions
    std::int64_t recall_joins = 0;  // reads that joined an in-flight recall
    std::int64_t bytes_migrated = 0;
    std::int64_t bytes_recalled = 0;
  };
  const HsmCounters& hsm_counters() const { return hsm_; }
  sim::SimStore* cold_store() { return cold_store_.get(); }

  // --- simulated clients ---
  // Whole-file retrieval via `proto`; returns when the client has all
  // bytes. `user` feeds per-user proportional share when configured.
  // Returns false when admission control shed the request with `busy`
  // (the client paid the connection round trips, moved no data).
  sim::Co<bool> client_get(ProtocolBehavior proto, std::string path,
                           std::string user = {});
  // Whole-file store; bytes flow client -> server -> buffer cache/disk.
  sim::Co<bool> client_put(ProtocolBehavior proto, std::string path,
                           std::int64_t size, std::string user = {});

  transfer::TransferManager& tm() { return tm_; }
  transfer::TransferCore& core() { return core_; }
  transfer::AdmissionController& admission() { return admission_; }
  SimHost& host() { return host_; }

 private:
  struct FileInfo {
    std::uint64_t id = 0;
    std::int64_t size = 0;
  };

  // Admission gate: one slot per in-service block, ordered by the
  // TransferCore's scheduler. The core owns the slots and the queues;
  // this class only parks/resumes coroutines — the sim-substrate analogue
  // of the real server's blocking TransferCore::acquire.
  class ServiceGate {
   public:
    ServiceGate(sim::Engine& eng, transfer::TransferCore& core)
        : eng_(eng), core_(core) {}

    auto acquire(transfer::TransferRequest* r) {
      struct Awaiter {
        ServiceGate& gate;
        transfer::TransferRequest* req;
        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) {
          gate.core_.submit(req);
          gate.waiters_[req] = h;
          gate.schedule_pump();
        }
        void await_resume() const noexcept {}
      };
      return Awaiter{*this, r};
    }

    void release() {
      core_.release_slot();
      schedule_pump();
    }

   private:
    void schedule_pump();
    void pump();

    sim::Engine& eng_;
    transfer::TransferCore& core_;
    bool pump_pending_ = false;
    std::unordered_map<transfer::TransferRequest*, std::coroutine_handle<>>
        waiters_;
  };

  sim::Co<void> serve_read_block(const ProtocolBehavior& proto,
                                 const FileInfo& file, std::int64_t offset,
                                 std::int64_t len,
                                 transfer::ConcurrencyModel model,
                                 Nanos setup_cost);
  sim::Co<void> serve_write_block(const ProtocolBehavior& proto,
                                  const FileInfo& file, std::int64_t offset,
                                  std::int64_t len,
                                  transfer::ConcurrencyModel model,
                                  Nanos setup_cost);
  Nanos model_block_cost(transfer::ConcurrencyModel model) const;
  Nanos model_setup_cost(transfer::ConcurrencyModel model) const;
  void report_completion(transfer::ConcurrencyModel model, Nanos latency,
                         std::int64_t bytes);
  // Stage `path` back to the hot tier if cold; a read that arrives while
  // another read's recall is in flight joins that flight (fan-in: one
  // tape mount serves all of them).
  sim::Co<void> ensure_hot(std::string path);

  SimHost& host_;
  SimNestConfig config_;
  transfer::TransferManager tm_;
  transfer::TransferCore core_;
  transfer::AdmissionController admission_;
  ServiceGate gate_;
  sim::Semaphore event_loop_;  // the single loop of the event model
  sim::Semaphore disk_stage_;  // staged model: file-I/O stage pool
  sim::Semaphore net_stage_;   // staged model: socket-I/O stage pool
  std::map<std::string, FileInfo> files_;
  std::uint64_t next_file_id_ = 1;

  // Cold tier: a second OS storage stack with tape-like costs. Files in
  // cold_files_ have their bytes there; a recall copies them back through
  // the service gate under the "recall" class.
  std::unique_ptr<sim::SimStore> cold_store_;
  std::set<std::string> cold_files_;
  std::map<std::string, std::unique_ptr<sim::SimEvent>> recall_flights_;
  HsmCounters hsm_;
};

}  // namespace nest::simnest
