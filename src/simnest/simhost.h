// SimHost: the shared simulated machine — one NIC, one disk+cache, one OS.
// A NeST appliance and a JBOS pile of native servers run on the *same*
// host in Figure 3's comparison, so they share these resources.
#pragma once

#include "sim/coro.h"
#include "sim/engine.h"
#include "sim/link.h"
#include "sim/platform.h"
#include "sim/store.h"
#include "sim/sync.h"

namespace nest::simnest {

class SimHost {
 public:
  SimHost(sim::Engine& eng, const sim::PlatformProfile& profile)
      : eng_(eng),
        profile_(profile),
        link_(eng, profile.link_bw, profile.link_rtt),
        store_(eng, profile),
        cpu_(eng, 1) {}

  sim::Engine& engine() { return eng_; }
  const sim::PlatformProfile& platform() const { return profile_; }
  sim::Link& link() { return link_; }
  sim::SimStore& store() { return store_; }

  // Execute `work` of CPU time on the host's single processor (the paper's
  // testbeds were uniprocessor Pentiums/Netras): protocol processing from
  // all connections and all servers on the host contends here.
  sim::Co<void> cpu_work(Nanos work) {
    if (work <= 0) co_return;
    co_await cpu_.acquire();
    sim::SemGuard hold(cpu_);
    co_await eng_.delay(work);
  }

 private:
  sim::Engine& eng_;
  sim::PlatformProfile profile_;
  sim::Link link_;
  sim::SimStore store_;
  sim::Semaphore cpu_;
};

}  // namespace nest::simnest
