#include "simnest/protocol_model.h"

#include <stdexcept>

namespace nest::simnest {

ProtocolBehavior ProtocolBehavior::chirp() {
  ProtocolBehavior p;
  p.name = "chirp";
  p.block = 64 * 1024;
  p.connect_rtts = 2;  // connect + GSI-lite hello
  p.per_block_cpu = 5 * kMicrosecond;
  return p;
}

ProtocolBehavior ProtocolBehavior::http() {
  ProtocolBehavior p;
  p.name = "http";
  p.block = 64 * 1024;
  p.connect_rtts = 1;
  p.per_block_cpu = 8 * kMicrosecond;  // header/parse slightly above Chirp
  return p;
}

ProtocolBehavior ProtocolBehavior::ftp() {
  ProtocolBehavior p;
  p.name = "ftp";
  p.block = 64 * 1024;
  p.connect_rtts = 3;  // control connect, USER/PASS, PASV+data connect
  p.per_block_cpu = 6 * kMicrosecond;
  return p;
}

ProtocolBehavior ProtocolBehavior::gridftp() {
  ProtocolBehavior p;
  p.name = "gridftp";
  p.block = 64 * 1024;
  p.connect_rtts = 6;  // GSI handshake dominates connection setup
  p.per_block_cpu = 40 * kMicrosecond;  // block headers + bookkeeping
  p.per_byte_cpu_bw = 22.0e6;  // integrity/marshalling work per byte
  p.per_block_ack = true;      // extended block mode acknowledgments
  return p;
}

ProtocolBehavior ProtocolBehavior::nfs() {
  ProtocolBehavior p;
  p.name = "nfs";
  p.block = 8 * 1024;          // NFSv2 rsize
  p.sync_per_block = true;     // client issues one READ rpc per block
  p.connect_rtts = 2;          // mount + lookup
  p.per_block_cpu = 480 * kMicrosecond;  // UDP + RPC + XDR + nfsd work per rpc
  return p;
}

ProtocolBehavior ProtocolBehavior::by_name(const std::string& name) {
  if (name == "chirp") return chirp();
  if (name == "http") return http();
  if (name == "ftp") return ftp();
  if (name == "gridftp") return gridftp();
  if (name == "nfs") return nfs();
  throw std::invalid_argument("unknown protocol: " + name);
}

}  // namespace nest::simnest
