#include "simnest/sim_cluster.h"

#include <filesystem>

#include "classad/classad.h"
#include "storage/memfs.h"

namespace nest::simnest {

namespace {

storage::Principal appliance_self(const storage::StorageManager& s) {
  storage::Principal self;
  self.name = s.options().superuser;
  self.authenticated = true;
  self.protocol = "cluster";
  return self;
}

// In-process ReplicaLink: every call resolves the target node by name
// through the SimCluster (so a restarted node's fresh ClusterNode is
// reached) and fails like a dropped connection when the target is dead or
// the pair is partitioned.
class LoopbackLink final : public cluster::ReplicaLink {
 public:
  LoopbackLink(SimCluster& net, std::string from, std::string to)
      : net_(net), from_(std::move(from)), to_(std::move(to)) {}

  Result<journal::Lsn> handshake(const std::string& primary) override {
    if (auto s = check(); !s.ok()) return s.error();
    return net_.node(to_).accept_hello(primary);
  }
  Status install_snapshot(journal::Lsn at,
                          const std::string& payload) override {
    if (auto s = check(); !s.ok()) return s;
    return net_.node(to_).accept_snapshot(at, payload);
  }
  Result<journal::Lsn> ship(journal::Lsn lsn,
                            const std::string& payload) override {
    if (auto s = check(); !s.ok()) return s.error();
    return net_.node(to_).accept_ship(lsn, payload);
  }
  Status push_file(const std::string& path,
                   const std::string& data) override {
    if (auto s = check(); !s.ok()) return s;
    return net_.node(to_).accept_file(path, data);
  }
  Result<classad::ClassAd> fetch_ad() override {
    if (auto s = check(); !s.ok()) return s.error();
    classad::ClassAd ad;
    ad.insert("Name", classad::Value::string(to_));
    net_.load(to_).to_ad(ad);
    return ad;
  }

 private:
  Status check() const {
    if (!net_.alive(to_) || !net_.reachable(from_, to_)) {
      return Status{Errc::io_error, from_ + " cannot reach " + to_};
    }
    return {};
  }

  SimCluster& net_;
  const std::string from_;
  const std::string to_;
};

}  // namespace

SimCluster::SimCluster(std::string workdir,
                       const std::vector<NodeSpec>& specs, Options options)
    : workdir_(std::move(workdir)), options_(options) {
  std::filesystem::create_directories(workdir_);
  for (const auto& spec : specs) nodes_[spec.name].spec = spec;
  for (auto& [name, n] : nodes_) build_node(n);
}

SimCluster::SimCluster(std::string workdir,
                       const std::vector<NodeSpec>& specs)
    : SimCluster(std::move(workdir), specs, Options{}) {}

SimCluster::~SimCluster() = default;

void SimCluster::build_node(Node& n) {
  const std::string& name = n.spec.name;
  journal::JournalOptions jopts;
  jopts.dir = workdir_ + "/" + name + "-g" + std::to_string(n.generation);
  jopts.sync = journal::SyncMode::none;  // durability is not under test
  auto j = journal::Journal::open(clock_, jopts);
  if (!j.ok()) {
    // Construction-time invariant: a scratch dir we just created must
    // accept a journal. Surface loudly rather than limp along.
    std::abort();
  }
  n.journal = std::move(j.value());
  n.storage = std::make_unique<storage::StorageManager>(
      clock_,
      std::make_unique<storage::MemFs>(clock_, options_.node_capacity));
  // rebase_clock=false: the chaos shadow model compares raw lot state
  // across restarts, so recovered timestamps must not shift.
  if (auto s = n.storage->attach_journal(*n.journal, false); !s.ok())
    std::abort();

  cluster::ClusterConfig cfg;
  cfg.name = name;
  cfg.role = n.spec.role;
  cfg.replication_factor = options_.replication_factor;
  cfg.heartbeat_interval = options_.heartbeat_interval;
  cfg.heartbeat_timeout = options_.heartbeat_timeout;
  cfg.ship_queue_capacity = options_.ship_queue_capacity;
  std::uint16_t port = 1;
  for (const auto& [peer_name, peer] : nodes_) {
    if (peer_name != name) {
      cfg.peers.push_back(cluster::PeerAddress{peer_name, "sim", port});
    }
    ++port;
  }
  n.cluster = std::make_unique<cluster::ClusterNode>(clock_, std::move(cfg));
  n.cluster->attach_storage(n.storage.get());
  n.cluster->set_link_factory(
      [this, name](const cluster::PeerAddress& addr)
          -> std::unique_ptr<cluster::ReplicaLink> {
        return std::make_unique<LoopbackLink>(*this, name, addr.name);
      });
  n.cluster->set_file_reader(
      [this, name](const std::string& path) -> Result<std::string> {
        auto& self = require(name);
        auto ticket =
            self.storage->approve_read(appliance_self(*self.storage), path);
        if (!ticket.ok()) return ticket.error();
        std::string data(static_cast<std::size_t>(ticket->size), '\0');
        auto got = ticket->handle->pread(
            std::span(data.data(), data.size()), 0);
        if (!got.ok()) return got.error();
        if (*got != ticket->size)
          return Error{Errc::io_error, "short read of " + path};
        return data;
      });
}

SimCluster::Node& SimCluster::require(const std::string& name) {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) std::abort();  // test harness misuse
  return it->second;
}

const SimCluster::Node& SimCluster::require(const std::string& name) const {
  auto it = nodes_.find(name);
  if (it == nodes_.end()) std::abort();
  return it->second;
}

cluster::ClusterNode& SimCluster::node(const std::string& name) {
  return *require(name).cluster;
}

storage::StorageManager& SimCluster::storage(const std::string& name) {
  return *require(name).storage;
}

cluster::PeerLoad& SimCluster::load(const std::string& name) {
  return require(name).load;
}

std::vector<std::string> SimCluster::names() const {
  std::vector<std::string> out;
  for (const auto& [name, n] : nodes_) out.push_back(name);
  return out;
}

void SimCluster::kill(const std::string& name) { require(name).alive = false; }

void SimCluster::revive(const std::string& name) {
  require(name).alive = true;
}

void SimCluster::restart(const std::string& name) {
  Node& n = require(name);
  n.cluster.reset();  // drops the replication hook before storage dies
  n.storage.reset();
  n.journal.reset();
  ++n.generation;
  build_node(n);
  n.alive = true;
}

void SimCluster::partition(const std::string& a, const std::string& b,
                           bool on) {
  if (on) {
    partitions_.insert({a, b});
    partitions_.insert({b, a});
  } else {
    partitions_.erase({a, b});
    partitions_.erase({b, a});
  }
}

void SimCluster::heal_all() { partitions_.clear(); }

bool SimCluster::alive(const std::string& name) const {
  return require(name).alive;
}

bool SimCluster::reachable(const std::string& from,
                           const std::string& to) const {
  return partitions_.find({from, to}) == partitions_.end();
}

void SimCluster::step(Nanos dt) {
  clock_.advance(dt);
  for (auto& [name, n] : nodes_) {
    if (!n.alive) continue;
    n.cluster->heartbeat_once();
    n.cluster->ship_once();
  }
}

Result<std::string> SimCluster::client_get(
    const std::string& via, const std::string& path,
    const MidTransferHook& hook, std::vector<std::string>* attempts) {
  Error last{Errc::not_found, "no replica served " + path};
  std::set<std::string> tried;
  cluster::ClusterNode& ranker = node(via);
  // Re-select after every failed attempt: the failure observation demotes
  // (or kills) the row, so the next locate() produces a fresh ranking.
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const auto candidates = ranker.locate(path);
    const cluster::Candidate* pick = nullptr;
    for (const auto& c : candidates) {
      if (tried.find(c.name) == tried.end()) {
        pick = &c;
        break;
      }
    }
    if (!pick) break;
    tried.insert(pick->name);
    if (attempts) attempts->push_back(pick->name);
    auto data = read_via(pick->name, path, hook);
    if (data.ok()) return data;
    last = data.error();
    ranker.selector().observe_failure(pick->name);
    ranker.peers().observe_failure(pick->name);
  }
  return last;
}

Result<std::string> SimCluster::read_via(const std::string& serving,
                                         const std::string& path,
                                         const MidTransferHook& hook) {
  Node& n = require(serving);
  if (!n.alive)
    return Error{Errc::connection_closed, serving + " is down"};
  auto ticket = n.storage->approve_read(appliance_self(*n.storage), path);
  if (!ticket.ok()) return ticket.error();
  std::string data(static_cast<std::size_t>(ticket->size), '\0');
  // Deliver in two chunks with the hook between them: a hook that kills
  // the serving node models death mid-transfer, which the aliveness
  // check before the second chunk turns into a dropped connection.
  const std::int64_t half = ticket->size / 2;
  const std::int64_t parts[2][2] = {{0, half}, {half, ticket->size - half}};
  for (int i = 0; i < 2; ++i) {
    if (!require(serving).alive) {
      return Error{Errc::connection_closed, serving + " died mid-transfer"};
    }
    const std::int64_t off = parts[i][0], len = parts[i][1];
    if (len > 0) {
      auto got = ticket->handle->pread(
          std::span(data.data() + off, static_cast<std::size_t>(len)), off);
      if (!got.ok()) return got.error();
      if (*got != len) return Error{Errc::io_error, "short read"};
    }
    if (i == 0 && hook) hook(serving, half);
  }
  return data;
}

Status SimCluster::client_put(const std::string& name,
                              const storage::Principal& user,
                              const std::string& path,
                              const std::string& data) {
  Node& n = require(name);
  if (!n.alive) return Status{Errc::connection_closed, name + " is down"};
  auto ticket = n.storage->approve_write(
      user, path, static_cast<std::int64_t>(data.size()));
  if (!ticket.ok()) return Status{ticket.error()};
  auto wrote =
      ticket->handle->pwrite(std::span(data.data(), data.size()), 0);
  if (!wrote.ok()) return Status{wrote.error()};
  if (*wrote != static_cast<std::int64_t>(data.size()))
    return Status{Errc::io_error, "short write"};
  n.cluster->note_file_written(path);
  return {};
}

}  // namespace nest::simnest
