#include "simnest/workload.h"

#include <memory>
#include <set>

#include "common/units.h"
#include "sim/sync.h"

namespace nest::simnest {

using sim::Co;

namespace {

struct GroupStats {
  std::int64_t requests = 0;
  Nanos latency_total = 0;
};

// One client: fetch its file(s) in a loop until the deadline.
Co<void> client_loop(sim::Engine& eng, SimNest& server,
                     ProtocolBehavior proto, std::vector<std::string> paths,
                     Nanos start, Nanos deadline, GroupStats& stats) {
  std::size_t next = 0;
  while (eng.now() < deadline) {
    const std::string& path = paths[next];
    next = (next + 1) % paths.size();
    const Nanos begin = eng.now();
    co_await server.client_get(proto, path);
    const Nanos end = eng.now();
    if (begin >= start && end <= deadline) {
      stats.requests += 1;
      stats.latency_total += end - begin;
    }
  }
}

using ClassBytes = std::map<std::string, std::int64_t>;

}  // namespace

WorkloadResult run_get_workload(sim::Engine& eng, const WorkloadSpec& spec) {
  const Nanos start = eng.now() + spec.warmup;
  const Nanos deadline = start + spec.duration;

  // Distinct servers involved (JBOS runs several on one host).
  std::set<SimNest*> servers;
  for (const ClientGroup& g : spec.groups) servers.insert(g.server);

  // Bandwidth is measured from the transfer managers' byte meters — the
  // same accounting the appliance itself exports — snapshotted at the
  // window edges so partially-complete transfers count.
  auto start_snap = std::make_shared<std::map<SimNest*, ClassBytes>>();
  auto end_snap = std::make_shared<std::map<SimNest*, ClassBytes>>();
  eng.schedule_at(start, [start_snap, servers] {
    for (SimNest* s : servers) {
      (*start_snap)[s] = s->tm().meter().per_class();
    }
  });
  eng.schedule_at(deadline, [end_snap, servers] {
    for (SimNest* s : servers) {
      (*end_snap)[s] = s->tm().meter().per_class();
    }
  });

  // Set up the namespace: each client gets its own file set so file names
  // never collide across groups/servers.
  std::vector<std::unique_ptr<GroupStats>> stats;
  int group_idx = 0;
  for (const ClientGroup& g : spec.groups) {
    stats.push_back(std::make_unique<GroupStats>());
    GroupStats& gs = *stats.back();
    for (int c = 0; c < g.clients; ++c) {
      std::vector<std::string> paths;
      for (int f = 0; f < g.files_per_client; ++f) {
        const std::string path = "/" + g.protocol + "-g" +
                                 std::to_string(group_idx) + "-c" +
                                 std::to_string(c) + "-f" + std::to_string(f);
        g.server->add_file(path, g.file_size, g.cached);
        paths.push_back(path);
      }
      sim::spawn(client_loop(eng, *g.server,
                             ProtocolBehavior::by_name(g.protocol),
                             std::move(paths), start, deadline, gs));
    }
    ++group_idx;
  }

  eng.run();

  WorkloadResult result;
  std::int64_t total_bytes = 0;
  for (SimNest* s : servers) {
    for (const auto& [proto, bytes_end] : (*end_snap)[s]) {
      std::int64_t bytes_start = 0;
      const auto& ss = (*start_snap)[s];
      if (const auto it = ss.find(proto); it != ss.end())
        bytes_start = it->second;
      const std::int64_t delta = bytes_end - bytes_start;
      result.class_mbps[proto] += mb_per_sec(delta, spec.duration);
      total_bytes += delta;
    }
  }
  result.total_mbps = mb_per_sec(total_bytes, spec.duration);

  std::map<std::string, GroupStats> class_stats;
  for (std::size_t i = 0; i < spec.groups.size(); ++i) {
    const std::string& proto = spec.groups[i].protocol;
    auto& cs = class_stats[proto];
    cs.requests += stats[i]->requests;
    cs.latency_total += stats[i]->latency_total;
  }
  for (const auto& [proto, cs] : class_stats) {
    result.completed_requests += cs.requests;
    result.class_latency_ms[proto] =
        cs.requests > 0
            ? static_cast<double>(cs.latency_total) /
                  static_cast<double>(cs.requests) / 1e6
            : 0.0;
  }
  return result;
}

}  // namespace nest::simnest
