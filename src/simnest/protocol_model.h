// Wire-behaviour models of NeST's five protocols for the simulated
// substrate (the real parsers/handlers live in src/protocol/).
//
// What matters to the paper's figures is not wire syntax but each
// protocol's *transfer shape*:
//  * Chirp  — lightweight native protocol: one request, whole-file stream.
//  * HTTP   — like Chirp plus slightly costlier header processing.
//  * FTP    — separate control/data connections: extra setup round trips.
//  * GridFTP— GSI authentication handshake at connect, extended block mode
//             with per-block headers/integrity work and block acks; this is
//             why GridFTP lands at roughly half of Chirp/HTTP bandwidth in
//             Figure 3.
//  * NFS    — RPC block protocol: the client synchronously requests each
//             8 KB block, so throughput is bounded by round-trip latency
//             and server queueing; this is why NFS trails in Figure 3 and
//             why FIFO disfavors it in mixed workloads.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace nest::simnest {

struct ProtocolBehavior {
  std::string name;
  std::int64_t block = 64 * 1024;  // server send unit
  // Client issues each block synchronously and waits for the reply (NFS).
  bool sync_per_block = false;
  // Connection/session setup round trips (incl. authentication).
  int connect_rtts = 1;
  // Fixed per-block protocol processing on the server (parse, header).
  Nanos per_block_cpu = 0;
  // Per-byte processing as a rate (integrity checks; 0 = none).
  double per_byte_cpu_bw = 0.0;
  // Server awaits a client ack per block (GridFTP extended block mode).
  bool per_block_ack = false;

  static ProtocolBehavior chirp();
  static ProtocolBehavior http();
  static ProtocolBehavior ftp();
  static ProtocolBehavior gridftp();
  static ProtocolBehavior nfs();
  // Lookup by name ("chirp", "http", "ftp", "gridftp", "nfs").
  static ProtocolBehavior by_name(const std::string& name);
};

}  // namespace nest::simnest
