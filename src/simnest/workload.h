// Workload driver for the figure benches: spawns simulated client
// populations against one or more servers (NeST or JBOS natives) and
// measures delivered bandwidth per protocol class over a window.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "simnest/simnest.h"

namespace nest::simnest {

struct ClientGroup {
  SimNest* server = nullptr;       // which server this population talks to
  std::string protocol;            // "chirp" | "http" | "ftp" | "gridftp" | "nfs"
  int clients = 4;
  std::int64_t file_size = 10'000'000;  // paper Figure 3: 10 MB files
  bool cached = true;
  // Number of distinct files cycled per client (1 = same file repeatedly).
  int files_per_client = 1;
};

struct WorkloadSpec {
  std::vector<ClientGroup> groups;
  Nanos warmup = 0;        // excluded from measurement
  Nanos duration = 30 * kSecond;  // measurement window
};

struct WorkloadResult {
  std::map<std::string, double> class_mbps;
  double total_mbps = 0;
  // Mean whole-request latency per class over the run (ms).
  std::map<std::string, double> class_latency_ms;
  std::int64_t completed_requests = 0;
};

// Runs GET workloads to quiescence of the measurement window and reports
// per-class bandwidth. Files are created (and optionally pre-cached) on
// each group's server before clients start.
WorkloadResult run_get_workload(sim::Engine& eng, const WorkloadSpec& spec);

}  // namespace nest::simnest
