// SimCluster: a deterministic multi-node cluster topology.
//
// N ClusterNodes run over in-memory storage backends and real (temp-dir)
// journals, all sharing one ManualClock. Links between nodes are loopback
// ReplicaLinks that call straight into the target node's accept_*
// entry points — no sockets, no threads — gated by a kill flag per node
// and a partition flag per ordered pair. Time only moves when step() is
// called, and each step runs every node's heartbeat and ship drivers in
// name order, so a given schedule of kills, partitions, and heals replays
// exactly (the chaos harness seeds schedules from a PRNG and asserts
// convergence against a shadow model; the sim test in cluster_test drives
// the acceptance scenario).
//
// The "client" here is client_get(): the same locate -> attempt ->
// on-failure re-select loop ClusterClient runs over sockets, with a hook
// for killing the serving node mid-transfer.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_node.h"
#include "common/clock.h"
#include "journal/journal.h"
#include "storage/storage_manager.h"

namespace nest::simnest {

class SimCluster {
 public:
  struct NodeSpec {
    std::string name;
    cluster::Role role = cluster::Role::follower;
  };
  struct Options {
    std::size_t ship_queue_capacity = 1024;
    int replication_factor = 1;
    Nanos heartbeat_interval = 2 * kSecond;
    Nanos heartbeat_timeout = 15 * kSecond;
    std::int64_t node_capacity = 64 * 1024 * 1024;
  };

  // `workdir` hosts one journal directory per node generation; created if
  // missing, removed by the caller (tests use a scratch dir).
  SimCluster(std::string workdir, const std::vector<NodeSpec>& specs,
             Options options);
  SimCluster(std::string workdir, const std::vector<NodeSpec>& specs);
  ~SimCluster();

  ManualClock& clock() { return clock_; }
  cluster::ClusterNode& node(const std::string& name);
  storage::StorageManager& storage(const std::string& name);
  // Synthetic load the node's ad advertises (tests steer selection).
  cluster::PeerLoad& load(const std::string& name);
  std::vector<std::string> names() const;

  // --- fault controls (all take effect on the next link call) ---
  void kill(const std::string& name);
  // Bring a killed node back with its state intact (it was partitioned,
  // not wiped).
  void revive(const std::string& name);
  // Bring a node back with storage, journal, and cluster state rebuilt
  // from scratch: the restarted-follower path (handshakes at LSN 0, the
  // primary re-seeds it from a snapshot).
  void restart(const std::string& name);
  void partition(const std::string& a, const std::string& b, bool on);
  void heal_all();
  bool alive(const std::string& name) const;
  bool reachable(const std::string& from, const std::string& to) const;

  // Advance virtual time by `dt`, then run heartbeat_once + ship_once on
  // every live node, name order.
  void step(Nanos dt = 2 * kSecond);

  // --- deterministic client ---
  // Called after each delivered chunk of an attempted transfer; kill() the
  // serving node here to model death mid-transfer.
  using MidTransferHook =
      std::function<void(const std::string& serving, std::int64_t bytes)>;
  // Fetch `path` through the replica ranking node `via` computes,
  // failing over (and re-selecting) past dead or partial replicas.
  // `attempts`, when given, records the serving-node order tried.
  NEST_NODISCARD
  Result<std::string> client_get(const std::string& via,
                                 const std::string& path,
                                 const MidTransferHook& hook = {},
                                 std::vector<std::string>* attempts = nullptr);

  // Write `data` as `user` on `name` (charging its lots) and queue it for
  // content replication when the node is a primary.
  NEST_NODISCARD
  Status client_put(const std::string& name, const storage::Principal& user,
                    const std::string& path, const std::string& data);

 private:
  struct Node {
    NodeSpec spec;
    int generation = 0;
    bool alive = true;
    cluster::PeerLoad load;
    std::unique_ptr<journal::Journal> journal;
    std::unique_ptr<storage::StorageManager> storage;
    std::unique_ptr<cluster::ClusterNode> cluster;
  };

  void build_node(Node& n);
  Node& require(const std::string& name);
  const Node& require(const std::string& name) const;
  NEST_NODISCARD
  Result<std::string> read_via(const std::string& serving,
                               const std::string& path,
                               const MidTransferHook& hook);

  const std::string workdir_;
  const Options options_;
  ManualClock clock_;
  // Node order is construction order (name order in tests); storage for
  // the map is stable because nodes are never erased.
  std::map<std::string, Node> nodes_;
  std::set<std::pair<std::string, std::string>> partitions_;
};

}  // namespace nest::simnest
