#include "hsm/slowfs.h"

#include <chrono>
#include <thread>
#include <utility>

namespace nest::hsm {

namespace {

using storage::FileHandle;
using storage::FileHandlePtr;

void sleep_for_bytes(std::int64_t bytes, std::int64_t bw) {
  if (bw <= 0 || bytes <= 0) return;
  const auto ns = (bytes * 1'000'000'000LL) / bw;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

class SlowHandle final : public FileHandle {
 public:
  SlowHandle(FileHandlePtr inner, SlowFsOptions options)
      : inner_(std::move(inner)), options_(options) {
    if (options_.open_latency_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.open_latency_ms));
    }
  }

  Result<std::int64_t> pread(std::span<char> buf,
                             std::int64_t offset) override {
    auto n = inner_->pread(buf, offset);
    if (n.ok()) sleep_for_bytes(*n, options_.bandwidth_bytes_per_sec);
    return n;
  }
  Result<std::int64_t> pwrite(std::span<const char> buf,
                              std::int64_t offset) override {
    auto n = inner_->pwrite(buf, offset);
    if (n.ok()) sleep_for_bytes(*n, options_.bandwidth_bytes_per_sec);
    return n;
  }
  Result<std::int64_t> size() const override { return inner_->size(); }
  Status truncate(std::int64_t new_size) override {
    return inner_->truncate(new_size);
  }
  // No sendfile_map override: the cold tier must never lend an fd to the
  // zero-copy path (that would bypass the throttle), so the default
  // unsupported answer is the right one.

 private:
  FileHandlePtr inner_;
  SlowFsOptions options_;
};

}  // namespace

SlowFs::SlowFs(std::unique_ptr<storage::VirtualFs> inner,
               SlowFsOptions options)
    : inner_(std::move(inner)), options_(options) {}

Status SlowFs::mkdir(const std::string& path) { return inner_->mkdir(path); }
Status SlowFs::rmdir(const std::string& path) { return inner_->rmdir(path); }
Status SlowFs::remove(const std::string& path) {
  return inner_->remove(path);
}
Result<storage::FileStat> SlowFs::stat(const std::string& path) const {
  return inner_->stat(path);
}
Result<std::vector<storage::DirEntry>> SlowFs::list(
    const std::string& path) const {
  return inner_->list(path);
}
Status SlowFs::rename(const std::string& from, const std::string& to) {
  return inner_->rename(from, to);
}

Result<storage::FileHandlePtr> SlowFs::wrap(
    Result<storage::FileHandlePtr> handle) const {
  if (!handle.ok()) return handle;
  return storage::FileHandlePtr(
      std::make_shared<SlowHandle>(std::move(handle.value()), options_));
}

Result<storage::FileHandlePtr> SlowFs::open(const std::string& path) {
  return wrap(inner_->open(path));
}
Result<storage::FileHandlePtr> SlowFs::create(const std::string& path) {
  return wrap(inner_->create(path));
}
void SlowFs::set_owner(const std::string& path, const std::string& owner) {
  inner_->set_owner(path, owner);
}
std::int64_t SlowFs::total_space() const { return inner_->total_space(); }
std::int64_t SlowFs::used_space() const { return inner_->used_space(); }

}  // namespace nest::hsm
