#include "hsm/recall.h"

#include <algorithm>
#include <vector>

#include "common/string_util.h"
#include "fault/failpoint.h"
#include "storage/residency.h"
#include "obs/stats.h"

namespace nest::hsm {

RecallManager::RecallManager(Clock& clock, storage::StorageManager& sm,
                             transfer::TransferCore* core,
                             std::int64_t block_bytes)
    : clock_(clock), sm_(sm), core_(core), block_bytes_(block_bytes) {}

Status RecallManager::copy_blocks(
    const storage::StorageManager::HsmTicket& t) {
  transfer::TransferRequest* req = nullptr;
  if (core_) {
    req = core_->create_request("recall", transfer::Direction::read, t.path,
                                t.size);
  }
  std::vector<char> buf(static_cast<std::size_t>(block_bytes_));
  Status out;
  for (std::int64_t off = 0; off < t.size && out.ok();) {
    NEST_FAILPOINT("hsm.recall", out = Status{err});
    if (!out.ok()) break;
    const std::int64_t want =
        std::min<std::int64_t>(block_bytes_, t.size - off);
    if (core_) core_->acquire(req);
    auto n = [&]() -> Result<std::int64_t> {
      NEST_FAILPOINT("hsm.cold_read", return err);
      return t.src->pread(
          std::span<char>(buf.data(), static_cast<std::size_t>(want)), off);
    }();
    if (!n.ok()) {
      out = Status{n.error()};
    } else if (*n <= 0) {
      out = Status{Errc::io_error, "short read during recall"};
    } else {
      auto w = t.dst->pwrite(
          std::span<const char>(buf.data(), static_cast<std::size_t>(*n)),
          off);
      if (!w.ok()) {
        out = Status{w.error()};
      } else if (*w != *n) {
        out = Status{Errc::io_error, "short write during recall"};
      } else {
        off += *n;
      }
    }
    if (core_) {
      if (out.ok()) core_->charge(req, want);
      core_->release();
    }
  }
  if (core_) core_->complete(req);
  return out;
}

Status RecallManager::execute(const storage::Principal& who,
                              const std::string& path) {
  const Nanos start = clock_.now();
  auto ticket = sm_.hsm_begin_recall(who, path);
  if (!ticket.ok()) {
    // A reader can race the file back to hot (another protocol's recall,
    // an overwrite): hot is success from the caller's perspective.
    if (ticket.code() == Errc::not_found) {
      auto tier = sm_.hsm_tier(who, path);
      if (tier.ok() && *tier == Tier::hot) return {};
    }
    return Status{ticket.error()};
  }
  if (Status copy = copy_blocks(*ticket); !copy.ok()) {
    sm_.hsm_abort_recall(ticket->path);
    return copy;
  }
  if (auto s = sm_.hsm_commit_recall(*ticket); !s.ok()) {
    sm_.hsm_abort_recall(ticket->path);
    return s;
  }
  auto& st = obs::Stats::global();
  st.hsm_recalls.fetch_add(1, std::memory_order_relaxed);
  st.hsm_bytes_recalled.fetch_add(ticket->size, std::memory_order_relaxed);
  st.hsm_recall_wait.record(clock_.now() - start);
  return {};
}

Status RecallManager::recall(const storage::Principal& who,
                             const std::string& path) {
  const std::string norm = normalize_path(path);
  std::shared_ptr<Flight> flight;
  {
    MutexLock lock(mu_);
    auto it = inflight_.find(norm);
    if (it != inflight_.end()) {
      // Fan-in: join the executor already staging this path.
      flight = it->second;
      obs::Stats::global().hsm_recall_joins.fetch_add(
          1, std::memory_order_relaxed);
      cv_.wait(lock, [&] { return flight->done; });
      return flight->status;
    }
    flight = std::make_shared<Flight>();
    inflight_[norm] = flight;
  }
  const Status out = execute(who, norm);
  {
    MutexLock lock(mu_);
    flight->status = out;
    flight->done = true;
    inflight_.erase(norm);
  }
  cv_.notify_all();
  return out;
}

void RecallManager::request(const storage::Principal& who,
                            const std::string& path) {
  const std::string norm = normalize_path(path);
  MutexLock lock(mu_);
  if (inflight_.count(norm) != 0) return;
  for (const auto& [w, p] : queue_) {
    if (p == norm) return;
  }
  queue_.emplace_back(who, norm);
}

std::size_t RecallManager::run_pending() {
  std::size_t completed = 0;
  for (;;) {
    storage::Principal who;
    std::string path;
    {
      MutexLock lock(mu_);
      if (queue_.empty()) break;
      who = std::move(queue_.front().first);
      path = std::move(queue_.front().second);
      queue_.pop_front();
    }
    if (recall(who, path).ok()) ++completed;
  }
  return completed;
}

std::size_t RecallManager::pending() const {
  MutexLock lock(mu_);
  return queue_.size();
}

std::size_t RecallManager::in_flight() const {
  MutexLock lock(mu_);
  return inflight_.size();
}

}  // namespace nest::hsm
