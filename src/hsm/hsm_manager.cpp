#include "hsm/hsm_manager.h"

#include <chrono>

#include "obs/stats.h"

namespace nest::hsm {

HsmManager::HsmManager(Clock& clock, storage::StorageManager& sm,
                       transfer::TransferCore* core, HsmOptions options)
    : clock_(clock),
      options_(options),
      migrator_(clock, sm, core,
                MigratorOptions{options.block_bytes, options.migrate_batch}),
      recalls_(clock, sm, core, options.block_bytes) {}

HsmManager::~HsmManager() { stop(); }

void HsmManager::note_cold_read(const storage::Principal& who,
                                const std::string& path) {
  obs::Stats::global().hsm_staging_busy.fetch_add(1,
                                                  std::memory_order_relaxed);
  recalls_.request(who, path);
  {
    MutexLock lock(mu_);
    kicked_ = true;
  }
  cv_.notify_all();
}

std::size_t HsmManager::poll() {
  std::size_t work = 0;
  if (options_.auto_migrate) work += migrator_.run_pass();
  work += recalls_.run_pending();
  return work;
}

void HsmManager::start() {
  MutexLock lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { worker(); });
}

void HsmManager::stop() {
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_ = true;
    running_ = false;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HsmManager::worker() {
  for (;;) {
    {
      MutexLock lock(mu_);
      cv_.wait_for(lock, std::chrono::nanoseconds(options_.scan_interval),
                   [this]() NO_THREAD_SAFETY_ANALYSIS {
                     return stop_ || kicked_;
                   });
      if (stop_) return;
      kicked_ = false;
    }
    poll();
  }
}

}  // namespace nest::hsm
