// SlowFs: a throttling decorator that turns any VirtualFs into a "tape
// robot" — the real-mode cold tier (docs/hsm.md).
//
// The CASTOR model the HSM reproduces has two cost components: a large
// fixed positioning cost per open (mount + seek) and a low sustained
// bandwidth. SlowFs charges both with real sleeps, so a slow directory on
// the host behaves like the paper-era tape silo without needing one.
// Throttles of 0 disable that component (useful in tests that want the
// decorator in the stack but no wall-clock cost).
#pragma once

#include <cstdint>
#include <memory>

#include "storage/vfs.h"

namespace nest::hsm {

struct SlowFsOptions {
  std::int64_t bandwidth_bytes_per_sec = 12LL * 1024 * 1024;  // ~2002 tape
  int open_latency_ms = 0;  // per-open positioning cost (mount/seek)
};

class SlowFs final : public storage::VirtualFs {
 public:
  SlowFs(std::unique_ptr<storage::VirtualFs> inner, SlowFsOptions options);

  NEST_NODISCARD Status mkdir(const std::string& path) override;
  NEST_NODISCARD Status rmdir(const std::string& path) override;
  NEST_NODISCARD Status remove(const std::string& path) override;
  NEST_NODISCARD
  Result<storage::FileStat> stat(const std::string& path) const override;
  NEST_NODISCARD
  Result<std::vector<storage::DirEntry>> list(
      const std::string& path) const override;
  NEST_NODISCARD
  Status rename(const std::string& from, const std::string& to) override;
  NEST_NODISCARD
  Result<storage::FileHandlePtr> open(const std::string& path) override;
  NEST_NODISCARD
  Result<storage::FileHandlePtr> create(const std::string& path) override;
  void set_owner(const std::string& path, const std::string& owner) override;
  std::int64_t total_space() const override;
  std::int64_t used_space() const override;

 private:
  NEST_NODISCARD
  Result<storage::FileHandlePtr> wrap(
      Result<storage::FileHandlePtr> handle) const;

  std::unique_ptr<storage::VirtualFs> inner_;
  SlowFsOptions options_;
};

}  // namespace nest::hsm
