// HsmManager: the cold-tier subsystem's front door (docs/hsm.md).
//
// Owns the TierMigrator and RecallManager, plus an optional background
// worker that alternates policy migration passes with draining the
// asynchronous recall queue the dispatcher feeds. Everything the worker
// does is also reachable synchronously (poll()) so tests and the sim stay
// deterministic without a thread.
#pragma once

#include <cstdint>
#include <thread>

#include "common/clock.h"
#include "common/mutex.h"
#include "hsm/migrator.h"
#include "hsm/recall.h"

namespace nest::hsm {

struct HsmOptions {
  std::int64_t block_bytes = 256 * 1024;
  std::size_t migrate_batch = 4;    // files per policy pass
  Nanos scan_interval = 10 * kSecond;  // worker cadence (real time)
  bool auto_migrate = true;         // worker runs policy passes
};

class HsmManager {
 public:
  HsmManager(Clock& clock, storage::StorageManager& sm,
             transfer::TransferCore* core, HsmOptions options = {});
  ~HsmManager();

  // Synchronous surfaces (Chirp ops, CLI, tests).
  NEST_NODISCARD
  Status recall(const storage::Principal& who, const std::string& path) {
    return recalls_.recall(who, path);
  }
  NEST_NODISCARD
  Status migrate(const storage::Principal& who, const std::string& path) {
    return migrator_.migrate(who, path);
  }

  // Dispatcher hook: a read hit cold data and was answered with the
  // retryable staging error — queue the recall and nudge the worker.
  void note_cold_read(const storage::Principal& who, const std::string& path);

  // One worker iteration, inline: policy pass + drain the recall queue.
  // Returns files migrated + recalls completed.
  std::size_t poll();

  void start();  // idempotent
  void stop();   // idempotent; joins the worker

  TierMigrator& migrator() { return migrator_; }
  RecallManager& recalls() { return recalls_; }
  const HsmOptions& options() const { return options_; }

 private:
  void worker();

  Clock& clock_;
  HsmOptions options_;
  TierMigrator migrator_;
  RecallManager recalls_;
  Mutex mu_{lockrank::Rank::hsm_worker, "hsm.worker"};
  CondVar cv_;
  bool stop_ GUARDED_BY(mu_) = false;
  bool kicked_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace nest::hsm
