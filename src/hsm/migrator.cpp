#include "hsm/migrator.h"

#include <algorithm>
#include <vector>

#include "fault/failpoint.h"
#include "obs/stats.h"

namespace nest::hsm {

TierMigrator::TierMigrator(Clock& clock, storage::StorageManager& sm,
                           transfer::TransferCore* core,
                           MigratorOptions options)
    : clock_(clock), sm_(sm), core_(core), options_(options) {}

Status TierMigrator::copy_blocks(
    const storage::StorageManager::HsmTicket& t) {
  transfer::TransferRequest* req = nullptr;
  if (core_) {
    req = core_->create_request("migrate", transfer::Direction::read, t.path,
                                t.size);
  }
  std::vector<char> buf(static_cast<std::size_t>(options_.block_bytes));
  Status out;
  for (std::int64_t off = 0; off < t.size && out.ok();) {
    NEST_FAILPOINT("hsm.migrate", out = Status{err});
    if (!out.ok()) break;
    const std::int64_t want =
        std::min<std::int64_t>(options_.block_bytes, t.size - off);
    if (core_) core_->acquire(req);
    auto n = t.src->pread(std::span<char>(buf.data(),
                                          static_cast<std::size_t>(want)),
                          off);
    if (!n.ok()) {
      out = Status{n.error()};
    } else if (*n <= 0) {
      out = Status{Errc::io_error, "short read during migration"};
    } else {
      auto w = t.dst->pwrite(
          std::span<const char>(buf.data(), static_cast<std::size_t>(*n)),
          off);
      if (!w.ok()) {
        out = Status{w.error()};
      } else if (*w != *n) {
        out = Status{Errc::io_error, "short write during migration"};
      } else {
        off += *n;
      }
    }
    if (core_) {
      if (out.ok()) core_->charge(req, want);
      core_->release();
    }
  }
  if (core_) core_->complete(req);
  return out;
}

Status TierMigrator::migrate(const storage::Principal& who,
                             const std::string& path) {
  const Nanos start = clock_.now();
  auto ticket = sm_.hsm_begin_migrate(who, path);
  if (!ticket.ok()) return Status{ticket.error()};
  if (Status copy = copy_blocks(*ticket); !copy.ok()) {
    sm_.hsm_abort_migrate(ticket->path);
    return copy;
  }
  if (auto s = sm_.hsm_commit_migrate(*ticket); !s.ok()) return s;
  auto& st = obs::Stats::global();
  st.hsm_migrations.fetch_add(1, std::memory_order_relaxed);
  st.hsm_bytes_migrated.fetch_add(ticket->size, std::memory_order_relaxed);
  st.hsm_migrate_time.record(clock_.now() - start);
  return {};
}

std::size_t TierMigrator::run_pass() {
  storage::Principal who;
  who.name = sm_.options().superuser;
  who.authenticated = true;
  who.protocol = "hsm";
  std::size_t moved = 0;
  for (const auto& path : sm_.hsm_migration_candidates(options_.batch)) {
    if (migrate(who, path).ok()) ++moved;
  }
  return moved;
}

}  // namespace nest::hsm
