// TierMigrator: policy-driven hot->cold drain (docs/hsm.md).
//
// Policy: a file drains when every lot charging it is best-effort
// (expired or terminated) and none is pinned — the CASTOR-style "cold
// data behind lapsed guarantees" rule. The StorageManager owns the
// candidate scan and the begin/commit/abort residency protocol; this
// class owns the block copy, which runs OUTSIDE the metadata mutex and
// paces every block through the transfer scheduler under the "migrate"
// request class, so migration bandwidth is proportionally shared against
// live client traffic (stride tickets pick the ratio).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "storage/storage_manager.h"
#include "transfer/core.h"

namespace nest::hsm {

struct MigratorOptions {
  std::int64_t block_bytes = 256 * 1024;
  std::size_t batch = 4;  // files drained per policy pass
};

class TierMigrator {
 public:
  // `core` may be null (no pacing: tests that only exercise the residency
  // protocol).
  TierMigrator(Clock& clock, storage::StorageManager& sm,
               transfer::TransferCore* core, MigratorOptions options = {});

  // Drain one file. The storage layer enforces ownership, pin, and
  // live-lot rules; failures mid-copy abort and leave the file hot.
  NEST_NODISCARD
  Status migrate(const storage::Principal& who, const std::string& path);

  // One policy pass as the superuser: drain up to `batch` candidates.
  // Returns the number of files that went cold.
  std::size_t run_pass();

 private:
  NEST_NODISCARD
  Status copy_blocks(const storage::StorageManager::HsmTicket& t);

  Clock& clock_;
  storage::StorageManager& sm_;
  transfer::TransferCore* core_;
  MigratorOptions options_;
};

}  // namespace nest::hsm
