// RecallManager: staged cold->hot recall with recall-storm fan-in
// (docs/hsm.md).
//
// Concurrent readers of one cold file elect exactly one executor; the
// rest join its in-flight entry and share the outcome — a recall storm of
// N clients costs ONE pass over the cold device. The copy itself paces
// through the transfer scheduler under the "recall" request class, so
// staging bandwidth is proportionally scheduled against live clients and
// migration traffic.
//
// Two surfaces:
//   recall()       synchronous (Chirp HSM RECALL, nest-cli, tests)
//   request()/run_pending()  asynchronous: the dispatcher queues a recall
//       when a read hits cold data and returns the retryable staging
//       error; the HsmManager worker drains the queue.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/clock.h"
#include "common/mutex.h"
#include "storage/storage_manager.h"
#include "transfer/core.h"

namespace nest::hsm {

class RecallManager {
 public:
  // `core` may be null (no pacing).
  RecallManager(Clock& clock, storage::StorageManager& sm,
                transfer::TransferCore* core,
                std::int64_t block_bytes = 256 * 1024);

  // Stage `path` back to the hot tier; returns when the file is hot (or
  // staging failed). Joins any recall already in flight for the path.
  NEST_NODISCARD
  Status recall(const storage::Principal& who, const std::string& path);

  // Queue an asynchronous recall (deduplicated against the queue and any
  // in-flight recall).
  void request(const storage::Principal& who, const std::string& path);
  // Drain the queue synchronously; returns recalls that completed ok.
  std::size_t run_pending();
  std::size_t pending() const;
  std::size_t in_flight() const;

 private:
  struct Flight {
    bool done = false;
    Status status;
  };

  NEST_NODISCARD
  Status execute(const storage::Principal& who, const std::string& path);
  NEST_NODISCARD
  Status copy_blocks(const storage::StorageManager::HsmTicket& t);

  Clock& clock_;
  storage::StorageManager& sm_;
  transfer::TransferCore* core_;
  std::int64_t block_bytes_;
  // Held only around the flight/queue tables, never across storage calls
  // (rank hsm_state sits below storage_meta so holding it across them
  // would be legal, but the executor drops it for the whole copy so
  // joiners can park without serializing unrelated paths).
  mutable Mutex mu_{lockrank::Rank::hsm_state, "hsm.recall"};
  CondVar cv_;
  std::map<std::string, std::shared_ptr<Flight>> inflight_ GUARDED_BY(mu_);
  std::deque<std::pair<storage::Principal, std::string>> queue_
      GUARDED_BY(mu_);
};

}  // namespace nest::hsm
