#include "cluster/replication.h"

namespace nest::cluster {

void ShipQueue::push(journal::Lsn lsn, std::string payload) {
  MutexLock lock(mu_);
  batches_.push_back(ShipBatch{lsn, std::move(payload)});
  last_ = lsn;
  while (batches_.size() > capacity_) {
    floor_ = batches_.front().lsn;
    batches_.pop_front();
  }
}

ShipQueue::Pull ShipQueue::after(journal::Lsn cursor, std::size_t max) const {
  MutexLock lock(mu_);
  Pull out;
  if (cursor < floor_) {
    out.needs_snapshot = true;
    return out;
  }
  for (const auto& b : batches_) {
    if (b.lsn <= cursor) continue;
    out.batches.push_back(b);
    if (out.batches.size() >= max) break;
  }
  return out;
}

journal::Lsn ShipQueue::last_lsn() const {
  MutexLock lock(mu_);
  return last_;
}

journal::Lsn ShipQueue::floor_lsn() const {
  MutexLock lock(mu_);
  return floor_;
}

std::size_t ShipQueue::size() const {
  MutexLock lock(mu_);
  return batches_.size();
}

}  // namespace nest::cluster
