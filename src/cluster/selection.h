// Load-aware replica selection, after the Globus replica-selection model:
// combine what the server advertises about itself (load average, queue
// depth, tail latency from its discovery ad) with what this client has
// measured about the server (an EWMA of achieved GET throughput). The
// advertised side catches a replica that is busy before we ever talk to
// it; the measured side catches a network path that is slow regardless of
// how idle the far end claims to be.
//
// Scores are "estimated cost" — lower is better. rank_candidates() returns
// live replicas cheapest-first, which doubles as the failover order: when
// the chosen replica dies mid-transfer the caller simply moves to the next
// entry.
//
// Lock rank: cluster_selector (above cluster_membership, below
// storage_meta) — selection reads the peer table, never the inverse.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/membership.h"
#include "common/mutex.h"

namespace nest::cluster {

// One scored candidate, ready for a connection attempt.
struct Candidate {
  std::string name;
  std::string host;
  std::uint16_t chirp_port = 0;
  double score = 0.0;  // estimated cost; lower is better
};

class ReplicaSelector {
 public:
  // `ewma_alpha` weights the newest throughput sample; 0.3 follows the
  // NWS-style forecasters the Globus selector consumed.
  explicit ReplicaSelector(PeerTable& peers, double ewma_alpha = 0.3)
      : peers_(peers), alpha_(ewma_alpha) {}

  // Record an achieved transfer rate against `name` (bytes over wall
  // time, from a finished or aborted GET).
  void observe_throughput(const std::string& name, double mbps);
  // A transfer to `name` failed before any byte moved: decay its EWMA so
  // repeated failures push it down the ranking even while its ad still
  // looks healthy.
  void observe_failure(const std::string& name);

  // Measured EWMA for a peer, or 0 if never measured.
  double measured_mbps(const std::string& name) const;

  // Estimated cost of fetching from this peer. Pure function of the row
  // and this client's EWMA state; exposed for the status surfaces so the
  // numbers shown match the numbers used.
  double score(const PeerInfo& peer) const;

  // Live peers whose names appear in `replicas` (empty = all live peers),
  // cheapest-first; ties broken by name for determinism.
  std::vector<Candidate> rank_candidates(
      const std::vector<std::string>& replicas = {}) const;

 private:
  double score_locked(const PeerInfo& peer) const REQUIRES(mu_);

  PeerTable& peers_;
  const double alpha_;
  mutable Mutex mu_{lockrank::Rank::cluster_selector, "cluster.selector"};
  std::unordered_map<std::string, double> ewma_mbps_ GUARDED_BY(mu_);
};

}  // namespace nest::cluster
