#include "cluster/chirp_link.h"

#include <span>

#include "common/string_util.h"

namespace nest::cluster {

namespace {

int reply_code(const std::string& line) {
  return static_cast<int>(parse_int(line.substr(0, 3)).value_or(-1));
}

// Text after "NNN " (empty when the line is just a code).
std::string reply_text(const std::string& line) {
  return line.size() > 4 ? line.substr(4) : std::string{};
}

}  // namespace

Status ChirpLink::ensure_connected() {
  if (stream_) return {};
  auto s = net::TcpStream::connect(addr_.host, addr_.chirp_port);
  if (!s.ok()) return Status{s.error()};
  // Timeout setup is advisory: a stream without it still works.
  (void)s->set_read_timeout(io_timeout_ms_);
  auto banner = s->read_line();
  if (!banner.ok() || reply_code(*banner) != 220)
    return Status{Errc::protocol_error, "no chirp banner from " + addr_.name};
  if (authenticate_) {
    if (auto a = authenticate_(*s); !a.ok()) return a;
  }
  stream_ = std::move(*s);
  return {};
}

Result<std::string> ChirpLink::roundtrip(const std::string& cmd,
                                         const std::string* payload) {
  if (auto c = ensure_connected(); !c.ok()) return c.error();
  const std::string head = cmd + "\r\n";
  Status sent = payload
                    ? stream_->send_vecs(
                          {std::span<const char>(head.data(), head.size()),
                           std::span<const char>(payload->data(),
                                                 payload->size())})
                    : stream_->write_all(head);
  if (!sent.ok()) {
    stream_.reset();
    return sent.error();
  }
  auto line = stream_->read_line();
  if (!line.ok()) {
    stream_.reset();
    return line.error();
  }
  return *line;
}

Result<journal::Lsn> ChirpLink::handshake(const std::string& primary) {
  auto line = roundtrip("REPL HELLO " + primary);
  if (!line.ok()) return line.error();
  if (reply_code(*line) != 200) {
    stream_.reset();
    return Error{Errc::protocol_error,
                 addr_.name + " rejected hello: " + *line};
  }
  auto lsn = parse_int(reply_text(*line));
  if (!lsn || *lsn < 0)
    return Error{Errc::protocol_error, "bad hello reply: " + *line};
  return static_cast<journal::Lsn>(*lsn);
}

Status ChirpLink::install_snapshot(journal::Lsn at,
                                   const std::string& payload) {
  auto line = roundtrip("REPL SNAP " + std::to_string(at) + " " +
                            std::to_string(payload.size()),
                        &payload);
  if (!line.ok()) return Status{line.error()};
  if (reply_code(*line) != 200) {
    stream_.reset();
    return Status{Errc::protocol_error,
                  addr_.name + " rejected snapshot: " + *line};
  }
  return {};
}

Result<journal::Lsn> ChirpLink::ship(journal::Lsn lsn,
                                     const std::string& payload) {
  auto line = roundtrip("REPL SHIP " + std::to_string(lsn) + " " +
                            std::to_string(payload.size()),
                        &payload);
  if (!line.ok()) return line.error();
  const int code = reply_code(*line);
  if (code == 554) return Error{Errc::not_found, reply_text(*line)};
  if (code != 200) {
    stream_.reset();
    return Error{Errc::protocol_error,
                 addr_.name + " rejected ship: " + *line};
  }
  auto acked = parse_int(reply_text(*line));
  if (!acked || *acked < 0)
    return Error{Errc::protocol_error, "bad ship reply: " + *line};
  return static_cast<journal::Lsn>(*acked);
}

Status ChirpLink::push_file(const std::string& path,
                            const std::string& data) {
  auto line = roundtrip(
      "REPL PUSH " + path + " " + std::to_string(data.size()), &data);
  if (!line.ok()) return Status{line.error()};
  if (reply_code(*line) != 200) {
    stream_.reset();
    return Status{Errc::protocol_error,
                  addr_.name + " rejected push: " + *line};
  }
  return {};
}

Result<classad::ClassAd> ChirpLink::fetch_ad() {
  auto line = roundtrip("AD");
  if (!line.ok()) return line.error();
  if (reply_code(*line) != 213)
    return Error{Errc::protocol_error, "bad AD reply: " + *line};
  const auto len = parse_int(reply_text(*line));
  if (!len || *len < 0 || *len > 16 * 1024 * 1024)
    return Error{Errc::protocol_error, "bad AD length: " + *line};
  std::string payload(static_cast<std::size_t>(*len), '\0');
  if (auto s = stream_->read_exact(
          std::span<char>(payload.data(), payload.size()));
      !s.ok()) {
    stream_.reset();
    return s.error();
  }
  return classad::ClassAd::parse(payload);
}

}  // namespace nest::cluster
