// Peer identity and advertised-load view for cluster federation.
//
// The paper positions NeST appliances as building blocks that grid
// middleware composes into larger storage fabrics through their ClassAd
// discovery ads (Section 2.1). The cluster layer is the first consumer of
// the load section those ads carry (LoadAvg, ThroughputMBps, P99RequestMs,
// published by the dispatcher since the observability PR): PeerLoad is the
// typed round-trip of that section, and PeerInfo is one row of a node's
// membership view — identity, role, liveness, replication progress, and
// the advertised load the replica selector scores.
#pragma once

#include <cstdint>
#include <string>

#include "classad/classad.h"
#include "common/clock.h"
#include "journal/journal.h"

namespace nest::cluster {

// Role a node plays in the replication topology. No election in this
// design: roles come from configuration, as in the EU DataGrid replica
// management service (one master catalog, many read replicas).
enum class Role { standalone, primary, follower };

const char* role_name(Role r) noexcept;
// "standalone" | "primary" | "follower"; invalid_argument otherwise.
NEST_NODISCARD Result<Role> role_by_name(const std::string& name);

// Static peer address from the `cluster_peers` config list:
// "name@host:chirp_port".
struct PeerAddress {
  std::string name;
  std::string host;
  std::uint16_t chirp_port = 0;
};

// "name@host:port" -> PeerAddress; invalid_argument on malformed input.
NEST_NODISCARD Result<PeerAddress> parse_peer_address(const std::string& text);

// Typed view of the load section of a discovery ad. from_ad/to_ad are an
// exact round-trip for every field below (the satellite codec test covers
// the section end to end; any asymmetry between what the dispatcher
// publishes and what peers parse shows up there).
struct PeerLoad {
  double load_avg = 0.0;          // LoadAvg: EWMA of slot occupancy
  double throughput_mbps = 0.0;   // ThroughputMBps: rolling total rate
  double mean_request_ms = 0.0;   // MeanRequestMs
  double p99_request_ms = 0.0;    // P99RequestMs
  std::int64_t bytes_queued = 0;  // BytesQueued
  std::int64_t requests = 0;      // Requests (monotone)
  std::int64_t errors = 0;        // Errors (monotone)
  std::int64_t active_transfers = 0;  // ActiveTransfers
  std::int64_t free_space = 0;        // FreeSpace

  // Parse the load section out of a full discovery ad (missing numeric
  // attributes read as 0, matching an ad from a node that has not served
  // traffic yet).
  static PeerLoad from_ad(const classad::ClassAd& ad);
  // Insert the section into `ad` under the same attribute names the
  // dispatcher publishes.
  void to_ad(classad::ClassAd& ad) const;
};

// One row of the membership/liveness view.
struct PeerInfo {
  std::string name;
  std::string host;
  std::uint16_t chirp_port = 0;
  Role role = Role::standalone;
  PeerLoad load;
  bool alive = false;
  Nanos last_heard = 0;      // clock time of the last parsed ad/ack
  journal::Lsn acked_lsn = 0;    // highest LSN this peer acknowledged
  journal::Lsn applied_lsn = 0;  // follower-reported applied LSN
  double score = 0.0;            // selection score at last update
};

}  // namespace nest::cluster
