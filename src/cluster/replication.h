// Journal shipping, primary side: the bounded buffer between the storage
// manager's write path and the replication fan-out.
//
// Every client-visible metadata operation on the primary seals exactly one
// journal batch (journal_ops.h); the storage manager's replication hook
// hands that sealed payload — with the LSN the local journal assigned —
// to this queue while still holding the storage lock. Shipper threads (or
// the sim's single-step driver) later pull per-follower slices by cursor
// and push them over a ReplicaLink.
//
// The queue is bounded: once `capacity` batches are held, the oldest are
// trimmed and the trim floor advances. A follower whose cursor sits at or
// below the floor cannot be caught up record-by-record any more and must
// be re-seeded from a full snapshot (StorageManager::serialize_meta ->
// install_replica_snapshot), exactly the path a restarted follower takes.
//
// Lock rank: cluster_ship, ABOVE storage_meta — push() runs under the
// storage lock by design (the batch must enter the queue in LSN order,
// which the storage lock already guarantees).
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "journal/journal.h"

namespace nest::cluster {

// One sealed metadata batch, as shipped: the primary's LSN plus the exact
// journal payload (followers apply and journal it verbatim).
struct ShipBatch {
  journal::Lsn lsn = 0;
  std::string payload;
};

class ShipQueue {
 public:
  explicit ShipQueue(std::size_t capacity = 1024) : capacity_(capacity) {}

  // Enqueue a sealed batch. LSNs must arrive in increasing order (the
  // storage lock serializes callers).
  void push(journal::Lsn lsn, std::string payload);

  struct Pull {
    std::vector<ShipBatch> batches;
    // The cursor predates the trim floor: record-by-record catch-up is
    // impossible, re-seed the follower from a snapshot.
    bool needs_snapshot = false;
  };
  // Batches with lsn > cursor, oldest first, at most `max`.
  Pull after(journal::Lsn cursor, std::size_t max = 64) const;

  journal::Lsn last_lsn() const;
  // Highest LSN ever trimmed out of the buffer (0 = nothing trimmed).
  journal::Lsn floor_lsn() const;
  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable Mutex mu_{lockrank::Rank::cluster_ship, "cluster.ship"};
  std::deque<ShipBatch> batches_ GUARDED_BY(mu_);
  journal::Lsn floor_ GUARDED_BY(mu_) = 0;
  journal::Lsn last_ GUARDED_BY(mu_) = 0;
};

}  // namespace nest::cluster
