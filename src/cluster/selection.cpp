#include "cluster/selection.h"

#include <algorithm>
#include <cmath>

namespace nest::cluster {

void ReplicaSelector::observe_throughput(const std::string& name,
                                         double mbps) {
  if (!(mbps >= 0.0)) return;  // reject negatives and NaN
  MutexLock lock(mu_);
  auto it = ewma_mbps_.find(name);
  if (it == ewma_mbps_.end()) {
    ewma_mbps_[name] = mbps;
  } else {
    it->second = alpha_ * mbps + (1.0 - alpha_) * it->second;
  }
}

void ReplicaSelector::observe_failure(const std::string& name) {
  MutexLock lock(mu_);
  auto it = ewma_mbps_.find(name);
  // Halve the estimate rather than folding in a zero sample: one refused
  // connection should demote, not erase, the history.
  if (it != ewma_mbps_.end()) it->second *= 0.5;
}

double ReplicaSelector::measured_mbps(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = ewma_mbps_.find(name);
  return it == ewma_mbps_.end() ? 0.0 : it->second;
}

double ReplicaSelector::score(const PeerInfo& peer) const {
  MutexLock lock(mu_);
  return score_locked(peer);
}

double ReplicaSelector::score_locked(const PeerInfo& peer) const {
  // Server-side cost: how long the replica itself expects to make us
  // wait. Load average and active transfers scale the queueing delay; the
  // advertised p99 is the base service time.
  const double queue =
      1.0 + peer.load.load_avg +
      0.25 * static_cast<double>(peer.load.active_transfers);
  const double service_ms = std::max(1.0, peer.load.p99_request_ms);
  double cost = queue * service_ms;

  // Path cost: divide by the better of (advertised rate, our measured
  // EWMA to this peer). Measurements dominate when present — the Globus
  // result was precisely that client-observed bandwidth beats server
  // self-reports for ranking.
  auto it = ewma_mbps_.find(peer.name);
  const double measured = it == ewma_mbps_.end() ? 0.0 : it->second;
  const double advertised = peer.load.throughput_mbps;
  const double rate = measured > 0.0 ? (0.75 * measured + 0.25 * advertised)
                                     : advertised;
  cost /= std::max(1.0, rate);
  return cost;
}

std::vector<Candidate> ReplicaSelector::rank_candidates(
    const std::vector<std::string>& replicas) const {
  const auto live = peers_.live_peers();
  MutexLock lock(mu_);
  std::vector<Candidate> out;
  for (const auto& p : live) {
    if (!replicas.empty() &&
        std::find(replicas.begin(), replicas.end(), p.name) ==
            replicas.end()) {
      continue;
    }
    out.push_back(Candidate{p.name, p.host, p.chirp_port, score_locked(p)});
  }
  std::sort(out.begin(), out.end(), [](const Candidate& a, const Candidate& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.name < b.name;
  });
  return out;
}

}  // namespace nest::cluster
