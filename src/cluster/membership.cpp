#include "cluster/membership.h"

#include <algorithm>

namespace nest::cluster {

void PeerTable::add_static_peer(const PeerAddress& addr) {
  MutexLock lock(mu_);
  auto& row = peers_[addr.name];
  row.name = addr.name;
  row.host = addr.host;
  row.chirp_port = addr.chirp_port;
}

void PeerTable::observe_ad(const std::string& name,
                           const classad::ClassAd& ad) {
  observe_load(name, PeerLoad::from_ad(ad));
}

void PeerTable::observe_load(const std::string& name, const PeerLoad& load) {
  MutexLock lock(mu_);
  auto& row = peers_[name];
  if (row.name.empty()) row.name = name;
  row.load = load;
  row.alive = true;
  row.last_heard = clock_.now();
}

void PeerTable::observe_ack(const std::string& name, journal::Lsn acked,
                            journal::Lsn applied) {
  MutexLock lock(mu_);
  auto& row = peers_[name];
  if (row.name.empty()) row.name = name;
  // Acks only move forward; a stale ack from a retried ship must not
  // rewind the progress the fan-out already counted.
  row.acked_lsn = std::max(row.acked_lsn, acked);
  row.applied_lsn = std::max(row.applied_lsn, applied);
  row.alive = true;
  row.last_heard = clock_.now();
}

void PeerTable::observe_failure(const std::string& name) {
  MutexLock lock(mu_);
  auto it = peers_.find(name);
  if (it != peers_.end()) it->second.alive = false;
}

void PeerTable::set_role(const std::string& name, Role role) {
  MutexLock lock(mu_);
  auto& row = peers_[name];
  if (row.name.empty()) row.name = name;
  row.role = role;
}

void PeerTable::tick() {
  MutexLock lock(mu_);
  tick_locked();
}

void PeerTable::tick_locked() {
  const Nanos now = clock_.now();
  for (auto& [name, row] : peers_) {
    if (row.alive && now - row.last_heard > timeout_) row.alive = false;
  }
}

std::optional<PeerInfo> PeerTable::peer(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = peers_.find(name);
  if (it == peers_.end()) return std::nullopt;
  return it->second;
}

std::vector<PeerInfo> PeerTable::peers() const {
  MutexLock lock(mu_);
  std::vector<PeerInfo> out;
  out.reserve(peers_.size());
  for (const auto& [name, row] : peers_) out.push_back(row);
  return out;
}

std::vector<PeerInfo> PeerTable::live_peers() const {
  MutexLock lock(mu_);
  std::vector<PeerInfo> out;
  for (const auto& [name, row] : peers_) {
    if (row.alive) out.push_back(row);
  }
  return out;
}

std::size_t PeerTable::size() const {
  MutexLock lock(mu_);
  return peers_.size();
}

}  // namespace nest::cluster
