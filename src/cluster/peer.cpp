#include "cluster/peer.h"

#include "common/string_util.h"

namespace nest::cluster {

const char* role_name(Role r) noexcept {
  switch (r) {
    case Role::standalone: return "standalone";
    case Role::primary: return "primary";
    case Role::follower: return "follower";
  }
  return "?";
}

Result<Role> role_by_name(const std::string& name) {
  if (name == "standalone" || name.empty()) return Role::standalone;
  if (name == "primary") return Role::primary;
  if (name == "follower") return Role::follower;
  return Error{Errc::invalid_argument, "unknown cluster role '" + name + "'"};
}

Result<PeerAddress> parse_peer_address(const std::string& text) {
  const auto at = text.find('@');
  const auto colon = text.rfind(':');
  if (at == std::string::npos || colon == std::string::npos || colon < at ||
      at == 0 || colon == at + 1) {
    return Error{Errc::invalid_argument,
                 "peer must be name@host:port, got '" + text + "'"};
  }
  PeerAddress p;
  p.name = text.substr(0, at);
  p.host = text.substr(at + 1, colon - at - 1);
  const auto port = parse_int(text.substr(colon + 1));
  if (!port || *port <= 0 || *port > 65535) {
    return Error{Errc::invalid_argument, "bad peer port in '" + text + "'"};
  }
  p.chirp_port = static_cast<std::uint16_t>(*port);
  return p;
}

PeerLoad PeerLoad::from_ad(const classad::ClassAd& ad) {
  PeerLoad l;
  l.load_avg = ad.eval_real("LoadAvg").value_or(0.0);
  l.throughput_mbps = ad.eval_real("ThroughputMBps").value_or(0.0);
  l.mean_request_ms = ad.eval_real("MeanRequestMs").value_or(0.0);
  l.p99_request_ms = ad.eval_real("P99RequestMs").value_or(0.0);
  l.bytes_queued = ad.eval_int("BytesQueued").value_or(0);
  l.requests = ad.eval_int("Requests").value_or(0);
  l.errors = ad.eval_int("Errors").value_or(0);
  l.active_transfers = ad.eval_int("ActiveTransfers").value_or(0);
  l.free_space = ad.eval_int("FreeSpace").value_or(0);
  return l;
}

void PeerLoad::to_ad(classad::ClassAd& ad) const {
  ad.insert("LoadAvg", classad::Value::real(load_avg));
  ad.insert("ThroughputMBps", classad::Value::real(throughput_mbps));
  ad.insert("MeanRequestMs", classad::Value::real(mean_request_ms));
  ad.insert("P99RequestMs", classad::Value::real(p99_request_ms));
  ad.insert("BytesQueued", classad::Value::integer(bytes_queued));
  ad.insert("Requests", classad::Value::integer(requests));
  ad.insert("Errors", classad::Value::integer(errors));
  ad.insert("ActiveTransfers", classad::Value::integer(active_transfers));
  ad.insert("FreeSpace", classad::Value::integer(free_space));
}

}  // namespace nest::cluster
