// ClusterNode: one appliance's view of the federation.
//
// The paper's appliances are designed to be composed — discovery ads make
// each NeST visible to Grid middleware. This layer federates them
// directly: a configured *primary* streams every sealed metadata batch
// (journal_ops.h) to its *followers* over a replica link, pushes the file
// content behind those batches, and tracks each follower's acknowledged
// LSN; followers apply the stream through the same blind-install path
// crash recovery uses. Reads then have a choice of replica, ranked by the
// Globus-style selector (advertised load + measured throughput EWMA).
//
// Determinism: the node never acts on its own. All work happens in
// single-step methods — heartbeat_once(), ship_once() — that a sim
// harness drives explicitly under a ManualClock with loopback links. The
// real server calls start(), which merely wraps the same steps in two
// timer threads. Nothing in this class reads the wall clock directly.
//
// Threading: heartbeat and ship state are confined to their respective
// threads (links are NOT shared between them — each keeps its own
// connections). Cross-thread state lives in PeerTable / ReplicaSelector /
// ShipQueue (each with its own ranked lock) and two small queues here.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "cluster/membership.h"
#include "cluster/replication.h"
#include "cluster/selection.h"
#include "storage/storage_manager.h"

namespace nest::cluster {

struct ClusterConfig {
  std::string name;  // this node's name (also its GSI subject in-cluster)
  Role role = Role::standalone;
  std::vector<PeerAddress> peers;
  // Default content copies for files whose lots set no `replicas` policy.
  int replication_factor = 1;
  Nanos heartbeat_interval = 2 * kSecond;
  Nanos heartbeat_timeout = 15 * kSecond;
  std::size_t ship_queue_capacity = 1024;
};

// Transport to one peer. Implementations: ChirpLink (chirp_link.h, the
// real wire) and the loopback links test harnesses build over direct
// ClusterNode method calls. A link is used from a single thread.
class ReplicaLink {
 public:
  virtual ~ReplicaLink() = default;
  // Announce this primary; returns the follower's applied-through LSN in
  // the PRIMARY's sequence (0 for a fresh or restarted follower).
  NEST_NODISCARD
  virtual Result<journal::Lsn> handshake(const std::string& primary) = 0;
  // Re-seed the follower with a full snapshot covering LSN `at`.
  NEST_NODISCARD
  virtual Status install_snapshot(journal::Lsn at,
                                  const std::string& payload) = 0;
  // Ship one sealed batch; returns the follower's new applied LSN.
  // An Errc::not_found error means "LSN gap — send a snapshot".
  NEST_NODISCARD
  virtual Result<journal::Lsn> ship(journal::Lsn lsn,
                                    const std::string& payload) = 0;
  // Push replicated file content.
  NEST_NODISCARD
  virtual Status push_file(const std::string& path,
                           const std::string& data) = 0;
  // Fetch the peer's discovery ad (heartbeat + load refresh).
  NEST_NODISCARD virtual Result<classad::ClassAd> fetch_ad() = 0;
};

class ClusterNode {
 public:
  using LinkFactory =
      std::function<std::unique_ptr<ReplicaLink>(const PeerAddress&)>;
  using FileReader = std::function<Result<std::string>(const std::string&)>;

  ClusterNode(Clock& clock, ClusterConfig cfg);
  ~ClusterNode();

  // Install the replication hook (primary) and the apply target
  // (follower). Call before serving, like StorageManager::attach_journal.
  void attach_storage(storage::StorageManager* storage);
  void set_link_factory(LinkFactory factory) {
    link_factory_ = std::move(factory);
  }
  void set_file_reader(FileReader reader) {
    file_reader_ = std::move(reader);
  }

  const ClusterConfig& config() const { return cfg_; }
  Role role() const { return cfg_.role; }
  const std::string& name() const { return cfg_.name; }
  PeerTable& peers() { return peers_; }
  ReplicaSelector& selector() { return selector_; }

  // True when `principal` may drive REPL ops against this node: it names
  // a configured peer (cluster identities double as GSI subjects).
  bool authorize_repl(const std::string& principal) const;

  // --- Single-step drivers (sim harness; start() wraps them in threads).
  // Poll every peer's ad, refresh the load view, expire silent peers.
  void heartbeat_once();
  // Primary: push pending file content, then ship batches to every
  // follower, re-seeding via snapshot where the queue was trimmed.
  void ship_once();

  // A client write to `path` completed: queue its content for push
  // replication (primary; no-op otherwise).
  void note_file_written(const std::string& path);
  // Pending content pushes (0 = every follower has current bytes).
  std::size_t pending_pushes() const;

  // --- Follower-side entry points (wire handler / loopback links).
  NEST_NODISCARD Result<journal::Lsn> accept_hello(const std::string& primary);
  NEST_NODISCARD
  Result<journal::Lsn> accept_ship(journal::Lsn lsn,
                                   std::string_view payload);
  NEST_NODISCARD
  Status accept_snapshot(journal::Lsn lsn, std::string_view payload);
  NEST_NODISCARD
  Status accept_file(const std::string& path, std::string_view data);
  // Applied-through LSN in the primary's sequence. Deliberately not
  // persisted: a restarted follower re-handshakes at 0 and the primary
  // re-seeds it from a snapshot.
  journal::Lsn applied_primary_lsn() const {
    return applied_primary_lsn_.load(std::memory_order_acquire);
  }

  // --- Status / selection surfaces.
  // Peer rows with selection scores refreshed (cluster-status CLI).
  std::vector<PeerInfo> status();
  // Ranked live candidates for a GET of `path` (locate + redirect).
  std::vector<Candidate> locate(const std::string& path);
  // Primary: highest sealed LSN entering the ship stream.
  journal::Lsn last_shipped_lsn() const { return queue_.last_lsn(); }
  // Primary: highest LSN every live follower has acknowledged (the
  // surviving-quorum watermark the chaos harness asserts against).
  journal::Lsn quorum_acked_lsn() const;

  // --- Real mode: wrap the single-step drivers in timer threads.
  void start();
  void stop();

 private:
  struct FollowerState {
    PeerAddress addr;
    std::unique_ptr<ReplicaLink> link;
    journal::Lsn acked = 0;
    bool synced = false;  // handshake completed on the current link
  };
  // Shipper-thread-only.
  void ship_follower(FollowerState& f);
  bool send_snapshot(FollowerState& f);
  void requeue_replicated_content(const std::string& peer);
  void drain_push_queue();
  void push_content(const std::string& path);

  Clock& clock_;
  ClusterConfig cfg_;
  PeerTable peers_;
  ReplicaSelector selector_;
  ShipQueue queue_;
  storage::StorageManager* storage_ = nullptr;
  LinkFactory link_factory_;
  FileReader file_reader_;

  std::atomic<journal::Lsn> applied_primary_lsn_{0};

  // Confined to the ship driver (sim caller or ship thread).
  std::vector<FollowerState> followers_;
  // Confined to the heartbeat driver; separate connections from the
  // shipper's so the two threads never share a stream.
  std::vector<std::pair<PeerAddress, std::unique_ptr<ReplicaLink>>>
      heartbeat_links_;

  // Written paths awaiting content replication. Same rank as the ship
  // queue (they are one subsystem; the two locks are never nested).
  mutable Mutex push_mu_{lockrank::Rank::cluster_ship, "cluster.push"};
  std::deque<std::string> push_queue_ GUARDED_BY(push_mu_);
  // Every path this primary has ever queued for replication. When a
  // follower is re-seeded from a snapshot (it restarted empty), the
  // snapshot restores metadata only — the whole set is re-queued so the
  // follower's file content is re-replicated too.
  std::set<std::string> replicated_paths_ GUARDED_BY(push_mu_);

  std::atomic<bool> stop_{false};
  std::thread heartbeat_thread_;
  std::thread ship_thread_;
  Mutex stop_mu_{lockrank::Rank::cluster_membership, "cluster.stop"};
  CondVar stop_cv_;
};

}  // namespace nest::cluster
