// ChirpLink: the real-wire ReplicaLink, speaking the REPL extension of
// the Chirp control protocol to a peer appliance.
//
//   REPL HELLO <primary>            -> 200 <applied_lsn>
//   REPL SHIP <lsn> <len> + bytes   -> 200 <applied_lsn> | 554 lsn gap
//   REPL SNAP <lsn> <len> + bytes   -> 200 ok
//   REPL PUSH <path> <len> + bytes  -> 200 ok
//   AD                              -> 213 <len> + ad text
//
// Payload framing follows the existing Chirp convention: the size travels
// on the command line, the raw bytes follow the CRLF. A 554 reply to SHIP
// maps to Errc::not_found — the caller's cue to re-seed via snapshot.
//
// Authentication is injected: the server wires a callback that runs its
// GSI challenge/response with the appliance identity over the fresh
// stream (the cluster layer stays independent of the protocol library).
// Connections are lazy and are dropped on any error; the next call
// redials. Each link is used from one thread.
#pragma once

#include <functional>
#include <optional>

#include "cluster/cluster_node.h"
#include "net/socket.h"

namespace nest::cluster {

class ChirpLink final : public ReplicaLink {
 public:
  // `authenticate` runs after the 220 banner; it must leave the stream
  // inside an authenticated session (or fail).
  using Authenticator = std::function<Status(net::TcpStream&)>;

  ChirpLink(PeerAddress addr, Authenticator authenticate,
            int io_timeout_ms = 5000)
      : addr_(std::move(addr)),
        authenticate_(std::move(authenticate)),
        io_timeout_ms_(io_timeout_ms) {}

  NEST_NODISCARD
  Result<journal::Lsn> handshake(const std::string& primary) override;
  NEST_NODISCARD
  Status install_snapshot(journal::Lsn at,
                          const std::string& payload) override;
  NEST_NODISCARD
  Result<journal::Lsn> ship(journal::Lsn lsn,
                            const std::string& payload) override;
  NEST_NODISCARD
  Status push_file(const std::string& path,
                   const std::string& data) override;
  NEST_NODISCARD Result<classad::ClassAd> fetch_ad() override;

 private:
  NEST_NODISCARD Status ensure_connected();
  // Send "<cmd>\r\n" (+ optional payload in the same writev) and read the
  // one-line reply; drops the connection on transport errors.
  NEST_NODISCARD
  Result<std::string> roundtrip(const std::string& cmd,
                                const std::string* payload = nullptr);

  PeerAddress addr_;
  Authenticator authenticate_;
  int io_timeout_ms_;
  std::optional<net::TcpStream> stream_;
};

}  // namespace nest::cluster
