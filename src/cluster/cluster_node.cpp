#include "cluster/cluster_node.h"

#include <algorithm>
#include <chrono>

#include "common/log.h"
#include "fault/failpoint.h"

namespace nest::cluster {

ClusterNode::ClusterNode(Clock& clock, ClusterConfig cfg)
    : clock_(clock),
      cfg_(std::move(cfg)),
      peers_(clock, cfg_.heartbeat_timeout),
      selector_(peers_),
      queue_(cfg_.ship_queue_capacity) {
  for (const auto& p : cfg_.peers) {
    peers_.add_static_peer(p);
    if (cfg_.role == Role::primary) {
      followers_.push_back(FollowerState{p, nullptr, 0, false});
    }
  }
}

ClusterNode::~ClusterNode() { stop(); }

void ClusterNode::attach_storage(storage::StorageManager* storage) {
  storage_ = storage;
  if (cfg_.role == Role::primary) {
    storage_->set_replication_hook(
        [this](journal::Lsn lsn, const std::string& payload) {
          queue_.push(lsn, payload);
        });
  }
}

bool ClusterNode::authorize_repl(const std::string& principal) const {
  if (principal.empty()) return false;
  for (const auto& p : cfg_.peers) {
    if (p.name == principal) return true;
  }
  return false;
}

void ClusterNode::heartbeat_once() {
  if (heartbeat_links_.empty() && link_factory_) {
    for (const auto& p : cfg_.peers) heartbeat_links_.emplace_back(p, nullptr);
  }
  for (auto& [addr, link] : heartbeat_links_) {
    bool injected = false;
    NEST_FAILPOINT("cluster.heartbeat", {
      (void)err;
      injected = true;
    });
    if (injected) {
      peers_.observe_failure(addr.name);
      link.reset();
      continue;
    }
    if (!link) link = link_factory_ ? link_factory_(addr) : nullptr;
    if (!link) {
      peers_.observe_failure(addr.name);
      continue;
    }
    auto ad = link->fetch_ad();
    if (!ad.ok()) {
      peers_.observe_failure(addr.name);
      link.reset();
      continue;
    }
    peers_.observe_ad(addr.name, *ad);
  }
  peers_.tick();
}

void ClusterNode::ship_once() {
  if (cfg_.role != Role::primary || !storage_) return;
  drain_push_queue();
  for (auto& f : followers_) ship_follower(f);
}

void ClusterNode::ship_follower(FollowerState& f) {
  if (f.synced) {
    // A caught-up follower generates no ship traffic, so a death would
    // go unnoticed here until the next write — and a *wipe-restart*
    // would leave the follower empty indefinitely on an idle primary.
    // The heartbeat's liveness view is the probe: once it declared the
    // peer dead, force a re-handshake so a restarted follower is
    // re-seeded (and re-replicated, below) even before new writes.
    const auto info = peers_.peer(f.addr.name);
    if (info && !info->alive) {
      f.synced = false;
      f.link.reset();
    }
  }
  if (!f.link) {
    f.link = link_factory_ ? link_factory_(f.addr) : nullptr;
    f.synced = false;
    if (!f.link) {
      peers_.observe_failure(f.addr.name);
      return;
    }
  }
  if (!f.synced) {
    auto hello = f.link->handshake(cfg_.name);
    if (!hello.ok()) {
      peers_.observe_failure(f.addr.name);
      f.link.reset();
      return;
    }
    if (*hello < f.acked) requeue_replicated_content(f.addr.name);
    f.acked = *hello;
    f.synced = true;
  }
  for (;;) {
    auto pull = queue_.after(f.acked);
    if (pull.needs_snapshot) {
      if (!send_snapshot(f)) return;
      continue;  // re-pull from the snapshot's LSN
    }
    if (pull.batches.empty()) return;  // caught up
    for (const auto& b : pull.batches) {
      NEST_FAILPOINT("cluster.ship", {
        (void)err;
        peers_.observe_failure(f.addr.name);
        f.link.reset();
        return;
      });
      auto acked = f.link->ship(b.lsn, b.payload);
      if (!acked.ok()) {
        if (acked.error().code == Errc::not_found) {
          // Follower reports an LSN gap (it restarted under us). Shipped
          // batches arrive in order starting at f.acked+1, so a gap means
          // the follower's applied LSN regressed: state loss.
          requeue_replicated_content(f.addr.name);
          if (!send_snapshot(f)) return;
          break;
        }
        peers_.observe_failure(f.addr.name);
        f.link.reset();
        return;
      }
      f.acked = *acked;
      peers_.observe_ack(f.addr.name, f.acked, f.acked);
    }
  }
}

void ClusterNode::requeue_replicated_content(const std::string& peer) {
  // A follower regressed (restart with state loss): metadata catches up
  // by replay or snapshot, but file content does not ride the journal —
  // re-queue everything ever replicated so its bytes flow again.
  // Re-pushes to followers that already hold them are idempotent
  // overwrites.
  NEST_LOG_INFO("cluster", "%s regressed; re-replicating content",
                peer.c_str());
  MutexLock lock(push_mu_);
  for (const auto& path : replicated_paths_) push_queue_.push_back(path);
}

bool ClusterNode::send_snapshot(FollowerState& f) {
  const auto snap = storage_->replica_snapshot();
  if (auto s = f.link->install_snapshot(snap.lsn, snap.payload); !s.ok()) {
    peers_.observe_failure(f.addr.name);
    f.link.reset();
    return false;
  }
  f.acked = snap.lsn;
  peers_.observe_ack(f.addr.name, f.acked, f.acked);
  NEST_LOG_INFO("cluster", "re-seeded %s from snapshot at lsn %llu",
                f.addr.name.c_str(),
                static_cast<unsigned long long>(snap.lsn));
  return true;
}

void ClusterNode::note_file_written(const std::string& path) {
  if (cfg_.role != Role::primary) return;
  MutexLock lock(push_mu_);
  push_queue_.push_back(path);
  replicated_paths_.insert(path);
}

std::size_t ClusterNode::pending_pushes() const {
  MutexLock lock(push_mu_);
  return push_queue_.size();
}

void ClusterNode::drain_push_queue() {
  // Bound the drain to what was queued at entry: push_content re-queues a
  // path it could not fan out fully (not enough connected followers yet),
  // and an unbounded loop would chase its own re-queues forever.
  std::size_t budget;
  {
    MutexLock lock(push_mu_);
    budget = push_queue_.size();
  }
  while (budget-- > 0) {
    std::string path;
    {
      MutexLock lock(push_mu_);
      if (push_queue_.empty()) return;
      path = std::move(push_queue_.front());
      push_queue_.pop_front();
    }
    push_content(path);
  }
}

void ClusterNode::push_content(const std::string& path) {
  if (!file_reader_) return;
  auto data = file_reader_(path);
  if (!data.ok()) {
    NEST_LOG_WARN("cluster", "cannot read %s for replication: %s",
                  path.c_str(), data.error().to_string().c_str());
    return;
  }
  // Per-lot policy caps the content fan-out; metadata still ships to every
  // follower (the catalog must agree even where the bytes do not land).
  std::int64_t want = storage_->replicas_for(path);
  if (want == 0) want = cfg_.replication_factor;
  std::int64_t pushed = 0;
  for (auto& f : followers_) {
    if (pushed >= want) break;
    if (!f.link || !f.synced) continue;  // ship_follower will (re)connect
    if (auto s = f.link->push_file(path, *data); !s.ok()) {
      NEST_LOG_WARN("cluster", "content push of %s to %s failed: %s",
                    path.c_str(), f.addr.name.c_str(),
                    s.to_string().c_str());
      continue;
    }
    ++pushed;
  }
  if (pushed < want) {
    // Not enough connected followers yet: retry on the next ship tick
    // rather than silently under-replicating.
    MutexLock lock(push_mu_);
    push_queue_.push_back(path);
  }
}

Result<journal::Lsn> ClusterNode::accept_hello(const std::string& primary) {
  if (cfg_.role != Role::follower)
    return Error{Errc::unsupported,
                 "node " + cfg_.name + " is not a follower"};
  peers_.set_role(primary, Role::primary);
  return applied_primary_lsn();
}

Result<journal::Lsn> ClusterNode::accept_ship(journal::Lsn lsn,
                                              std::string_view payload) {
  if (cfg_.role != Role::follower || !storage_)
    return Error{Errc::unsupported, "not an attached follower"};
  const journal::Lsn applied = applied_primary_lsn();
  if (lsn <= applied) return applied;  // duplicate from a retried ship
  if (lsn != applied + 1) {
    return Error{Errc::not_found,
                 "lsn gap: applied " + std::to_string(applied) + ", got " +
                     std::to_string(lsn)};
  }
  NEST_FAILPOINT("cluster.apply", { return err; });
  if (auto s = storage_->apply_replicated_batch(payload); !s.ok())
    return s.error();
  applied_primary_lsn_.store(lsn, std::memory_order_release);
  return lsn;
}

Status ClusterNode::accept_snapshot(journal::Lsn lsn,
                                    std::string_view payload) {
  if (cfg_.role != Role::follower || !storage_)
    return Status{Errc::unsupported, "not an attached follower"};
  if (auto s = storage_->install_replica_snapshot(payload); !s.ok()) return s;
  applied_primary_lsn_.store(lsn, std::memory_order_release);
  return {};
}

Status ClusterNode::accept_file(const std::string& path,
                                std::string_view data) {
  if (cfg_.role != Role::follower || !storage_)
    return Status{Errc::unsupported, "not an attached follower"};
  return storage_->install_replica_file(path, data);
}

std::vector<PeerInfo> ClusterNode::status() {
  auto rows = peers_.peers();
  for (auto& r : rows) r.score = selector_.score(r);
  return rows;
}

std::vector<Candidate> ClusterNode::locate(const std::string& path) {
  (void)path;  // every live peer is a candidate; clients fail over on 550
  return selector_.rank_candidates();
}

journal::Lsn ClusterNode::quorum_acked_lsn() const {
  journal::Lsn acked = 0;
  bool any = false;
  for (const auto& p : peers_.peers()) {
    if (!p.alive) continue;
    acked = any ? std::min(acked, p.acked_lsn) : p.acked_lsn;
    any = true;
  }
  return any ? acked : 0;
}

void ClusterNode::start() {
  // Any node with peers heartbeats them (a standalone member still wants
  // the load view for selection); only a primary ships.
  if (cfg_.peers.empty()) return;
  stop_.store(false);
  const auto interval = std::chrono::nanoseconds(cfg_.heartbeat_interval);
  heartbeat_thread_ = std::thread([this, interval] {
    while (!stop_.load()) {
      heartbeat_once();
      MutexLock lock(stop_mu_);
      stop_cv_.wait_for(lock, interval, [this] { return stop_.load(); });
    }
  });
  if (cfg_.role == Role::primary) {
    // The shipper spins faster than the heartbeat: ship latency bounds
    // the replication lag every acked write rides on.
    const auto ship_interval = interval / 4 + std::chrono::nanoseconds(1);
    ship_thread_ = std::thread([this, ship_interval] {
      while (!stop_.load()) {
        ship_once();
        MutexLock lock(stop_mu_);
        stop_cv_.wait_for(lock, ship_interval, [this] { return stop_.load(); });
      }
    });
  }
}

void ClusterNode::stop() {
  stop_.store(true);
  {
    MutexLock lock(stop_mu_);
    stop_cv_.notify_all();
  }
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  if (ship_thread_.joinable()) ship_thread_.join();
}

}  // namespace nest::cluster
