// Cluster membership: the liveness/load view every node keeps of its
// peers.
//
// Peers enter the table from the static `cluster_peers` config list; rows
// are refreshed whenever a peer's discovery ad is parsed (heartbeat poll
// over the ad channel, or an ad pushed through a collector) and whenever a
// replication ack carries progress. A peer whose ad has not been seen for
// `heartbeat_timeout` is marked dead and drops out of replica selection
// and ship fan-out until it is heard from again.
//
// Lock rank: cluster_membership, BELOW storage_meta and journal — the
// canonical order is membership before journal, never the inverse (the
// lockrank death tests pin this edge). Callers must not hold storage or
// journal locks when entering the table.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/peer.h"
#include "common/clock.h"
#include "common/mutex.h"

namespace nest::cluster {

class PeerTable {
 public:
  PeerTable(Clock& clock, Nanos heartbeat_timeout = 15 * kSecond)
      : clock_(clock), timeout_(heartbeat_timeout) {}

  // Seed a row from static configuration (not yet alive).
  void add_static_peer(const PeerAddress& addr);

  // A full discovery ad arrived from `name`: refresh load + liveness.
  void observe_ad(const std::string& name, const classad::ClassAd& ad);
  // Same, from an already-parsed load section.
  void observe_load(const std::string& name, const PeerLoad& load);
  // Replication progress from an ack.
  void observe_ack(const std::string& name, journal::Lsn acked,
                   journal::Lsn applied);
  // A probe failed outright (connect refused): mark dead immediately
  // instead of waiting out the timeout.
  void observe_failure(const std::string& name);
  void set_role(const std::string& name, Role role);

  // Mark rows past the heartbeat timeout dead. Called from the heartbeat
  // tick; cheap enough for every selection too.
  void tick();

  std::optional<PeerInfo> peer(const std::string& name) const;
  // Every row, name order (deterministic for status surfaces and tests).
  std::vector<PeerInfo> peers() const;
  // Live peers only, name order.
  std::vector<PeerInfo> live_peers() const;
  std::size_t size() const;

 private:
  void tick_locked() REQUIRES(mu_);

  Clock& clock_;
  Nanos timeout_;
  mutable Mutex mu_{lockrank::Rank::cluster_membership, "cluster.members"};
  std::map<std::string, PeerInfo> peers_ GUARDED_BY(mu_);
};

}  // namespace nest::cluster
