// RAII socket primitives for the real (non-simulated) appliance.
// Blocking I/O with optional timeouts; connection handlers run in their own
// threads (the protocol layer), while bulk data movement is scheduled by
// the transfer manager's concurrency models.
//
// Bulk data-path contracts (docs/net.md): send_vecs coalesces a header and
// its body into one writev; send_file moves file bytes kernel-to-kernel
// with sendfile(2), falling back to pread+send on sockets or filesystems
// that refuse it; TcpListener can bind SO_REUSEPORT shards so several
// acceptor threads share one port.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>

#include "common/result.h"

namespace nest::net {

// Process-wide switch for the sendfile(2) data path. Defaults to on; the
// wire-speed bench and the fallback-equivalence tests flip it to compare
// the zero-copy and buffered paths in one process. When off, send_file
// always takes the buffered fallback (bytes and error behaviour are
// contractually identical either way).
bool zero_copy_enabled() noexcept;
void set_zero_copy(bool enabled) noexcept;

// Owned file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// Connected TCP stream with buffered line reading.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  NEST_NODISCARD
  static Result<TcpStream> connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  // Read up to buf.size() bytes; 0 means orderly close.
  NEST_NODISCARD Result<std::int64_t> read_some(std::span<char> buf);
  // Read exactly buf.size() bytes (loops); connection_closed on EOF.
  NEST_NODISCARD Status read_exact(std::span<char> buf);
  // Write all bytes.
  NEST_NODISCARD Status write_all(std::span<const char> data);
  NEST_NODISCARD Status write_all(const std::string& s) {
    return write_all(std::span<const char>(s.data(), s.size()));
  }

  // Write every byte of every buffer, coalesced with writev(2) so a small
  // header and its body leave in one syscall (and, with TCP_NODELAY, one
  // segment). Equivalent to write_all over the concatenation.
  NEST_NODISCARD Status send_vecs(std::span<const std::span<const char>> vecs);
  NEST_NODISCARD
  Status send_vecs(std::initializer_list<std::span<const char>> vecs) {
    return send_vecs(std::span<const std::span<const char>>(
        vecs.begin(), vecs.size()));
  }

  // Send `len` bytes of `fd` starting at `offset` straight from the page
  // cache with sendfile(2); no user-space copy. Returns the bytes actually
  // sent — short only when the file ends before `offset + len` (truncated
  // under us). Falls back to a pread+send loop when zero-copy is disabled
  // or the kernel refuses the pairing (EINVAL/ENOSYS); the fallback keeps
  // byte-for-byte and error semantics.
  NEST_NODISCARD
  Result<std::int64_t> send_file(int fd, std::int64_t offset,
                                 std::int64_t len);

  // Read a '\n'-terminated line (strips "\r\n" or "\n"); buffered.
  NEST_NODISCARD Result<std::string> read_line(std::size_t max_len = 64 * 1024);

  // Drop up to `max_len` received bytes without copying them out of the
  // kernel (MSG_TRUNC counts and frees the payload in place). Consumes
  // line-reader readahead first. Returns bytes dropped; 0 means orderly
  // close. For drain-side measurement clients, where a copying reader
  // would itself become the bottleneck being measured.
  NEST_NODISCARD Result<std::int64_t> discard(std::int64_t max_len);

  // SO_RCVLOWAT: park blocking reads until `bytes` are queued, batching
  // reader wake-ups. Only safe on close-delimited streams — a tail
  // shorter than the mark is released by the peer's close, nothing else.
  NEST_NODISCARD Status set_receive_lowat(int bytes);

  // Set a receive timeout (0 disables).
  NEST_NODISCARD Status set_read_timeout(int millis);
  void shutdown_send();

  // Local/peer address as "ip:port" (diagnostics + FTP PASV).
  std::string local_address() const;
  uint16_t local_port() const;

 private:
  Fd fd_;
  std::string buffer_;  // unconsumed bytes past the last line
};

struct ListenOptions {
  int backlog = 64;
  // SO_REUSEPORT: several listeners may bind the same port and the kernel
  // load-balances incoming connections across them — one acceptor thread
  // per shard with no shared accept lock (server sharded-accept mode).
  bool reuseport = false;
};

class TcpListener {
 public:
  // Bind to 127.0.0.1:port; port 0 picks an ephemeral port.
  NEST_NODISCARD static Result<TcpListener> bind(uint16_t port);
  NEST_NODISCARD
  static Result<TcpListener> bind(uint16_t port, const ListenOptions& opts);

  // Errors surface with code busy when transient (EMFILE/ENFILE/ENOBUFS/
  // ENOMEM — fd or buffer exhaustion that retry-with-backoff survives);
  // anything else means the listener itself is gone. ECONNABORTED (peer
  // vanished inside the handshake) is retried internally.
  NEST_NODISCARD Result<TcpStream> accept();
  uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }
  // Unblocks a pending accept (used for shutdown). Shuts the socket down
  // but keeps the descriptor until destruction, so a concurrent accept()
  // never observes a closed/recycled fd; destroy the listener only after
  // joining the accepting thread.
  void close();

 private:
  TcpListener(Fd fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}
  Fd fd_;
  uint16_t port_ = 0;
};

// Retry pacing for accept loops: exponential backoff on transient accept
// failures (fd exhaustion must not busy-spin a core), reset on the next
// success. Pure policy, unit-testable; the server's accept loops own one
// per acceptor thread.
class AcceptBackoff {
 public:
  static constexpr int kInitialMs = 1;
  static constexpr int kMaxMs = 200;

  // Delay to sleep before the next accept attempt; doubles per consecutive
  // failure, capped at kMaxMs.
  int next_delay_ms() {
    const int d = delay_ms_;
    delay_ms_ = std::min(delay_ms_ * 2, kMaxMs);
    return d;
  }
  void reset() { delay_ms_ = kInitialMs; }

 private:
  int delay_ms_ = kInitialMs;
};

// Connected-UDP endpoint for the NFS/RPC transport.
class UdpSocket {
 public:
  NEST_NODISCARD
  static Result<UdpSocket> bind(uint16_t port);  // 0: ephemeral

  // Receive one datagram; returns sender address for reply.
  NEST_NODISCARD
  Result<std::int64_t> recv_from(std::span<char> buf, std::string& from_ip,
                                 uint16_t& from_port);
  NEST_NODISCARD
  Status send_to(std::span<const char> data, const std::string& ip,
                 uint16_t port);
  NEST_NODISCARD Status set_read_timeout(int millis);
  uint16_t port() const { return port_; }
  void close();

 private:
  UdpSocket(Fd fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}
  Fd fd_;
  uint16_t port_ = 0;
};

}  // namespace nest::net
