// RAII socket primitives for the real (non-simulated) appliance.
// Blocking I/O with optional timeouts; connection handlers run in their own
// threads (the protocol layer), while bulk data movement is scheduled by
// the transfer manager's concurrency models.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>

#include "common/result.h"

namespace nest::net {

// Owned file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// Connected TCP stream with buffered line reading.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(Fd fd) : fd_(std::move(fd)) {}

  static Result<TcpStream> connect(const std::string& host, uint16_t port);

  bool valid() const { return fd_.valid(); }
  int fd() const { return fd_.get(); }

  // Read up to buf.size() bytes; 0 means orderly close.
  Result<std::int64_t> read_some(std::span<char> buf);
  // Read exactly buf.size() bytes (loops); connection_closed on EOF.
  Status read_exact(std::span<char> buf);
  // Write all bytes.
  Status write_all(std::span<const char> data);
  Status write_all(const std::string& s) {
    return write_all(std::span<const char>(s.data(), s.size()));
  }

  // Read a '\n'-terminated line (strips "\r\n" or "\n"); buffered.
  Result<std::string> read_line(std::size_t max_len = 64 * 1024);

  // Set a receive timeout (0 disables).
  Status set_read_timeout(int millis);
  void shutdown_send();

  // Local/peer address as "ip:port" (diagnostics + FTP PASV).
  std::string local_address() const;
  uint16_t local_port() const;

 private:
  Fd fd_;
  std::string buffer_;  // unconsumed bytes past the last line
};

class TcpListener {
 public:
  // Bind to 127.0.0.1:port; port 0 picks an ephemeral port.
  static Result<TcpListener> bind(uint16_t port);

  Result<TcpStream> accept();
  uint16_t port() const { return port_; }
  int fd() const { return fd_.get(); }
  // Unblocks a pending accept (used for shutdown). Shuts the socket down
  // but keeps the descriptor until destruction, so a concurrent accept()
  // never observes a closed/recycled fd; destroy the listener only after
  // joining the accepting thread.
  void close();

 private:
  TcpListener(Fd fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}
  Fd fd_;
  uint16_t port_ = 0;
};

// Connected-UDP endpoint for the NFS/RPC transport.
class UdpSocket {
 public:
  static Result<UdpSocket> bind(uint16_t port);  // 0: ephemeral

  // Receive one datagram; returns sender address for reply.
  Result<std::int64_t> recv_from(std::span<char> buf, std::string& from_ip,
                                 uint16_t& from_port);
  Status send_to(std::span<const char> data, const std::string& ip,
                 uint16_t port);
  Status set_read_timeout(int millis);
  uint16_t port() const { return port_; }
  void close();

 private:
  UdpSocket(Fd fd, uint16_t port) : fd_(std::move(fd)), port_(port) {}
  Fd fd_;
  uint16_t port_ = 0;
};

}  // namespace nest::net
