#include "net/socket.h"

#include "fault/failpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/sendfile.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <vector>

namespace nest::net {
namespace {

std::atomic<bool> g_zero_copy{true};

Error sys_error(const std::string& what) {
  const int err = errno;
  Errc code = Errc::io_error;
  if (err == EAGAIN || err == EWOULDBLOCK) code = Errc::timed_out;
  if (err == ECONNREFUSED || err == ECONNRESET || err == EPIPE)
    code = Errc::connection_closed;
  if (err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM)
    code = Errc::busy;  // transient resource exhaustion: retryable
  return Error{code, what + ": " + std::strerror(err)};
}

sockaddr_in loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

}  // namespace

bool zero_copy_enabled() noexcept {
  return g_zero_copy.load(std::memory_order_relaxed);
}

void set_zero_copy(bool enabled) noexcept {
  g_zero_copy.store(enabled, std::memory_order_relaxed);
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpStream> TcpStream::connect(const std::string& host, uint16_t port) {
  NEST_FAILPOINT("net.connect", return err);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return sys_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Error{Errc::invalid_argument, "bad address " + host};
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return sys_error("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(std::move(fd));
}

Result<std::int64_t> TcpStream::read_some(std::span<char> buf) {
  NEST_FAILPOINT("net.recv", return err);
  if (!buffer_.empty()) {
    const std::size_t n = std::min(buf.size(), buffer_.size());
    std::memcpy(buf.data(), buffer_.data(), n);
    buffer_.erase(0, n);
    return static_cast<std::int64_t>(n);
  }
  while (true) {
    const ssize_t n = ::recv(fd_.get(), buf.data(), buf.size(), 0);
    if (n >= 0) return static_cast<std::int64_t>(n);
    if (errno == EINTR) continue;
    return sys_error("recv");
  }
}

Status TcpStream::read_exact(std::span<char> buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    auto n = read_some(buf.subspan(off));
    if (!n.ok()) return Status{n.error()};
    if (*n == 0) return Status{Errc::connection_closed, "eof mid-read"};
    off += static_cast<std::size_t>(*n);
  }
  return {};
}

Status TcpStream::write_all(std::span<const char> data) {
  NEST_FAILPOINT("net.send", return Status{err});
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{sys_error("send")};
    }
    off += static_cast<std::size_t>(n);
  }
  return {};
}

Status TcpStream::send_vecs(std::span<const std::span<const char>> vecs) {
  NEST_FAILPOINT("net.writev", return Status{err});
  // iovec count is bounded by IOV_MAX; callers pass a handful (header +
  // body), so a fixed stack array suffices.
  iovec iov[16];
  std::size_t n_iov = 0;
  std::size_t total = 0;
  for (const auto& v : vecs) {
    if (v.empty()) continue;
    if (n_iov == sizeof iov / sizeof iov[0])
      return Status{Errc::invalid_argument, "too many iovecs"};
    iov[n_iov].iov_base = const_cast<char*>(v.data());
    iov[n_iov].iov_len = v.size();
    ++n_iov;
    total += v.size();
  }
  std::size_t sent = 0;
  std::size_t first = 0;  // first iovec with bytes left
  while (sent < total) {
    const ssize_t n = ::writev(fd_.get(), iov + first,
                               static_cast<int>(n_iov - first));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE) return Status{Errc::connection_closed, "writev"};
      return Status{sys_error("writev")};
    }
    sent += static_cast<std::size_t>(n);
    // Consume fully-written iovecs, then trim the partial one.
    std::size_t left = static_cast<std::size_t>(n);
    while (first < n_iov && left >= iov[first].iov_len) {
      left -= iov[first].iov_len;
      ++first;
    }
    if (first < n_iov && left > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + left;
      iov[first].iov_len -= left;
    }
  }
  return {};
}

Result<std::int64_t> TcpStream::send_file(int fd, std::int64_t offset,
                                          std::int64_t len) {
  NEST_FAILPOINT("net.sendfile", return err);
  std::int64_t sent = 0;
  bool use_sendfile = zero_copy_enabled();
  while (sent < len && use_sendfile) {
    off_t off = static_cast<off_t>(offset + sent);
    const ssize_t n = ::sendfile(fd_.get(), fd, &off,
                                 static_cast<std::size_t>(len - sent));
    if (n > 0) {
      sent += n;
      continue;
    }
    if (n == 0) return sent;  // file ended early: short send, caller decides
    const int err_no = errno;
    if (err_no == EINTR || err_no == EAGAIN) continue;
    if (err_no == EINVAL || err_no == ENOSYS || err_no == EOPNOTSUPP) {
      // This fd/socket pairing cannot sendfile; finish buffered.
      use_sendfile = false;
      break;
    }
    return sys_error("sendfile");
  }
  // Buffered fallback (also the whole path when zero-copy is disabled):
  // pread+send in page-sized-multiples, same bytes on the wire.
  std::vector<char> buf;
  while (sent < len) {
    if (buf.empty()) buf.resize(256 * 1024);
    const std::int64_t want = std::min<std::int64_t>(
        static_cast<std::int64_t>(buf.size()), len - sent);
    const ssize_t n = ::pread(fd, buf.data(),
                              static_cast<std::size_t>(want),
                              static_cast<off_t>(offset + sent));
    if (n < 0) {
      if (errno == EINTR) continue;
      return sys_error("sendfile fallback pread");
    }
    if (n == 0) return sent;  // short: file truncated under us
    if (auto s = write_all(std::span<const char>(
            buf.data(), static_cast<std::size_t>(n)));
        !s.ok()) {
      return s.error();
    }
    sent += n;
  }
  return sent;
}

Result<std::string> TcpStream::read_line(std::size_t max_len) {
  NEST_FAILPOINT("net.recv", return err);
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_len)
      return Error{Errc::protocol_error, "line too long"};
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
        break;
      }
      if (n == 0) return Error{Errc::connection_closed, "eof mid-line"};
      if (errno == EINTR) continue;
      return sys_error("recv");
    }
  }
}

Result<std::int64_t> TcpStream::discard(std::int64_t max_len) {
  NEST_FAILPOINT("net.recv", return err);
  if (max_len <= 0) return std::int64_t{0};
  if (!buffer_.empty()) {
    const auto n = std::min<std::int64_t>(
        max_len, static_cast<std::int64_t>(buffer_.size()));
    buffer_.erase(0, static_cast<std::size_t>(n));
    return n;
  }
  while (true) {
    const ssize_t n = ::recv(fd_.get(), nullptr,
                             static_cast<std::size_t>(max_len), MSG_TRUNC);
    if (n >= 0) return static_cast<std::int64_t>(n);
    if (errno == EINTR) continue;
    return sys_error("recv");
  }
}

Status TcpStream::set_receive_lowat(int bytes) {
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVLOWAT, &bytes,
                   sizeof bytes) != 0)
    return Status{sys_error("SO_RCVLOWAT")};
  return {};
}

Status TcpStream::set_read_timeout(int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    return Status{sys_error("SO_RCVTIMEO")};
  return {};
}

void TcpStream::shutdown_send() { ::shutdown(fd_.get(), SHUT_WR); }

std::string TcpStream::local_address() const {
  return "127.0.0.1:" + std::to_string(local_port());
}

uint16_t TcpStream::local_port() const { return bound_port(fd_.get()); }

Result<TcpListener> TcpListener::bind(uint16_t port) {
  return bind(port, ListenOptions{});
}

Result<TcpListener> TcpListener::bind(uint16_t port,
                                      const ListenOptions& opts) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return sys_error("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (opts.reuseport &&
      ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) !=
          0) {
    return sys_error("SO_REUSEPORT");
  }
  sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return sys_error("bind " + std::to_string(port));
  if (::listen(fd.get(), opts.backlog) != 0) return sys_error("listen");
  const uint16_t actual = bound_port(fd.get());
  return TcpListener(std::move(fd), actual);
}

Result<TcpStream> TcpListener::accept() {
  while (true) {
    // Injected accept *errors* (net.accept_err) model fd exhaustion —
    // EMFILE and friends — before the kernel hands us a connection; the
    // pending connection stays in the backlog for the post-backoff retry.
    NEST_FAILPOINT("net.accept_err", return err);
    const int cfd = ::accept(fd_.get(), nullptr, nullptr);
    if (cfd >= 0) {
      // Injected accept failure drops the fresh connection instead of
      // returning an error: server accept loops treat an accept() error
      // as listener shutdown, and a drill must not kill the acceptor.
      bool drop = false;
      NEST_FAILPOINT("net.accept", drop = true);
      if (drop) {
        ::close(cfd);
        continue;
      }
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpStream(Fd(cfd));
    }
    const int err_no = errno;
    if (err_no == EINTR || err_no == ECONNABORTED) continue;
    return sys_error("accept");
  }
}

void TcpListener::close() {
  // close() alone does not wake threads blocked in accept() on Linux;
  // shutdown() does (they return with EINVAL). The descriptor itself is
  // released only at destruction: resetting it here would race the fd
  // read inside a concurrent accept() — the caller joins the acceptor
  // thread between close() and destroying the listener.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Result<UdpSocket> UdpSocket::bind(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return sys_error("socket");
  sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return sys_error("udp bind");
  const uint16_t actual = bound_port(fd.get());
  return UdpSocket(std::move(fd), actual);
}

Result<std::int64_t> UdpSocket::recv_from(std::span<char> buf,
                                          std::string& from_ip,
                                          uint16_t& from_port) {
  NEST_FAILPOINT("net.recv", return err);
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  while (true) {
    const ssize_t n = ::recvfrom(fd_.get(), buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&addr), &len);
    if (n >= 0) {
      char ip[INET_ADDRSTRLEN] = {};
      ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
      from_ip = ip;
      from_port = ntohs(addr.sin_port);
      return static_cast<std::int64_t>(n);
    }
    if (errno == EINTR) continue;
    return sys_error("recvfrom");
  }
}

Status UdpSocket::send_to(std::span<const char> data, const std::string& ip,
                          uint16_t port) {
  NEST_FAILPOINT("net.send", return Status{err});
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1)
    return Status{Errc::invalid_argument, "bad ip"};
  const ssize_t n =
      ::sendto(fd_.get(), data.data(), data.size(), 0,
               reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (n < 0) return Status{sys_error("sendto")};
  return {};
}

Status UdpSocket::set_read_timeout(int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    return Status{sys_error("SO_RCVTIMEO")};
  return {};
}

void UdpSocket::close() { fd_.reset(); }

}  // namespace nest::net
