#include "net/socket.h"

#include "fault/failpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace nest::net {
namespace {

Error sys_error(const std::string& what) {
  const int err = errno;
  Errc code = Errc::io_error;
  if (err == EAGAIN || err == EWOULDBLOCK) code = Errc::timed_out;
  if (err == ECONNREFUSED || err == ECONNRESET || err == EPIPE)
    code = Errc::connection_closed;
  return Error{code, what + ": " + std::strerror(err)};
}

sockaddr_in loopback(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

uint16_t bound_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return 0;
  return ntohs(addr.sin_port);
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpStream> TcpStream::connect(const std::string& host, uint16_t port) {
  NEST_FAILPOINT("net.connect", return err);
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return sys_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Error{Errc::invalid_argument, "bad address " + host};
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    return sys_error("connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return TcpStream(std::move(fd));
}

Result<std::int64_t> TcpStream::read_some(std::span<char> buf) {
  NEST_FAILPOINT("net.recv", return err);
  if (!buffer_.empty()) {
    const std::size_t n = std::min(buf.size(), buffer_.size());
    std::memcpy(buf.data(), buffer_.data(), n);
    buffer_.erase(0, n);
    return static_cast<std::int64_t>(n);
  }
  while (true) {
    const ssize_t n = ::recv(fd_.get(), buf.data(), buf.size(), 0);
    if (n >= 0) return static_cast<std::int64_t>(n);
    if (errno == EINTR) continue;
    return sys_error("recv");
  }
}

Status TcpStream::read_exact(std::span<char> buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    auto n = read_some(buf.subspan(off));
    if (!n.ok()) return Status{n.error()};
    if (*n == 0) return Status{Errc::connection_closed, "eof mid-read"};
    off += static_cast<std::size_t>(*n);
  }
  return {};
}

Status TcpStream::write_all(std::span<const char> data) {
  NEST_FAILPOINT("net.send", return Status{err});
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_.get(), data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status{sys_error("send")};
    }
    off += static_cast<std::size_t>(n);
  }
  return {};
}

Result<std::string> TcpStream::read_line(std::size_t max_len) {
  NEST_FAILPOINT("net.recv", return err);
  while (true) {
    const std::size_t pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      std::string line = buffer_.substr(0, pos);
      buffer_.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    if (buffer_.size() > max_len)
      return Error{Errc::protocol_error, "line too long"};
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<std::size_t>(n));
        break;
      }
      if (n == 0) return Error{Errc::connection_closed, "eof mid-line"};
      if (errno == EINTR) continue;
      return sys_error("recv");
    }
  }
}

Status TcpStream::set_read_timeout(int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    return Status{sys_error("SO_RCVTIMEO")};
  return {};
}

void TcpStream::shutdown_send() { ::shutdown(fd_.get(), SHUT_WR); }

std::string TcpStream::local_address() const {
  return "127.0.0.1:" + std::to_string(local_port());
}

uint16_t TcpStream::local_port() const { return bound_port(fd_.get()); }

Result<TcpListener> TcpListener::bind(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return sys_error("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return sys_error("bind " + std::to_string(port));
  if (::listen(fd.get(), 64) != 0) return sys_error("listen");
  const uint16_t actual = bound_port(fd.get());
  return TcpListener(std::move(fd), actual);
}

Result<TcpStream> TcpListener::accept() {
  while (true) {
    const int cfd = ::accept(fd_.get(), nullptr, nullptr);
    if (cfd >= 0) {
      // Injected accept failure drops the fresh connection instead of
      // returning an error: server accept loops treat an accept() error
      // as listener shutdown, and a drill must not kill the acceptor.
      bool drop = false;
      NEST_FAILPOINT("net.accept", drop = true);
      if (drop) {
        ::close(cfd);
        continue;
      }
      const int one = 1;
      ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return TcpStream(Fd(cfd));
    }
    if (errno == EINTR) continue;
    return sys_error("accept");
  }
}

void TcpListener::close() {
  // close() alone does not wake threads blocked in accept() on Linux;
  // shutdown() does (they return with EINVAL). The descriptor itself is
  // released only at destruction: resetting it here would race the fd
  // read inside a concurrent accept() — the caller joins the acceptor
  // thread between close() and destroying the listener.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Result<UdpSocket> UdpSocket::bind(uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_DGRAM, 0));
  if (!fd.valid()) return sys_error("socket");
  sockaddr_in addr = loopback(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    return sys_error("udp bind");
  const uint16_t actual = bound_port(fd.get());
  return UdpSocket(std::move(fd), actual);
}

Result<std::int64_t> UdpSocket::recv_from(std::span<char> buf,
                                          std::string& from_ip,
                                          uint16_t& from_port) {
  NEST_FAILPOINT("net.recv", return err);
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  while (true) {
    const ssize_t n = ::recvfrom(fd_.get(), buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&addr), &len);
    if (n >= 0) {
      char ip[INET_ADDRSTRLEN] = {};
      ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
      from_ip = ip;
      from_port = ntohs(addr.sin_port);
      return static_cast<std::int64_t>(n);
    }
    if (errno == EINTR) continue;
    return sys_error("recvfrom");
  }
}

Status UdpSocket::send_to(std::span<const char> data, const std::string& ip,
                          uint16_t port) {
  NEST_FAILPOINT("net.send", return Status{err});
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1)
    return Status{Errc::invalid_argument, "bad ip"};
  const ssize_t n =
      ::sendto(fd_.get(), data.data(), data.size(), 0,
               reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (n < 0) return Status{sys_error("sendto")};
  return {};
}

Status UdpSocket::set_read_timeout(int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) != 0)
    return Status{sys_error("SO_RCVTIMEO")};
  return {};
}

void UdpSocket::close() { fd_.reset(); }

}  // namespace nest::net
