#include "client/chirp_client.h"

#include "common/string_util.h"
#include "protocol/gsi.h"

namespace nest::client {

namespace {

Errc code_to_errc(int code) {
  switch (code) {
    case 550: return Errc::not_found;
    case 551: return Errc::exists;
    case 530: return Errc::permission_denied;
    case 552: return Errc::no_space;
    case 554: return Errc::lot_unknown;
    case 501: return Errc::invalid_argument;
    case 553: return Errc::busy;
    case 455: return Errc::staging;
    case 555: return Errc::not_dir;
    default: return Errc::protocol_error;
  }
}

}  // namespace

Result<ChirpClient> ChirpClient::connect(const std::string& host,
                                         uint16_t port,
                                         const std::string& user,
                                         const std::string& secret) {
  auto stream = net::TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  ChirpClient c(std::move(stream.value()));
  auto greeting = c.stream_.read_line();
  if (!greeting.ok()) return greeting.error();
  if (greeting->rfind("220", 0) != 0)
    return Error{Errc::protocol_error, "bad greeting: " + *greeting};

  if (user.empty()) {
    auto r = c.command("AUTH anonymous");
    if (!r.ok()) return r.error();
    if (r->code != 230)
      return Error{Errc::not_authenticated, r->text};
  } else {
    if (!c.stream_.write_all("AUTH " + user + "\r\n").ok())
      return Error{Errc::io_error, "send AUTH"};
    auto challenge_line = c.stream_.read_line();
    if (!challenge_line.ok()) return challenge_line.error();
    if (challenge_line->rfind("334 ", 0) != 0)
      return Error{Errc::not_authenticated, *challenge_line};
    const std::string challenge = challenge_line->substr(4);
    auto r = c.command("RESPONSE " +
                       protocol::GsiRegistry::respond(secret, challenge));
    if (!r.ok()) return r.error();
    if (r->code != 230) return Error{Errc::not_authenticated, r->text};
  }
  return c;
}

Result<ChirpClient::Response> ChirpClient::command(const std::string& line) {
  if (!stream_.write_all(line + "\r\n").ok())
    return Error{Errc::io_error, "send"};
  auto reply = stream_.read_line();
  if (!reply.ok()) return reply.error();
  Response r;
  const auto space = reply->find(' ');
  r.code = static_cast<int>(
      parse_int(reply->substr(0, space)).value_or(0));
  if (space != std::string::npos) r.text = reply->substr(space + 1);
  return r;
}

Status ChirpClient::to_status(const Response& r) {
  if (r.code >= 200 && r.code < 300) return {};
  return Status{code_to_errc(r.code), r.text};
}

Result<std::string> ChirpClient::read_payload(const Response& r) {
  if (r.code != 213) return Error{code_to_errc(r.code), r.text};
  const auto len = parse_int(r.text);
  if (!len || *len < 0) return Error{Errc::protocol_error, "bad 213"};
  std::string payload(static_cast<std::size_t>(*len), '\0');
  if (auto s = stream_.read_exact(std::span(payload.data(), payload.size()));
      !s.ok()) {
    return Error{s.error()};
  }
  return payload;
}

Status ChirpClient::mkdir(const std::string& path) {
  auto r = command("MKDIR " + path);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Status ChirpClient::rmdir(const std::string& path) {
  auto r = command("RMDIR " + path);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Status ChirpClient::unlink(const std::string& path) {
  auto r = command("UNLINK " + path);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Status ChirpClient::rename(const std::string& from, const std::string& to) {
  auto r = command("RENAME " + from + " " + to);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Result<ChirpClient::Stat> ChirpClient::stat(const std::string& path) {
  auto r = command("STAT " + path);
  if (!r.ok()) return r.error();
  if (r->code != 200) return Error{code_to_errc(r->code), r->text};
  const auto words = split_ws(r->text);
  if (words.size() < 2) return Error{Errc::protocol_error, r->text};
  Stat st;
  st.is_dir = words[0] == "dir";
  st.size = parse_int(words[1]).value_or(0);
  if (words.size() >= 3) st.owner = words[2];
  return st;
}

Result<std::vector<std::string>> ChirpClient::list(const std::string& path) {
  auto r = command("LIST " + path);
  if (!r.ok()) return r.error();
  auto payload = read_payload(*r);
  if (!payload.ok()) return payload.error();
  std::vector<std::string> names;
  for (const auto& line : split(*payload, '\n')) {
    const auto words = split_ws(line);
    if (words.size() == 3) names.push_back(words[2]);
  }
  return names;
}

Result<std::string> ChirpClient::get(const std::string& path) {
  return get(path, nullptr);
}

Result<std::string> ChirpClient::get(const std::string& path,
                                     std::optional<Redirect>* redirect) {
  if (redirect) redirect->reset();
  auto r = command("GET " + path);
  if (!r.ok()) return r.error();
  if (r->code == 350 && redirect) {
    // "350 redirect <name> <host> <port>"
    const auto words = split_ws(r->text);
    if (words.size() == 4 && words[0] == "redirect") {
      const auto port = parse_int(words[3]);
      if (port && *port > 0 && *port <= 65535) {
        *redirect = Redirect{words[1], words[2],
                             static_cast<std::uint16_t>(*port)};
        return std::string{};
      }
    }
    return Error{Errc::protocol_error, "bad redirect: " + r->text};
  }
  if (r->code != 150) return Error{code_to_errc(r->code), r->text};
  const auto size = parse_int(r->text);
  if (!size || *size < 0) return Error{Errc::protocol_error, "bad 150"};
  std::string data(static_cast<std::size_t>(*size), '\0');
  if (auto s = stream_.read_exact(std::span(data.data(), data.size()));
      !s.ok()) {
    return Error{s.error()};
  }
  return data;
}

Status ChirpClient::put(const std::string& path, const std::string& data) {
  auto r = command("PUT " + path + " " + std::to_string(data.size()));
  if (!r.ok()) return Status{r.error()};
  if (r->code != 150) return Status{code_to_errc(r->code), r->text};
  if (auto s = stream_.write_all(data); !s.ok()) return s;
  auto done = stream_.read_line();
  if (!done.ok()) return Status{done.error()};
  if (done->rfind("226", 0) != 0)
    return Status{Errc::io_error, "store failed: " + *done};
  return {};
}

Status ChirpClient::third_put(const std::string& path,
                              const std::string& host, uint16_t port,
                              const std::string& remote_path) {
  auto r = command("THIRDPUT " + path + " " + host + " " +
                   std::to_string(port) + " " + remote_path);
  if (!r.ok()) return Status{r.error()};
  return r->code == 226 ? Status{} : Status{code_to_errc(r->code), r->text};
}

Result<std::uint64_t> ChirpClient::lot_create(std::int64_t bytes,
                                              std::int64_t seconds,
                                              bool group) {
  auto r = command("LOT CREATE " + std::to_string(bytes) + " " +
                   std::to_string(seconds) + (group ? " GROUP" : ""));
  if (!r.ok()) return r.error();
  if (r->code != 200) return Error{code_to_errc(r->code), r->text};
  const auto id = parse_int(r->text);
  if (!id) return Error{Errc::protocol_error, "bad lot id"};
  return static_cast<std::uint64_t>(*id);
}

Status ChirpClient::lot_renew(std::uint64_t id, std::int64_t seconds) {
  auto r = command("LOT RENEW " + std::to_string(id) + " " +
                   std::to_string(seconds));
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Status ChirpClient::lot_terminate(std::uint64_t id) {
  auto r = command("LOT TERMINATE " + std::to_string(id));
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Result<std::string> ChirpClient::lot_query(std::uint64_t id) {
  auto r = command("LOT QUERY " + std::to_string(id));
  if (!r.ok()) return r.error();
  if (r->code != 200) return Error{code_to_errc(r->code), r->text};
  return r->text;
}

Result<std::string> ChirpClient::lot_list() {
  auto r = command("LOT LIST");
  if (!r.ok()) return r.error();
  return read_payload(*r);
}

Status ChirpClient::lot_set_replicas(std::uint64_t id,
                                     std::int64_t replicas) {
  auto r = command("LOT REPLICAS " + std::to_string(id) + " " +
                   std::to_string(replicas));
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Status ChirpClient::lot_pin(std::uint64_t id, bool pinned) {
  auto r = command("LOT PIN " + std::to_string(id) + " " +
                   (pinned ? "1" : "0"));
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Result<std::string> ChirpClient::hsm_status(const std::string& path) {
  auto r = command("HSM STATUS " + path);
  if (!r.ok()) return r.error();
  if (r->code != 200) return Error{code_to_errc(r->code), r->text};
  return r->text;
}

Status ChirpClient::hsm_recall(const std::string& path) {
  auto r = command("HSM RECALL " + path);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Status ChirpClient::hsm_migrate(const std::string& path) {
  auto r = command("HSM MIGRATE " + path);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Result<std::string> ChirpClient::cluster_status() {
  auto r = command("CLUSTER STATUS");
  if (!r.ok()) return r.error();
  return read_payload(*r);
}

Result<std::string> ChirpClient::replica_list(const std::string& path) {
  auto r = command(path.empty() ? std::string("REPLICA LIST")
                                : "REPLICA LIST " + path);
  if (!r.ok()) return r.error();
  return read_payload(*r);
}

Status ChirpClient::acl_set(const std::string& dir, const std::string& entry) {
  auto r = command("ACL SET " + dir + " " + entry);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Status ChirpClient::acl_clear(const std::string& dir,
                              const std::string& principal) {
  auto r = command("ACL CLEAR " + dir + " " + principal);
  return r.ok() ? to_status(*r) : Status{r.error()};
}

Result<std::string> ChirpClient::acl_get(const std::string& dir) {
  auto r = command("ACL GET " + dir);
  if (!r.ok()) return r.error();
  return read_payload(*r);
}

Result<std::string> ChirpClient::query_ad() {
  auto r = command("AD");
  if (!r.ok()) return r.error();
  return read_payload(*r);
}

Result<std::string> ChirpClient::stats() {
  auto r = command("STATS");
  if (!r.ok()) return r.error();
  return read_payload(*r);
}

Result<std::string> ChirpClient::journal_stat() {
  auto r = command("JOURNAL STAT");
  if (!r.ok()) return r.error();
  if (r->code != 200) return Error{code_to_errc(r->code), r->text};
  return r->text;
}

Status ChirpClient::fault_set(const std::string& point,
                              const std::string& spec) {
  auto r = command("FAULT SET " + point + " " + spec);
  if (!r.ok()) return Status{r.error()};
  return to_status(*r);
}

Result<std::string> ChirpClient::fault_list() {
  auto r = command("FAULT LIST");
  if (!r.ok()) return r.error();
  return read_payload(*r);
}

Status ChirpClient::quit() {
  auto r = command("QUIT");
  return r.ok() ? Status{} : Status{r.error()};
}

}  // namespace nest::client
