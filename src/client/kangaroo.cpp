#include "client/kangaroo.h"

#include <algorithm>

#include "client/chirp_client.h"
#include "common/log.h"

namespace nest::client {

KangarooMover::KangarooMover(Options options) : options_(std::move(options)) {
  mover_ = std::thread([this] { run(); });
}

KangarooMover::~KangarooMover() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  mover_.join();
}

Status KangarooMover::put(const std::string& remote_path, std::string data) {
  MutexLock lock(mu_);
  if (stats_.spooled_bytes + static_cast<std::int64_t>(data.size()) >
      options_.spool_limit) {
    return Status{Errc::no_space, "kangaroo spool full"};
  }
  stats_.spooled_bytes += static_cast<std::int64_t>(data.size());
  queue_.push_back(SpoolEntry{remote_path, std::move(data), 0});
  cv_.notify_all();
  return {};
}

Status KangarooMover::flush() {
  MutexLock lock(mu_);
  cv_.wait(lock, [this] { return queue_.empty(); });
  return first_failure_;
}

KangarooMover::Stats KangarooMover::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

bool KangarooMover::try_deliver(const SpoolEntry& entry) {
  auto chirp = ChirpClient::connect(options_.host, options_.port,
                                    options_.user, options_.secret);
  if (!chirp.ok()) return false;
  return chirp->put(entry.remote_path, entry.data).ok();
}

void KangarooMover::run() {
  Nanos backoff = options_.initial_backoff;
  MutexLock lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) {
      // Destructor: abandon whatever is still spooled (callers that need
      // delivery guarantees flush() first).
      stats_.permanent_failures += static_cast<std::int64_t>(queue_.size());
      queue_.clear();
      cv_.notify_all();
      return;
    }
    if (queue_.empty()) continue;
    SpoolEntry entry = queue_.front();  // copy: delivery runs unlocked
    lock.unlock();
    const bool delivered = try_deliver(entry);
    lock.lock();
    if (delivered) {
      stats_.files_delivered += 1;
      stats_.bytes_delivered += static_cast<std::int64_t>(entry.data.size());
      stats_.spooled_bytes -= static_cast<std::int64_t>(entry.data.size());
      queue_.pop_front();
      backoff = options_.initial_backoff;
      cv_.notify_all();
      continue;
    }
    stats_.retries += 1;
    queue_.front().attempts += 1;
    if (queue_.front().attempts >= options_.max_attempts) {
      stats_.permanent_failures += 1;
      stats_.spooled_bytes -= static_cast<std::int64_t>(entry.data.size());
      if (first_failure_.ok()) {
        first_failure_ = Status{
            Errc::io_error, "kangaroo: giving up on " + entry.remote_path};
      }
      queue_.pop_front();
      cv_.notify_all();
      continue;
    }
    // Destination unreachable: back off (interruptible by stop).
    cv_.wait_for(lock, std::chrono::nanoseconds(backoff),
                 [this] { return stop_; });
    backoff = std::min<Nanos>(backoff * 2, options_.max_backoff);
  }
}

}  // namespace nest::client
