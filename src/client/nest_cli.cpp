// nest-cli: command-line Chirp client for a running NeST appliance.
//
// Usage:
//   nest-cli <host> <port> [-u user -k secret] <command> [args...]
//
// Commands:
//   ls <dir>                 stat <path>             mkdir <dir>
//   rmdir <dir>              rm <path>               mv <from> <to>
//   get <path>               put <path> <local-file>
//   lot-create <bytes> <seconds> [group]
//   lot-renew <id> <seconds> lot-terminate <id>      lot-query <id>
//   lot-list                 journal-stat           stats
//   acl-get <dir>            acl-set <dir> <classad-entry...>
//   acl-clear <dir> <principal>
//   fault-set <point> <spec>  fault-list
//   cluster-status           replica-list [path]
//   lot-replicas <id> <count>
//   lot-pin <id> <0|1>       tier-status <path>
//   recall <path>            migrate <path>
//   ad
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "client/chirp_client.h"
#include "common/string_util.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: nest-cli <host> <port> [-u user -k secret] <command> "
               "[args...]\n"
               "commands: ls stat mkdir rmdir rm mv get put lot-create\n"
               "          lot-renew lot-terminate lot-query lot-list\n"
               "          acl-get acl-set acl-clear journal-stat stats ad\n"
               "          fault-set fault-list cluster-status replica-list\n"
               "          lot-replicas lot-pin tier-status recall migrate\n");
  return 2;
}

int fail(const nest::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.to_string().c_str());
  return 1;
}
int fail(const nest::Error& e) {
  std::fprintf(stderr, "error: %s\n", e.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nest;
  std::vector<std::string> args(argv + 1, argv + argc);
  if (args.size() < 3) return usage();

  const std::string host = args[0];
  const auto port = parse_int(args[1]);
  if (!port || *port <= 0 || *port > 65535) return usage();
  std::size_t i = 2;
  std::string user;
  std::string secret;
  while (i + 1 < args.size() && (args[i] == "-u" || args[i] == "-k")) {
    (args[i] == "-u" ? user : secret) = args[i + 1];
    i += 2;
  }
  if (i >= args.size()) return usage();
  const std::string cmd = args[i++];
  std::vector<std::string> rest(args.begin() + static_cast<long>(i),
                                args.end());

  auto client = client::ChirpClient::connect(
      host, static_cast<uint16_t>(*port), user, secret);
  if (!client.ok()) return fail(client.error());

  if (cmd == "ls" && rest.size() == 1) {
    auto names = client->list(rest[0]);
    if (!names.ok()) return fail(names.error());
    for (const auto& n : *names) std::printf("%s\n", n.c_str());
    return 0;
  }
  if (cmd == "stat" && rest.size() == 1) {
    auto st = client->stat(rest[0]);
    if (!st.ok()) return fail(st.error());
    std::printf("%s %lld %s\n", st->is_dir ? "dir" : "file",
                static_cast<long long>(st->size), st->owner.c_str());
    return 0;
  }
  if (cmd == "mkdir" && rest.size() == 1) {
    const auto s = client->mkdir(rest[0]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "rmdir" && rest.size() == 1) {
    const auto s = client->rmdir(rest[0]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "rm" && rest.size() == 1) {
    const auto s = client->unlink(rest[0]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "mv" && rest.size() == 2) {
    const auto s = client->rename(rest[0], rest[1]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "get" && rest.size() == 1) {
    auto data = client->get(rest[0]);
    if (!data.ok()) return fail(data.error());
    std::fwrite(data->data(), 1, data->size(), stdout);
    return 0;
  }
  if (cmd == "put" && rest.size() == 2) {
    std::ifstream in(rest[1], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "error: cannot read %s\n", rest[1].c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const auto s = client->put(rest[0], ss.str());
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "lot-create" && (rest.size() == 2 || rest.size() == 3)) {
    const auto bytes = parse_int(rest[0]);
    const auto secs = parse_int(rest[1]);
    if (!bytes || !secs) return usage();
    auto id = client->lot_create(*bytes, *secs,
                                 rest.size() == 3 && rest[2] == "group");
    if (!id.ok()) return fail(id.error());
    std::printf("%llu\n", static_cast<unsigned long long>(*id));
    return 0;
  }
  if (cmd == "lot-renew" && rest.size() == 2) {
    const auto id = parse_int(rest[0]);
    const auto secs = parse_int(rest[1]);
    if (!id || !secs) return usage();
    const auto s =
        client->lot_renew(static_cast<std::uint64_t>(*id), *secs);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "lot-terminate" && rest.size() == 1) {
    const auto id = parse_int(rest[0]);
    if (!id) return usage();
    const auto s = client->lot_terminate(static_cast<std::uint64_t>(*id));
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "lot-query" && rest.size() == 1) {
    const auto id = parse_int(rest[0]);
    if (!id) return usage();
    auto desc = client->lot_query(static_cast<std::uint64_t>(*id));
    if (!desc.ok()) return fail(desc.error());
    std::printf("%s\n", desc->c_str());
    return 0;
  }
  if (cmd == "lot-list" && rest.empty()) {
    auto lots = client->lot_list();
    if (!lots.ok()) return fail(lots.error());
    std::printf("%s", lots->c_str());
    return 0;
  }
  if (cmd == "stats" && rest.empty()) {
    auto json = client->stats();
    if (!json.ok()) return fail(json.error());
    std::printf("%s\n", json->c_str());
    return 0;
  }
  if (cmd == "journal-stat" && rest.empty()) {
    auto stat = client->journal_stat();
    if (!stat.ok()) return fail(stat.error());
    std::printf("%s\n", stat->c_str());
    return 0;
  }
  if (cmd == "acl-clear" && rest.size() == 2) {
    const auto s = client->acl_clear(rest[0], rest[1]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "acl-get" && rest.size() == 1) {
    auto entries = client->acl_get(rest[0]);
    if (!entries.ok()) return fail(entries.error());
    std::printf("%s", entries->c_str());
    return 0;
  }
  if (cmd == "acl-set" && rest.size() >= 2) {
    std::string entry;
    for (std::size_t k = 1; k < rest.size(); ++k) {
      if (k > 1) entry += " ";
      entry += rest[k];
    }
    const auto s = client->acl_set(rest[0], entry);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "fault-set" && rest.size() == 2) {
    const auto s = client->fault_set(rest[0], rest[1]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "fault-list" && rest.empty()) {
    auto points = client->fault_list();
    if (!points.ok()) return fail(points.error());
    std::printf("%s", points->c_str());
    return 0;
  }
  if (cmd == "lot-replicas" && rest.size() == 2) {
    const auto id = parse_int(rest[0]);
    const auto n = parse_int(rest[1]);
    if (!id || !n) return usage();
    const auto s =
        client->lot_set_replicas(static_cast<std::uint64_t>(*id), *n);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "lot-pin" && rest.size() == 2) {
    const auto id = parse_int(rest[0]);
    const auto pin = parse_int(rest[1]);
    if (!id || !pin) return usage();
    const auto s =
        client->lot_pin(static_cast<std::uint64_t>(*id), *pin != 0);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "tier-status" && rest.size() == 1) {
    auto tier = client->hsm_status(rest[0]);
    if (!tier.ok()) return fail(tier.error());
    std::printf("%s\n", tier->c_str());
    return 0;
  }
  if (cmd == "recall" && rest.size() == 1) {
    const auto s = client->hsm_recall(rest[0]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "migrate" && rest.size() == 1) {
    const auto s = client->hsm_migrate(rest[0]);
    return s.ok() ? 0 : fail(s);
  }
  if (cmd == "cluster-status" && rest.empty()) {
    auto status = client->cluster_status();
    if (!status.ok()) return fail(status.error());
    std::printf("%s", status->c_str());
    return 0;
  }
  if (cmd == "replica-list" && rest.size() <= 1) {
    auto replicas = client->replica_list(rest.empty() ? "" : rest[0]);
    if (!replicas.ok()) return fail(replicas.error());
    std::printf("%s", replicas->c_str());
    return 0;
  }
  if (cmd == "ad" && rest.empty()) {
    auto ad = client->query_ad();
    if (!ad.ok()) return fail(ad.error());
    std::printf("%s\n", ad->c_str());
    return 0;
  }
  return usage();
}
