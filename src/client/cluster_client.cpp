#include "client/cluster_client.h"

#include <algorithm>

#include "common/string_util.h"

namespace nest::client {

namespace {

// Pull "key=value" out of a status line; empty when absent.
std::string field(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  auto pos = line.find(needle);
  if (pos == std::string::npos) return {};
  pos += needle.size();
  const auto end = line.find(' ', pos);
  return line.substr(pos, end == std::string::npos ? end : end - pos);
}

}  // namespace

Result<std::string> ClusterClient::get(const std::string& path) {
  Error last{Errc::not_found, "no replica served " + path};
  auto candidates = ranked_candidates(path);
  // The ranked list names the *other* holders the answering node knows
  // about; the answering node itself (and any contact the locate missed)
  // is still a legitimate last resort when every listed replica fails —
  // e.g. the one listed replica died between the locate and the GET.
  for (const auto& c : contacts_) {
    const bool queued =
        std::any_of(candidates.begin(), candidates.end(),
                    [&](const Contact& q) { return q.name == c.name; });
    if (!queued) candidates.push_back(c);
  }
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& c = candidates[i];
    auto cli = ChirpClient::connect(c.host, c.port, user_, secret_);
    if (!cli.ok()) {
      note_failure(c.name);
      last = cli.error();
      continue;
    }
    std::optional<ChirpClient::Redirect> redirect;
    const Nanos t0 = clock_.now();
    auto data = cli->get(path, &redirect);
    if (data.ok() && redirect) {
      // The node lacks the file and named a better holder: try it next
      // (ahead of the rest of the ranking) unless it is already queued.
      const bool queued =
          std::any_of(candidates.begin() + i + 1, candidates.end(),
                      [&](const Contact& q) { return q.name == redirect->name; });
      if (!queued) {
        candidates.insert(
            candidates.begin() + i + 1,
            Contact{redirect->name, redirect->host, redirect->port});
      }
      last = Error{Errc::not_found, c.name + " redirected"};
      continue;
    }
    if (!data.ok()) {
      // Connection died mid-transfer or the node refused: demote and move
      // to the next replica.
      note_failure(c.name);
      last = data.error();
      continue;
    }
    note_success(c.name, static_cast<std::int64_t>(data->size()),
                 clock_.now() - t0);
    return data;
  }
  return last;
}

Result<std::string> ClusterClient::cluster_status() {
  Error last{Errc::connection_closed, "no contact reachable"};
  for (const auto& c : contacts_) {
    auto cli = ChirpClient::connect(c.host, c.port, user_, secret_);
    if (!cli.ok()) {
      last = cli.error();
      continue;
    }
    return cli->cluster_status();
  }
  return last;
}

Result<std::string> ClusterClient::replica_list(const std::string& path) {
  Error last{Errc::connection_closed, "no contact reachable"};
  for (const auto& c : contacts_) {
    auto cli = ChirpClient::connect(c.host, c.port, user_, secret_);
    if (!cli.ok()) {
      last = cli.error();
      continue;
    }
    return cli->replica_list(path);
  }
  return last;
}

double ClusterClient::measured_mbps(const std::string& name) const {
  auto it = ewma_mbps_.find(name);
  return it == ewma_mbps_.end() ? 0.0 : it->second;
}

std::vector<ClusterClient::Contact> ClusterClient::plan(
    const std::string& path) {
  return ranked_candidates(path);
}

std::vector<ClusterClient::Contact> ClusterClient::ranked_candidates(
    const std::string& path) {
  struct Scored {
    Contact contact;
    double cost = 0.0;
  };
  std::vector<Scored> scored;
  auto listing = replica_list(path);
  if (listing.ok()) {
    for (const auto& line : split(*listing, '\n')) {
      const std::string name = field(line, "name");
      const std::string addr = field(line, "addr");
      const auto colon = addr.rfind(':');
      if (name.empty() || colon == std::string::npos) continue;
      const auto port = parse_int(addr.substr(colon + 1));
      if (!port || *port <= 0 || *port > 65535) continue;
      double cost = 1.0;
      if (const auto s = field(line, "score"); !s.empty()) {
        try {
          cost = std::stod(s);
        } catch (...) {
          cost = 1.0;
        }
      }
      // Fold in this client's own history: a node we have measured fast
      // gets cheaper, one we have watched fail gets dearer — regardless
      // of what the server side advertises about itself.
      const double mine = measured_mbps(name);
      if (mine > 0.0) cost /= mine;
      scored.push_back(Scored{
          Contact{name, addr.substr(0, colon),
                  static_cast<std::uint16_t>(*port)},
          cost});
    }
  }
  if (scored.empty()) {
    // No node answered the locate (cold start or full partition): walk
    // the static contact list, best-measured first.
    for (const auto& c : contacts_)
      scored.push_back(Scored{c, 1.0 / std::max(1.0, measured_mbps(c.name))});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.cost < b.cost;
                   });
  std::vector<Contact> out;
  out.reserve(scored.size());
  for (auto& s : scored) out.push_back(std::move(s.contact));
  return out;
}

void ClusterClient::note_success(const std::string& name, std::int64_t bytes,
                                 Nanos elapsed) {
  const double secs = to_seconds(std::max<Nanos>(elapsed, 1));
  const double mbps =
      static_cast<double>(bytes) / (1024.0 * 1024.0) / secs;
  auto it = ewma_mbps_.find(name);
  if (it == ewma_mbps_.end()) {
    ewma_mbps_[name] = mbps;
  } else {
    it->second = alpha_ * mbps + (1.0 - alpha_) * it->second;
  }
}

void ClusterClient::note_failure(const std::string& name) {
  auto it = ewma_mbps_.find(name);
  if (it != ewma_mbps_.end()) it->second *= 0.5;
}

}  // namespace nest::client
