// KangarooMover: store-and-forward data movement in the style of the
// Kangaroo system (Thain et al., HPDC '01), which the paper's Section 6
// names as an alternative transport for moving data from site to site.
//
// The Kangaroo idea: an application's output is handed to a local spool
// and the call returns immediately; a background mover "hops" the data to
// the destination NeST reliably, retrying across failures. Jobs finish at
// CPU speed while the network catches up, and transient destination
// outages do not surface as job errors.
//
// This implementation spools in memory, pushes via Chirp, retries with
// exponential backoff, and preserves per-destination FIFO order.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"

namespace nest::client {

class KangarooMover {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;          // destination NeST chirp port
    std::string user;           // GSI subject ("" = anonymous)
    std::string secret;
    int max_attempts = 20;      // per file before giving up
    Nanos initial_backoff = 50 * kMillisecond;
    Nanos max_backoff = 2 * kSecond;
    std::int64_t spool_limit = 256LL * 1024 * 1024;  // max spooled bytes
  };

  explicit KangarooMover(Options options);
  // Destruction abandons anything still spooled; call flush() first when
  // delivery must be guaranteed.
  ~KangarooMover();
  KangarooMover(const KangarooMover&) = delete;
  KangarooMover& operator=(const KangarooMover&) = delete;

  // Spool a file for delivery; returns as soon as the bytes are queued
  // (the Kangaroo property). Fails only when the spool is full.
  NEST_NODISCARD Status put(const std::string& remote_path, std::string data);

  // Block until every spooled file has been delivered (or permanently
  // failed). Returns the first permanent failure, if any.
  NEST_NODISCARD Status flush();

  struct Stats {
    std::int64_t files_delivered = 0;
    std::int64_t bytes_delivered = 0;
    std::int64_t retries = 0;
    std::int64_t permanent_failures = 0;
    std::int64_t spooled_bytes = 0;  // currently queued
  };
  Stats stats() const;

 private:
  struct SpoolEntry {
    std::string remote_path;
    std::string data;
    int attempts = 0;
  };

  void run();
  // One delivery attempt for the queue head; true on success.
  bool try_deliver(const SpoolEntry& entry);

  Options options_;
  mutable Mutex mu_{lockrank::Rank::kangaroo_spool, "kangaroo.mu"};
  CondVar cv_;
  std::deque<SpoolEntry> queue_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
  Status first_failure_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread mover_;
};

}  // namespace nest::client
