// ClusterClient: replica-selecting Chirp client for a federated NeST.
//
// Given the contact list of a cluster, a GET first asks a reachable node
// for its ranked replica list (server side of the Globus selection:
// advertised load + tail latency), folds in this client's own measured
// throughput history (an EWMA per node — the client-observed half of the
// Globus result), and then walks the candidates best-first. A dead or
// partitioned replica costs one failed attempt and a demoted EWMA; the
// next candidate serves the bytes. Redirects ("350 redirect ...") from a
// node that lacks the file are followed the same way.
//
// Single-threaded by design, like ChirpClient.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "client/chirp_client.h"
#include "common/clock.h"
#include "common/result.h"

namespace nest::client {

class ClusterClient {
 public:
  struct Contact {
    std::string name;
    std::string host;
    std::uint16_t port = 0;
  };

  // `clock` times transfers for the throughput EWMA (tests pass a
  // ManualClock to keep scoring deterministic).
  ClusterClient(Clock& clock, std::vector<Contact> contacts,
                std::string user = {}, std::string secret = {},
                double ewma_alpha = 0.3)
      : clock_(clock),
        contacts_(std::move(contacts)),
        user_(std::move(user)),
        secret_(std::move(secret)),
        alpha_(ewma_alpha) {}

  // Fetch `path` from the best replica, failing over down the ranking.
  NEST_NODISCARD Result<std::string> get(const std::string& path);

  // Status surfaces, served by the first reachable contact.
  NEST_NODISCARD Result<std::string> cluster_status();
  NEST_NODISCARD Result<std::string> replica_list(const std::string& path = {});

  double measured_mbps(const std::string& name) const;
  // Candidate order the next get() would try (exposed for tests).
  std::vector<Contact> plan(const std::string& path);

 private:
  // Ranked candidates: the server list re-scored with local EWMAs, or the
  // raw contact list when no node answers the locate.
  std::vector<Contact> ranked_candidates(const std::string& path);
  void note_success(const std::string& name, std::int64_t bytes,
                    Nanos elapsed);
  void note_failure(const std::string& name);

  Clock& clock_;
  std::vector<Contact> contacts_;
  std::string user_;
  std::string secret_;
  const double alpha_;
  std::map<std::string, double> ewma_mbps_;
};

}  // namespace nest::client
