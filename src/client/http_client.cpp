#include "client/http_client.h"

#include <sstream>

#include "common/string_util.h"

namespace nest::client {

Result<HttpClient::Response> HttpClient::request(
    const std::string& method, const std::string& path,
    const std::string& body, bool want_body,
    const std::string& extra_headers) {
  auto stream = net::TcpStream::connect(host_, port_);
  if (!stream.ok()) return stream.error();

  std::ostringstream os;
  os << method << " " << path << " HTTP/1.0\r\n";
  os << "Host: " << host_ << "\r\n";
  if (!body.empty() || method == "PUT") {
    os << "Content-Length: " << body.size() << "\r\n";
  }
  os << extra_headers;
  os << "\r\n";
  if (auto s = stream->write_all(os.str()); !s.ok()) return Error{s.error()};
  if (!body.empty()) {
    if (auto s = stream->write_all(body); !s.ok()) return Error{s.error()};
  }

  auto status_line = stream->read_line();
  if (!status_line.ok()) return status_line.error();
  const auto words = split_ws(*status_line);
  if (words.size() < 2)
    return Error{Errc::protocol_error, "bad status line"};
  Response resp;
  resp.status = static_cast<int>(parse_int(words[1]).value_or(0));

  while (true) {
    auto header = stream->read_line();
    if (!header.ok()) return header.error();
    if (header->empty()) break;
    if (starts_with_icase(*header, "content-length:")) {
      resp.content_length =
          parse_int(header->substr(header->find(':') + 1)).value_or(-1);
    }
  }

  if (want_body && resp.content_length > 0) {
    resp.body.resize(static_cast<std::size_t>(resp.content_length));
    if (auto s = stream->read_exact(
            std::span(resp.body.data(), resp.body.size()));
        !s.ok()) {
      return Error{s.error()};
    }
  }
  return resp;
}

Result<HttpClient::Response> HttpClient::get(const std::string& path) {
  return request("GET", path, {}, /*want_body=*/true);
}

Result<HttpClient::Response> HttpClient::get_range(const std::string& path,
                                                   std::int64_t first,
                                                   std::int64_t last) {
  std::string header = "Range: bytes=" + std::to_string(first) + "-";
  if (last >= 0) header += std::to_string(last);
  header += "\r\n";
  return request("GET", path, {}, /*want_body=*/true, header);
}

Result<HttpClient::Response> HttpClient::head(const std::string& path) {
  return request("HEAD", path, {}, /*want_body=*/false);
}

Result<HttpClient::Response> HttpClient::put(const std::string& path,
                                             const std::string& body) {
  return request("PUT", path, body, /*want_body=*/false);
}

Result<HttpClient::Response> HttpClient::del(const std::string& path) {
  return request("DELETE", path, {}, /*want_body=*/false);
}

}  // namespace nest::client
