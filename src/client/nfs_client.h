// NfsClient: NFSv2 client over our ONC-RPC/XDR UDP transport — how the
// paper's compute jobs access NeST "via a local file system protocol"
// (Figure 2, step 4) without modification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/socket.h"
#include "protocol/nfs_handler.h"

namespace nest::client {

class NfsClient {
 public:
  using Fh = std::vector<char>;  // 32-byte file handle

  NEST_NODISCARD
  static Result<NfsClient> connect(const std::string& host, uint16_t port);

  // MOUNT protocol: obtain the root handle for an export.
  NEST_NODISCARD Result<Fh> mount(const std::string& dirpath);

  struct Attr {
    bool is_dir = false;
    std::int64_t size = 0;
  };
  NEST_NODISCARD Result<Attr> getattr(const Fh& fh);
  NEST_NODISCARD
  Result<std::pair<Fh, Attr>> lookup(const Fh& dir, const std::string& name);
  NEST_NODISCARD
  Result<std::string> read(const Fh& fh, std::int64_t offset,
                           std::int64_t count);
  NEST_NODISCARD
  Status write(const Fh& fh, std::int64_t offset, const std::string& data);
  NEST_NODISCARD Result<Fh> create(const Fh& dir, const std::string& name);
  NEST_NODISCARD Status remove(const Fh& dir, const std::string& name);
  NEST_NODISCARD
  Status rename(const Fh& from_dir, const std::string& from_name,
                const Fh& to_dir, const std::string& to_name);
  NEST_NODISCARD Result<Fh> mkdir(const Fh& dir, const std::string& name);
  NEST_NODISCARD Status rmdir(const Fh& dir, const std::string& name);
  NEST_NODISCARD Result<std::vector<std::string>> readdir(const Fh& dir);

  // Whole-file convenience built from 8 KB block RPCs (this is exactly why
  // NFS issues many more requests than HTTP for the same file — the
  // byte-based stride motivation in paper Section 4.2).
  NEST_NODISCARD
  Result<std::string> read_file(const Fh& dir, const std::string& name);
  NEST_NODISCARD
  Status write_file(const Fh& dir, const std::string& name,
                    const std::string& data);

 private:
  NfsClient(net::UdpSocket sock, std::string host, uint16_t port)
      : sock_(std::move(sock)), host_(std::move(host)), port_(port) {}

  // One RPC round trip; returns a decoder positioned at the results.
  NEST_NODISCARD
  Result<std::vector<char>> call(std::uint32_t prog, std::uint32_t vers,
                                 std::uint32_t proc,
                                 const protocol::xdr::Encoder& args);
  NEST_NODISCARD static Status nfs_status(std::uint32_t st);

  net::UdpSocket sock_;
  std::string host_;
  uint16_t port_;
  std::uint32_t next_xid_ = 1;
};

}  // namespace nest::client
