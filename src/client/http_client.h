// Minimal HTTP/1.0 client for the appliance's HTTP endpoint.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "net/socket.h"

namespace nest::client {

class HttpClient {
 public:
  HttpClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  struct Response {
    int status = 0;
    std::string body;
    std::int64_t content_length = -1;
  };

  NEST_NODISCARD Result<Response> get(const std::string& path);
  // Range request: bytes [first, last] inclusive (last = -1: to EOF).
  NEST_NODISCARD
  Result<Response> get_range(const std::string& path, std::int64_t first,
                             std::int64_t last);
  NEST_NODISCARD Result<Response> head(const std::string& path);
  NEST_NODISCARD
  Result<Response> put(const std::string& path, const std::string& body);
  NEST_NODISCARD Result<Response> del(const std::string& path);

 private:
  NEST_NODISCARD
  Result<Response> request(const std::string& method, const std::string& path,
                           const std::string& body, bool want_body,
                           const std::string& extra_headers = {});

  std::string host_;
  uint16_t port_;
};

}  // namespace nest::client
