// FTP / GridFTP client. GridFTP adds the simulated-GSI handshake, MODE E,
// and helpers for steering third-party transfers (paper Figure 2, step 3):
// the client holds control connections to two servers and wires server A's
// PASV data port to server B via PORT.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "net/socket.h"

namespace nest::client {

class FtpClient {
 public:
  struct GsiIdentity {
    std::string subject;
    std::string secret;
  };

  // Plain FTP: anonymous login. GridFTP: pass a GSI identity.
  NEST_NODISCARD
  static Result<FtpClient> connect(const std::string& host, uint16_t port,
                                   std::optional<GsiIdentity> gsi = {});

  NEST_NODISCARD Status cwd(const std::string& path);
  NEST_NODISCARD Result<std::string> pwd();
  NEST_NODISCARD Status mkd(const std::string& path);
  NEST_NODISCARD Status rmd(const std::string& path);
  NEST_NODISCARD Status dele(const std::string& path);
  NEST_NODISCARD Result<std::int64_t> size(const std::string& path);
  NEST_NODISCARD Result<std::string> list(const std::string& path = {});

  NEST_NODISCARD Result<std::string> retr(const std::string& path);
  // Resume: fetch [offset, EOF) via REST + RETR.
  NEST_NODISCARD
  Result<std::string> retr_from(const std::string& path,
                                std::int64_t offset);
  NEST_NODISCARD Status stor(const std::string& path, const std::string& data);

  // GridFTP extended block mode for subsequent transfers.
  NEST_NODISCARD Status set_mode_e(bool on);

  // --- third-party plumbing ---
  // Ask this server to listen; returns (ip, port) from the 227 reply.
  NEST_NODISCARD Result<std::pair<std::string, uint16_t>> pasv();
  // Tell this server to connect to addr for its next data transfer.
  NEST_NODISCARD Status port(const std::string& ip, uint16_t p);
  // Issue RETR/STOR without opening a local data connection; returns after
  // the final transfer reply.
  NEST_NODISCARD Status retr_remote(const std::string& path);
  NEST_NODISCARD Status stor_remote(const std::string& path);
  // Fire the command and return immediately after the preliminary 150
  // (used to overlap both sides of a third-party transfer).
  NEST_NODISCARD Status begin(const std::string& verb, const std::string& path);
  NEST_NODISCARD
  Status finish();  // wait for the 226/4xx completion reply

  NEST_NODISCARD Status quit();

 private:
  explicit FtpClient(net::TcpStream stream) : control_(std::move(stream)) {}

  struct Response {
    int code = 0;
    std::string text;
  };
  NEST_NODISCARD Result<Response> command(const std::string& line);
  NEST_NODISCARD Result<Response> read_response();

  net::TcpStream control_;
  bool mode_e_ = false;
};

}  // namespace nest::client
