#include "client/nfs_client.h"

#include <cstring>

namespace nest::client {

namespace xdr = protocol::xdr;
using protocol::kFhSize;
using protocol::kMountProg;
using protocol::kMountVers;
using protocol::kNfsBlockSize;
using protocol::kNfsProg;
using protocol::kNfsVers;

Result<NfsClient> NfsClient::connect(const std::string& host, uint16_t port) {
  auto sock = net::UdpSocket::bind(0);
  if (!sock.ok()) return sock.error();
  if (auto s = sock->set_read_timeout(5000); !s.ok()) return Error{s.error()};
  return NfsClient(std::move(sock.value()), host, port);
}

Status NfsClient::nfs_status(std::uint32_t st) {
  using protocol::NfsStat;
  switch (static_cast<NfsStat>(st)) {
    case protocol::NFS_OK: return {};
    case protocol::NFSERR_NOENT: return Status{Errc::not_found, "nfs"};
    case protocol::NFSERR_ACCES: return Status{Errc::permission_denied, "nfs"};
    case protocol::NFSERR_EXIST: return Status{Errc::exists, "nfs"};
    case protocol::NFSERR_NOTDIR: return Status{Errc::not_dir, "nfs"};
    case protocol::NFSERR_ISDIR: return Status{Errc::is_dir, "nfs"};
    case protocol::NFSERR_NOSPC: return Status{Errc::no_space, "nfs"};
    case protocol::NFSERR_NOTEMPTY: return Status{Errc::busy, "nfs"};
    case protocol::NFSERR_JUKEBOX: return Status{Errc::staging, "nfs"};
    case protocol::NFSERR_STALE: return Status{Errc::not_found, "stale fh"};
    default: return Status{Errc::io_error, "nfs error " + std::to_string(st)};
  }
}

Result<std::vector<char>> NfsClient::call(std::uint32_t prog,
                                          std::uint32_t vers,
                                          std::uint32_t proc,
                                          const xdr::Encoder& args) {
  const std::uint32_t xid = next_xid_++;
  xdr::Encoder msg;
  xdr::encode_call(msg, xid, prog, vers, proc);
  msg.put_fixed(args.span());
  if (auto s = sock_.send_to(msg.span(), host_, port_); !s.ok())
    return Error{s.error()};

  std::vector<char> buf(72 * 1024);
  std::string from_ip;
  uint16_t from_port = 0;
  auto n = sock_.recv_from(std::span(buf.data(), buf.size()), from_ip,
                           from_port);
  if (!n.ok()) return n.error();
  buf.resize(static_cast<std::size_t>(*n));
  xdr::Decoder dec(std::span<const char>(buf.data(), buf.size()));
  if (auto s = xdr::decode_accepted_reply(dec, xid); !s.ok())
    return Error{s.error()};
  // Copy the remaining result bytes.
  std::vector<char> results(buf.end() - static_cast<std::ptrdiff_t>(
                                            dec.remaining()),
                            buf.end());
  return results;
}

namespace {

// Skip a fattr (17 u32 fields in NFSv2) and extract type + size.
Result<NfsClient::Attr> decode_fattr(xdr::Decoder& dec) {
  auto type = dec.get_u32();
  if (!type.ok()) return type.error();
  NfsClient::Attr attr;
  attr.is_dir = *type == 2;
  // mode, nlink, uid, gid
  for (int i = 0; i < 4; ++i) {
    if (auto v = dec.get_u32(); !v.ok()) return v.error();
  }
  auto size = dec.get_u32();
  if (!size.ok()) return size.error();
  attr.size = *size;
  // blocksize, rdev, blocks, fsid, fileid, 3 x (sec, usec)
  for (int i = 0; i < 11; ++i) {
    if (auto v = dec.get_u32(); !v.ok()) return v.error();
  }
  return attr;
}

}  // namespace

Result<NfsClient::Fh> NfsClient::mount(const std::string& dirpath) {
  xdr::Encoder args;
  args.put_string(dirpath);
  auto results = call(kMountProg, kMountVers, protocol::MOUNTPROC_MNT, args);
  if (!results.ok()) return results.error();
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return st.error();
  if (auto s = nfs_status(*st); !s.ok()) return Error{s.error()};
  auto fh = dec.get_fixed(kFhSize);
  if (!fh.ok()) return fh.error();
  return *fh;
}

Result<NfsClient::Attr> NfsClient::getattr(const Fh& fh) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(fh.data(), fh.size()));
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_GETATTR, args);
  if (!results.ok()) return results.error();
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return st.error();
  if (auto s = nfs_status(*st); !s.ok()) return Error{s.error()};
  return decode_fattr(dec);
}

Result<std::pair<NfsClient::Fh, NfsClient::Attr>> NfsClient::lookup(
    const Fh& dir, const std::string& name) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(dir.data(), dir.size()));
  args.put_string(name);
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_LOOKUP, args);
  if (!results.ok()) return results.error();
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return st.error();
  if (auto s = nfs_status(*st); !s.ok()) return Error{s.error()};
  auto fh = dec.get_fixed(kFhSize);
  if (!fh.ok()) return fh.error();
  auto attr = decode_fattr(dec);
  if (!attr.ok()) return attr.error();
  return std::make_pair(*fh, *attr);
}

Result<std::string> NfsClient::read(const Fh& fh, std::int64_t offset,
                                    std::int64_t count) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(fh.data(), fh.size()));
  args.put_u32(static_cast<std::uint32_t>(offset));
  args.put_u32(static_cast<std::uint32_t>(count));
  args.put_u32(0);  // totalcount
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_READ, args);
  if (!results.ok()) return results.error();
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return st.error();
  if (auto s = nfs_status(*st); !s.ok()) return Error{s.error()};
  auto attr = decode_fattr(dec);
  if (!attr.ok()) return attr.error();
  auto data = dec.get_opaque(static_cast<std::size_t>(kNfsBlockSize));
  if (!data.ok()) return data.error();
  return std::string(data->begin(), data->end());
}

Status NfsClient::write(const Fh& fh, std::int64_t offset,
                        const std::string& data) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(fh.data(), fh.size()));
  args.put_u32(0);  // beginoffset
  args.put_u32(static_cast<std::uint32_t>(offset));
  args.put_u32(0);  // totalcount
  args.put_opaque(std::span<const char>(data.data(), data.size()));
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_WRITE, args);
  if (!results.ok()) return Status{results.error()};
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return Status{st.error()};
  return nfs_status(*st);
}

Result<NfsClient::Fh> NfsClient::create(const Fh& dir,
                                        const std::string& name) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(dir.data(), dir.size()));
  args.put_string(name);
  // sattr: mode..mtime, all -1 (unset)
  for (int i = 0; i < 8; ++i) args.put_u32(0xffffffffu);
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_CREATE, args);
  if (!results.ok()) return results.error();
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return st.error();
  if (auto s = nfs_status(*st); !s.ok()) return Error{s.error()};
  auto fh = dec.get_fixed(kFhSize);
  if (!fh.ok()) return fh.error();
  return *fh;
}

Status NfsClient::remove(const Fh& dir, const std::string& name) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(dir.data(), dir.size()));
  args.put_string(name);
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_REMOVE, args);
  if (!results.ok()) return Status{results.error()};
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return Status{st.error()};
  return nfs_status(*st);
}

Status NfsClient::rename(const Fh& from_dir, const std::string& from_name,
                         const Fh& to_dir, const std::string& to_name) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(from_dir.data(), from_dir.size()));
  args.put_string(from_name);
  args.put_fixed(std::span<const char>(to_dir.data(), to_dir.size()));
  args.put_string(to_name);
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_RENAME, args);
  if (!results.ok()) return Status{results.error()};
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return Status{st.error()};
  return nfs_status(*st);
}

Result<NfsClient::Fh> NfsClient::mkdir(const Fh& dir,
                                       const std::string& name) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(dir.data(), dir.size()));
  args.put_string(name);
  for (int i = 0; i < 8; ++i) args.put_u32(0xffffffffu);
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_MKDIR, args);
  if (!results.ok()) return results.error();
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return st.error();
  if (auto s = nfs_status(*st); !s.ok()) return Error{s.error()};
  auto fh = dec.get_fixed(kFhSize);
  if (!fh.ok()) return fh.error();
  return *fh;
}

Status NfsClient::rmdir(const Fh& dir, const std::string& name) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(dir.data(), dir.size()));
  args.put_string(name);
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_RMDIR, args);
  if (!results.ok()) return Status{results.error()};
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return Status{st.error()};
  return nfs_status(*st);
}

Result<std::vector<std::string>> NfsClient::readdir(const Fh& dir) {
  xdr::Encoder args;
  args.put_fixed(std::span<const char>(dir.data(), dir.size()));
  args.put_u32(0);     // cookie
  args.put_u32(8192);  // count
  auto results = call(kNfsProg, kNfsVers, protocol::NFSPROC_READDIR, args);
  if (!results.ok()) return results.error();
  xdr::Decoder dec(std::span<const char>(results->data(), results->size()));
  auto st = dec.get_u32();
  if (!st.ok()) return st.error();
  if (auto s = nfs_status(*st); !s.ok()) return Error{s.error()};
  std::vector<std::string> names;
  while (true) {
    auto more = dec.get_bool();
    if (!more.ok()) return more.error();
    if (!*more) break;
    if (auto id = dec.get_u32(); !id.ok()) return id.error();
    auto name = dec.get_string(255);
    if (!name.ok()) return name.error();
    if (auto cookie = dec.get_u32(); !cookie.ok()) return cookie.error();
    names.push_back(*name);
  }
  return names;
}

Result<std::string> NfsClient::read_file(const Fh& dir,
                                         const std::string& name) {
  auto looked = lookup(dir, name);
  if (!looked.ok()) return looked.error();
  const auto& [fh, attr] = *looked;
  std::string out;
  out.reserve(static_cast<std::size_t>(attr.size));
  std::int64_t off = 0;
  while (off < attr.size) {
    auto chunk = read(fh, off, kNfsBlockSize);
    if (!chunk.ok()) return chunk.error();
    if (chunk->empty()) break;
    out += *chunk;
    off += static_cast<std::int64_t>(chunk->size());
  }
  return out;
}

Status NfsClient::write_file(const Fh& dir, const std::string& name,
                             const std::string& data) {
  auto fh = create(dir, name);
  if (!fh.ok()) return Status{fh.error()};
  std::int64_t off = 0;
  while (off < static_cast<std::int64_t>(data.size())) {
    const auto len = std::min<std::int64_t>(
        kNfsBlockSize, static_cast<std::int64_t>(data.size()) - off);
    if (auto s = write(*fh, off,
                       data.substr(static_cast<std::size_t>(off),
                                   static_cast<std::size_t>(len)));
        !s.ok()) {
      return s;
    }
    off += len;
  }
  return {};
}

}  // namespace nest::client
