// ChirpClient: client for NeST's native protocol — the only protocol with
// lot management (paper Section 5), so Grid tooling uses it for space
// reservations even when data moves via other protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "net/socket.h"

namespace nest::client {

class ChirpClient {
 public:
  // Connect and authenticate. Empty user = anonymous.
  NEST_NODISCARD
  static Result<ChirpClient> connect(const std::string& host, uint16_t port,
                                     const std::string& user = {},
                                     const std::string& secret = {});

  NEST_NODISCARD Status mkdir(const std::string& path);
  NEST_NODISCARD Status rmdir(const std::string& path);
  NEST_NODISCARD Status unlink(const std::string& path);
  NEST_NODISCARD Status rename(const std::string& from, const std::string& to);

  struct Stat {
    bool is_dir = false;
    std::int64_t size = 0;
    std::string owner;
  };
  NEST_NODISCARD Result<Stat> stat(const std::string& path);
  NEST_NODISCARD Result<std::vector<std::string>> list(const std::string& path);

  NEST_NODISCARD Result<std::string> get(const std::string& path);
  // GET that surfaces a cluster redirect ("350 redirect <name> <host>
  // <port>") through `redirect` instead of failing: when it comes back
  // engaged the server does not hold the file and points at the replica
  // it ranks best. Pass null to treat redirects as errors.
  struct Redirect {
    std::string name;
    std::string host;
    std::uint16_t port = 0;
  };
  NEST_NODISCARD
  Result<std::string> get(const std::string& path,
                          std::optional<Redirect>* redirect);
  NEST_NODISCARD Status put(const std::string& path, const std::string& data);

  // Three-party transfer: ask this server to push its file to another
  // NeST (the data never flows through this client).
  NEST_NODISCARD
  Status third_put(const std::string& path, const std::string& host,
                   uint16_t port, const std::string& remote_path);

  // Lot management.
  NEST_NODISCARD
  Result<std::uint64_t> lot_create(std::int64_t bytes, std::int64_t seconds,
                                   bool group = false);
  NEST_NODISCARD Status lot_renew(std::uint64_t id, std::int64_t seconds);
  NEST_NODISCARD Status lot_terminate(std::uint64_t id);
  NEST_NODISCARD Result<std::string> lot_query(std::uint64_t id);
  // One line per visible lot (all lots for the superuser, own otherwise).
  NEST_NODISCARD Result<std::string> lot_list();
  // Per-lot replication policy (cluster federation); 0 = cluster default.
  NEST_NODISCARD
  Status lot_set_replicas(std::uint64_t id, std::int64_t replicas);
  // Pin the lot's files against cold-tier migration (owner/superuser).
  NEST_NODISCARD Status lot_pin(std::uint64_t id, bool pinned);

  // Hierarchical storage: "hot"/"cold"/"migrating"/"recalling" per file,
  // synchronous recall (blocks until the file is hot again; joins an
  // in-flight recall if one exists), explicit migrate.
  NEST_NODISCARD Result<std::string> hsm_status(const std::string& path);
  NEST_NODISCARD Status hsm_recall(const std::string& path);
  NEST_NODISCARD Status hsm_migrate(const std::string& path);

  // Cluster federation status: one "self ..." line plus one "peer ..."
  // line per configured peer (role, liveness, acked LSN lag, score).
  NEST_NODISCARD Result<std::string> cluster_status();
  // Ranked replica candidates, best first (optionally for one path).
  NEST_NODISCARD Result<std::string> replica_list(const std::string& path = {});

  // ACL management (entry is a ClassAd in text form).
  NEST_NODISCARD
  Status acl_set(const std::string& dir, const std::string& entry);
  // Remove a principal's entries (e.g. "user:alice") from a directory ACL.
  NEST_NODISCARD
  Status acl_clear(const std::string& dir, const std::string& principal);
  NEST_NODISCARD Result<std::string> acl_get(const std::string& dir);

  // The appliance's resource ClassAd.
  NEST_NODISCARD Result<std::string> query_ad();

  // Metadata journal statistics line (admin; fails if nestd runs without
  // a journal).
  NEST_NODISCARD Result<std::string> journal_stat();

  // Live appliance statistics as a JSON document (request latency
  // histograms, throughput, load, storage and journal state).
  NEST_NODISCARD Result<std::string> stats();

  // Failpoint drills (superuser). Spec grammar: docs/fault-injection.md;
  // "off" disarms. fault_list returns one "<name> <spec> evals=N trips=N"
  // line per registered point.
  NEST_NODISCARD
  Status fault_set(const std::string& point, const std::string& spec);
  NEST_NODISCARD Result<std::string> fault_list();

  // Receive timeout on the control connection (0 disables); lets chaos
  // harnesses bound how long any one op may wedge.
  NEST_NODISCARD
  Status set_read_timeout(int millis) { return stream_.set_read_timeout(millis); }

  NEST_NODISCARD Status quit();

 private:
  explicit ChirpClient(net::TcpStream stream) : stream_(std::move(stream)) {}

  struct Response {
    int code = 0;
    std::string text;
  };
  NEST_NODISCARD Result<Response> command(const std::string& line);
  NEST_NODISCARD Result<std::string> read_payload(const Response& r);
  NEST_NODISCARD static Status to_status(const Response& r);

  net::TcpStream stream_;
};

}  // namespace nest::client
