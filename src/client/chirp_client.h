// ChirpClient: client for NeST's native protocol — the only protocol with
// lot management (paper Section 5), so Grid tooling uses it for space
// reservations even when data moves via other protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "net/socket.h"

namespace nest::client {

class ChirpClient {
 public:
  // Connect and authenticate. Empty user = anonymous.
  static Result<ChirpClient> connect(const std::string& host, uint16_t port,
                                     const std::string& user = {},
                                     const std::string& secret = {});

  Status mkdir(const std::string& path);
  Status rmdir(const std::string& path);
  Status unlink(const std::string& path);
  Status rename(const std::string& from, const std::string& to);

  struct Stat {
    bool is_dir = false;
    std::int64_t size = 0;
    std::string owner;
  };
  Result<Stat> stat(const std::string& path);
  Result<std::vector<std::string>> list(const std::string& path);

  Result<std::string> get(const std::string& path);
  // GET that surfaces a cluster redirect ("350 redirect <name> <host>
  // <port>") through `redirect` instead of failing: when it comes back
  // engaged the server does not hold the file and points at the replica
  // it ranks best. Pass null to treat redirects as errors.
  struct Redirect {
    std::string name;
    std::string host;
    std::uint16_t port = 0;
  };
  Result<std::string> get(const std::string& path,
                          std::optional<Redirect>* redirect);
  Status put(const std::string& path, const std::string& data);

  // Three-party transfer: ask this server to push its file to another
  // NeST (the data never flows through this client).
  Status third_put(const std::string& path, const std::string& host,
                   uint16_t port, const std::string& remote_path);

  // Lot management.
  Result<std::uint64_t> lot_create(std::int64_t bytes, std::int64_t seconds,
                                   bool group = false);
  Status lot_renew(std::uint64_t id, std::int64_t seconds);
  Status lot_terminate(std::uint64_t id);
  Result<std::string> lot_query(std::uint64_t id);
  // One line per visible lot (all lots for the superuser, own otherwise).
  Result<std::string> lot_list();
  // Per-lot replication policy (cluster federation); 0 = cluster default.
  Status lot_set_replicas(std::uint64_t id, std::int64_t replicas);
  // Pin the lot's files against cold-tier migration (owner/superuser).
  Status lot_pin(std::uint64_t id, bool pinned);

  // Hierarchical storage: "hot"/"cold"/"migrating"/"recalling" per file,
  // synchronous recall (blocks until the file is hot again; joins an
  // in-flight recall if one exists), explicit migrate.
  Result<std::string> hsm_status(const std::string& path);
  Status hsm_recall(const std::string& path);
  Status hsm_migrate(const std::string& path);

  // Cluster federation status: one "self ..." line plus one "peer ..."
  // line per configured peer (role, liveness, acked LSN lag, score).
  Result<std::string> cluster_status();
  // Ranked replica candidates, best first (optionally for one path).
  Result<std::string> replica_list(const std::string& path = {});

  // ACL management (entry is a ClassAd in text form).
  Status acl_set(const std::string& dir, const std::string& entry);
  // Remove a principal's entries (e.g. "user:alice") from a directory ACL.
  Status acl_clear(const std::string& dir, const std::string& principal);
  Result<std::string> acl_get(const std::string& dir);

  // The appliance's resource ClassAd.
  Result<std::string> query_ad();

  // Metadata journal statistics line (admin; fails if nestd runs without
  // a journal).
  Result<std::string> journal_stat();

  // Live appliance statistics as a JSON document (request latency
  // histograms, throughput, load, storage and journal state).
  Result<std::string> stats();

  // Failpoint drills (superuser). Spec grammar: docs/fault-injection.md;
  // "off" disarms. fault_list returns one "<name> <spec> evals=N trips=N"
  // line per registered point.
  Status fault_set(const std::string& point, const std::string& spec);
  Result<std::string> fault_list();

  // Receive timeout on the control connection (0 disables); lets chaos
  // harnesses bound how long any one op may wedge.
  Status set_read_timeout(int millis) { return stream_.set_read_timeout(millis); }

  Status quit();

 private:
  explicit ChirpClient(net::TcpStream stream) : stream_(std::move(stream)) {}

  struct Response {
    int code = 0;
    std::string text;
  };
  Result<Response> command(const std::string& line);
  Result<std::string> read_payload(const Response& r);
  static Status to_status(const Response& r);

  net::TcpStream stream_;
};

}  // namespace nest::client
