#include "client/ftp_client.h"

#include <sstream>

#include "common/string_util.h"
#include "protocol/ftp_handler.h"
#include "protocol/gsi.h"

namespace nest::client {

namespace {

Errc ftp_code_to_errc(int code) {
  switch (code) {
    case 550: return Errc::not_found;
    case 530: case 535: return Errc::permission_denied;
    case 552: return Errc::no_space;
    case 553: return Errc::exists;
    case 501: case 504: return Errc::invalid_argument;
    case 425: case 426: return Errc::io_error;
    case 450: return Errc::busy;
    default: return Errc::protocol_error;
  }
}

}  // namespace

Result<FtpClient::Response> FtpClient::read_response() {
  // Multi-line responses ("211-...") run until the terminal "NNN " line.
  while (true) {
    auto line = control_.read_line();
    if (!line.ok()) return line.error();
    if (line->size() >= 4 && std::isdigit(static_cast<unsigned char>((*line)[0])) &&
        std::isdigit(static_cast<unsigned char>((*line)[1])) &&
        std::isdigit(static_cast<unsigned char>((*line)[2])) &&
        (*line)[3] == ' ') {
      Response r;
      r.code = static_cast<int>(parse_int(line->substr(0, 3)).value_or(0));
      r.text = line->substr(4);
      return r;
    }
    // continuation line: keep reading
  }
}

Result<FtpClient::Response> FtpClient::command(const std::string& line) {
  if (auto s = control_.write_all(line + "\r\n"); !s.ok())
    return Error{s.error()};
  return read_response();
}

Result<FtpClient> FtpClient::connect(const std::string& host, uint16_t port,
                                     std::optional<GsiIdentity> gsi) {
  auto stream = net::TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  FtpClient c(std::move(stream.value()));
  auto greeting = c.read_response();
  if (!greeting.ok()) return greeting.error();
  if (greeting->code != 220)
    return Error{Errc::protocol_error, greeting->text};

  if (gsi) {
    auto challenge = c.command("AUTH GSI");
    if (!challenge.ok()) return challenge.error();
    if (challenge->code != 334)
      return Error{Errc::not_authenticated, challenge->text};
    auto done = c.command(
        "ADAT " + gsi->subject + " " +
        protocol::GsiRegistry::respond(gsi->secret, challenge->text));
    if (!done.ok()) return done.error();
    if (done->code != 235)
      return Error{Errc::not_authenticated, done->text};
  } else {
    auto user = c.command("USER anonymous");
    if (!user.ok()) return user.error();
    if (user->code != 331 && user->code != 230)
      return Error{Errc::not_authenticated, user->text};
    if (user->code == 331) {
      auto pass = c.command("PASS nest@");
      if (!pass.ok()) return pass.error();
      if (pass->code != 230)
        return Error{Errc::not_authenticated, pass->text};
    }
  }
  return c;
}

Status FtpClient::cwd(const std::string& path) {
  auto r = command("CWD " + path);
  if (!r.ok()) return Status{r.error()};
  return r->code == 250 ? Status{} : Status{ftp_code_to_errc(r->code), r->text};
}

Result<std::string> FtpClient::pwd() {
  auto r = command("PWD");
  if (!r.ok()) return r.error();
  if (r->code != 257) return Error{ftp_code_to_errc(r->code), r->text};
  const auto first = r->text.find('"');
  const auto last = r->text.rfind('"');
  if (first == std::string::npos || last <= first)
    return Error{Errc::protocol_error, r->text};
  return r->text.substr(first + 1, last - first - 1);
}

Status FtpClient::mkd(const std::string& path) {
  auto r = command("MKD " + path);
  if (!r.ok()) return Status{r.error()};
  return r->code == 257 ? Status{}
                        : Status{ftp_code_to_errc(r->code), r->text};
}

Status FtpClient::rmd(const std::string& path) {
  auto r = command("RMD " + path);
  if (!r.ok()) return Status{r.error()};
  return r->code == 250 ? Status{}
                        : Status{ftp_code_to_errc(r->code), r->text};
}

Status FtpClient::dele(const std::string& path) {
  auto r = command("DELE " + path);
  if (!r.ok()) return Status{r.error()};
  return r->code == 250 ? Status{}
                        : Status{ftp_code_to_errc(r->code), r->text};
}

Result<std::int64_t> FtpClient::size(const std::string& path) {
  auto r = command("SIZE " + path);
  if (!r.ok()) return r.error();
  if (r->code != 213) return Error{ftp_code_to_errc(r->code), r->text};
  const auto n = parse_int(r->text);
  if (!n) return Error{Errc::protocol_error, r->text};
  return *n;
}

Status FtpClient::set_mode_e(bool on) {
  auto r = command(on ? "MODE E" : "MODE S");
  if (!r.ok()) return Status{r.error()};
  if (r->code != 200) return Status{ftp_code_to_errc(r->code), r->text};
  mode_e_ = on;
  return {};
}

Result<std::pair<std::string, uint16_t>> FtpClient::pasv() {
  auto r = command("PASV");
  if (!r.ok()) return r.error();
  if (r->code != 227) return Error{ftp_code_to_errc(r->code), r->text};
  const auto open = r->text.find('(');
  const auto close = r->text.find(')');
  if (open == std::string::npos || close == std::string::npos)
    return Error{Errc::protocol_error, r->text};
  const auto parts = split(r->text.substr(open + 1, close - open - 1), ',');
  if (parts.size() != 6) return Error{Errc::protocol_error, r->text};
  const std::string ip =
      parts[0] + "." + parts[1] + "." + parts[2] + "." + parts[3];
  const auto p = static_cast<uint16_t>(parse_int(parts[4]).value_or(0) * 256 +
                                       parse_int(parts[5]).value_or(0));
  return std::make_pair(ip, p);
}

Status FtpClient::port(const std::string& ip, uint16_t p) {
  std::string dotted = ip;
  for (char& c : dotted) {
    if (c == '.') c = ',';
  }
  auto r = command("PORT " + dotted + "," + std::to_string(p >> 8) + "," +
                   std::to_string(p & 0xff));
  if (!r.ok()) return Status{r.error()};
  return r->code == 200 ? Status{}
                        : Status{ftp_code_to_errc(r->code), r->text};
}

Result<std::string> FtpClient::retr(const std::string& path) {
  auto addr = pasv();
  if (!addr.ok()) return addr.error();
  if (auto s = begin("RETR", path); !s.ok()) return Error{s.error()};
  auto data = net::TcpStream::connect(addr->first, addr->second);
  if (!data.ok()) return data.error();
  std::string out;
  if (mode_e_) {
    std::vector<char> block;
    std::int64_t off = 0;
    while (true) {
      auto more = protocol::ModeEBlock::recv(*data, block, off);
      if (!more.ok()) return more.error();
      if (!block.empty()) {
        if (out.size() < static_cast<std::size_t>(off) + block.size()) {
          out.resize(static_cast<std::size_t>(off) + block.size());
        }
        std::copy(block.begin(), block.end(),
                  out.begin() + static_cast<std::ptrdiff_t>(off));
      }
      if (!*more) break;
    }
  } else {
    char buf[8192];
    while (true) {
      auto n = data->read_some(std::span(buf, sizeof buf));
      if (!n.ok()) return n.error();
      if (*n == 0) break;
      out.append(buf, static_cast<std::size_t>(*n));
    }
  }
  if (auto s = finish(); !s.ok()) return Error{s.error()};
  return out;
}

Status FtpClient::stor(const std::string& path, const std::string& data) {
  auto addr = pasv();
  if (!addr.ok()) return Status{addr.error()};
  if (auto s = begin("STOR", path); !s.ok()) return s;
  auto conn = net::TcpStream::connect(addr->first, addr->second);
  if (!conn.ok()) return Status{conn.error()};
  if (mode_e_) {
    constexpr std::size_t kBlock = 64 * 1024;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t len = std::min(kBlock, data.size() - off);
      if (auto s = protocol::ModeEBlock::send(
              *conn, std::span<const char>(data.data() + off, len),
              static_cast<std::int64_t>(off), false);
          !s.ok()) {
        return s;
      }
      off += len;
    }
    if (auto s = protocol::ModeEBlock::send(
            *conn, {}, static_cast<std::int64_t>(off), true);
        !s.ok()) {
      return s;
    }
  } else {
    if (auto s = conn->write_all(data); !s.ok()) return s;
  }
  conn->shutdown_send();
  return finish();
}

Result<std::string> FtpClient::list(const std::string& path) {
  auto addr = pasv();
  if (!addr.ok()) return addr.error();
  if (auto s = begin("LIST", path.empty() ? "." : path); !s.ok())
    return Error{s.error()};
  auto data = net::TcpStream::connect(addr->first, addr->second);
  if (!data.ok()) return data.error();
  std::string out;
  char buf[8192];
  while (true) {
    auto n = data->read_some(std::span(buf, sizeof buf));
    if (!n.ok()) return n.error();
    if (*n == 0) break;
    out.append(buf, static_cast<std::size_t>(*n));
  }
  if (auto s = finish(); !s.ok()) return Error{s.error()};
  return out;
}

Result<std::string> FtpClient::retr_from(const std::string& path,
                                         std::int64_t offset) {
  auto r = command("REST " + std::to_string(offset));
  if (!r.ok()) return r.error();
  if (r->code != 350) return Error{ftp_code_to_errc(r->code), r->text};
  return retr(path);
}

Status FtpClient::begin(const std::string& verb, const std::string& path) {
  auto r = command(verb + " " + path);
  if (!r.ok()) return Status{r.error()};
  if (r->code != 150) return Status{ftp_code_to_errc(r->code), r->text};
  return {};
}

Status FtpClient::finish() {
  auto r = read_response();
  if (!r.ok()) return Status{r.error()};
  if (r->code != 226) return Status{ftp_code_to_errc(r->code), r->text};
  return {};
}

Status FtpClient::retr_remote(const std::string& path) {
  if (auto s = begin("RETR", path); !s.ok()) return s;
  return finish();
}

Status FtpClient::stor_remote(const std::string& path) {
  if (auto s = begin("STOR", path); !s.ok()) return s;
  return finish();
}

Status FtpClient::quit() {
  auto r = command("QUIT");
  return r.ok() ? Status{} : Status{r.error()};
}

}  // namespace nest::client
