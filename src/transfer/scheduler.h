// Transfer scheduling policies (paper Section 4.2).
//
// The transfer manager services transfers one *quantum* (block) at a time;
// the scheduler decides whose block goes next. Because different protocols
// move different amounts per request (an NFS read is one 8 KB block, an
// HTTP get is a whole file), the stride scheduler charges by *bytes*, not
// by requests — the paper's "byte-based strides".
//
// Policies:
//  * FifoScheduler           — first-come first-served (the default).
//  * StrideScheduler         — deterministic proportional share across
//                              protocol classes (Waldspurger & Weihl),
//                              optionally non-work-conserving.
//  * CacheAwareScheduler     — favors requests predicted cache-resident by
//                              the gray-box model (approximates SJF).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "transfer/request.h"

namespace nest::transfer {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  // A request becomes schedulable (for block protocols, each block request
  // is enqueued as it arrives; for file protocols the request re-enters
  // after each serviced quantum via requeue()).
  virtual void enqueue(TransferRequest* r) = 0;

  // Pick the next request to service, or nullptr if none *should* run now
  // (empty, or a non-work-conserving hold).
  virtual TransferRequest* next() = 0;

  // Account `bytes` moved on behalf of `r`.
  virtual void charge(TransferRequest* r, std::int64_t bytes) = 0;

  virtual bool empty() const = 0;
  virtual const char* name() const = 0;
};

class FifoScheduler final : public Scheduler {
 public:
  void enqueue(TransferRequest* r) override { q_.push_back(r); }
  TransferRequest* next() override {
    if (q_.empty()) return nullptr;
    TransferRequest* r = q_.front();
    q_.pop_front();
    return r;
  }
  void charge(TransferRequest*, std::int64_t) override {}
  bool empty() const override { return q_.empty(); }
  const char* name() const override { return "fifo"; }

 private:
  std::deque<TransferRequest*> q_;
};

// What a stride class is keyed on. The paper's implementation shares per
// *protocol* class; per-user preference is the extension it names as
// future work, implemented here as an alternative classifier.
enum class ShareClass { by_protocol, by_user };

// Deterministic proportional share over scheduling classes with byte-based
// strides. Tickets are set per class ("NFS gets 4, others 1"); a class's
// pass advances by bytes * stride1 / tickets when charged, and next()
// serves the pending class with the minimum pass.
//
// Scale: class state is two-tier so by_user sharing survives million-user
// populations. The *active* tier (classes with pending requests) lives in
// an ordered index, so next() is O(log active) instead of a scan over
// every class ever seen. The *inactive* tier (classes whose queues
// drained) is a bounded LRU: beyond Options::inactive_capacity the
// least-recently-drained class is forgotten entirely, and if it rejoins
// later it re-clamps to the global pass exactly as a class absent longer
// than rejoin_grace would — eviction can never mint catch-up credit.
// Classes with explicitly configured tickets are pinned and never
// evicted (protocol classes, per-user share grants). Total retained state
// is O(active + inactive_capacity + pinned), observable via state_count().
class StrideScheduler final : public Scheduler {
 public:
  struct Options {
    ShareClass share_class = ShareClass::by_protocol;
    // Non-work-conserving: when the globally minimum-pass class has no
    // pending request, hold the server idle up to idle_wait before letting
    // a competitor run (paper Section 7.2 discusses this as the fix for
    // the NFS 1:1:1:4 case, citing anticipatory scheduling).
    bool work_conserving = true;
    Nanos idle_wait = 2 * kMillisecond;
    // A class whose queue momentarily drains (a synchronous block protocol
    // between RPCs) keeps its pass — byte-based catch-up is the whole
    // point. Only a class absent longer than this grace re-clamps to the
    // global pass.
    Nanos rejoin_grace = 50 * kMillisecond;
    // Bound on how far a class's pass may lag the global pass, expressed
    // in bytes of service at its ticket count (limits catch-up bursts).
    std::int64_t max_lag_bytes = 2'000'000;
    // Drained (inactive) classes retained before LRU eviction. Pinned
    // classes (explicit set_tickets) do not count and are never evicted.
    std::size_t inactive_capacity = 4096;
  };

  explicit StrideScheduler(Clock& clock);
  StrideScheduler(Clock& clock, Options opts) : clock_(clock), opts_(opts) {}

  // Tickets must be set before requests of that class arrive; unknown
  // classes default to 1 ticket. The class name is a protocol or a user
  // name depending on Options::share_class ("" = anonymous users).
  void set_tickets(const std::string& cls, std::int64_t tickets);

  void enqueue(TransferRequest* r) override;
  TransferRequest* next() override;
  void charge(TransferRequest* r, std::int64_t bytes) override;
  bool empty() const override;
  const char* name() const override {
    return opts_.work_conserving ? "stride" : "stride-nwc";
  }

  // Suggested wait when next() held back (non-work-conserving only).
  Nanos hold_until() const { return hold_until_; }

  // --- scale observability (tests assert the O(active) bound) ---
  // Classes currently holding any state (active + retained inactive).
  std::size_t state_count() const { return classes_.size(); }
  // Classes with pending requests.
  std::size_t active_count() const { return active_.size(); }
  // Drained classes retained in the LRU tier (pinned ones included).
  std::size_t inactive_count() const { return lru_.size(); }
  // Classes pinned by an explicit set_tickets (never evicted).
  std::size_t pinned_count() const { return pinned_; }
  // Inactive-tier evictions performed so far.
  std::int64_t evictions() const { return evictions_; }

 private:
  struct ClassState {
    std::int64_t tickets = 1;
    bool pinned = false;  // explicit set_tickets; exempt from eviction
    double pass = 0.0;
    std::deque<TransferRequest*> q;
    Nanos last_seen = -1;   // last enqueue time (-1: never), for idle_wait
    Nanos drained_at = -1;  // when the queue last emptied (LRU recency)
    std::list<std::string>::iterator lru_it;
    bool in_lru = false;
  };
  const std::string& key_of(const TransferRequest* r) const {
    return opts_.share_class == ShareClass::by_user ? r->user : r->protocol;
  }
  ClassState& cls(const std::string& name);
  // Move a just-drained class into the LRU tier and evict past capacity.
  void retire(const std::string& name, ClassState& c);
  void evict_past_capacity();

  static constexpr double kStride1 = 1 << 20;

  Clock& clock_;
  Options opts_;
  // Only classes that are active or LRU-retained exist here; eviction
  // erases the entry outright, so memory is O(active + capacity + pinned).
  std::unordered_map<std::string, ClassState> classes_;
  // Active classes ordered by (pass, name): begin() is exactly the class
  // the old full scan picked (strictly-min pass, name-order tiebreak).
  std::set<std::pair<double, std::string>> active_;
  // Drained classes, most recently drained first; evicted from the tail.
  std::list<std::string> lru_;
  std::size_t pinned_ = 0;      // total pinned classes
  std::size_t lru_pinned_ = 0;  // pinned classes currently in lru_
  std::int64_t evictions_ = 0;
  double global_pass_ = 0.0;
  Nanos hold_until_ = 0;
};

// Forward declaration; the gray-box model lives in cache_model.h.
class CacheModel;

// Cache-aware scheduling (paper Section 4.2, citing the gray-box work):
// requests predicted resident are served before requests that would go to
// disk, improving response time (SJF approximation) and server throughput
// (less disk contention). FIFO within each band.
class CacheAwareScheduler final : public Scheduler {
 public:
  // `hot_threshold`: resident fraction at/above which a request is "hot".
  // `aging_limit` bounds starvation: after this many consecutive hot
  // grants while cold work waits, the head cold request is served even
  // though hot work is pending (a continuous hot stream would otherwise
  // starve cold requests forever).
  explicit CacheAwareScheduler(double hot_threshold = 0.99,
                               int aging_limit = 8)
      : threshold_(hot_threshold), aging_limit_(aging_limit) {}

  void enqueue(TransferRequest* r) override {
    (r->cached_fraction >= threshold_ ? hot_ : cold_).push_back(r);
  }
  TransferRequest* next() override {
    const bool cold_is_due =
        !cold_.empty() && (hot_.empty() || hot_streak_ >= aging_limit_);
    if (cold_is_due) {
      TransferRequest* r = cold_.front();
      cold_.pop_front();
      hot_streak_ = 0;
      return r;
    }
    if (!hot_.empty()) {
      TransferRequest* r = hot_.front();
      hot_.pop_front();
      if (!cold_.empty()) ++hot_streak_;
      return r;
    }
    return nullptr;
  }
  void charge(TransferRequest*, std::int64_t) override {}
  bool empty() const override { return hot_.empty() && cold_.empty(); }
  const char* name() const override { return "cache-aware"; }

 private:
  double threshold_;
  int aging_limit_;
  int hot_streak_ = 0;  // consecutive hot grants with cold work waiting
  std::deque<TransferRequest*> hot_;
  std::deque<TransferRequest*> cold_;
};

// Factory used by server configuration ("scheduler = stride" etc.).
std::unique_ptr<Scheduler> make_scheduler(const std::string& kind,
                                          Clock& clock);

}  // namespace nest::transfer
