// Admission control: latency-target-driven load shedding (ROADMAP item 4).
//
// Under open-loop overload an appliance that queues everything has
// unbounded latency: offered load above capacity grows the queue without
// limit, so *every* client eventually times out. The fix is to shed at
// admission — reply `busy` immediately instead of queueing — so the
// requests that ARE admitted still complete within the latency target.
//
// The shedder is substrate-agnostic like the rest of src/transfer: the
// real dispatcher consults it before approving a transfer, and the sim
// server consults the same object from its coroutine client paths, so
// policy behaviour is identical (and deterministically testable) in both.
//
// Decision logic, in order:
//   1. Hard queue bound (`max_queue`): more than this many admitted
//      transfers outstanding -> shed, unconditionally. This is the
//      backstop that keeps memory bounded whatever the predictor thinks.
//   2. Per-user fair share: a single user may hold at most
//      max(1, max_queue / active_users) outstanding slots, so one
//      aggressive client cannot monopolize admission while others are
//      shed ("per-user fair shedding"). Only enforced when max_queue > 0.
//   3. Latency prediction (Little's law): predicted wait for a new
//      arrival is (outstanding + 1) / completion_rate, with the rate
//      estimated over a trailing window. If the prediction exceeds
//      headroom * target_ms the request is shed — EXCEPT when its
//      protocol class has nothing outstanding, which guarantees no
//      protocol is ever fully starved by the others' load.
//
// Bookkeeping is O(1) per decision and O(active classes + active users)
// in space: per-class/per-user outstanding counts are erased when they
// hit zero, so a million churning users leave nothing behind.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "common/mutex.h"

namespace nest::transfer {

struct AdmissionOptions {
  // Latency target (ms) the shedder defends; <= 0 disables prediction.
  double target_ms = 0.0;
  // Hard cap on outstanding admitted transfers; <= 0 means unbounded.
  int max_queue = 0;
  // Fraction of target_ms the *mean* prediction may use. The predictor
  // estimates mean wait; holding the mean at headroom * target keeps the
  // tail (P99) under the target itself.
  double headroom = 0.5;
  // Completion-rate estimation window.
  Nanos rate_window = 200 * kMillisecond;
};

class AdmissionController {
 public:
  enum class Verdict : std::uint8_t {
    admitted,
    shed_queue,    // hard queue bound
    shed_user,     // per-user fair-share cap
    shed_latency,  // predicted wait over target
  };

  AdmissionController(Clock& clock, AdmissionOptions opts)
      : clock_(clock), opts_(opts) {}

  bool enabled() const { return opts_.target_ms > 0 || opts_.max_queue > 0; }
  const AdmissionOptions& options() const { return opts_; }

  // Decide whether one more request of `protocol` from `user` may enter.
  // Purely a decision + counters: the reservation happens when the caller
  // actually creates the transfer (on_create) and is returned by
  // on_complete, so a request shed — or failed between admit and create —
  // never leaks an outstanding slot.
  Verdict admit(const std::string& protocol, const std::string& user);

  // Called by TransferCore for every created / completed transfer.
  void on_create(const std::string& protocol, const std::string& user);
  void on_complete(const std::string& protocol, const std::string& user);

  struct Snapshot {
    std::int64_t outstanding = 0;
    std::int64_t admitted = 0;
    std::int64_t shed = 0;  // all reasons
    std::int64_t shed_queue = 0;
    std::int64_t shed_user = 0;
    std::int64_t shed_latency = 0;
    double predicted_wait_ms = 0.0;      // for the next arrival, now
    double completion_rate_per_sec = 0;  // trailing-window estimate
    std::size_t active_users = 0;
    std::size_t active_classes = 0;
  };
  Snapshot snapshot() const;

 private:
  // Completions per nanosecond over the last full window; 0 = no estimate
  // yet (cold start admits — nothing to predict from).
  double rate_per_ns_locked(Nanos now) const REQUIRES(mu_);
  double predicted_wait_ns_locked(Nanos now) const REQUIRES(mu_);

  Clock& clock_;
  AdmissionOptions opts_;
  mutable Mutex mu_{lockrank::Rank::transfer_admission, "transfer.admission"};
  std::int64_t outstanding_ GUARDED_BY(mu_) = 0;
  std::unordered_map<std::string, std::int64_t> class_out_ GUARDED_BY(mu_);
  std::unordered_map<std::string, std::int64_t> user_out_ GUARDED_BY(mu_);
  // Windowed completion-rate estimator: completions counted in the
  // current window; on rollover the finished window becomes the estimate.
  Nanos window_start_ GUARDED_BY(mu_) = -1;
  std::int64_t window_count_ GUARDED_BY(mu_) = 0;
  double rate_per_ns_ GUARDED_BY(mu_) = 0.0;
  // Decision counters (exported via Snapshot into stats/ads).
  std::int64_t admitted_ GUARDED_BY(mu_) = 0;
  std::int64_t shed_queue_ GUARDED_BY(mu_) = 0;
  std::int64_t shed_user_ GUARDED_BY(mu_) = 0;
  std::int64_t shed_latency_ GUARDED_BY(mu_) = 0;
};

// Stable reason string for logs/stats ("admitted", "queue", "user",
// "latency").
const char* verdict_name(AdmissionController::Verdict v);

}  // namespace nest::transfer
