#include "transfer/transfer_manager.h"

#include <cassert>

namespace nest::transfer {

TransferManager::TransferManager(Clock& clock, Options options)
    : clock_(clock),
      options_(options),
      scheduler_(make_scheduler(options.scheduler, clock)),
      selector_(options.adapt),
      cache_model_(options.cache_model_bytes, options.cache_model_page),
      latencies_(options.latency_samples_per_stripe) {
  assert(scheduler_ != nullptr && "unknown scheduler kind");
}

TransferRequest* TransferManager::create_request(const std::string& protocol,
                                                 Direction dir,
                                                 const std::string& path,
                                                 std::int64_t size,
                                                 const std::string& user) {
  auto req = std::make_unique<TransferRequest>();
  req->id = next_id_++;
  req->protocol = protocol;
  req->user = user;
  req->dir = dir;
  req->path = path;
  req->size = size;
  req->arrival = clock_.now();
  req->cached_fraction = cache_model_.resident_fraction(path, size);
  TransferRequest* raw = req.get();
  requests_[raw->id] = std::move(req);
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  return raw;
}

Nanos TransferManager::hold_until() const {
  const auto* s = dynamic_cast<const StrideScheduler*>(scheduler_.get());
  return s ? s->hold_until() : 0;
}

void TransferManager::charge(TransferRequest* r, std::int64_t bytes) {
  r->done += bytes;
  account_bytes(r->protocol, bytes);
  scheduler_->charge(r, bytes);
  cache_model_.observe_access(r->path, r->done - bytes, bytes);
}

void TransferManager::complete(TransferRequest* r) {
  latencies_.record(clock_.now() - r->arrival);
  completed_.fetch_add(1, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  requests_.erase(r->id);
}

ConcurrencyModel TransferManager::pick_model() {
  return options_.adaptive ? selector_.pick() : options_.fixed_model;
}

void TransferManager::report_model(ConcurrencyModel m, double metric_value) {
  if (options_.adaptive) selector_.report(m, metric_value);
}

StrideScheduler* TransferManager::stride() {
  return dynamic_cast<StrideScheduler*>(scheduler_.get());
}

}  // namespace nest::transfer
