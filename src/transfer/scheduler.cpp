#include "transfer/scheduler.h"


namespace nest::transfer {

StrideScheduler::StrideScheduler(Clock& clock)
    : StrideScheduler(clock, Options{}) {}

StrideScheduler::ClassState& StrideScheduler::cls(const std::string& name) {
  return classes_[name];
}

void StrideScheduler::set_tickets(const std::string& cls_name,
                                  std::int64_t tickets) {
  classes_[cls_name].tickets = tickets < 1 ? 1 : tickets;
}

void StrideScheduler::enqueue(TransferRequest* r) {
  ClassState& c = cls(key_of(r));
  if (c.q.empty()) {
    const Nanos now = clock_.now();
    const bool long_absent =
        c.last_seen < 0 || now - c.last_seen > opts_.rejoin_grace;
    if (long_absent) {
      // A class (re)joining after real absence starts at the global pass
      // so it cannot claim credit for time it was gone.
      if (c.pass < global_pass_) c.pass = global_pass_;
    } else {
      // Momentary drains (sync block protocols between RPCs) keep their
      // pass, bounded so catch-up bursts stay finite.
      const double min_pass =
          global_pass_ - static_cast<double>(opts_.max_lag_bytes) * kStride1 /
                             static_cast<double>(c.tickets);
      if (c.pass < min_pass) c.pass = min_pass;
    }
  }
  c.q.push_back(r);
  c.last_seen = clock_.now();
}

TransferRequest* StrideScheduler::next() {
  // Find the pending class with minimum pass.
  ClassState* best = nullptr;
  for (auto& [name, c] : classes_) {
    if (c.q.empty()) continue;
    if (best == nullptr || c.pass < best->pass) best = &c;
  }
  hold_until_ = 0;
  if (best == nullptr) return nullptr;
  if (!opts_.work_conserving) {
    // If some *absent* class is owed service (its pass is below the best
    // pending class) and it produced work recently, hold the server briefly
    // rather than hand its slot to a competitor.
    const Nanos now = clock_.now();
    for (auto& [name, c] : classes_) {
      if (!c.q.empty() || c.tickets <= 0) continue;
      if (c.pass < best->pass && c.last_seen >= 0 &&
          now - c.last_seen < opts_.idle_wait) {
        hold_until_ = c.last_seen + opts_.idle_wait;
        return nullptr;
      }
    }
  }
  // Global virtual time is the pass of the class being dispatched; classes
  // rejoining later clamp to it so absence earns no credit.
  if (best->pass > global_pass_) global_pass_ = best->pass;
  TransferRequest* r = best->q.front();
  best->q.pop_front();
  return r;
}

void StrideScheduler::charge(TransferRequest* r, std::int64_t bytes) {
  ClassState& c = cls(key_of(r));
  c.pass += static_cast<double>(bytes) * kStride1 /
            static_cast<double>(c.tickets);
}

bool StrideScheduler::empty() const {
  for (const auto& [name, c] : classes_) {
    if (!c.q.empty()) return false;
  }
  return true;
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& kind,
                                          Clock& clock) {
  if (kind == "fifo" || kind.empty()) return std::make_unique<FifoScheduler>();
  if (kind == "stride") return std::make_unique<StrideScheduler>(clock);
  if (kind == "stride-nwc") {
    StrideScheduler::Options opts;
    opts.work_conserving = false;
    return std::make_unique<StrideScheduler>(clock, opts);
  }
  if (kind == "stride-user") {
    StrideScheduler::Options opts;
    opts.share_class = ShareClass::by_user;
    return std::make_unique<StrideScheduler>(clock, opts);
  }
  if (kind == "cache-aware") return std::make_unique<CacheAwareScheduler>();
  return nullptr;
}

}  // namespace nest::transfer
