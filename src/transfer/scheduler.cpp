#include "transfer/scheduler.h"


namespace nest::transfer {

StrideScheduler::StrideScheduler(Clock& clock)
    : StrideScheduler(clock, Options{}) {}

StrideScheduler::ClassState& StrideScheduler::cls(const std::string& name) {
  return classes_[name];
}

void StrideScheduler::set_tickets(const std::string& cls_name,
                                  std::int64_t tickets) {
  ClassState& c = classes_[cls_name];
  c.tickets = tickets < 1 ? 1 : tickets;
  if (!c.pinned) {
    c.pinned = true;
    ++pinned_;
    if (c.in_lru) ++lru_pinned_;
  }
}

void StrideScheduler::enqueue(TransferRequest* r) {
  const std::string& key = key_of(r);
  ClassState& c = cls(key);
  if (c.q.empty()) {
    const Nanos now = clock_.now();
    const bool long_absent =
        c.last_seen < 0 || now - c.last_seen > opts_.rejoin_grace;
    if (long_absent) {
      // A class (re)joining after real absence starts at the global pass
      // so it cannot claim credit for time it was gone. An LRU-evicted
      // class re-enters through this same path (its erased state reads as
      // never-seen), so eviction can never mint catch-up credit either.
      if (c.pass < global_pass_) c.pass = global_pass_;
    } else {
      // Momentary drains (sync block protocols between RPCs) keep their
      // pass, bounded so catch-up bursts stay finite.
      const double min_pass =
          global_pass_ - static_cast<double>(opts_.max_lag_bytes) * kStride1 /
                             static_cast<double>(c.tickets);
      if (c.pass < min_pass) c.pass = min_pass;
    }
    if (c.in_lru) {
      if (c.pinned) --lru_pinned_;
      lru_.erase(c.lru_it);
      c.in_lru = false;
    }
    active_.insert({c.pass, key});
  }
  c.q.push_back(r);
  c.last_seen = clock_.now();
}

TransferRequest* StrideScheduler::next() {
  hold_until_ = 0;
  if (active_.empty()) return nullptr;
  // begin() is the pending class with minimum (pass, name) — exactly what
  // the full scan over a name-ordered map used to pick.
  const auto [best_pass, best_name] = *active_.begin();
  ClassState& best = classes_.find(best_name)->second;
  if (!opts_.work_conserving) {
    // If some *absent* class is owed service (its pass is below the best
    // pending class) and it produced work recently, hold the server briefly
    // rather than hand its slot to a competitor. Only drained classes can
    // match, and last_seen <= drained_at, so the scan walks the LRU from
    // the recently-drained end and stops once drains are older than
    // idle_wait — O(recently drained), not O(classes).
    const Nanos now = clock_.now();
    const std::string* held = nullptr;
    Nanos held_until = 0;
    for (const std::string& name : lru_) {
      const ClassState& c = classes_.find(name)->second;
      if (now - c.drained_at >= opts_.idle_wait) break;
      if (c.tickets <= 0) continue;
      if (c.pass < best_pass && c.last_seen >= 0 &&
          now - c.last_seen < opts_.idle_wait) {
        // First match in name order, matching the old map-scan's pick.
        if (held == nullptr || name < *held) {
          held = &name;
          held_until = c.last_seen + opts_.idle_wait;
        }
      }
    }
    if (held != nullptr) {
      hold_until_ = held_until;
      return nullptr;
    }
  }
  // Global virtual time is the pass of the class being dispatched; classes
  // rejoining later clamp to it so absence earns no credit.
  if (best.pass > global_pass_) global_pass_ = best.pass;
  TransferRequest* r = best.q.front();
  best.q.pop_front();
  if (best.q.empty()) {
    active_.erase(active_.begin());
    retire(best_name, best);
  }
  return r;
}

void StrideScheduler::charge(TransferRequest* r, std::int64_t bytes) {
  const std::string& key = key_of(r);
  ClassState& c = cls(key);
  const double old_pass = c.pass;
  c.pass += static_cast<double>(bytes) * kStride1 /
            static_cast<double>(c.tickets);
  if (!c.q.empty()) {
    // Reposition in the active index; the stored pass must track c.pass
    // exactly or erase-by-value would miss.
    active_.erase({old_pass, key});
    active_.insert({c.pass, key});
  }
}

bool StrideScheduler::empty() const { return active_.empty(); }

void StrideScheduler::retire(const std::string& name, ClassState& c) {
  c.drained_at = clock_.now();
  lru_.push_front(name);
  c.lru_it = lru_.begin();
  c.in_lru = true;
  if (c.pinned) ++lru_pinned_;
  evict_past_capacity();
}

void StrideScheduler::evict_past_capacity() {
  // Unpinned drained classes beyond capacity are forgotten entirely,
  // least-recently-drained first. The loop condition guarantees an
  // unpinned victim exists, so the tail walk terminates.
  while (lru_.size() - lru_pinned_ > opts_.inactive_capacity) {
    auto it = lru_.end();
    do {
      --it;
    } while (classes_.find(*it)->second.pinned);
    classes_.erase(*it);
    lru_.erase(it);
    ++evictions_;
  }
}

std::unique_ptr<Scheduler> make_scheduler(const std::string& kind,
                                          Clock& clock) {
  if (kind == "fifo" || kind.empty()) return std::make_unique<FifoScheduler>();
  if (kind == "stride") return std::make_unique<StrideScheduler>(clock);
  if (kind == "stride-nwc") {
    StrideScheduler::Options opts;
    opts.work_conserving = false;
    return std::make_unique<StrideScheduler>(clock, opts);
  }
  if (kind == "stride-user") {
    StrideScheduler::Options opts;
    opts.share_class = ShareClass::by_user;
    return std::make_unique<StrideScheduler>(clock, opts);
  }
  if (kind == "cache-aware") return std::make_unique<CacheAwareScheduler>();
  return nullptr;
}

}  // namespace nest::transfer
