// Concurrency models and the adaptive selector (paper Sections 4.1, 7.3).
//
// NeST supports three concurrency architectures — threads, processes, and
// events — because no single choice wins on every platform/workload (the
// Flash observation the paper cites): cached small requests favor events,
// I/O-bound requests favor threads or processes. Rather than asking the
// administrator to choose, NeST "distributes requests among the
// architectures equally at first, monitors their progress, and then slowly
// biases requests toward the most effective choice."
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"

namespace nest::transfer {

enum class ConcurrencyModel : int {
  threads = 0,
  processes = 1,
  events = 2,
  // SEDA-style staged architecture (paper Section 4.1 names SEDA as the
  // future direction): small worker pools per stage (disk, network) with
  // queues between, so one request's blocking I/O never stalls another's
  // send and no per-request thread is created.
  staged = 3,
};
constexpr int kModelCount = 4;

const char* model_name(ConcurrencyModel m) noexcept;

// What the selector optimizes. Small cached requests care about latency;
// bulk transfers about throughput. Scores are kept as "higher is better":
// latency reports are negated internally.
enum class AdaptMetric { latency, throughput };

class AdaptiveSelector {
 public:
  struct Options {
    AdaptMetric metric = AdaptMetric::throughput;
    // Requests to spread evenly across models before biasing.
    int warmup_per_model = 4;
    // EWMA smoothing for per-model scores.
    double alpha = 0.3;
    // After warmup, fraction of requests used to keep probing non-best
    // models ("NeST tries all models periodically", paper Section 7.3 —
    // this is the measured cost of adaptation).
    double explore_fraction = 0.1;
    // Models the deployment enables (the paper's Figure 5 disables the
    // process model "for the sake of clarity"). The staged model is an
    // extension and is opt-in.
    std::vector<ConcurrencyModel> enabled = {
        ConcurrencyModel::threads, ConcurrencyModel::processes,
        ConcurrencyModel::events};
    std::uint64_t seed = 42;
  };

  AdaptiveSelector();
  explicit AdaptiveSelector(Options opts);

  // Choose the model for the next request.
  ConcurrencyModel pick();

  // Report a completed request: latency in ns, or throughput in bytes/sec,
  // per the configured metric.
  void report(ConcurrencyModel m, double value);

  // Current best (exploited) model.
  ConcurrencyModel best() const;

  double score(ConcurrencyModel m) const {
    return state_[static_cast<int>(m)].score;
  }
  std::int64_t picks(ConcurrencyModel m) const {
    return state_[static_cast<int>(m)].picks;
  }
  bool warming_up() const;

 private:
  struct ModelState {
    bool enabled = false;
    double score = 0.0;
    bool scored = false;
    std::int64_t picks = 0;
    std::int64_t reports = 0;
  };

  Options opts_;
  std::array<ModelState, kModelCount> state_{};
  int rr_cursor_ = 0;  // round-robin cursor during warmup and exploration
  Rng rng_;
};

}  // namespace nest::transfer
