#include "transfer/admission.h"

#include <algorithm>

#include "obs/stats.h"

namespace nest::transfer {

double AdmissionController::rate_per_ns_locked(Nanos now) const {
  if (rate_per_ns_ > 0) return rate_per_ns_;
  // No full window yet: use the partial one once it has enough signal
  // (a quarter window with at least one completion) so startup overload
  // is detected before the first rollover.
  if (window_start_ >= 0 && window_count_ > 0 &&
      now - window_start_ >= opts_.rate_window / 4) {
    return static_cast<double>(window_count_) /
           static_cast<double>(now - window_start_);
  }
  return 0.0;
}

double AdmissionController::predicted_wait_ns_locked(Nanos now) const {
  const double rate = rate_per_ns_locked(now);
  if (rate <= 0) return 0.0;
  return static_cast<double>(outstanding_ + 1) / rate;
}

AdmissionController::Verdict AdmissionController::admit(
    const std::string& protocol, const std::string& user) {
  if (!enabled()) return Verdict::admitted;
  Verdict v = Verdict::admitted;
  {
    MutexLock lock(mu_);
    if (opts_.max_queue > 0 && outstanding_ >= opts_.max_queue) {
      v = Verdict::shed_queue;
      ++shed_queue_;
    } else if (opts_.max_queue > 0) {
      // Fair share of the queue bound across currently-active users; a
      // user at their share is shed even while global capacity remains.
      const std::size_t users = user_out_.empty() ? 1 : user_out_.size();
      const std::int64_t share =
          std::max<std::int64_t>(1, opts_.max_queue /
                                        static_cast<std::int64_t>(users));
      const auto it = user_out_.find(user);
      if (it != user_out_.end() && it->second >= share) {
        v = Verdict::shed_user;
        ++shed_user_;
      }
    }
    if (v == Verdict::admitted && opts_.target_ms > 0) {
      const double wait_ns = predicted_wait_ns_locked(clock_.now());
      const double budget_ns = opts_.target_ms * 1e6 * opts_.headroom;
      if (wait_ns > budget_ns) {
        // No-starvation escape: a class with nothing outstanding gets its
        // one probe request through regardless of the prediction.
        const auto it = class_out_.find(protocol);
        if (it != class_out_.end() && it->second > 0) {
          v = Verdict::shed_latency;
          ++shed_latency_;
        }
      }
    }
    if (v == Verdict::admitted) ++admitted_;
  }
  auto& stats = obs::Stats::global();
  (v == Verdict::admitted ? stats.admitted : stats.shed)
      .fetch_add(1, std::memory_order_relaxed);
  return v;
}

void AdmissionController::on_create(const std::string& protocol,
                                    const std::string& user) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  ++outstanding_;
  ++class_out_[protocol];
  ++user_out_[user];
}

void AdmissionController::on_complete(const std::string& protocol,
                                      const std::string& user) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  if (outstanding_ > 0) --outstanding_;
  // Erase-at-zero keeps both maps O(currently active), not O(ever seen) —
  // a churning user population must not accrete bookkeeping.
  auto cit = class_out_.find(protocol);
  if (cit != class_out_.end() && --cit->second <= 0) class_out_.erase(cit);
  auto uit = user_out_.find(user);
  if (uit != user_out_.end() && --uit->second <= 0) user_out_.erase(uit);
  const Nanos now = clock_.now();
  if (window_start_ < 0) window_start_ = now;
  ++window_count_;
  if (now - window_start_ >= opts_.rate_window) {
    rate_per_ns_ = static_cast<double>(window_count_) /
                   static_cast<double>(now - window_start_);
    window_start_ = now;
    window_count_ = 0;
  }
}

AdmissionController::Snapshot AdmissionController::snapshot() const {
  MutexLock lock(mu_);
  Snapshot s;
  s.outstanding = outstanding_;
  s.admitted = admitted_;
  s.shed_queue = shed_queue_;
  s.shed_user = shed_user_;
  s.shed_latency = shed_latency_;
  s.shed = shed_queue_ + shed_user_ + shed_latency_;
  const Nanos now = clock_.now();
  s.predicted_wait_ms = predicted_wait_ns_locked(now) / 1e6;
  s.completion_rate_per_sec = rate_per_ns_locked(now) * 1e9;
  s.active_users = user_out_.size();
  s.active_classes = class_out_.size();
  return s;
}

const char* verdict_name(AdmissionController::Verdict v) {
  switch (v) {
    case AdmissionController::Verdict::admitted: return "admitted";
    case AdmissionController::Verdict::shed_queue: return "queue";
    case AdmissionController::Verdict::shed_user: return "user";
    case AdmissionController::Verdict::shed_latency: return "latency";
  }
  return "?";
}

}  // namespace nest::transfer
