// TransferManager: the policy heart of NeST's data movement (paper
// Section 4). Substrate-agnostic: the real epoll server and the
// discrete-event simulator both drive this same object, so the scheduling
// and adaptation behaviour that the benchmarks measure is exactly the
// behaviour the appliance ships.
//
// Responsibilities here: request registry, scheduling policy (which
// pending quantum is serviced next), concurrency-model selection, and
// accounting. Actually moving bytes is the substrate's job.
//
// Thread-safety: this object is a *single-threaded* policy brain. The
// aggregate counters (total_bytes/completed/in_flight) are atomics so
// monitoring reads (ClassAd publishing) are always safe, but the
// lifecycle and scheduling calls must be externally serialized —
// transfer::TransferCore is that serialization layer for the concurrent
// real-mode server; the simulator drives this object from its one engine
// thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "transfer/cache_model.h"
#include "transfer/concurrency.h"
#include "transfer/request.h"
#include "transfer/scheduler.h"

namespace nest::transfer {

class TransferManager {
 public:
  struct Options {
    // fifo | stride | stride-nwc | stride-user | cache-aware
    std::string scheduler = "fifo";
    bool adaptive = true;            // adapt the concurrency model?
    ConcurrencyModel fixed_model = ConcurrencyModel::threads;  // if !adaptive
    AdaptiveSelector::Options adapt;
    // Gray-box cache model sizing (estimate of the kernel cache).
    std::int64_t cache_model_bytes = 64LL * 1024 * 1024;
    std::int64_t cache_model_page = 8 * 1024;
    // Latency samples retained per recorder stripe for percentile
    // queries (0 = retain everything). Bounded by default so the
    // monitoring surfaces (discovery ads, /stats) stay O(1) amortized
    // under unbounded request churn; mean/count stay exact regardless.
    std::size_t latency_samples_per_stripe = 4096;
  };

  TransferManager(Clock& clock, Options options);

  // --- request lifecycle ---
  TransferRequest* create_request(const std::string& protocol, Direction dir,
                                  const std::string& path, std::int64_t size,
                                  const std::string& user = {});
  void enqueue(TransferRequest* r) { scheduler_->enqueue(r); }
  TransferRequest* next() { return scheduler_->next(); }
  // Non-work-conserving hold hint (0 = none).
  Nanos hold_until() const;
  // Account bytes moved; feeds the scheduler, bandwidth meter, and the
  // gray-box cache model.
  void charge(TransferRequest* r, std::int64_t bytes);
  void complete(TransferRequest* r);
  bool idle() const { return scheduler_->empty() && requests_.empty(); }
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  // Granular piece of charge(): byte accounting only (atomic total +
  // striped meter; no scheduler or cache-model touch). TransferCore calls
  // this lock-free on the hot path and applies the scheduler charge and
  // cache observation under its own locks.
  void account_bytes(const std::string& cls, std::int64_t bytes) {
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    meter_.add(cls, bytes);
  }

  // --- concurrency model selection ---
  ConcurrencyModel pick_model();
  void report_model(ConcurrencyModel m, double metric_value);
  AdaptiveSelector& selector() { return selector_; }

  // --- policy access ---
  Scheduler& scheduler() { return *scheduler_; }
  // Non-null when the configured policy is stride (for ticket setup).
  StrideScheduler* stride();
  CacheModel& cache_model() { return cache_model_; }

  // --- accounting ---
  BandwidthMeter& meter() { return meter_; }
  LatencyRecorder& latencies() { return latencies_; }
  std::int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }
  std::int64_t completed_requests() const {
    return completed_.load(std::memory_order_relaxed);
  }

  const Options& options() const { return options_; }
  Clock& clock() const { return clock_; }

 private:
  Clock& clock_;
  Options options_;
  std::unique_ptr<Scheduler> scheduler_;
  AdaptiveSelector selector_;
  CacheModel cache_model_;
  std::map<std::uint64_t, std::unique_ptr<TransferRequest>> requests_;
  std::uint64_t next_id_ = 1;
  BandwidthMeter meter_;
  LatencyRecorder latencies_;
  std::atomic<std::int64_t> total_bytes_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::size_t> in_flight_{0};
};

}  // namespace nest::transfer
