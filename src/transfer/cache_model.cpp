#include "transfer/cache_model.h"

namespace nest::transfer {

void CacheModel::observe_access(const std::string& path, std::int64_t offset,
                                std::int64_t len) {
  if (len <= 0) return;
  const std::int64_t first = offset / page_bytes_;
  const std::int64_t last = (offset + len - 1) / page_bytes_;
  for (std::int64_t p = first; p <= last; ++p) {
    const Key key{path, p};
    const auto it = map_.find(key);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      continue;
    }
    while (static_cast<std::int64_t>(map_.size()) >= capacity_pages_ &&
           !lru_.empty()) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
    lru_.push_front(key);
    map_[key] = lru_.begin();
  }
}

void CacheModel::observe_remove(const std::string& path) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->path == path) {
      map_.erase(*it);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

double CacheModel::resident_fraction(const std::string& path,
                                     std::int64_t size) const {
  if (size <= 0) return 1.0;
  const std::int64_t pages = (size + page_bytes_ - 1) / page_bytes_;
  std::int64_t resident = 0;
  for (std::int64_t p = 0; p < pages; ++p) {
    if (map_.count(Key{path, p})) ++resident;
  }
  return static_cast<double>(resident) / static_cast<double>(pages);
}

}  // namespace nest::transfer
