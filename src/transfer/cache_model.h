// Gray-box model of the kernel buffer cache (paper Section 4.2, building on
// Arpaci-Dusseau's gray-box methodology and the Burnett et al. USENIX '02
// work the paper cites).
//
// NeST runs at user level and cannot see the kernel cache, but it *can*
// observe every byte it reads and writes. This model mirrors the kernel's
// (assumed LRU) replacement over those observations with a configurable
// estimated cache size, and predicts whether a file is resident — the
// signal cache-aware scheduling needs.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace nest::transfer {

class CacheModel {
 public:
  CacheModel(std::int64_t estimated_cache_bytes, std::int64_t page_bytes)
      : capacity_pages_(estimated_cache_bytes / page_bytes),
        page_bytes_(page_bytes) {}

  // Record that the server read/wrote [offset, offset+len) of `path`
  // through the kernel. Both populate the (modeled) cache.
  void observe_access(const std::string& path, std::int64_t offset,
                      std::int64_t len);

  // Record that `path` was removed (its pages die with it).
  void observe_remove(const std::string& path);

  // Predicted fraction of the first `size` bytes resident right now.
  double resident_fraction(const std::string& path, std::int64_t size) const;

  bool probably_cached(const std::string& path, std::int64_t size,
                       double threshold = 0.99) const {
    return resident_fraction(path, size) >= threshold;
  }

  std::int64_t page_bytes() const { return page_bytes_; }
  std::int64_t tracked_pages() const {
    return static_cast<std::int64_t>(map_.size());
  }

 private:
  struct Key {
    std::string path;
    std::int64_t page;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::string>()(k.path) ^
             std::hash<std::int64_t>()(k.page * 0x9e3779b97f4a7c15ll);
    }
  };
  using Lru = std::list<Key>;

  std::int64_t capacity_pages_;
  std::int64_t page_bytes_;
  Lru lru_;  // front = MRU
  std::unordered_map<Key, Lru::iterator, KeyHash> map_;
};

}  // namespace nest::transfer
