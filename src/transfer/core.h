// TransferCore: the substrate-agnostic transfer path (paper Sections 3-4).
//
// One object owns the whole per-block transfer lifecycle — admission
// slots, scheduling, charging, and accounting — behind a narrow interface
// that both substrates drive with the *same* policy behaviour:
//
//   * real mode: connection threads call acquire()/charge()/release()
//     concurrently. Submissions and scheduler charges are pushed to
//     per-protocol-class shards (each with its own tiny lock) and
//     batch-drained into the still single-writer scheduler by whichever
//     thread holds the pump; a global sequence stamp restores exact
//     arrival order across shards. Slot grants wake exactly the granted
//     request through its own grant word (atomic_ref wait/notify) — no
//     broadcast condition variable, no thundering herd.
//   * sim mode: the discrete-event engine drives the identical object
//     single-threaded through submit()/try_grant()/release_slot(); every
//     deferred operation is applied, in submission order, before the next
//     scheduling decision, so policy traces are bit-identical to driving
//     the TransferManager directly.
//
// Hot-path locking (full hierarchy in docs/transfer-core.md):
//   charge()  — never blocks on the scheduler lock: atomic byte counters,
//               striped meter, the cache-model lock, and a shard push.
//   acquire() — shard push + a pump attempt; blocks only on its own grant
//               word when no slot is free.
//   release() — atomic slot increment + a pump attempt.
// Only the pump (one thread at a time, elected by an atomic pending
// counter) takes the scheduler lock.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "transfer/admission.h"
#include "transfer/transfer_manager.h"

namespace nest::transfer {

class TransferCore {
 public:
  TransferCore(TransferManager& tm, int slots);

  // --- request lifecycle (thread-safe) ---
  TransferRequest* create_request(const std::string& protocol, Direction dir,
                                  const std::string& path, std::int64_t size,
                                  const std::string& user = {});
  // Account `bytes` moved for `r`. Byte/meter accounting is immediate and
  // lock-free; the scheduler charge is deferred to the shard and applied
  // before the next grant decision (callers charge before releasing their
  // slot, so proportional-share passes are never stale at the next pick).
  void charge(TransferRequest* r, std::int64_t bytes);
  // Retires `r` (latency accounting + registry erase). Flushes any of the
  // request's still-pending shard operations first, so the scheduler never
  // sees a dangling request pointer.
  void complete(TransferRequest* r);

  // --- admission, real mode (blocking) ---
  // Submit `r` and block the calling thread until the scheduler grants it
  // a service slot.
  void acquire(TransferRequest* r);
  // Return the slot and hand it to the next scheduled request, waking
  // exactly that request's thread.
  void release();

  // --- admission, substrate-driven (the sim engine pumps explicitly) ---
  // Make `r` schedulable without waiting (the caller parks itself and is
  // resumed by its substrate when try_grant returns `r`).
  void submit(TransferRequest* r);
  // Drain pending shard operations and, if a slot is free and the
  // scheduler picks a request, consume the slot and return that request.
  // Returns nullptr when no slot is free or nothing should run now.
  TransferRequest* try_grant();
  // Return a slot without pumping (the sim schedules its own pump).
  void release_slot() { free_.fetch_add(1, std::memory_order_release); }
  // Non-work-conserving hold hint from the scheduler (0 = none).
  Nanos hold_until() const { return tm_.hold_until(); }

  // --- concurrency-model selection (thread-safe) ---
  ConcurrencyModel pick_model();
  void report_model(ConcurrencyModel m, double metric_value);

  int free_slots() const { return free_.load(std::memory_order_relaxed); }
  TransferManager& tm() { return tm_; }

  // --- admission control (optional) ---
  // When set, every create_request/complete pair is reported to the
  // controller, keeping its outstanding counts exact no matter which
  // substrate (or protocol handler) drives the lifecycle. The admit()
  // *decision* stays with the caller — the dispatcher or sim client
  // consults the controller before creating the request at all.
  void set_admission(AdmissionController* a) { admission_ = a; }
  AdmissionController* admission() const { return admission_; }

 private:
  enum class OpKind : std::uint8_t { submit, charge };
  struct Op {
    std::uint64_t seq = 0;
    TransferRequest* r = nullptr;
    OpKind kind = OpKind::submit;
    std::int64_t bytes = 0;
  };
  struct alignas(64) Shard {
    Mutex mu{lockrank::Rank::transfer_shard, "transfer.shard"};
    std::vector<Op> ops GUARDED_BY(mu);
  };
  static constexpr int kShards = 8;

  Shard& shard_for(const TransferRequest* r);
  void push_op(TransferRequest* r, OpKind kind, std::int64_t bytes);
  // Move every pending shard op into drain_buf_, restore global submission
  // order, and apply to the scheduler.
  void drain_locked() REQUIRES(sched_mu_);
  // Drain + grant free slots to scheduled requests, waking their threads.
  // Loops until no pump request raced in behind it.
  void pump();

  TransferManager& tm_;
  AdmissionController* admission_ = nullptr;
  std::atomic<int> free_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> seq_{1};
  // Outstanding pump requests; the thread whose increment finds 0 pumps on
  // behalf of everyone who piles on meanwhile.
  std::atomic<std::int64_t> pump_pending_{0};
  // Scheduler + drain (single writer).
  Mutex sched_mu_{lockrank::Rank::transfer_sched, "transfer.sched"};
  // Request registry (create/complete).
  Mutex reg_mu_{lockrank::Rank::transfer_registry, "transfer.registry"};
  // Gray-box cache model (create/charge).
  Mutex cache_mu_{lockrank::Rank::transfer_cache, "transfer.cache"};
  // Adaptive selector.
  Mutex sel_mu_{lockrank::Rank::transfer_selector, "transfer.selector"};
  std::vector<Op> drain_buf_ GUARDED_BY(sched_mu_);
};

}  // namespace nest::transfer
