#include "transfer/core.h"

#include <algorithm>
#include <functional>

#include "obs/stats.h"

namespace nest::transfer {

TransferCore::TransferCore(TransferManager& tm, int slots)
    : tm_(tm), free_(slots) {
  drain_buf_.reserve(64);
}

TransferCore::Shard& TransferCore::shard_for(const TransferRequest* r) {
  return shards_[std::hash<std::string>()(r->protocol) %
                 static_cast<std::size_t>(kShards)];
}

void TransferCore::push_op(TransferRequest* r, OpKind kind,
                           std::int64_t bytes) {
  Op op{seq_.fetch_add(1, std::memory_order_relaxed), r, kind, bytes};
  if (kind == OpKind::submit) r->submit_seq = op.seq;
  Shard& s = shard_for(r);
  MutexLock lock(s.mu);
  s.ops.push_back(op);
}

void TransferCore::drain_locked() {
  drain_buf_.clear();
  for (Shard& s : shards_) {
    MutexLock lock(s.mu);
    if (s.ops.empty()) continue;
    drain_buf_.insert(drain_buf_.end(), s.ops.begin(), s.ops.end());
    s.ops.clear();
  }
  if (drain_buf_.empty()) return;
  // Each shard is FIFO per submitting thread; the global stamp restores
  // one arrival order across shards, so single-threaded substrates see
  // the exact op sequence they issued (policy traces stay deterministic).
  std::sort(drain_buf_.begin(), drain_buf_.end(),
            [](const Op& a, const Op& b) { return a.seq < b.seq; });
  for (const Op& op : drain_buf_) {
    if (op.kind == OpKind::submit) {
      tm_.enqueue(op.r);
    } else {
      tm_.scheduler().charge(op.r, op.bytes);
    }
  }
}

TransferRequest* TransferCore::create_request(const std::string& protocol,
                                              Direction dir,
                                              const std::string& path,
                                              std::int64_t size,
                                              const std::string& user) {
  TransferRequest* r;
  {
    // Registry insert + cache-model residency probe happen inside
    // TransferManager::create_request; hold both domains, acquired in
    // rank order (registry, then cache).
    MutexLock reg(reg_mu_);
    MutexLock cache(cache_mu_);
    r = tm_.create_request(protocol, dir, path, size, user);
  }
  auto& stats = obs::Stats::global();
  (r->cached_fraction >= 0.99 ? stats.cache_hot : stats.cache_cold)
      .fetch_add(1, std::memory_order_relaxed);
  if (size > 0) {
    stats.bytes_queued.fetch_add(size, std::memory_order_relaxed);
  }
  // Outside reg/cache locks: the admission lock ranks below them.
  if (admission_ != nullptr) admission_->on_create(protocol, user);
  return r;
}

void TransferCore::charge(TransferRequest* r, std::int64_t bytes) {
  // Shrink the queued-bytes gauge by this quantum's progress against the
  // declared size (open-ended transfers, size 0, never entered it).
  if (r->size > 0 && bytes > 0) {
    const std::int64_t before = std::min(r->done, r->size);
    const std::int64_t after = std::min(r->done + bytes, r->size);
    if (after > before) {
      obs::Stats::global().bytes_queued.fetch_sub(after - before,
                                                  std::memory_order_relaxed);
    }
  }
  r->done += bytes;  // owner-thread field
  tm_.account_bytes(r->protocol, bytes);
  {
    MutexLock lock(cache_mu_);
    tm_.cache_model().observe_access(r->path, r->done - bytes, bytes);
  }
  push_op(r, OpKind::charge, bytes);
}

void TransferCore::complete(TransferRequest* r) {
  // Return the admission slot (and feed the completion-rate estimator)
  // before any transfer lock: the admission lock ranks below them all.
  if (admission_ != nullptr) admission_->on_complete(r->protocol, r->user);
  // Bytes that were admitted but never moved (failed/short transfer)
  // leave the queued-bytes gauge here; read r->done before the registry
  // frees the request.
  if (r->size > 0) {
    const std::int64_t left = r->size - std::min(r->done, r->size);
    if (left > 0) {
      obs::Stats::global().bytes_queued.fetch_sub(left,
                                                  std::memory_order_relaxed);
    }
  }
  // Flush so no shard still holds an op referencing `r` after the
  // registry frees it. Holding sched_mu_ here also fences the last grant:
  // a pump stores/notifies the grant word only under sched_mu_, so it can
  // never touch `r` after this complete() starts erasing it.
  {
    MutexLock lock(sched_mu_);
    drain_locked();
  }
  MutexLock reg(reg_mu_);
  tm_.complete(r);
}

void TransferCore::submit(TransferRequest* r) {
  push_op(r, OpKind::submit, 0);
}

void TransferCore::acquire(TransferRequest* r) {
  std::atomic_ref<std::uint32_t> grant(r->grant_word);
  grant.store(0, std::memory_order_relaxed);
  submit(r);
  pump();
  std::uint32_t seen = grant.load(std::memory_order_acquire);
  if (seen != 0) {
    // Granted by our own pump: zero hold, and no clock reads on the
    // uncontended fast path.
    obs::Stats::global().sched_hold.record(0);
    return;
  }
  const Nanos wait_start = tm_.clock().now();
  while (seen == 0) {
    grant.wait(0, std::memory_order_acquire);
    seen = grant.load(std::memory_order_acquire);
  }
  obs::Stats::global().sched_hold.record(tm_.clock().now() - wait_start);
}

void TransferCore::release() {
  free_.fetch_add(1, std::memory_order_release);
  pump();
}

TransferRequest* TransferCore::try_grant() {
  MutexLock lock(sched_mu_);
  drain_locked();
  if (free_.load(std::memory_order_relaxed) <= 0) return nullptr;
  TransferRequest* r = tm_.next();
  if (r != nullptr) free_.fetch_sub(1, std::memory_order_relaxed);
  return r;
}

void TransferCore::pump() {
  // Elect one pumper: the thread whose increment finds the counter at
  // zero drains on behalf of every caller that piles on while it works,
  // so acquire/release never block behind the scheduler lock.
  if (pump_pending_.fetch_add(1, std::memory_order_acq_rel) != 0) return;
  std::int64_t handled = 0;
  do {
    handled = pump_pending_.load(std::memory_order_acquire);
    {
      MutexLock lock(sched_mu_);
      drain_locked();
      while (free_.load(std::memory_order_relaxed) > 0) {
        TransferRequest* r = tm_.next();
        if (r == nullptr) break;  // empty or non-work-conserving hold
        free_.fetch_sub(1, std::memory_order_relaxed);
        std::atomic_ref<std::uint32_t> grant(r->grant_word);
        grant.store(1, std::memory_order_release);
        grant.notify_one();
      }
    }
  } while (pump_pending_.fetch_sub(handled, std::memory_order_acq_rel) !=
           handled);
}

ConcurrencyModel TransferCore::pick_model() {
  MutexLock lock(sel_mu_);
  return tm_.pick_model();
}

void TransferCore::report_model(ConcurrencyModel m, double metric_value) {
  MutexLock lock(sel_mu_);
  tm_.report_model(m, metric_value);
}

}  // namespace nest::transfer
