#include "transfer/concurrency.h"

#include <cassert>

namespace nest::transfer {

const char* model_name(ConcurrencyModel m) noexcept {
  switch (m) {
    case ConcurrencyModel::threads: return "threads";
    case ConcurrencyModel::processes: return "processes";
    case ConcurrencyModel::events: return "events";
    case ConcurrencyModel::staged: return "staged";
  }
  return "?";
}

AdaptiveSelector::AdaptiveSelector() : AdaptiveSelector(Options{}) {}

AdaptiveSelector::AdaptiveSelector(Options opts)
    : opts_(std::move(opts)), rng_(opts_.seed) {
  assert(!opts_.enabled.empty());
  for (const ConcurrencyModel m : opts_.enabled) {
    state_[static_cast<int>(m)].enabled = true;
  }
}

bool AdaptiveSelector::warming_up() const {
  for (const auto& s : state_) {
    if (s.enabled && s.picks < opts_.warmup_per_model) return true;
  }
  return false;
}

ConcurrencyModel AdaptiveSelector::pick() {
  auto advance_rr = [&]() -> ConcurrencyModel {
    for (int i = 0; i < kModelCount; ++i) {
      rr_cursor_ = (rr_cursor_ + 1) % kModelCount;
      if (state_[rr_cursor_].enabled) break;
    }
    return static_cast<ConcurrencyModel>(rr_cursor_);
  };

  ConcurrencyModel chosen;
  if (warming_up()) {
    chosen = advance_rr();  // equal distribution at first
  } else if (rng_.uniform_real() < opts_.explore_fraction) {
    chosen = advance_rr();  // periodic probe of all models
  } else {
    chosen = best();
  }
  ++state_[static_cast<int>(chosen)].picks;
  return chosen;
}

void AdaptiveSelector::report(ConcurrencyModel m, double value) {
  // Normalize to higher-is-better.
  const double goodness =
      opts_.metric == AdaptMetric::latency ? -value : value;
  ModelState& s = state_[static_cast<int>(m)];
  ++s.reports;
  if (!s.scored) {
    s.score = goodness;
    s.scored = true;
  } else {
    s.score = opts_.alpha * goodness + (1.0 - opts_.alpha) * s.score;
  }
}

ConcurrencyModel AdaptiveSelector::best() const {
  int best_idx = -1;
  for (int i = 0; i < kModelCount; ++i) {
    const ModelState& s = state_[i];
    if (!s.enabled) continue;
    if (best_idx < 0) {
      best_idx = i;
      continue;
    }
    const ModelState& b = state_[best_idx];
    // Unscored models rank below scored ones once scores exist.
    if (s.scored && (!b.scored || s.score > b.score)) best_idx = i;
  }
  return static_cast<ConcurrencyModel>(best_idx < 0 ? 0 : best_idx);
}

}  // namespace nest::transfer
