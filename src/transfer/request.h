// Transfer request descriptor shared by every scheduler and both substrates
// (real epoll server and discrete-event simulator).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace nest::transfer {

enum class Direction { read, write };

struct TransferRequest {
  std::uint64_t id = 0;
  // Protocol class for proportional-share scheduling ("chirp", "gridftp",
  // "http", "nfs", "ftp").
  std::string protocol;
  // Authenticated user ("" for anonymous); the paper's planned per-user
  // proportional share uses this as the scheduling class instead.
  std::string user;
  Direction dir = Direction::read;
  std::string path;
  std::int64_t size = 0;   // expected bytes (0 when unknown)
  std::int64_t done = 0;   // bytes moved so far
  Nanos arrival = 0;
  // Estimated resident fraction at admission, from the gray-box cache
  // model; drives cache-aware scheduling.
  double cached_fraction = 0.0;
  // Scratch for schedulers (e.g. queue position bookkeeping).
  std::int64_t sched_tag = 0;
  // --- TransferCore fields ---
  // Global submission-order stamp: TransferCore's sharded submission
  // queues are merged back into scheduler arrival order by this number.
  std::uint64_t submit_seq = 0;
  // Real-mode slot-grant word (1 = slot granted). Accessed only through
  // std::atomic_ref: the owning connection thread resets it before each
  // submission and blocks on it; the granting pump stores 1 and notifies.
  // A plain word (not std::atomic<>) so the struct stays copyable for
  // single-threaded policy tests.
  std::uint32_t grant_word = 0;
};

}  // namespace nest::transfer
