// Transfer request descriptor shared by every scheduler and both substrates
// (real epoll server and discrete-event simulator).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace nest::transfer {

enum class Direction { read, write };

struct TransferRequest {
  std::uint64_t id = 0;
  // Protocol class for proportional-share scheduling ("chirp", "gridftp",
  // "http", "nfs", "ftp").
  std::string protocol;
  // Authenticated user ("" for anonymous); the paper's planned per-user
  // proportional share uses this as the scheduling class instead.
  std::string user;
  Direction dir = Direction::read;
  std::string path;
  std::int64_t size = 0;   // expected bytes (0 when unknown)
  std::int64_t done = 0;   // bytes moved so far
  Nanos arrival = 0;
  // Estimated resident fraction at admission, from the gray-box cache
  // model; drives cache-aware scheduling.
  double cached_fraction = 0.0;
  // Scratch for schedulers (e.g. queue position bookkeeping).
  std::int64_t sched_tag = 0;
};

}  // namespace nest::transfer
