// Chirp: NeST's native protocol (paper Section 3). Line-oriented dialect:
//
//   server greets:  220 nest chirp ready
//   AUTH <name> | AUTH anonymous
//     -> 334 <challenge>   (for named subjects)
//   RESPONSE <hex>         -> 230 ok | 530 denied
//   MKDIR <p> / RMDIR <p> / UNLINK <p> / STAT <p> / LIST <p>
//   RENAME <from> <to>
//   LOT CREATE <bytes> <seconds> [GROUP]   -> 200 <lot-id>
//   LOT RENEW <id> <seconds> / LOT TERMINATE <id> / LOT QUERY <id>
//   ACL SET <dir> <classad-entry...> / ACL GET <dir>
//   AD                     (resource ClassAd)
//   GET <p>                -> 150 <size> + raw bytes
//   PUT <p> <size>         -> 150 ok, client sends raw bytes, -> 226 ok
//   THIRDPUT <p> <host> <port> <remote-p>
//                          -> 226 on success: the server pushes its own
//                             file to another NeST (three-party transfer,
//                             paper Section 2.1), authenticating with its
//                             configured appliance identity
//   QUIT
//
// Replies: "2xx/5xx text". Bulk textual payloads are framed as
// "213 <byte-count>" followed by exactly that many raw bytes.
// Chirp is the only protocol with lot management, per the paper.
#pragma once

#include "protocol/handler.h"

namespace nest::protocol {

class ChirpHandler final : public ProtocolHandler {
 public:
  using ProtocolHandler::ProtocolHandler;
  const char* name() const override { return "chirp"; }
  void serve(net::TcpStream& stream) override;
};

// Status -> Chirp reply line ("550 not_found: /x").
std::string chirp_error_line(const Status& s);

}  // namespace nest::protocol
