// NFS service: the restricted NFSv2 subset the paper supports, over our
// ONC-RPC/XDR on UDP, with the MOUNT protocol handled by the same service
// (paper footnote 1: "within NeST, mount is handled by the NFS handler").
//
// Procedures: NULL, GETATTR, LOOKUP, READ, WRITE, CREATE, REMOVE, RENAME,
// MKDIR, RMDIR, READDIR, STATFS; MOUNT: NULL, MNT, UMNT.
//
// Authentication: the paper permits only anonymous access for NFS (GSI is
// Chirp/GridFTP-only), so requests run as the anonymous principal and the
// ACL layer governs what that may do. AUTH_UNIX credentials are parsed and
// may optionally be trusted (trust_auth_unix) to form a named — but still
// unauthenticated-for-GSI-purposes — principal, mirroring classic NFS.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>

#include "dispatcher/dispatcher.h"
#include "net/socket.h"
#include "protocol/executor.h"
#include "protocol/xdr.h"

namespace nest::protocol {

// Program numbers / procedures.
constexpr std::uint32_t kNfsProg = 100003;
constexpr std::uint32_t kNfsVers = 2;
constexpr std::uint32_t kMountProg = 100005;
constexpr std::uint32_t kMountVers = 1;

enum NfsProc : std::uint32_t {
  NFSPROC_NULL = 0,
  NFSPROC_GETATTR = 1,
  NFSPROC_LOOKUP = 4,
  NFSPROC_READ = 6,
  NFSPROC_WRITE = 8,
  NFSPROC_CREATE = 9,
  NFSPROC_REMOVE = 10,
  NFSPROC_RENAME = 11,
  NFSPROC_MKDIR = 14,
  NFSPROC_RMDIR = 15,
  NFSPROC_READDIR = 16,
  NFSPROC_STATFS = 17,
};

enum MountProc : std::uint32_t {
  MOUNTPROC_NULL = 0,
  MOUNTPROC_MNT = 1,
  MOUNTPROC_UMNT = 3,
};

enum NfsStat : std::uint32_t {
  NFS_OK = 0,
  NFSERR_PERM = 1,
  NFSERR_NOENT = 2,
  NFSERR_ACCES = 13,
  NFSERR_EXIST = 17,
  NFSERR_NOTDIR = 20,
  NFSERR_ISDIR = 21,
  NFSERR_NOSPC = 28,
  NFSERR_NOTEMPTY = 66,
  NFSERR_STALE = 70,
  // NFSv3's "media loaded by a jukebox/HSM, retry" code — the native way
  // to tell a client that data is being staged from tertiary storage.
  NFSERR_JUKEBOX = 10008,
};

constexpr std::size_t kFhSize = 32;
constexpr std::int64_t kNfsBlockSize = 8192;

NfsStat errc_to_nfs(Errc code) noexcept;

class NfsService {
 public:
  struct Options {
    int port = 0;  // UDP; 0 = ephemeral
    bool trust_auth_unix = false;
    int idle_timeout_ms = 500;  // recv poll granularity for shutdown
  };

  NfsService(dispatcher::Dispatcher& dispatcher, TransferExecutor& executor,
             Options options);
  ~NfsService();

  NEST_NODISCARD Status start();
  void stop();
  uint16_t port() const { return port_; }

 private:
  void run();
  // Handle one datagram; returns the reply bytes.
  std::vector<char> handle(std::span<const char> datagram);
  void handle_nfs(const xdr::RpcCall& call, xdr::Decoder& args,
                  xdr::Encoder& out);
  void handle_mount(const xdr::RpcCall& call, xdr::Decoder& args,
                    xdr::Encoder& out);

  // File-handle registry: u64 id <-> virtual path.
  std::uint64_t handle_for(const std::string& path);
  NEST_NODISCARD Result<std::string> path_for(std::span<const char> fh);
  void encode_fh(xdr::Encoder& out, std::uint64_t id);
  void encode_fattr(xdr::Encoder& out, const std::string& path,
                    const storage::FileStat& st);

  storage::Principal principal_for(const xdr::RpcCall& call) const;

  dispatcher::Dispatcher& dispatcher_;
  TransferExecutor& executor_;
  Options options_;
  std::unique_ptr<net::UdpSocket> socket_;
  std::thread worker_;
  std::atomic<bool> stopping_{false};
  uint16_t port_ = 0;

  Mutex mu_{lockrank::Rank::nfs_handles, "nfs.handles"};
  std::map<std::uint64_t, std::string> id_to_path_ GUARDED_BY(mu_);
  std::map<std::string, std::uint64_t> path_to_id_ GUARDED_BY(mu_);
  std::uint64_t next_id_ GUARDED_BY(mu_) = 2;  // 1 is the root handle
};

}  // namespace nest::protocol
