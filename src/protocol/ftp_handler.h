// FTP (RFC 959 subset) and GridFTP handlers.
//
// FTP: USER/PASS (anonymous only, per the paper's security model), CWD,
// PWD, TYPE, SYST, PASV, PORT, RETR, STOR, LIST, NLST, DELE, MKD, RMD,
// SIZE, QUIT. PASV+PORT together enable classic FTP third-party transfers
// (one control client steering data between two servers), which is how the
// paper's Figure 2 staging step moves files NeST-to-NeST.
//
// GridFTP extends FTP with:
//   AUTH GSI -> 334 <challenge>; ADAT <subject> <response> -> 235
//   (simulated GSI; see protocol/gsi.h),
//   MODE E (extended block mode: 17-byte header per block with
//   EOF/offset/length, as in the GridFTP spec) and OPTS RETR
//   Parallelism=n (accepted; blocks are interleaved on the data channel).
// Per the paper, GridFTP requires GSI authentication; plain FTP is
// anonymous-only.
#pragma once

#include "protocol/handler.h"

namespace nest::protocol {

class FtpHandler : public ProtocolHandler {
 public:
  explicit FtpHandler(ServerContext ctx, bool gridftp = false)
      : ProtocolHandler(ctx), gridftp_(gridftp) {}
  const char* name() const override { return gridftp_ ? "gridftp" : "ftp"; }
  void serve(net::TcpStream& stream) override;

 private:
  bool gridftp_;
};

class GridFtpHandler final : public FtpHandler {
 public:
  explicit GridFtpHandler(ServerContext ctx)
      : FtpHandler(ctx, /*gridftp=*/true) {}
};

// MODE E block framing used by the GridFTP data channel.
struct ModeEBlock {
  static constexpr char kEofFlag = 0x40;
  // Upper bound on a received block's declared length. The wire header
  // carries an attacker-controlled 64-bit count; recv() rejects anything
  // larger instead of attempting the allocation. Well above any block
  // size a NeST peer emits (executor blocks are 64 KiB).
  static constexpr std::uint64_t kMaxBlockBytes = 16ull * 1024 * 1024;
  NEST_NODISCARD
  static Status send(net::TcpStream& s, std::span<const char> data,
                     std::int64_t offset, bool eof);
  // Receives one block; returns false on the EOF block.
  NEST_NODISCARD
  static Result<bool> recv(net::TcpStream& s, std::vector<char>& data,
                           std::int64_t& offset);
};

}  // namespace nest::protocol
