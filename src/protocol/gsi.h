// Simulated Grid Security Infrastructure (GSI) authentication.
//
// The paper allows only GSI authentication (used by Chirp and GridFTP);
// other protocols get anonymous access. Real GSI is X.509 certificates
// over TLS; this simulation preserves the *protocol-visible* structure — a
// subject registry, a challenge/response handshake, and an authenticated
// Principal out the other end — without real cryptography (documented
// substitution; see DESIGN.md). The keyed hash is NOT secure and must not
// be used outside this reproduction.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/acl.h"

namespace nest::protocol {

// Subject registry: the appliance's grid-mapfile equivalent.
class GsiRegistry {
 public:
  void add_user(const std::string& name, const std::string& secret,
                std::vector<std::string> groups = {});
  bool has_user(const std::string& name) const;

  // Server side: verify a challenge response.
  NEST_NODISCARD
  Result<storage::Principal> verify(const std::string& name,
                                    const std::string& challenge,
                                    const std::string& response,
                                    const std::string& protocol) const;

  // Client/shared: compute the response for (secret, challenge).
  static std::string respond(const std::string& secret,
                             const std::string& challenge);

  // Server side: produce a fresh challenge nonce.
  std::string make_challenge();

 private:
  struct Entry {
    std::string secret;
    std::vector<std::string> groups;
  };
  std::map<std::string, Entry> users_;
  std::uint64_t nonce_counter_ = 0;
};

}  // namespace nest::protocol
