#include "protocol/gsi.h"

namespace nest::protocol {
namespace {

// FNV-1a over secret || ':' || challenge, hex-encoded. A stand-in keyed
// hash for the simulated handshake only.
std::string keyed_hash(const std::string& secret,
                       const std::string& challenge) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](const std::string& s) {
    for (const unsigned char c : s) {
      h ^= c;
      h *= 0x100000001b3ull;
    }
  };
  mix(secret);
  h ^= ':';
  h *= 0x100000001b3ull;
  mix(challenge);
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

void GsiRegistry::add_user(const std::string& name, const std::string& secret,
                           std::vector<std::string> groups) {
  users_[name] = Entry{secret, std::move(groups)};
}

bool GsiRegistry::has_user(const std::string& name) const {
  return users_.count(name) != 0;
}

std::string GsiRegistry::respond(const std::string& secret,
                                 const std::string& challenge) {
  return keyed_hash(secret, challenge);
}

std::string GsiRegistry::make_challenge() {
  return "nonce-" + std::to_string(++nonce_counter_);
}

Result<storage::Principal> GsiRegistry::verify(
    const std::string& name, const std::string& challenge,
    const std::string& response, const std::string& protocol) const {
  const auto it = users_.find(name);
  if (it == users_.end())
    return Error{Errc::not_authenticated, "unknown subject " + name};
  if (keyed_hash(it->second.secret, challenge) != response)
    return Error{Errc::not_authenticated, "bad response for " + name};
  storage::Principal p;
  p.name = name;
  p.groups = it->second.groups;
  p.authenticated = true;
  p.protocol = protocol;
  return p;
}

}  // namespace nest::protocol
