#include "protocol/xdr.h"

#include <cstring>

namespace nest::protocol::xdr {

namespace {
constexpr char kPad[4] = {0, 0, 0, 0};
std::size_t pad_len(std::size_t n) { return (4 - (n % 4)) % 4; }
}  // namespace

void Encoder::put_u32(std::uint32_t v) {
  const char bytes[4] = {
      static_cast<char>((v >> 24) & 0xff), static_cast<char>((v >> 16) & 0xff),
      static_cast<char>((v >> 8) & 0xff), static_cast<char>(v & 0xff)};
  buf_.insert(buf_.end(), bytes, bytes + 4);
}

void Encoder::put_u64(std::uint64_t v) {
  put_u32(static_cast<std::uint32_t>(v >> 32));
  put_u32(static_cast<std::uint32_t>(v & 0xffffffffull));
}

void Encoder::put_opaque(std::span<const char> data) {
  put_u32(static_cast<std::uint32_t>(data.size()));
  put_fixed(data);
}

void Encoder::put_fixed(std::span<const char> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  buf_.insert(buf_.end(), kPad, kPad + pad_len(data.size()));
}

Result<std::uint32_t> Decoder::get_u32() {
  if (remaining() < 4) return Error{Errc::protocol_error, "xdr underflow"};
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data() + pos_);
  pos_ += 4;
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

Result<std::int32_t> Decoder::get_i32() {
  auto v = get_u32();
  if (!v.ok()) return v.error();
  return static_cast<std::int32_t>(*v);
}

Result<std::uint64_t> Decoder::get_u64() {
  auto hi = get_u32();
  if (!hi.ok()) return hi.error();
  auto lo = get_u32();
  if (!lo.ok()) return lo.error();
  return (static_cast<std::uint64_t>(*hi) << 32) | *lo;
}

Result<bool> Decoder::get_bool() {
  auto v = get_u32();
  if (!v.ok()) return v.error();
  return *v != 0;
}

Result<std::vector<char>> Decoder::get_opaque(std::size_t max_len) {
  auto len = get_u32();
  if (!len.ok()) return len.error();
  if (*len > max_len) return Error{Errc::protocol_error, "opaque too long"};
  return get_fixed(*len);
}

Result<std::vector<char>> Decoder::get_fixed(std::size_t len) {
  const std::size_t padded = len + pad_len(len);
  if (remaining() < padded)
    return Error{Errc::protocol_error, "xdr underflow"};
  std::vector<char> out(data_.begin() + pos_, data_.begin() + pos_ + len);
  pos_ += padded;
  return out;
}

Result<std::string> Decoder::get_string(std::size_t max_len) {
  auto v = get_opaque(max_len);
  if (!v.ok()) return v.error();
  return std::string(v->begin(), v->end());
}

Status Decoder::skip(std::size_t bytes) {
  const std::size_t padded = bytes + pad_len(bytes);
  if (remaining() < padded) return Status{Errc::protocol_error, "xdr skip"};
  pos_ += padded;
  return {};
}

Result<RpcCall> decode_call(Decoder& dec) {
  RpcCall call;
  auto xid = dec.get_u32();
  if (!xid.ok()) return xid.error();
  call.xid = *xid;
  auto mtype = dec.get_u32();
  if (!mtype.ok() || *mtype != kMsgCall)
    return Error{Errc::protocol_error, "not a call"};
  auto rpcvers = dec.get_u32();
  if (!rpcvers.ok() || *rpcvers != kRpcVersion)
    return Error{Errc::protocol_error, "rpc version"};
  auto prog = dec.get_u32();
  auto vers = dec.get_u32();
  auto proc = dec.get_u32();
  if (!prog.ok() || !vers.ok() || !proc.ok())
    return Error{Errc::protocol_error, "call header"};
  call.prog = *prog;
  call.vers = *vers;
  call.proc = *proc;
  // Credential.
  auto cred_flavor = dec.get_u32();
  if (!cred_flavor.ok()) return cred_flavor.error();
  auto cred_body = dec.get_opaque(4096);
  if (!cred_body.ok()) return cred_body.error();
  if (*cred_flavor == kAuthUnix) {
    Decoder cred(std::span<const char>(cred_body->data(), cred_body->size()));
    (void)cred.get_u32();  // stamp
    auto machine = cred.get_string(256);
    auto uid = cred.get_u32();
    if (machine.ok()) call.unix_machine = *machine;
    if (uid.ok()) call.unix_uid = *uid;
  }
  // Verifier.
  auto verf_flavor = dec.get_u32();
  if (!verf_flavor.ok()) return verf_flavor.error();
  auto verf_body = dec.get_opaque(4096);
  if (!verf_body.ok()) return verf_body.error();
  return call;
}

void encode_call(Encoder& enc, std::uint32_t xid, std::uint32_t prog,
                 std::uint32_t vers, std::uint32_t proc) {
  enc.put_u32(xid);
  enc.put_u32(kMsgCall);
  enc.put_u32(kRpcVersion);
  enc.put_u32(prog);
  enc.put_u32(vers);
  enc.put_u32(proc);
  enc.put_u32(kAuthNone);
  enc.put_u32(0);  // empty cred body
  enc.put_u32(kAuthNone);
  enc.put_u32(0);  // empty verifier
}

void encode_accepted_reply(Encoder& enc, std::uint32_t xid,
                           std::uint32_t accept_stat) {
  enc.put_u32(xid);
  enc.put_u32(kMsgReply);
  enc.put_u32(kReplyAccepted);
  enc.put_u32(kAuthNone);
  enc.put_u32(0);  // verifier body
  enc.put_u32(accept_stat);
}

Status decode_accepted_reply(Decoder& dec, std::uint32_t expect_xid) {
  auto xid = dec.get_u32();
  if (!xid.ok()) return Status{xid.error()};
  if (*xid != expect_xid) return Status{Errc::protocol_error, "xid mismatch"};
  auto mtype = dec.get_u32();
  if (!mtype.ok() || *mtype != kMsgReply)
    return Status{Errc::protocol_error, "not a reply"};
  auto stat = dec.get_u32();
  if (!stat.ok() || *stat != kReplyAccepted)
    return Status{Errc::protocol_error, "rpc denied"};
  auto verf_flavor = dec.get_u32();
  if (!verf_flavor.ok()) return Status{verf_flavor.error()};
  auto verf_body = dec.get_opaque(4096);
  if (!verf_body.ok()) return Status{verf_body.error()};
  auto accept = dec.get_u32();
  if (!accept.ok()) return Status{accept.error()};
  if (*accept != kAcceptSuccess)
    return Status{Errc::protocol_error,
                  "rpc accept_stat " + std::to_string(*accept)};
  return {};
}

}  // namespace nest::protocol::xdr
