#include "protocol/http_handler.h"

#include <map>
#include <optional>
#include <sstream>
#include <utility>

#include "common/string_util.h"
#include "obs/trace.h"

namespace nest::protocol {
namespace {

struct HttpRequest {
  std::string method;
  std::string path;
  std::string version;
  std::map<std::string, std::string> headers;  // lower-cased keys

  bool keep_alive() const {
    const auto it = headers.find("connection");
    if (it == headers.end()) return false;
    return to_lower(it->second) == "keep-alive";
  }
  std::int64_t content_length() const {
    const auto it = headers.find("content-length");
    if (it == headers.end()) return -1;
    return parse_int(it->second).value_or(-1);
  }
  // "Range: bytes=a-b" / "bytes=a-" / "bytes=-n"; nullopt when absent or
  // malformed (malformed ranges fall back to a full 200 per RFC).
  std::optional<std::pair<std::int64_t, std::int64_t>> range() const {
    const auto it = headers.find("range");
    if (it == headers.end()) return std::nullopt;
    std::string_view v = it->second;
    if (!starts_with_icase(v, "bytes=")) return std::nullopt;
    v.remove_prefix(6);
    const auto dash = v.find('-');
    if (dash == std::string_view::npos) return std::nullopt;
    const auto first = parse_int(v.substr(0, dash));
    const auto last = parse_int(v.substr(dash + 1));
    if (!first && !last) return std::nullopt;
    return std::make_pair(first.value_or(-1), last.value_or(-1));
  }
};

const char* status_text(int code) {
  switch (code) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 416: return "Range Not Satisfiable";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 411: return "Length Required";
    case 500: return "Internal Server Error";
    case 507: return "Insufficient Storage";
  }
  return "Unknown";
}

int errc_to_http(Errc code) {
  switch (code) {
    case Errc::ok: return 200;
    case Errc::not_found: return 404;
    case Errc::permission_denied:
    case Errc::not_authenticated: return 403;
    case Errc::no_space:
    case Errc::lot_expired: return 507;
    case Errc::exists:
    case Errc::busy: return 409;
    case Errc::staging: return 503;  // cold tier; Retry-After a recall
    case Errc::invalid_argument:
    case Errc::protocol_error: return 400;
    case Errc::is_dir:
    case Errc::not_dir: return 405;
    default: return 500;
  }
}

bool send_response(net::TcpStream& s, int code, bool keep_alive,
                   const std::string& body = {},
                   std::int64_t content_length = -1,
                   const std::string& extra_headers = {}) {
  std::ostringstream os;
  os << "HTTP/1.0 " << code << " " << status_text(code) << "\r\n";
  os << "Server: nest/0.9\r\n";
  os << "Content-Length: "
     << (content_length >= 0 ? content_length
                             : static_cast<std::int64_t>(body.size()))
     << "\r\n";
  if (keep_alive) os << "Connection: keep-alive\r\n";
  os << extra_headers;
  os << "\r\n";
  // Status line, headers, and body leave in one writev — one syscall and
  // (with TCP_NODELAY) one segment for small responses.
  const std::string head = os.str();
  return s.send_vecs({std::span<const char>(head.data(), head.size()),
                      std::span<const char>(body.data(), body.size())})
      .ok();
}

Result<HttpRequest> read_request(net::TcpStream& s) {
  auto line = s.read_line();
  if (!line.ok()) return line.error();
  const auto words = split_ws(*line);
  if (words.size() != 3)
    return Error{Errc::protocol_error, "bad request line"};
  HttpRequest req;
  req.method = to_lower(words[0]);
  req.path = words[1];
  req.version = words[2];
  while (true) {
    auto header = s.read_line();
    if (!header.ok()) return header.error();
    if (header->empty()) break;
    const auto colon = header->find(':');
    if (colon == std::string::npos) continue;
    req.headers[to_lower(std::string(trim(header->substr(0, colon))))] =
        std::string(trim(header->substr(colon + 1)));
  }
  return req;
}

}  // namespace

void HttpHandler::serve(net::TcpStream& stream) {
  storage::Principal anon;
  anon.protocol = "http";

  while (true) {
    auto req_r = read_request(stream);
    if (!req_r.ok()) return;
    const HttpRequest& req = *req_r;
    const bool keep = req.keep_alive();

    NestRequest nreq;
    nreq.principal = anon;
    nreq.protocol = "http";
    nreq.path = req.path;

    // Monitoring endpoints (reserved paths, shadowing any stored file):
    // /stats — live appliance statistics; /trace — retained trace spans.
    if (req.method == "get" && req.path == "/stats") {
      if (!send_response(stream, 200, keep, ctx_.dispatcher->stats_json()))
        return;
      if (!keep) return;
      continue;
    }
    if (req.method == "get" && req.path == "/trace") {
      if (!send_response(stream, 200, keep,
                         obs::TraceBuffer::instance().dump_json())) {
        return;
      }
      if (!keep) return;
      continue;
    }

    if (req.method == "get" || req.method == "head") {
      obs::Span pspan(obs::Layer::protocol, "get");
      nreq.op = NestOp::get;
      auto ticket = ctx_.dispatcher->approve_get(nreq);
      if (!ticket.ok()) {
        if (!send_response(stream, errc_to_http(ticket.code()), keep,
                           ticket.error().to_string() + "\n")) {
          return;
        }
        if (!keep) return;
        continue;
      }
      const auto range = req.range();
      if (range && req.method == "get") {
        // Resolve the range form against the file size.
        std::int64_t first = range->first;
        std::int64_t last = range->second;
        if (first < 0) {  // suffix form: bytes=-n
          first = std::max<std::int64_t>(0, ticket->size - last);
          last = ticket->size - 1;
        } else if (last < 0 || last >= ticket->size) {
          last = ticket->size - 1;
        }
        if (first >= ticket->size || first > last) {
          if (!send_response(stream, 416, keep, {}, 0,
                             "Content-Range: bytes */" +
                                 std::to_string(ticket->size) + "\r\n")) {
            return;
          }
          if (!keep) return;
          continue;
        }
        const std::int64_t length = last - first + 1;
        std::ostringstream cr;
        cr << "Content-Range: bytes " << first << "-" << last << "/"
           << ticket->size << "\r\n";
        if (!send_response(stream, 206, keep, {}, length, cr.str())) return;
        if (!ctx_.executor
                 ->send_file_range("http", *ticket, stream, first, length)
                 .ok()) {
          return;
        }
        if (!keep) return;
        continue;
      }
      if (!send_response(stream, 200, keep, {}, ticket->size)) return;
      if (req.method == "get") {
        if (!ctx_.executor->send_file("http", *ticket, stream).ok()) return;
      }
      if (!keep) return;
      continue;
    }

    if (req.method == "put") {
      obs::Span pspan(obs::Layer::protocol, "put");
      const std::int64_t len = req.content_length();
      if (len < 0) {
        if (!send_response(stream, 411, keep)) return;
        if (!keep) return;
        continue;
      }
      nreq.op = NestOp::put;
      nreq.size = len;
      auto ticket = ctx_.dispatcher->approve_put(nreq);
      if (!ticket.ok()) {
        if (!send_response(stream, errc_to_http(ticket.code()), keep,
                           ticket.error().to_string() + "\n")) {
          return;
        }
        if (!keep) return;
        continue;
      }
      if (!ctx_.executor->recv_file("http", *ticket, stream, len).ok())
        return;
      if (!send_response(stream, 201, keep)) return;
      if (!keep) return;
      continue;
    }

    if (req.method == "delete") {
      obs::Span pspan(obs::Layer::protocol, "unlink");
      nreq.op = NestOp::unlink;
      const auto r = ctx_.dispatcher->execute(nreq);
      if (!send_response(stream,
                         r.status.ok() ? 204 : errc_to_http(r.status.code()),
                         keep)) {
        return;
      }
      if (!keep) return;
      continue;
    }

    if (!send_response(stream, 405, keep)) return;
    if (!keep) return;
  }
}

}  // namespace nest::protocol
