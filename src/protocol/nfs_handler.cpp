#include "protocol/nfs_handler.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/log.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace nest::protocol {

using dispatcher::Reply;

NfsStat errc_to_nfs(Errc code) noexcept {
  switch (code) {
    case Errc::ok: return NFS_OK;
    case Errc::not_found: return NFSERR_NOENT;
    case Errc::exists: return NFSERR_EXIST;
    case Errc::not_dir: return NFSERR_NOTDIR;
    case Errc::is_dir: return NFSERR_ISDIR;
    case Errc::permission_denied:
    case Errc::not_authenticated: return NFSERR_ACCES;
    case Errc::no_space:
    case Errc::lot_expired: return NFSERR_NOSPC;
    case Errc::busy: return NFSERR_NOTEMPTY;
    case Errc::staging: return NFSERR_JUKEBOX;
    default: return NFSERR_PERM;
  }
}

NfsService::NfsService(dispatcher::Dispatcher& dispatcher,
                       TransferExecutor& executor, Options options)
    : dispatcher_(dispatcher), executor_(executor), options_(options) {
  id_to_path_[1] = "/";
  path_to_id_["/"] = 1;
}

NfsService::~NfsService() { stop(); }

Status NfsService::start() {
  auto sock = net::UdpSocket::bind(static_cast<uint16_t>(options_.port));
  if (!sock.ok()) return Status{sock.error()};
  socket_ = std::make_unique<net::UdpSocket>(std::move(sock.value()));
  port_ = socket_->port();
  // Timeout setup is advisory: a socket without it still works.
  (void)socket_->set_read_timeout(options_.idle_timeout_ms);
  worker_ = std::thread([this] { run(); });
  return {};
}

void NfsService::stop() {
  stopping_ = true;
  if (worker_.joinable()) worker_.join();
  socket_.reset();
}

void NfsService::run() {
  std::vector<char> buf(72 * 1024);
  while (!stopping_) {
    std::string ip;
    uint16_t port = 0;
    auto n = socket_->recv_from(std::span(buf.data(), buf.size()), ip, port);
    if (!n.ok()) continue;  // timeout poll or transient error
    if (*n <= 0) continue;
    const std::vector<char> reply =
        handle(std::span<const char>(buf.data(), static_cast<std::size_t>(*n)));
    if (!reply.empty()) {
      // UDP reply send is fire-and-forget: NFS clients retransmit.
      (void)socket_->send_to(
          std::span<const char>(reply.data(), reply.size()), ip, port);
    }
  }
}

std::uint64_t NfsService::handle_for(const std::string& path) {
  const std::string norm = normalize_path(path);
  MutexLock lock(mu_);
  const auto it = path_to_id_.find(norm);
  if (it != path_to_id_.end()) return it->second;
  const std::uint64_t id = next_id_++;
  id_to_path_[id] = norm;
  path_to_id_[norm] = id;
  return id;
}

Result<std::string> NfsService::path_for(std::span<const char> fh) {
  if (fh.size() != kFhSize)
    return Error{Errc::protocol_error, "bad fh size"};
  std::uint64_t id = 0;
  std::memcpy(&id, fh.data(), sizeof id);
  MutexLock lock(mu_);
  const auto it = id_to_path_.find(id);
  if (it == id_to_path_.end()) return Error{Errc::not_found, "stale fh"};
  return it->second;
}

void NfsService::encode_fh(xdr::Encoder& out, std::uint64_t id) {
  char fh[kFhSize] = {};
  std::memcpy(fh, &id, sizeof id);
  out.put_fixed(std::span<const char>(fh, kFhSize));
}

void NfsService::encode_fattr(xdr::Encoder& out, const std::string& path,
                              const storage::FileStat& st) {
  out.put_u32(st.is_dir ? 2 : 1);                 // ftype: NFDIR / NFREG
  out.put_u32(st.is_dir ? 040755 : 0100644);      // mode
  out.put_u32(1);                                 // nlink
  out.put_u32(65534);                             // uid (nobody)
  out.put_u32(65534);                             // gid
  out.put_u32(static_cast<std::uint32_t>(st.size));
  out.put_u32(static_cast<std::uint32_t>(kNfsBlockSize));
  out.put_u32(0);                                 // rdev
  out.put_u32(static_cast<std::uint32_t>(
      (st.size + kNfsBlockSize - 1) / kNfsBlockSize));
  out.put_u32(1);                                 // fsid
  out.put_u32(static_cast<std::uint32_t>(handle_for(path)));  // fileid
  const auto secs = static_cast<std::uint32_t>(st.mtime / kSecond);
  for (int i = 0; i < 3; ++i) {  // atime, mtime, ctime
    out.put_u32(secs);
    out.put_u32(0);
  }
}

storage::Principal NfsService::principal_for(const xdr::RpcCall& call) const {
  storage::Principal p;
  p.protocol = "nfs";
  p.authenticated = false;  // paper: GSI only; NFS is anonymous
  if (options_.trust_auth_unix && call.unix_uid) {
    p.name = "uid" + std::to_string(*call.unix_uid);
  }
  return p;
}

std::vector<char> NfsService::handle(std::span<const char> datagram) {
  xdr::Decoder dec(datagram);
  auto call = xdr::decode_call(dec);
  if (!call.ok()) return {};  // garbage datagram: drop
  xdr::Encoder out;
  if (call->prog == kNfsProg && call->vers == kNfsVers) {
    handle_nfs(*call, dec, out);
  } else if (call->prog == kMountProg && call->vers == kMountVers) {
    handle_mount(*call, dec, out);
  } else {
    xdr::encode_accepted_reply(out, call->xid, xdr::kAcceptProgUnavail);
  }
  return out.data();
}

void NfsService::handle_mount(const xdr::RpcCall& call, xdr::Decoder& args,
                              xdr::Encoder& out) {
  switch (call.proc) {
    case MOUNTPROC_NULL:
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      return;
    case MOUNTPROC_MNT: {
      auto dirpath = args.get_string(1024);
      if (!dirpath.ok()) {
        xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptGarbageArgs);
        return;
      }
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      const std::string norm = normalize_path(*dirpath);
      auto st = dispatcher_.storage().stat(principal_for(call), norm);
      if (!st.ok() || !st->is_dir) {
        out.put_u32(st.ok() ? NFSERR_NOTDIR : errc_to_nfs(st.code()));
        return;
      }
      out.put_u32(NFS_OK);
      encode_fh(out, handle_for(norm));
      return;
    }
    case MOUNTPROC_UMNT:
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      return;
    default:
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptProcUnavail);
  }
}

namespace {
// Static span names for each NFSv2 procedure (span names must outlive the
// ring buffer, so no dynamic strings here).
const char* nfs_proc_name(std::uint32_t proc) noexcept {
  switch (proc) {
    case NFSPROC_NULL: return "null";
    case NFSPROC_GETATTR: return "getattr";
    case NFSPROC_LOOKUP: return "lookup";
    case NFSPROC_READ: return "read";
    case NFSPROC_WRITE: return "write";
    case NFSPROC_CREATE: return "create";
    case NFSPROC_REMOVE: return "remove";
    case NFSPROC_RENAME: return "rename";
    case NFSPROC_MKDIR: return "mkdir";
    case NFSPROC_RMDIR: return "rmdir";
    case NFSPROC_READDIR: return "readdir";
    case NFSPROC_STATFS: return "statfs";
  }
  return "proc";
}
}  // namespace

void NfsService::handle_nfs(const xdr::RpcCall& call, xdr::Decoder& args,
                            xdr::Encoder& out) {
  obs::Span pspan(obs::Layer::protocol, nfs_proc_name(call.proc));
  const storage::Principal who = principal_for(call);

  auto fail = [&](NfsStat st) { out.put_u32(st); };

  auto get_fh_path = [&]() -> Result<std::string> {
    auto fh = args.get_fixed(kFhSize);
    if (!fh.ok()) return fh.error();
    return path_for(std::span<const char>(fh->data(), fh->size()));
  };

  // diropargs: fhandle + filename.
  auto get_dirop = [&]() -> Result<std::string> {
    auto dir = get_fh_path();
    if (!dir.ok()) return dir;
    auto name = args.get_string(255);
    if (!name.ok()) return name.error();
    return join_path(*dir, *name);
  };

  switch (call.proc) {
    case NFSPROC_NULL:
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      return;

    case NFSPROC_GETATTR: {
      auto path = get_fh_path();
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      auto st = dispatcher_.storage().stat(who, *path);
      if (!st.ok()) return fail(errc_to_nfs(st.code()));
      out.put_u32(NFS_OK);
      encode_fattr(out, *path, *st);
      return;
    }

    case NFSPROC_LOOKUP: {
      auto path = get_dirop();
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      auto st = dispatcher_.storage().stat(who, *path);
      if (!st.ok()) return fail(errc_to_nfs(st.code()));
      out.put_u32(NFS_OK);
      encode_fh(out, handle_for(*path));
      encode_fattr(out, *path, *st);
      return;
    }

    case NFSPROC_READ: {
      auto path = get_fh_path();
      auto offset = args.get_u32();
      auto count = args.get_u32();
      (void)args.get_u32();  // totalcount, unused
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok() || !offset.ok() || !count.ok())
        return fail(NFSERR_STALE);
      auto ticket = dispatcher_.storage().approve_read(who, *path);
      if (!ticket.ok()) return fail(errc_to_nfs(ticket.code()));
      const std::size_t len =
          std::min<std::size_t>(*count, static_cast<std::size_t>(kNfsBlockSize));
      std::vector<char> buf(len);
      auto n = executor_.read_block("nfs", *ticket, *offset,
                                    std::span(buf.data(), buf.size()));
      if (!n.ok()) return fail(errc_to_nfs(n.code()));
      auto st = dispatcher_.storage().stat(who, *path);
      out.put_u32(NFS_OK);
      encode_fattr(out, *path, st.ok() ? *st : storage::FileStat{});
      out.put_opaque(std::span<const char>(
          buf.data(), static_cast<std::size_t>(*n)));
      return;
    }

    case NFSPROC_WRITE: {
      auto path = get_fh_path();
      (void)args.get_u32();  // beginoffset, unused in v2
      auto offset = args.get_u32();
      (void)args.get_u32();  // totalcount, unused
      auto data = args.get_opaque(static_cast<std::size_t>(kNfsBlockSize));
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok() || !offset.ok() || !data.ok())
        return fail(NFSERR_STALE);
      // NFS writes arrive block-by-block with no whole-file size; open
      // without truncating and extend (write semantics differ from PUT).
      auto handle = dispatcher_.storage().open_for_append(who, *path);
      if (!handle.ok()) return fail(errc_to_nfs(handle.code()));
      storage::TransferTicket ticket;
      ticket.path = *path;
      ticket.handle = std::move(handle.value());
      // NFSv2 writes are synchronous and carry no whole-file size, so
      // space admission happens per block: re-charge the file's
      // prospective total before the bytes land (charge_written releases
      // the prior charge), mirroring what PUT-style protocols do with a
      // declared size up front. A block the lots/quota cannot hold is
      // refused with NOSPC and never written.
      const auto old_size = ticket.handle->size();
      const std::int64_t prospective =
          std::max(old_size.ok() ? *old_size : 0,
                   static_cast<std::int64_t>(*offset) +
                       static_cast<std::int64_t>(data->size()));
      if (auto charged =
              dispatcher_.storage().charge_written(who, *path, prospective);
          !charged.ok()) {
        return fail(errc_to_nfs(charged.code()));
      }
      auto n = executor_.write_block(
          "nfs", ticket, *offset,
          std::span<const char>(data->data(), data->size()));
      if (!n.ok()) return fail(errc_to_nfs(n.code()));
      auto st = dispatcher_.storage().stat(who, *path);
      out.put_u32(NFS_OK);
      encode_fattr(out, *path, st.ok() ? *st : storage::FileStat{});
      return;
    }

    case NFSPROC_CREATE: {
      auto path = get_dirop();
      // sattr follows (mode/uid/gid/size/times) — ignored.
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      auto ticket = dispatcher_.storage().approve_write(who, *path, 0);
      if (!ticket.ok()) return fail(errc_to_nfs(ticket.code()));
      auto st = dispatcher_.storage().stat(who, *path);
      out.put_u32(NFS_OK);
      encode_fh(out, handle_for(*path));
      encode_fattr(out, *path, st.ok() ? *st : storage::FileStat{});
      return;
    }

    case NFSPROC_REMOVE: {
      auto path = get_dirop();
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      const Status s = dispatcher_.storage().remove(who, *path);
      return fail(errc_to_nfs(s.code()));
    }

    case NFSPROC_RENAME: {
      auto from = get_dirop();
      auto to = get_dirop();
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!from.ok() || !to.ok()) return fail(NFSERR_STALE);
      NestRequest req;
      req.op = NestOp::rename;
      req.principal = who;
      req.path = *from;
      req.path2 = *to;
      const Reply r = dispatcher_.execute(req);
      return fail(errc_to_nfs(r.status.code()));
    }

    case NFSPROC_MKDIR: {
      auto path = get_dirop();
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      const Status s = dispatcher_.storage().mkdir(who, *path);
      if (!s.ok()) return fail(errc_to_nfs(s.code()));
      auto st = dispatcher_.storage().stat(who, *path);
      out.put_u32(NFS_OK);
      encode_fh(out, handle_for(*path));
      encode_fattr(out, *path, st.ok() ? *st : storage::FileStat{});
      return;
    }

    case NFSPROC_RMDIR: {
      auto path = get_dirop();
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      const Status s = dispatcher_.storage().rmdir(who, *path);
      return fail(errc_to_nfs(s.code()));
    }

    case NFSPROC_READDIR: {
      auto path = get_fh_path();
      (void)args.get_u32();  // cookie (we return everything)
      (void)args.get_u32();  // count
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      auto entries = dispatcher_.storage().list(who, *path);
      if (!entries.ok()) return fail(errc_to_nfs(entries.code()));
      out.put_u32(NFS_OK);
      std::uint32_t cookie = 1;
      for (const auto& e : *entries) {
        out.put_bool(true);  // another entry follows
        out.put_u32(static_cast<std::uint32_t>(
            handle_for(join_path(*path, e.name))));
        out.put_string(e.name);
        out.put_u32(cookie++);
      }
      out.put_bool(false);  // no more entries
      out.put_bool(true);   // eof
      return;
    }

    case NFSPROC_STATFS: {
      auto path = get_fh_path();
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptSuccess);
      if (!path.ok()) return fail(NFSERR_STALE);
      auto& storage = dispatcher_.storage();
      const std::int64_t free_blocks =
          storage.free_space() / kNfsBlockSize;
      out.put_u32(NFS_OK);
      out.put_u32(8192);  // tsize: optimal transfer size
      out.put_u32(static_cast<std::uint32_t>(kNfsBlockSize));
      out.put_u32(static_cast<std::uint32_t>(
          storage.total_space() / kNfsBlockSize));
      out.put_u32(static_cast<std::uint32_t>(free_blocks));
      out.put_u32(static_cast<std::uint32_t>(free_blocks));
      return;
    }

    default:
      xdr::encode_accepted_reply(out, call.xid, xdr::kAcceptProcUnavail);
  }
}

}  // namespace nest::protocol
