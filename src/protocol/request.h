// The common request format of the virtual protocol layer (paper Section 3).
//
// Every protocol handler parses its wire protocol into a NestRequest; the
// dispatcher and storage manager never see protocol specifics. This is the
// VFS-like indirection that lets one transfer manager, one ACL engine, and
// one lot system serve five protocols.
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "storage/acl.h"

namespace nest::protocol {

enum class NestOp {
  noop,
  get,            // whole-file retrieve (transfer)
  put,            // whole-file store (transfer)
  read_block,     // block read at offset (NFS-style, transfer)
  write_block,    // block write at offset (transfer)
  mkdir,
  rmdir,
  unlink,
  stat,
  list,
  rename,
  lot_create,
  lot_renew,
  lot_terminate,
  lot_query,
  lot_list,       // list lots (all for the superuser, own otherwise)
  lot_set_replicas,  // per-lot replica policy (cluster federation)
  lot_pin,        // pin/unpin a lot's files against cold-tier migration
  hsm_status,     // which tier a file is resident on
  hsm_recall,     // synchronously stage a cold file back to the hot tier
  hsm_migrate,    // explicitly drain a file to the cold tier (superuser/owner)
  acl_set,
  acl_clear,      // remove a principal's entries from a directory ACL
  acl_get,
  query_ad,       // fetch the appliance's resource ClassAd
  journal_stat,   // metadata journal statistics (admin)
  stats_query,    // live appliance statistics as JSON (admin/monitoring)
  fault_set,      // arm/disarm a failpoint (superuser; path=name, acl_entry=spec)
  fault_list,     // list failpoints with specs and counters (superuser)
};

const char* op_name(NestOp op) noexcept;

struct NestRequest {
  NestOp op = NestOp::noop;
  storage::Principal principal;  // set by the handler after authentication
  std::string protocol;          // handler name ("chirp", "nfs", ...)

  std::string path;
  std::string path2;      // rename target
  std::int64_t size = 0;  // put size
  std::int64_t offset = 0;
  std::int64_t length = 0;

  // Lot arguments.
  std::uint64_t lot_id = 0;
  std::int64_t lot_capacity = 0;
  Nanos lot_duration = 0;
  bool group_lot = false;
  std::int64_t lot_replicas = 0;  // lot_set_replicas argument

  // ACL arguments: a ClassAd entry in text form.
  std::string acl_entry;
};

}  // namespace nest::protocol
