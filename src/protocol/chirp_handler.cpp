#include "protocol/chirp_handler.h"

#include <iomanip>
#include <sstream>
#include <vector>

#include "common/log.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace nest::protocol {

using dispatcher::Reply;

std::string chirp_error_line(const Status& s) {
  int code = 500;
  switch (s.code()) {
    case Errc::not_found: code = 550; break;
    case Errc::exists: code = 551; break;
    case Errc::permission_denied:
    case Errc::not_authenticated: code = 530; break;
    case Errc::no_space:
    case Errc::lot_expired: code = 552; break;
    case Errc::lot_unknown: code = 554; break;
    case Errc::invalid_argument:
    case Errc::protocol_error: code = 501; break;
    case Errc::busy: code = 553; break;
    case Errc::staging: code = 455; break;  // cold tier; retry after recall
    case Errc::is_dir:
    case Errc::not_dir: code = 555; break;
    default: code = 500; break;
  }
  return std::to_string(code) + " " + s.to_string();
}

namespace {

// Send a one-line reply.
bool reply(net::TcpStream& s, const std::string& line) {
  return s.write_all(line + "\r\n").ok();
}

// Read one reply line and return its numeric code (-1 on error).
int read_code(net::TcpStream& s, std::string* text = nullptr) {
  auto line = s.read_line();
  if (!line.ok()) return -1;
  if (text) *text = *line;
  return static_cast<int>(parse_int(line->substr(0, 3)).value_or(-1));
}

// Frame a textual payload. The size line and the payload leave in one
// writev so small replies cost one syscall (and one segment).
bool reply_payload(net::TcpStream& s, const std::string& payload) {
  const std::string head = "213 " + std::to_string(payload.size()) + "\r\n";
  return s.send_vecs({std::span<const char>(head.data(), head.size()),
                      std::span<const char>(payload.data(), payload.size())})
      .ok();
}

}  // namespace

void ChirpHandler::serve(net::TcpStream& stream) {
  if (!reply(stream, "220 nest chirp ready")) return;

  storage::Principal who;
  who.protocol = "chirp";
  bool authenticated_session = false;

  while (true) {
    auto line_r = stream.read_line();
    if (!line_r.ok()) return;  // connection closed
    const std::string line = std::string(trim(*line_r));
    if (line.empty()) continue;
    const auto words = split_ws(line);
    const std::string cmd = to_lower(words[0]);

    if (cmd == "quit") {
      reply(stream, "221 bye");
      return;
    }

    if (cmd == "auth") {
      if (words.size() < 2) {
        reply(stream, "501 usage: AUTH <subject>");
        continue;
      }
      if (words[1] == "anonymous") {
        if (!ctx_.allow_anonymous) {
          reply(stream, "530 anonymous access disabled");
          continue;
        }
        who = storage::Principal{.name = "",
                                 .groups = {},
                                 .authenticated = false,
                                 .protocol = "chirp"};
        authenticated_session = true;
        reply(stream, "230 anonymous ok");
        continue;
      }
      // GSI-style challenge/response.
      const std::string challenge = ctx_.gsi->make_challenge();
      if (!reply(stream, "334 " + challenge)) return;
      auto resp_line = stream.read_line();
      if (!resp_line.ok()) return;
      const auto resp_words = split_ws(*resp_line);
      if (resp_words.size() != 2 || to_lower(resp_words[0]) != "response") {
        reply(stream, "501 expected RESPONSE <hex>");
        continue;
      }
      auto principal =
          ctx_.gsi->verify(words[1], challenge, resp_words[1], "chirp");
      if (!principal.ok()) {
        reply(stream, "530 " + principal.error().to_string());
        continue;
      }
      who = std::move(principal.value());
      authenticated_session = true;
      reply(stream, "230 authenticated " + who.name);
      continue;
    }

    if (!authenticated_session) {
      reply(stream, "530 authenticate first (AUTH <subject>)");
      continue;
    }

    NestRequest req;
    req.principal = who;
    req.protocol = "chirp";

    if (cmd == "get" && words.size() == 2) {
      // Trace root for the whole GET: approval, then the streamed blocks.
      obs::Span pspan(obs::Layer::protocol, "get");
      req.op = NestOp::get;
      req.path = words[1];
      auto ticket = ctx_.dispatcher->approve_get(req);
      if (!ticket.ok()) {
        // Federation: a file this replica lacks (or cannot serve) may be
        // available from a peer — redirect the client to the best one
        // instead of failing the read (Globus-style replica selection).
        if (ticket.error().code == Errc::not_found && ctx_.cluster &&
            ctx_.cluster->role() != cluster::Role::standalone) {
          const auto cands = ctx_.cluster->locate(words[1]);
          if (!cands.empty()) {
            reply(stream, "350 redirect " + cands.front().name + " " +
                              cands.front().host + " " +
                              std::to_string(cands.front().chirp_port));
            continue;
          }
        }
        reply(stream, chirp_error_line(Status{ticket.error()}));
        continue;
      }
      if (!reply(stream, "150 " + std::to_string(ticket->size))) return;
      if (!ctx_.executor->send_file("chirp", *ticket, stream).ok()) return;
      continue;
    }

    if (cmd == "thirdput" && words.size() == 5) {
      // Three-party transfer: this appliance reads its own file and pushes
      // it to another NeST over Chirp, so the client never touches the
      // data (paper Section 2.1: "transparent three- and four-party
      // transfers").
      req.op = NestOp::get;
      req.path = words[1];
      const auto port = parse_int(words[3]);
      if (!port || *port <= 0 || *port > 65535) {
        reply(stream, "501 bad port");
        continue;
      }
      auto ticket = ctx_.dispatcher->approve_get(req);
      if (!ticket.ok()) {
        reply(stream, chirp_error_line(Status{ticket.error()}));
        continue;
      }
      auto remote =
          net::TcpStream::connect(words[2], static_cast<uint16_t>(*port));
      if (!remote.ok() || read_code(*remote) != 220) {
        reply(stream, "425 cannot reach remote nest");
        continue;
      }
      // Authenticate with the appliance identity (or anonymously).
      bool remote_ok = false;
      if (!ctx_.own_subject.empty()) {
        // Errors surface on the challenge read below; no second check needed.
        (void)remote->write_all("AUTH " + ctx_.own_subject + "\r\n");
        std::string challenge_line;
        if (read_code(*remote, &challenge_line) == 334 &&
            challenge_line.size() > 4) {
          // The 230 read below is the success check.
          (void)remote->write_all(
              "RESPONSE " +
              GsiRegistry::respond(ctx_.own_secret,
                                   challenge_line.substr(4)) +
              "\r\n");
          remote_ok = read_code(*remote) == 230;
        }
      } else {
        // The 230 read below is the success check.
        (void)remote->write_all(std::string("AUTH anonymous\r\n"));
        remote_ok = read_code(*remote) == 230;
      }
      if (!remote_ok) {
        reply(stream, "530 remote nest rejected our identity");
        continue;
      }
      // The 150 read below is the success check.
      (void)remote->write_all("PUT " + words[4] + " " +
                              std::to_string(ticket->size) + "\r\n");
      if (read_code(*remote) != 150) {
        reply(stream, "553 remote nest refused the store");
        continue;
      }
      const Status pushed =
          ctx_.executor->send_file("chirp", *ticket, *remote);
      if (!pushed.ok() || read_code(*remote) != 226) {
        reply(stream, "426 third-party transfer failed");
        continue;
      }
      // Courtesy QUIT on an already-acked push; the reply is not read.
      (void)remote->write_all(std::string("QUIT\r\n"));
      reply(stream, "226 pushed " + std::to_string(ticket->size) +
                        " bytes to " + words[2]);
      continue;
    }

    if (cmd == "put" && words.size() == 3) {
      obs::Span pspan(obs::Layer::protocol, "put");
      const auto size = parse_int(words[2]);
      if (!size || *size < 0) {
        reply(stream, "501 bad size");
        continue;
      }
      req.op = NestOp::put;
      req.path = words[1];
      req.size = *size;
      auto ticket = ctx_.dispatcher->approve_put(req);
      if (!ticket.ok()) {
        reply(stream, chirp_error_line(Status{ticket.error()}));
        continue;
      }
      if (!reply(stream, "150 ok")) return;
      const Status s =
          ctx_.executor->recv_file("chirp", *ticket, stream, *size);
      if (!s.ok()) return;
      reply(stream, "226 stored " + std::to_string(*size));
      // Replicate the new content to followers (primary only; no-op
      // otherwise). Queued after the ack: replication is asynchronous,
      // the durability barrier the client waited on is the journal's.
      if (ctx_.cluster) ctx_.cluster->note_file_written(words[1]);
      continue;
    }

    if (cmd == "repl" && words.size() >= 2) {
      // Replication stream ops, driven by a peer appliance's ChirpLink.
      if (!ctx_.cluster) {
        reply(stream, "502 not clustered");
        continue;
      }
      if (!who.authenticated || !ctx_.cluster->authorize_repl(who.name)) {
        reply(stream, "530 repl requires a configured peer identity");
        continue;
      }
      const std::string sub = to_lower(words[1]);
      if (sub == "hello" && words.size() == 3) {
        auto lsn = ctx_.cluster->accept_hello(words[2]);
        if (!lsn.ok()) {
          reply(stream, chirp_error_line(Status{lsn.error()}));
        } else {
          reply(stream, "200 " + std::to_string(*lsn));
        }
        continue;
      }
      if ((sub == "ship" || sub == "snap") && words.size() == 4) {
        const auto lsn = parse_int(words[2]);
        const auto len = parse_int(words[3]);
        constexpr std::int64_t kMaxReplPayload = 256 * 1024 * 1024;
        if (!lsn || *lsn < 0 || !len || *len < 0 || *len > kMaxReplPayload) {
          // The payload length is unknown — the stream is beyond
          // recovery, close it.
          reply(stream, "501 bad repl frame");
          return;
        }
        std::string payload(static_cast<std::size_t>(*len), '\0');
        if (!stream.read_exact(std::span<char>(payload.data(),
                                               payload.size()))
                 .ok()) {
          return;
        }
        if (sub == "ship") {
          auto r = ctx_.cluster->accept_ship(
              static_cast<journal::Lsn>(*lsn), payload);
          if (!r.ok()) {
            // 554 = LSN gap: tells the primary to re-seed us from a
            // snapshot rather than retrying the same batch.
            if (r.error().code == Errc::not_found) {
              reply(stream, "554 " + r.error().to_string());
            } else {
              reply(stream, chirp_error_line(Status{r.error()}));
            }
          } else {
            reply(stream, "200 " + std::to_string(*r));
          }
        } else {
          auto s = ctx_.cluster->accept_snapshot(
              static_cast<journal::Lsn>(*lsn), payload);
          reply(stream, s.ok() ? "200 ok" : chirp_error_line(s));
        }
        continue;
      }
      if (sub == "push" && words.size() == 4) {
        const auto len = parse_int(words[3]);
        constexpr std::int64_t kMaxPushPayload = 1024 * 1024 * 1024;
        if (!len || *len < 0 || *len > kMaxPushPayload) {
          reply(stream, "501 bad push frame");
          return;
        }
        std::string payload(static_cast<std::size_t>(*len), '\0');
        if (!stream.read_exact(std::span<char>(payload.data(),
                                               payload.size()))
                 .ok()) {
          return;
        }
        const Status s = ctx_.cluster->accept_file(words[2], payload);
        reply(stream, s.ok() ? "200 ok" : chirp_error_line(s));
        continue;
      }
      reply(stream, "500 unrecognized repl op");
      continue;
    }

    if (cmd == "cluster" && words.size() == 2 &&
        to_lower(words[1]) == "status") {
      if (!ctx_.cluster) {
        reply(stream, "502 not clustered");
        continue;
      }
      std::ostringstream os;
      const auto last = ctx_.cluster->last_shipped_lsn();
      os << "self name=" << ctx_.cluster->name()
         << " role=" << cluster::role_name(ctx_.cluster->role())
         << " last_lsn=" << last
         << " quorum_acked=" << ctx_.cluster->quorum_acked_lsn() << "\n";
      for (const auto& p : ctx_.cluster->status()) {
        os << "peer name=" << p.name << " role=" << cluster::role_name(p.role)
           << " alive=" << (p.alive ? 1 : 0) << " addr=" << p.host << ":"
           << p.chirp_port << " acked_lsn=" << p.acked_lsn << " lag="
           << (last > p.acked_lsn ? last - p.acked_lsn : 0) << " score="
           << std::fixed << std::setprecision(3) << p.score << "\n";
      }
      if (!reply_payload(stream, os.str())) return;
      continue;
    }

    if ((cmd == "replica" && words.size() >= 2 &&
         to_lower(words[1]) == "list") ||
        (cmd == "locate" && words.size() == 2)) {
      if (!ctx_.cluster) {
        reply(stream, "502 not clustered");
        continue;
      }
      const std::string path =
          cmd == "locate" ? words[1] : (words.size() > 2 ? words[2] : "");
      std::ostringstream os;
      int rank = 0;
      for (const auto& c : ctx_.cluster->locate(path)) {
        os << ++rank << " name=" << c.name << " addr=" << c.host << ":"
           << c.chirp_port << " score=" << std::fixed << std::setprecision(3)
           << c.score << " measured_mbps=" << std::setprecision(1)
           << ctx_.cluster->selector().measured_mbps(c.name) << "\n";
      }
      if (!reply_payload(stream, os.str())) return;
      continue;
    }

    // Non-transfer commands all flow through the dispatcher.
    bool parsed = true;
    if (cmd == "mkdir" && words.size() == 2) {
      req.op = NestOp::mkdir;
      req.path = words[1];
    } else if (cmd == "rmdir" && words.size() == 2) {
      req.op = NestOp::rmdir;
      req.path = words[1];
    } else if (cmd == "unlink" && words.size() == 2) {
      req.op = NestOp::unlink;
      req.path = words[1];
    } else if (cmd == "stat" && words.size() == 2) {
      req.op = NestOp::stat;
      req.path = words[1];
    } else if (cmd == "list" && words.size() == 2) {
      req.op = NestOp::list;
      req.path = words[1];
    } else if (cmd == "rename" && words.size() == 3) {
      req.op = NestOp::rename;
      req.path = words[1];
      req.path2 = words[2];
    } else if (cmd == "ad" && words.size() == 1) {
      req.op = NestOp::query_ad;
    } else if (cmd == "lot" && words.size() >= 2) {
      const std::string sub = to_lower(words[1]);
      if (sub == "create" && (words.size() == 4 || words.size() == 5)) {
        req.op = NestOp::lot_create;
        req.lot_capacity = parse_int(words[2]).value_or(-1);
        req.lot_duration = parse_int(words[3]).value_or(-1) * kSecond;
        req.group_lot = words.size() == 5 && to_lower(words[4]) == "group";
      } else if (sub == "renew" && words.size() == 4) {
        req.op = NestOp::lot_renew;
        req.lot_id = static_cast<std::uint64_t>(
            parse_int(words[2]).value_or(0));
        req.lot_duration = parse_int(words[3]).value_or(-1) * kSecond;
      } else if (sub == "terminate" && words.size() == 3) {
        req.op = NestOp::lot_terminate;
        req.lot_id = static_cast<std::uint64_t>(
            parse_int(words[2]).value_or(0));
      } else if (sub == "query" && words.size() == 3) {
        req.op = NestOp::lot_query;
        req.lot_id = static_cast<std::uint64_t>(
            parse_int(words[2]).value_or(0));
      } else if (sub == "list" && words.size() == 2) {
        req.op = NestOp::lot_list;
      } else if (sub == "replicas" && words.size() == 4) {
        // LOT REPLICAS <id> <count>: per-lot replication policy.
        req.op = NestOp::lot_set_replicas;
        req.lot_id =
            static_cast<std::uint64_t>(parse_int(words[2]).value_or(0));
        req.lot_replicas = parse_int(words[3]).value_or(-1);
      } else if (sub == "pin" && words.size() == 4) {
        // LOT PIN <id> <0|1>: hold the lot's files on the hot tier.
        req.op = NestOp::lot_pin;
        req.lot_id =
            static_cast<std::uint64_t>(parse_int(words[2]).value_or(0));
        req.lot_replicas = parse_int(words[3]).value_or(-1);
      } else {
        parsed = false;
      }
    } else if (cmd == "hsm" && words.size() == 3) {
      const std::string sub = to_lower(words[1]);
      if (sub == "status") {
        req.op = NestOp::hsm_status;
        req.path = words[2];
      } else if (sub == "recall") {
        req.op = NestOp::hsm_recall;
        req.path = words[2];
      } else if (sub == "migrate") {
        req.op = NestOp::hsm_migrate;
        req.path = words[2];
      } else {
        parsed = false;
      }
    } else if (cmd == "journal" && words.size() == 2 &&
               to_lower(words[1]) == "stat") {
      req.op = NestOp::journal_stat;
    } else if (cmd == "stats" && words.size() == 1) {
      req.op = NestOp::stats_query;
    } else if (cmd == "fault" && words.size() >= 2) {
      const std::string sub = to_lower(words[1]);
      if (sub == "set" && words.size() == 4) {
        // FAULT SET <point> <spec>; the action grammar has no whitespace.
        req.op = NestOp::fault_set;
        req.path = words[2];
        req.acl_entry = words[3];
      } else if (sub == "list" && words.size() == 2) {
        req.op = NestOp::fault_list;
      } else {
        parsed = false;
      }
    } else if (cmd == "acl" && words.size() >= 3) {
      const std::string sub = to_lower(words[1]);
      if (sub == "set" && words.size() >= 4) {
        req.op = NestOp::acl_set;
        req.path = words[2];
        // The entry is everything after the path.
        const std::size_t pos = line.find(words[2]);
        req.acl_entry =
            std::string(trim(line.substr(pos + words[2].size())));
      } else if (sub == "clear" && words.size() == 4) {
        req.op = NestOp::acl_clear;
        req.path = words[2];
        req.acl_entry = words[3];  // principal spec, e.g. user:alice
      } else if (sub == "get" && words.size() == 3) {
        req.op = NestOp::acl_get;
        req.path = words[2];
      } else {
        parsed = false;
      }
    } else {
      parsed = false;
    }

    if (!parsed) {
      reply(stream, "500 unrecognized command");
      continue;
    }

    obs::Span pspan(obs::Layer::protocol, op_name(req.op));
    const Reply r = ctx_.dispatcher->execute(req);
    if (!r.status.ok()) {
      reply(stream, chirp_error_line(r.status));
      continue;
    }
    switch (req.op) {
      case NestOp::list:
      case NestOp::acl_get:
      case NestOp::query_ad:
      case NestOp::lot_list:
      case NestOp::stats_query:
      case NestOp::fault_list:
        if (!reply_payload(stream, r.text)) return;
        break;
      case NestOp::lot_create:
        reply(stream, "200 " + r.text);
        break;
      case NestOp::stat:
      case NestOp::lot_query:
      case NestOp::journal_stat:
      case NestOp::hsm_status:
        reply(stream, "200 " + r.text);
        break;
      default:
        reply(stream, "200 ok");
        break;
    }
  }
}

}  // namespace nest::protocol
