// HTTP/1.0 handler (RFC 1945 subset, plus Content-Length PUT). The paper's
// NeST serves web-style whole-file gets; per its security model HTTP
// clients are anonymous, so the ACL layer decides what anonymous may do.
// Supported: GET, HEAD, PUT, DELETE; keep-alive via "Connection:
// keep-alive" (1.0 style).
#pragma once

#include "protocol/handler.h"

namespace nest::protocol {

class HttpHandler final : public ProtocolHandler {
 public:
  using ProtocolHandler::ProtocolHandler;
  const char* name() const override { return "http"; }
  void serve(net::TcpStream& stream) override;
};

}  // namespace nest::protocol
