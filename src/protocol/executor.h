// TransferExecutor: real-mode data movement under the transfer manager's
// policies (paper Section 4).
//
// Every whole-file send/receive and every NFS block op registers a
// TransferRequest, then moves data one block at a time; each block is
// admitted by the TransferCore in the order the configured scheduler
// decides (charge/complete also go straight to the core's lock-free
// accounting path).
// The selected concurrency model determines *where* the block work runs:
//   threads   — on the calling connection thread (thread-per-connection);
//   events    — serialized onto the single event-loop worker;
//   processes — the whole transfer is delegated to a forked child
//               (classic wu-ftpd style; charging happens on completion).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "net/socket.h"
#include "storage/storage_manager.h"
#include "transfer/core.h"
#include "transfer/transfer_manager.h"

namespace nest::protocol {

// Worker pool executing closures in FIFO order. With one worker it is the
// "event loop" of the events concurrency model; with a few workers it is a
// SEDA-style stage (the staged model runs a disk stage and a network stage,
// each a small pool, with this queue as the inter-stage channel).
class EventLoop {
 public:
  explicit EventLoop(int workers = 1);
  ~EventLoop();
  // Run `fn` on the pool and wait for it (the caller is a connection
  // thread standing in for a state machine continuation).
  void run_sync(const std::function<void()>& fn);

 private:
  void run();
  Mutex mu_{lockrank::Rank::executor_queue, "eventloop.mu"};
  CondVar cv_;
  std::deque<std::function<void()>*> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  // Started in the constructor body, after every member they touch exists.
  std::vector<std::thread> workers_;
};

class TransferExecutor {
 public:
  // `max_total_bw` (bytes/sec, 0 = unlimited) caps the appliance's total
  // transfer rate with a token bucket: an administrator knob, and the
  // mechanism that makes scheduling policies bind even when the physical
  // network is faster than the configured service rate.
  TransferExecutor(Clock& clock, transfer::TransferManager& tm,
                   transfer::TransferCore& core,
                   std::int64_t block_bytes = 64 * 1024,
                   std::int64_t max_total_bw = 0);

  // GET: stream the ticket's file to the socket. Byte count from the
  // ticket's size.
  NEST_NODISCARD
  Status send_file(const std::string& protocol,
                   const storage::TransferTicket& ticket,
                   net::TcpStream& stream);

  // Partial GET (HTTP Range, FTP REST): stream `length` bytes starting at
  // `offset`.
  NEST_NODISCARD
  Status send_file_range(const std::string& protocol,
                         const storage::TransferTicket& ticket,
                         net::TcpStream& stream, std::int64_t offset,
                         std::int64_t length);

  // PUT: receive exactly `size` bytes from the socket into the file.
  NEST_NODISCARD
  Status recv_file(const std::string& protocol,
                   const storage::TransferTicket& ticket,
                   net::TcpStream& stream, std::int64_t size);

  // FTP STOR: receive until the peer closes its data connection; returns
  // the byte count (the caller settles lot/quota accounting afterwards).
  NEST_NODISCARD
  Result<std::int64_t> recv_until_eof(const std::string& protocol,
                                      const storage::TransferTicket& ticket,
                                      net::TcpStream& stream);

  // Single-block operations (NFS): scheduled as one-quantum requests.
  NEST_NODISCARD
  Result<std::int64_t> read_block(const std::string& protocol,
                                  const storage::TransferTicket& ticket,
                                  std::int64_t offset, std::span<char> buf);
  NEST_NODISCARD
  Result<std::int64_t> write_block(const std::string& protocol,
                                   const storage::TransferTicket& ticket,
                                   std::int64_t offset,
                                   std::span<const char> buf);

  std::int64_t block_bytes() const { return block_bytes_; }

 private:
  NEST_NODISCARD
  Status move_blocks(const std::string& protocol,
                     const storage::TransferTicket& ticket,
                     net::TcpStream& stream, std::int64_t size, bool send,
                     std::int64_t start_offset = 0);
  NEST_NODISCARD
  Status run_block(transfer::ConcurrencyModel model,
                   const std::function<Status()>& work);
  // Request/error counters + latency histograms for one finished request.
  void record_request(const std::string& protocol, Nanos elapsed, bool ok);
  // Token bucket: returns after this block's share of the configured
  // bandwidth has elapsed (no-op when uncapped).
  void throttle(std::int64_t bytes);

  Clock& clock_;
  transfer::TransferManager& tm_;
  transfer::TransferCore& core_;
  std::int64_t block_bytes_;
  std::int64_t max_total_bw_;
  Mutex throttle_mu_{lockrank::Rank::executor_throttle, "executor.throttle"};
  Nanos next_send_time_ GUARDED_BY(throttle_mu_) = 0;
  EventLoop loop_;        // the single loop of the events model
  EventLoop disk_stage_;  // staged model: file-I/O stage pool
  EventLoop net_stage_;   // staged model: socket-I/O stage pool
};

}  // namespace nest::protocol
