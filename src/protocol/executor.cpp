#include "protocol/executor.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <vector>

#include "common/log.h"
#include "fault/failpoint.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace nest::protocol {

using transfer::ConcurrencyModel;
using transfer::Direction;
using transfer::TransferRequest;

EventLoop::EventLoop(int workers) {
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { run(); });
  }
}

EventLoop::~EventLoop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void EventLoop::run() {
  MutexLock lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) return;
    std::function<void()>* fn = queue_.front();
    queue_.pop_front();
    lock.unlock();
    (*fn)();
    lock.lock();
    cv_.notify_all();  // wake the submitter waiting on completion
  }
}

void EventLoop::run_sync(const std::function<void()>& fn) {
  bool done = false;
  std::function<void()> wrapped = [&fn, &done] {
    fn();
    done = true;
  };
  MutexLock lock(mu_);
  queue_.push_back(&wrapped);
  cv_.notify_all();
  cv_.wait(lock, [&done] { return done; });
}

TransferExecutor::TransferExecutor(Clock& clock,
                                   transfer::TransferManager& tm,
                                   transfer::TransferCore& core,
                                   std::int64_t block_bytes,
                                   std::int64_t max_total_bw)
    : clock_(clock),
      tm_(tm),
      core_(core),
      block_bytes_(block_bytes),
      max_total_bw_(max_total_bw),
      loop_(1),
      disk_stage_(2),
      net_stage_(2) {}

void TransferExecutor::throttle(std::int64_t bytes) {
  if (max_total_bw_ <= 0 || bytes <= 0) return;
  Nanos wait_until = 0;
  {
    MutexLock lock(throttle_mu_);
    const Nanos now = clock_.now();
    const Nanos cost = from_seconds(static_cast<double>(bytes) /
                                    static_cast<double>(max_total_bw_));
    if (next_send_time_ < now) next_send_time_ = now;
    wait_until = next_send_time_;
    next_send_time_ += cost;
  }
  const Nanos now = clock_.now();
  if (wait_until > now) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(wait_until - now));
  }
}

Status TransferExecutor::run_block(ConcurrencyModel model,
                                   const std::function<Status()>& work) {
  if (model == ConcurrencyModel::events) {
    Status result;
    loop_.run_sync([&] { result = work(); });
    return result;
  }
  if (model == ConcurrencyModel::staged) {
    // Single-stage work (NFS block ops) runs on the disk stage.
    Status result;
    disk_stage_.run_sync([&] { result = work(); });
    return result;
  }
  // threads (and the per-block fallback for processes): run inline on the
  // connection thread.
  return work();
}

Status TransferExecutor::move_blocks(const std::string& protocol,
                                     const storage::TransferTicket& ticket,
                                     net::TcpStream& stream,
                                     std::int64_t size, bool send,
                                     std::int64_t start_offset) {
  obs::Span tspan(obs::Layer::transfer, "transfer");
  tspan.set_value(size);
  TransferRequest* req =
      core_.create_request(protocol,
                           send ? Direction::read : Direction::write,
                           ticket.path, size, ticket.user);
  ConcurrencyModel model = core_.pick_model();
  // Receives cannot be delegated to a forked child (its memory writes
  // would be lost); fall back to the thread path for them.
  if (model == ConcurrencyModel::processes && !send) {
    model = ConcurrencyModel::threads;
  }
  const Nanos start = clock_.now();
  Status result;

  // transfer.grant models the scheduler refusing (or stalling) a block
  // admission — fired before every acquire so an armed point starves the
  // transfer, not the slot accounting.
  std::optional<Error> grant_err;
  if (model == ConcurrencyModel::processes) {
    // Whole-transfer delegation: one admission, then a child streams the
    // file (wu-ftpd style). Block-level rescheduling does not apply to a
    // transfer once handed to a process.
    NEST_FAILPOINT("transfer.grant", grant_err = err);
    if (grant_err) {
      result = Status{*grant_err};
      core_.complete(req);
      record_request(protocol, clock_.now() - start, false);
      return result;
    }
    core_.acquire(req);
    const pid_t pid = ::fork();
    if (pid == 0) {
      std::vector<char> buf(static_cast<std::size_t>(block_bytes_));
      std::int64_t off = 0;
      bool zero_copy = net::zero_copy_enabled();
      while (off < size) {
        const std::int64_t len = std::min(block_bytes_, size - off);
        bool block_sent = false;
        if (zero_copy) {
          auto segs = ticket.handle->sendfile_map(start_offset + off, len);
          if (segs.ok()) {
            std::int64_t mapped = 0;
            for (const auto& seg : *segs) mapped += seg.len;
            if (mapped != len) ::_exit(1);
            for (const auto& seg : *segs) {
              auto sent = stream.send_file(seg.fd, seg.offset, seg.len);
              if (!sent.ok() || *sent != seg.len) ::_exit(1);
            }
            block_sent = true;
          } else if (segs.error().code == Errc::unsupported) {
            zero_copy = false;
          } else {
            ::_exit(1);
          }
        }
        if (!block_sent) {
          auto n = ticket.handle->pread(
              std::span(buf.data(), static_cast<std::size_t>(len)),
              start_offset + off);
          if (!n.ok() || *n != len) ::_exit(1);
          if (!stream.write_all(std::span<const char>(
                                    buf.data(),
                                    static_cast<std::size_t>(len)))
                   .ok()) {
            ::_exit(1);
          }
        }
        off += len;
      }
      ::_exit(0);
    }
    if (pid < 0) {
      result = Status{Errc::internal, "fork failed"};
    } else {
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
      const bool ok = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
      result = ok ? Status{}
                  : Status{Errc::io_error, "transfer child failed"};
    }
    core_.release();
    if (result.ok()) core_.charge(req, size);
  } else {
    std::vector<char> buf(static_cast<std::size_t>(block_bytes_));
    // Zero-copy is decided per transfer: the first sendfile_map that
    // answers `unsupported` (MemFs, memory-backed ExtentFs) pins the rest
    // of this transfer to the buffered path — no per-block re-probing.
    bool try_zero_copy = send && net::zero_copy_enabled();
    std::int64_t off = 0;
    while (off < size) {
      const std::int64_t len = std::min(block_bytes_, size - off);
      obs::Span qspan(obs::Layer::transfer, "quantum");
      qspan.set_value(len);
      NEST_FAILPOINT("transfer.grant", grant_err = err);
      if (grant_err) {
        result = Status{*grant_err};
        break;
      }
      core_.acquire(req);
      auto file_part = [&]() -> Status {
        if (send) {
          auto n = ticket.handle->pread(
              std::span(buf.data(), static_cast<std::size_t>(len)),
              start_offset + off);
          if (!n.ok()) return Status{n.error()};
          if (*n != len) return Status{Errc::io_error, "short file read"};
          return {};
        }
        auto n = ticket.handle->pwrite(
            std::span<const char>(buf.data(), static_cast<std::size_t>(len)),
            start_offset + off);
        return n.ok() ? Status{} : Status{n.error()};
      };
      auto net_part = [&]() -> Status {
        if (send) {
          return stream.write_all(std::span<const char>(
              buf.data(), static_cast<std::size_t>(len)));
        }
        return stream.read_exact(
            std::span(buf.data(), static_cast<std::size_t>(len)));
      };
      // Sends go kernel-to-kernel when the backend lends an fd: map this
      // block onto volume/file segments and sendfile each one. A map or
      // send shorter than the admitted block means the file shrank under
      // the transfer — same "short file read" the buffered path reports.
      auto send_part = [&]() -> Status {
        if (try_zero_copy) {
          auto segs = ticket.handle->sendfile_map(start_offset + off, len);
          if (segs.ok()) {
            std::int64_t mapped = 0;
            for (const auto& seg : *segs) mapped += seg.len;
            if (mapped != len)
              return Status{Errc::io_error, "short file read"};
            for (const auto& seg : *segs) {
              auto sent = stream.send_file(seg.fd, seg.offset, seg.len);
              if (!sent.ok()) return Status{sent.error()};
              if (*sent != seg.len)
                return Status{Errc::io_error, "short file read"};
            }
            return {};
          }
          if (segs.error().code != Errc::unsupported)
            return Status{segs.error()};
          try_zero_copy = false;
        }
        if (auto fs_ = file_part(); !fs_.ok()) return fs_;
        return net_part();
      };
      Status s;
      if (model == ConcurrencyModel::staged) {
        // SEDA-style: each half runs on its stage's pool; a blocking file
        // read in one request never stalls another request's send.
        auto run_stage = [](EventLoop& stage,
                            const std::function<Status()>& part) {
          Status r;
          stage.run_sync([&] { r = part(); });
          return r;
        };
        if (send) {
          if (try_zero_copy) {
            // Zero-copy has no separate disk half — the kernel does both
            // sides of the move — so the block runs on the network stage.
            s = run_stage(net_stage_, send_part);
          } else {
            s = run_stage(disk_stage_, file_part);
            if (s.ok()) s = run_stage(net_stage_, net_part);
          }
        } else {
          s = run_stage(net_stage_, net_part);
          if (s.ok()) s = run_stage(disk_stage_, file_part);
        }
      } else {
        s = run_block(model, [&]() -> Status {
          if (send) return send_part();
          if (auto ns_ = net_part(); !ns_.ok()) return ns_;
          return file_part();
        });
      }
      if (s.ok()) throttle(len);  // bandwidth cap binds while slot is held
      // Charge before releasing the slot so the next scheduling decision
      // sees this block's bytes (stale passes skew proportional shares).
      if (s.ok()) core_.charge(req, len);
      core_.release();
      if (!s.ok()) {
        result = s;
        break;
      }
      off += len;
    }
  }

  const Nanos elapsed = clock_.now() - start;
  if (result.ok()) {
    const double secs = to_seconds(elapsed);
    if (tm_.options().adapt.metric == transfer::AdaptMetric::latency) {
      core_.report_model(model, static_cast<double>(elapsed));
    } else if (secs > 0) {
      core_.report_model(model, static_cast<double>(size) / secs);
    }
  }
  core_.complete(req);
  record_request(protocol, elapsed, result.ok());
  return result;
}

// Whole-transfer accounting shared by every data-movement entry point:
// the per-protocol request-latency histograms plus the request/error
// counters that `/stats` and the discovery ad report.
void TransferExecutor::record_request(const std::string& protocol,
                                      Nanos elapsed, bool ok) {
  auto& stats = obs::Stats::global();
  stats.requests.fetch_add(1, std::memory_order_relaxed);
  if (!ok) stats.errors.fetch_add(1, std::memory_order_relaxed);
  stats.request_latency(protocol).record(elapsed);
  stats.request_all.record(elapsed);
  stats.transfer_latency.record(elapsed);
}

Status TransferExecutor::send_file(const std::string& protocol,
                                   const storage::TransferTicket& ticket,
                                   net::TcpStream& stream) {
  return move_blocks(protocol, ticket, stream, ticket.size, /*send=*/true);
}

Status TransferExecutor::recv_file(const std::string& protocol,
                                   const storage::TransferTicket& ticket,
                                   net::TcpStream& stream,
                                   std::int64_t size) {
  return move_blocks(protocol, ticket, stream, size, /*send=*/false);
}

Status TransferExecutor::send_file_range(
    const std::string& protocol, const storage::TransferTicket& ticket,
    net::TcpStream& stream, std::int64_t offset, std::int64_t length) {
  return move_blocks(protocol, ticket, stream, length, /*send=*/true,
                     offset);
}

Result<std::int64_t> TransferExecutor::recv_until_eof(
    const std::string& protocol, const storage::TransferTicket& ticket,
    net::TcpStream& stream) {
  obs::Span tspan(obs::Layer::transfer, "transfer");
  const Nanos start = clock_.now();
  TransferRequest* req = core_.create_request(
      protocol, Direction::write, ticket.path, /*size=*/0, ticket.user);
  ConcurrencyModel model = core_.pick_model();
  if (model == ConcurrencyModel::processes) model = ConcurrencyModel::threads;
  std::vector<char> buf(static_cast<std::size_t>(block_bytes_));
  std::int64_t off = 0;
  Status result;
  while (true) {
    obs::Span qspan(obs::Layer::transfer, "quantum");
    std::optional<Error> grant_err;
    NEST_FAILPOINT("transfer.grant", grant_err = err);
    if (grant_err) {
      result = Status{*grant_err};
      break;
    }
    core_.acquire(req);
    std::int64_t got = 0;
    const Status s = run_block(model, [&]() -> Status {
      auto n = stream.read_some(std::span(buf.data(), buf.size()));
      if (!n.ok()) return Status{n.error()};
      got = *n;
      if (got == 0) return {};  // orderly close
      auto w = ticket.handle->pwrite(
          std::span<const char>(buf.data(), static_cast<std::size_t>(got)),
          off);
      return w.ok() ? Status{} : Status{w.error()};
    });
    if (s.ok() && got > 0) {
      throttle(got);
      core_.charge(req, got);
    }
    core_.release();
    if (!s.ok()) {
      result = s;
      break;
    }
    if (got == 0) break;
    off += got;
  }
  core_.complete(req);
  tspan.set_value(off);
  record_request(protocol, clock_.now() - start, result.ok());
  if (!result.ok()) return result.error();
  return off;
}

Result<std::int64_t> TransferExecutor::read_block(
    const std::string& protocol, const storage::TransferTicket& ticket,
    std::int64_t offset, std::span<char> buf) {
  obs::Span tspan(obs::Layer::transfer, "read_block");
  tspan.set_value(static_cast<std::int64_t>(buf.size()));
  const Nanos start = clock_.now();
  TransferRequest* req = core_.create_request(
      protocol, Direction::read, ticket.path,
      static_cast<std::int64_t>(buf.size()), ticket.user);
  ConcurrencyModel model = core_.pick_model();
  if (model == ConcurrencyModel::processes) model = ConcurrencyModel::threads;
  {
    std::optional<Error> grant_err;
    NEST_FAILPOINT("transfer.grant", grant_err = err);
    if (grant_err) {
      core_.complete(req);
      record_request(protocol, clock_.now() - start, false);
      return *grant_err;
    }
  }
  core_.acquire(req);
  Result<std::int64_t> n = std::int64_t{0};
  const Status s = run_block(model, [&]() -> Status {
    n = ticket.handle->pread(buf, offset);
    return n.ok() ? Status{} : Status{n.error()};
  });
  if (s.ok() && n.ok()) core_.charge(req, *n);
  core_.release();
  core_.complete(req);
  record_request(protocol, clock_.now() - start, s.ok() && n.ok());
  if (!s.ok()) return s.error();
  return n;
}

Result<std::int64_t> TransferExecutor::write_block(
    const std::string& protocol, const storage::TransferTicket& ticket,
    std::int64_t offset, std::span<const char> buf) {
  obs::Span tspan(obs::Layer::transfer, "write_block");
  tspan.set_value(static_cast<std::int64_t>(buf.size()));
  const Nanos start = clock_.now();
  TransferRequest* req = core_.create_request(
      protocol, Direction::write, ticket.path,
      static_cast<std::int64_t>(buf.size()), ticket.user);
  ConcurrencyModel model = core_.pick_model();
  if (model == ConcurrencyModel::processes) model = ConcurrencyModel::threads;
  {
    std::optional<Error> grant_err;
    NEST_FAILPOINT("transfer.grant", grant_err = err);
    if (grant_err) {
      core_.complete(req);
      record_request(protocol, clock_.now() - start, false);
      return *grant_err;
    }
  }
  core_.acquire(req);
  Result<std::int64_t> n = std::int64_t{0};
  const Status s = run_block(model, [&]() -> Status {
    n = ticket.handle->pwrite(buf, offset);
    return n.ok() ? Status{} : Status{n.error()};
  });
  if (s.ok() && n.ok()) core_.charge(req, *n);
  core_.release();
  core_.complete(req);
  record_request(protocol, clock_.now() - start, s.ok() && n.ok());
  if (!s.ok()) return s.error();
  return n;
}

}  // namespace nest::protocol
