#include "protocol/ftp_handler.h"

#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "obs/trace.h"

namespace nest::protocol {

namespace {

bool reply(net::TcpStream& s, const std::string& line) {
  return s.write_all(line + "\r\n").ok();
}

int errc_to_ftp(Errc code) {
  switch (code) {
    case Errc::not_found: return 550;
    case Errc::permission_denied:
    case Errc::not_authenticated: return 530;
    case Errc::no_space:
    case Errc::lot_expired: return 552;
    case Errc::exists: return 553;
    case Errc::busy:
    case Errc::staging: return 450;  // "file unavailable, try again" (tape)
    case Errc::invalid_argument:
    case Errc::protocol_error: return 501;
    default: return 550;
  }
}

std::string ftp_fail(const Status& s) {
  return std::to_string(errc_to_ftp(s.code())) + " " + s.to_string();
}

// Session-scoped data-channel setup: PASV listener or PORT target.
struct DataChannel {
  std::optional<net::TcpListener> pasv;
  std::string port_ip;
  uint16_t port_port = 0;

  bool configured() const { return pasv.has_value() || port_port != 0; }

  Result<net::TcpStream> open() {
    if (pasv) {
      auto data = pasv->accept();
      pasv.reset();
      return data;
    }
    if (port_port != 0) {
      auto data = net::TcpStream::connect(port_ip, port_port);
      port_port = 0;
      return data;
    }
    return Error{Errc::protocol_error, "use PASV or PORT first"};
  }
};

}  // namespace

Status ModeEBlock::send(net::TcpStream& s, std::span<const char> data,
                        std::int64_t offset, bool eof) {
  char header[17];
  header[0] = eof ? kEofFlag : 0;
  const auto put64 = [&](int at, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      header[at + i] = static_cast<char>((v >> (56 - 8 * i)) & 0xff);
    }
  };
  put64(1, static_cast<std::uint64_t>(data.size()));
  put64(9, static_cast<std::uint64_t>(offset));
  // Header and payload leave in one writev: mode E blocks are small and
  // frequent, so the extra syscall per block is pure overhead.
  return s.send_vecs({std::span<const char>(header, 17), data});
}

Result<bool> ModeEBlock::recv(net::TcpStream& s, std::vector<char>& data,
                              std::int64_t& offset) {
  char header[17];
  if (auto st = s.read_exact(std::span(header, 17)); !st.ok())
    return Error{st.error()};
  const auto get64 = [&](int at) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | static_cast<unsigned char>(header[at + i]);
    }
    return v;
  };
  const std::uint64_t len = get64(1);
  offset = static_cast<std::int64_t>(get64(9));
  // An attacker controls this 64-bit length; refuse anything beyond a
  // sane block bound instead of attempting the allocation.
  if (len > kMaxBlockBytes) {
    return Error{Errc::protocol_error, "mode E block too large"};
  }
  data.resize(len);
  if (len > 0) {
    if (auto st = s.read_exact(std::span(data.data(), data.size()));
        !st.ok()) {
      return Error{st.error()};
    }
  }
  return (header[0] & kEofFlag) == 0;
}

void FtpHandler::serve(net::TcpStream& stream) {
  if (!reply(stream, gridftp_ ? "220 nest GridFTP server ready"
                              : "220 nest FTP server ready")) {
    return;
  }

  storage::Principal who;
  who.protocol = name();
  bool logged_in = false;
  std::string cwd = "/";
  char mode = 'S';
  std::int64_t restart_offset = 0;  // REST: next RETR resumes here
  DataChannel data_chan;
  const std::string proto = name();

  auto resolve = [&](const std::string& p) {
    return p.empty() || p[0] != '/' ? join_path(cwd, p) : p;
  };

  while (true) {
    auto line_r = stream.read_line();
    if (!line_r.ok()) return;
    const std::string line = std::string(trim(*line_r));
    if (line.empty()) continue;
    const auto words = split_ws(line);
    const std::string cmd = to_lower(words[0]);

    if (cmd == "quit") {
      reply(stream, "221 bye");
      return;
    }
    if (cmd == "noop") {
      reply(stream, "200 ok");
      continue;
    }
    if (cmd == "syst") {
      reply(stream, "215 UNIX Type: L8");
      continue;
    }
    if (cmd == "feat") {
      if (gridftp_) {
        // Best-effort reply: a dead control channel fails the next read.
        (void)stream.write_all(
            std::string("211-Features:\r\n AUTH GSI\r\n"
                        " MODE E\r\n PARALLEL\r\n211 end\r\n"));
      } else {
        // Best-effort reply: a dead control channel fails the next read.
        (void)stream.write_all(
            std::string("211-Features:\r\n PASV\r\n211 end\r\n"));
      }
      continue;
    }
    if (cmd == "type") {
      reply(stream, "200 type set");
      continue;
    }
    if (cmd == "opts") {
      reply(stream, "200 options accepted");
      continue;
    }
    if (cmd == "mode" && words.size() == 2) {
      const char m = static_cast<char>(std::toupper(
          static_cast<unsigned char>(words[1][0])));
      if (m == 'S' || (m == 'E' && gridftp_)) {
        mode = m;
        reply(stream, "200 mode set");
      } else {
        reply(stream, "504 mode not supported");
      }
      continue;
    }

    if (cmd == "user") {
      if (gridftp_) {
        reply(stream, "530 use AUTH GSI");
        continue;
      }
      if (words.size() == 2 && to_lower(words[1]) == "anonymous" &&
          ctx_.allow_anonymous) {
        reply(stream, "331 send email as password");
      } else {
        reply(stream, "530 only anonymous FTP is allowed");
      }
      continue;
    }
    if (cmd == "pass") {
      if (gridftp_) {
        reply(stream, "530 use AUTH GSI");
        continue;
      }
      logged_in = true;
      who = storage::Principal{.name = "",
                               .groups = {},
                               .authenticated = false,
                               .protocol = "ftp"};
      reply(stream, "230 anonymous login ok");
      continue;
    }
    if (cmd == "auth" && gridftp_) {
      if (words.size() != 2 || to_lower(words[1]) != "gsi") {
        reply(stream, "504 only GSI");
        continue;
      }
      const std::string challenge = ctx_.gsi->make_challenge();
      if (!reply(stream, "334 " + challenge)) return;
      auto adat = stream.read_line();
      if (!adat.ok()) return;
      const auto aw = split_ws(*adat);
      if (aw.size() != 3 || to_lower(aw[0]) != "adat") {
        reply(stream, "501 expected ADAT <subject> <response>");
        continue;
      }
      auto principal = ctx_.gsi->verify(aw[1], challenge, aw[2], "gridftp");
      if (!principal.ok()) {
        reply(stream, "535 " + principal.error().to_string());
        continue;
      }
      who = std::move(principal.value());
      logged_in = true;
      reply(stream, "235 GSI authentication ok");
      continue;
    }

    if (!logged_in) {
      reply(stream, gridftp_ ? "530 authenticate with AUTH GSI"
                             : "530 log in with USER anonymous");
      continue;
    }

    if (cmd == "pwd") {
      reply(stream, "257 \"" + cwd + "\"");
      continue;
    }
    if (cmd == "cwd" && words.size() == 2) {
      const std::string target = normalize_path(resolve(words[1]));
      auto st = ctx_.dispatcher->storage().stat(who, target);
      if (st.ok() && st->is_dir) {
        cwd = target;
        reply(stream, "250 ok");
      } else {
        reply(stream, st.ok() ? "550 not a directory"
                              : ftp_fail(Status{st.error()}));
      }
      continue;
    }
    if (cmd == "cdup") {
      cwd = parent_path(cwd);
      reply(stream, "250 ok");
      continue;
    }
    if (cmd == "pasv") {
      auto listener = net::TcpListener::bind(0);
      if (!listener.ok()) {
        reply(stream, "425 cannot open data port");
        continue;
      }
      const uint16_t p = listener->port();
      data_chan.pasv.emplace(std::move(listener.value()));
      data_chan.port_port = 0;
      std::ostringstream os;
      os << "227 Entering Passive Mode (127,0,0,1," << (p >> 8) << ","
         << (p & 0xff) << ")";
      reply(stream, os.str());
      continue;
    }
    if (cmd == "port" && words.size() == 2) {
      const auto parts = split(words[1], ',');
      if (parts.size() != 6) {
        reply(stream, "501 bad PORT");
        continue;
      }
      data_chan.port_ip = parts[0] + "." + parts[1] + "." + parts[2] + "." +
                          parts[3];
      data_chan.port_port = static_cast<uint16_t>(
          parse_int(parts[4]).value_or(0) * 256 +
          parse_int(parts[5]).value_or(0));
      data_chan.pasv.reset();
      reply(stream, "200 PORT ok");
      continue;
    }

    NestRequest req;
    req.principal = who;
    req.protocol = proto;

    if (cmd == "rest" && words.size() == 2) {
      const auto pos = parse_int(words[1]);
      if (!pos || *pos < 0) {
        reply(stream, "501 bad restart position");
        continue;
      }
      restart_offset = *pos;
      reply(stream, "350 restarting at " + std::to_string(*pos));
      continue;
    }
    if (cmd == "size" && words.size() == 2) {
      req.op = NestOp::stat;
      req.path = resolve(words[1]);
      const auto r = ctx_.dispatcher->execute(req);
      reply(stream, r.status.ok() ? "213 " + std::to_string(r.value)
                                  : ftp_fail(r.status));
      continue;
    }
    if (cmd == "dele" && words.size() == 2) {
      req.op = NestOp::unlink;
      req.path = resolve(words[1]);
      const auto r = ctx_.dispatcher->execute(req);
      reply(stream, r.status.ok() ? "250 deleted" : ftp_fail(r.status));
      continue;
    }
    if (cmd == "mkd" && words.size() == 2) {
      req.op = NestOp::mkdir;
      req.path = resolve(words[1]);
      const auto r = ctx_.dispatcher->execute(req);
      reply(stream, r.status.ok() ? "257 created" : ftp_fail(r.status));
      continue;
    }
    if (cmd == "rmd" && words.size() == 2) {
      req.op = NestOp::rmdir;
      req.path = resolve(words[1]);
      const auto r = ctx_.dispatcher->execute(req);
      reply(stream, r.status.ok() ? "250 removed" : ftp_fail(r.status));
      continue;
    }

    if ((cmd == "list" || cmd == "nlst")) {
      obs::Span pspan(obs::Layer::protocol, "list");
      req.op = NestOp::list;
      req.path = words.size() >= 2 ? resolve(words[1]) : cwd;
      const auto r = ctx_.dispatcher->execute(req);
      if (!r.status.ok()) {
        reply(stream, ftp_fail(r.status));
        continue;
      }
      reply(stream, "150 opening data connection");
      auto data = data_chan.open();
      if (!data.ok()) {
        reply(stream, "425 cannot open data connection");
        continue;
      }
      // Best-effort: a dead data channel reads client-side as a torn listing.
      (void)data->write_all(r.text);
      data->shutdown_send();
      reply(stream, "226 transfer complete");
      continue;
    }

    if (cmd == "retr" && words.size() == 2) {
      obs::Span pspan(obs::Layer::protocol, "get");
      req.op = NestOp::get;
      req.path = resolve(words[1]);
      auto ticket = ctx_.dispatcher->approve_get(req);
      if (!ticket.ok()) {
        reply(stream, ftp_fail(Status{ticket.error()}));
        continue;
      }
      reply(stream, "150 opening data connection (" +
                        std::to_string(ticket->size) + " bytes)");
      auto data = data_chan.open();
      if (!data.ok()) {
        reply(stream, "425 cannot open data connection");
        continue;
      }
      const std::int64_t rest = std::min(restart_offset, ticket->size);
      restart_offset = 0;  // REST applies to exactly one transfer
      Status sent;
      if (mode == 'E') {
        // Extended block mode: stream gated blocks with framing headers.
        std::vector<char> buf(
            static_cast<std::size_t>(ctx_.executor->block_bytes()));
        std::int64_t off = rest;
        while (off < ticket->size && sent.ok()) {
          const auto len = std::min<std::int64_t>(
              static_cast<std::int64_t>(buf.size()), ticket->size - off);
          auto n = ctx_.executor->read_block(
              proto, *ticket, off,
              std::span(buf.data(), static_cast<std::size_t>(len)));
          if (!n.ok()) {
            sent = Status{n.error()};
            break;
          }
          sent = ModeEBlock::send(
              *data,
              std::span<const char>(buf.data(),
                                    static_cast<std::size_t>(*n)),
              off, /*eof=*/false);
          off += *n;
        }
        if (sent.ok()) sent = ModeEBlock::send(*data, {}, off, /*eof=*/true);
      } else if (rest > 0) {
        sent = ctx_.executor->send_file_range(proto, *ticket, *data, rest,
                                              ticket->size - rest);
      } else {
        sent = ctx_.executor->send_file(proto, *ticket, *data);
      }
      data->shutdown_send();
      reply(stream, sent.ok() ? "226 transfer complete"
                              : "426 transfer failed");
      continue;
    }

    if (cmd == "stor" && words.size() == 2) {
      obs::Span pspan(obs::Layer::protocol, "put");
      req.op = NestOp::put;
      req.path = resolve(words[1]);
      req.size = 0;  // FTP carries no length; settled after transfer
      auto ticket = ctx_.dispatcher->approve_put(req);
      if (!ticket.ok()) {
        reply(stream, ftp_fail(Status{ticket.error()}));
        continue;
      }
      reply(stream, "150 ready for data");
      auto data = data_chan.open();
      if (!data.ok()) {
        reply(stream, "425 cannot open data connection");
        continue;
      }
      Result<std::int64_t> total = std::int64_t{0};
      if (mode == 'E') {
        std::vector<char> block;
        std::int64_t off = 0;
        std::int64_t received = 0;
        while (true) {
          auto more = ModeEBlock::recv(*data, block, off);
          if (!more.ok()) {
            total = more.error();
            break;
          }
          if (!block.empty()) {
            auto n = ctx_.executor->write_block(
                proto, *ticket, off,
                std::span<const char>(block.data(), block.size()));
            if (!n.ok()) {
              total = n.error();
              break;
            }
            received += *n;
          }
          if (!*more) {
            total = received;
            break;
          }
        }
      } else {
        total = ctx_.executor->recv_until_eof(proto, *ticket, *data);
      }
      if (!total.ok()) {
        reply(stream, "426 transfer failed");
        continue;
      }
      const Status charged = ctx_.dispatcher->storage().charge_written(
          who, req.path, *total);
      if (!charged.ok()) {
        // Best-effort cleanup of the uncharged store; the 5xx reply matters.
        (void)ctx_.dispatcher->storage().remove(who, req.path);
        reply(stream, ftp_fail(charged));
        continue;
      }
      reply(stream, "226 stored " + std::to_string(*total) + " bytes");
      continue;
    }

    reply(stream, "500 unrecognized command");
  }
}

}  // namespace nest::protocol
