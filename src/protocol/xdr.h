// XDR (RFC 1014) encoding and ONC RPC v2 (RFC 1057) message framing.
//
// The paper's NeST uses the Sun RPC package for NFS communication; we
// implement the needed subset ourselves: big-endian 4-byte basic types,
// length-prefixed padded opaques/strings, and the RPC call/reply envelope
// with AUTH_NONE/AUTH_UNIX credentials.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"

namespace nest::protocol::xdr {

class Encoder {
 public:
  void put_u32(std::uint32_t v);
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_u64(std::uint64_t v);
  void put_bool(bool b) { put_u32(b ? 1 : 0); }
  // Variable-length opaque: length + data + pad to 4.
  void put_opaque(std::span<const char> data);
  void put_string(const std::string& s) {
    put_opaque(std::span<const char>(s.data(), s.size()));
  }
  // Fixed-length opaque: data + pad, no length prefix.
  void put_fixed(std::span<const char> data);

  const std::vector<char>& data() const { return buf_; }
  std::span<const char> span() const {
    return std::span<const char>(buf_.data(), buf_.size());
  }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<char> buf_;
};

class Decoder {
 public:
  explicit Decoder(std::span<const char> data) : data_(data) {}

  NEST_NODISCARD Result<std::uint32_t> get_u32();
  NEST_NODISCARD Result<std::int32_t> get_i32();
  NEST_NODISCARD Result<std::uint64_t> get_u64();
  NEST_NODISCARD Result<bool> get_bool();
  NEST_NODISCARD Result<std::string> get_string(std::size_t max_len = 1 << 20);
  NEST_NODISCARD
  Result<std::vector<char>> get_opaque(std::size_t max_len = 1 << 20);
  NEST_NODISCARD Result<std::vector<char>> get_fixed(std::size_t len);
  NEST_NODISCARD Status skip(std::size_t bytes);

  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const char> data_;
  std::size_t pos_ = 0;
};

// --- ONC RPC v2 ---

constexpr std::uint32_t kRpcVersion = 2;
constexpr std::uint32_t kMsgCall = 0;
constexpr std::uint32_t kMsgReply = 1;
constexpr std::uint32_t kReplyAccepted = 0;
constexpr std::uint32_t kAcceptSuccess = 0;
constexpr std::uint32_t kAcceptProgUnavail = 1;
constexpr std::uint32_t kAcceptProcUnavail = 3;
constexpr std::uint32_t kAcceptGarbageArgs = 4;

constexpr std::uint32_t kAuthNone = 0;
constexpr std::uint32_t kAuthUnix = 1;

struct RpcCall {
  std::uint32_t xid = 0;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  // AUTH_UNIX credential contents when present.
  std::optional<std::uint32_t> unix_uid;
  std::optional<std::string> unix_machine;
  // Argument bytes follow; decode continues from `args`.
};

// Decode the call header; on success the decoder is positioned at the
// procedure arguments.
NEST_NODISCARD Result<RpcCall> decode_call(Decoder& dec);

// Encode a call envelope with AUTH_NONE (client side).
void encode_call(Encoder& enc, std::uint32_t xid, std::uint32_t prog,
                 std::uint32_t vers, std::uint32_t proc);

// Encode an accepted reply header with the given accept status; procedure
// results are appended afterwards by the caller.
void encode_accepted_reply(Encoder& enc, std::uint32_t xid,
                           std::uint32_t accept_stat);

// Decode a reply envelope (client side); on success the decoder is
// positioned at the results. Fails unless accepted+success.
NEST_NODISCARD
Status decode_accepted_reply(Decoder& dec, std::uint32_t expect_xid);

}  // namespace nest::protocol::xdr
