#include "protocol/request.h"

namespace nest::protocol {

const char* op_name(NestOp op) noexcept {
  switch (op) {
    case NestOp::noop: return "noop";
    case NestOp::get: return "get";
    case NestOp::put: return "put";
    case NestOp::read_block: return "read_block";
    case NestOp::write_block: return "write_block";
    case NestOp::mkdir: return "mkdir";
    case NestOp::rmdir: return "rmdir";
    case NestOp::unlink: return "unlink";
    case NestOp::stat: return "stat";
    case NestOp::list: return "list";
    case NestOp::rename: return "rename";
    case NestOp::lot_create: return "lot_create";
    case NestOp::lot_renew: return "lot_renew";
    case NestOp::lot_terminate: return "lot_terminate";
    case NestOp::lot_query: return "lot_query";
    case NestOp::lot_list: return "lot_list";
    case NestOp::lot_set_replicas: return "lot_set_replicas";
    case NestOp::lot_pin: return "lot_pin";
    case NestOp::hsm_status: return "hsm_status";
    case NestOp::hsm_recall: return "hsm_recall";
    case NestOp::hsm_migrate: return "hsm_migrate";
    case NestOp::acl_set: return "acl_set";
    case NestOp::acl_clear: return "acl_clear";
    case NestOp::acl_get: return "acl_get";
    case NestOp::query_ad: return "query_ad";
    case NestOp::journal_stat: return "journal_stat";
    case NestOp::stats_query: return "stats";
    case NestOp::fault_set: return "fault_set";
    case NestOp::fault_list: return "fault_list";
  }
  return "?";
}

}  // namespace nest::protocol
