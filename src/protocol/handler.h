// Protocol handler interface for the real appliance.
//
// The protocol layer invokes the handler matching the connecting port
// (paper Section 2.2); the handler authenticates the client, parses its
// wire protocol into NestRequests, and routes them through the dispatcher.
// Bulk data moves through the TransferExecutor so every protocol shares
// the transfer manager's scheduling and concurrency machinery.
#pragma once

#include <memory>
#include <string>

#include "cluster/cluster_node.h"
#include "dispatcher/dispatcher.h"
#include "net/socket.h"
#include "protocol/executor.h"
#include "protocol/gsi.h"

namespace nest::protocol {

struct ServerContext {
  dispatcher::Dispatcher* dispatcher = nullptr;
  GsiRegistry* gsi = nullptr;
  TransferExecutor* executor = nullptr;
  // Cluster federation (null when the appliance runs standalone): REPL
  // stream ops, status surfaces, and GET redirection to better replicas.
  cluster::ClusterNode* cluster = nullptr;
  // Allow anonymous access on non-GSI protocols (paper default: yes).
  bool allow_anonymous = true;
  // Identity this appliance presents when it acts as a *client* in
  // three-party transfers (Chirp THIRDPUT). Empty = anonymous.
  std::string own_subject;
  std::string own_secret;
};

class ProtocolHandler {
 public:
  explicit ProtocolHandler(ServerContext ctx) : ctx_(ctx) {}
  virtual ~ProtocolHandler() = default;
  virtual const char* name() const = 0;
  // Serve one client connection until it closes. Runs on its own thread.
  virtual void serve(net::TcpStream& stream) = 0;

 protected:
  ServerContext ctx_;
};

}  // namespace nest::protocol
