// Awaitable synchronization primitives for simulation tasks.
//
// All wakeups are posted through the engine at the current virtual time so
// stacks stay flat and wake order is deterministic (FIFO per primitive).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/coro.h"
#include "sim/engine.h"

namespace nest::sim {

// One-shot or resettable broadcast event.
class SimEvent {
 public:
  explicit SimEvent(Engine& eng) : eng_(eng) {}

  bool is_set() const noexcept { return set_; }

  void set() {
    set_ = true;
    while (!waiters_.empty()) {
      eng_.post(waiters_.front());
      waiters_.pop_front();
    }
  }
  void reset() noexcept { set_ = false; }

  auto wait() {
    struct Awaiter {
      SimEvent& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& eng_;
  bool set_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

// Counting semaphore with FIFO wakeups. Model for exclusive resources
// (disk head, CPU, the event-loop "big lock").
class Semaphore {
 public:
  Semaphore(Engine& eng, std::int64_t count) : eng_(eng), count_(count) {}

  std::int64_t available() const noexcept { return count_; }
  std::int64_t waiting() const noexcept {
    return static_cast<std::int64_t>(waiters_.size());
  }

  auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (sem.count_ > 0 && sem.waiters_.empty()) {
          --sem.count_;
          return false;  // resume immediately
        }
        sem.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      // Hand the permit directly to the first waiter.
      eng_.post(waiters_.front());
      waiters_.pop_front();
    } else {
      ++count_;
    }
  }

 private:
  Engine& eng_;
  std::int64_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

// RAII-style scoped semaphore hold for coroutines:
//   co_await sem.acquire(); SemGuard g(sem); ... (released on scope exit)
class SemGuard {
 public:
  explicit SemGuard(Semaphore& s) : sem_(&s) {}
  SemGuard(const SemGuard&) = delete;
  SemGuard& operator=(const SemGuard&) = delete;
  ~SemGuard() {
    if (sem_) sem_->release();
  }
  void release_early() {
    if (sem_) {
      sem_->release();
      sem_ = nullptr;
    }
  }

 private:
  Semaphore* sem_;
};

// Wait for N tasks to complete (fork/join for detached tasks).
class WaitGroup {
 public:
  explicit WaitGroup(Engine& eng) : done_(eng) {}

  void add(std::int64_t n = 1) { outstanding_ += n; }
  void done() {
    if (--outstanding_ == 0) done_.set();
  }
  Co<void> wait() {
    if (outstanding_ > 0) co_await done_.wait();
  }

 private:
  std::int64_t outstanding_ = 0;
  SimEvent done_;
};

}  // namespace nest::sim
