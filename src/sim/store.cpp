#include "sim/store.h"

#include <algorithm>

namespace nest::sim {

SimStore::SimStore(Engine& eng, const PlatformProfile& profile)
    : eng_(eng),
      profile_(profile),
      disk_(eng, profile.disk_seek, profile.disk_rot, profile.disk_bw),
      cache_(profile.cache_bytes, profile.page_bytes) {}

Co<void> SimStore::copy_cost(std::int64_t bytes) {
  co_await eng_.delay(
      from_seconds(static_cast<double>(bytes) / profile_.memcpy_bw));
}

Co<void> SimStore::read(std::uint64_t file, std::int64_t offset,
                        std::int64_t bytes) {
  if (bytes <= 0) co_return;
  const std::int64_t psz = profile_.page_bytes;
  const std::int64_t first = offset / psz;
  const std::int64_t last = (offset + bytes - 1) / psz;
  std::vector<PageId> evicted_dirty;
  std::int64_t run_begin = -1;
  for (std::int64_t p = first; p <= last + 1; ++p) {
    const bool miss = p <= last && !cache_.touch(PageId{file, p});
    if (miss) {
      cache_.count_miss();
      if (run_begin < 0) run_begin = p;
      continue;
    }
    if (p <= last) cache_.count_hit();
    if (run_begin >= 0) {
      // Read the whole miss run in one disk access.
      const std::int64_t run_pages = p - run_begin;
      co_await disk_.read(file, run_begin * psz, run_pages * psz);
      for (std::int64_t q = run_begin; q < p; ++q) {
        cache_.insert(PageId{file, q}, /*dirty=*/false, evicted_dirty);
      }
      run_begin = -1;
    }
  }
  // Dirty pages evicted by cache pressure must reach the disk.
  for (const PageId& pg : evicted_dirty) {
    co_await disk_.write(pg.file, pg.page * psz, psz);
    dirty_bytes_ = std::max<std::int64_t>(0, dirty_bytes_ - psz);
  }
  co_await copy_cost(bytes);
}

Co<void> SimStore::write(std::uint64_t file, std::int64_t offset,
                         std::int64_t bytes) {
  if (bytes <= 0) co_return;
  const std::int64_t psz = profile_.page_bytes;
  const std::int64_t first = offset / psz;
  const std::int64_t last = (offset + bytes - 1) / psz;
  std::vector<PageId> evicted_dirty;
  for (std::int64_t p = first; p <= last; ++p) {
    const PageId id{file, p};
    if (!cache_.contains(id)) {
      dirty_fifo_.push_back(id);
      dirty_bytes_ += psz;
    }
    cache_.insert(id, /*dirty=*/true, evicted_dirty);
  }
  for (const PageId& pg : evicted_dirty) {
    co_await disk_.write(pg.file, pg.page * psz, psz);
    dirty_bytes_ = std::max<std::int64_t>(0, dirty_bytes_ - psz);
    co_await quota_charge(psz);
  }
  co_await copy_cost(bytes);
  co_await maybe_throttle();
}

Co<void> SimStore::maybe_throttle() {
  // bdflush-style: the writer is penalized while dirty data exceeds the
  // threshold, draining batches synchronously.
  while (dirty_bytes_ > profile_.dirty_limit_bytes) {
    co_await flush_batch();
  }
}

Co<void> SimStore::flush_batch() {
  // Pop a contiguous run from the dirty FIFO (writes are typically
  // sequential streams, so runs are long).
  constexpr std::int64_t kMaxBatchPages = 128;  // 1 MiB batches at 8 KiB
  if (dirty_fifo_.empty()) {
    dirty_bytes_ = 0;
    co_return;
  }
  const PageId head = dirty_fifo_.front();
  dirty_fifo_.pop_front();
  std::int64_t count = 1;
  while (count < kMaxBatchPages && !dirty_fifo_.empty()) {
    const PageId& next = dirty_fifo_.front();
    if (next.file != head.file || next.page != head.page + count) break;
    dirty_fifo_.pop_front();
    ++count;
  }
  co_await write_out(head.file, head.page, count);
}

Co<void> SimStore::write_out(std::uint64_t file, std::int64_t page_begin,
                             std::int64_t page_count) {
  const std::int64_t psz = profile_.page_bytes;
  const std::int64_t bytes = page_count * psz;
  co_await disk_.write(file, page_begin * psz, bytes);
  for (std::int64_t q = page_begin; q < page_begin + page_count; ++q) {
    cache_.mark_clean(PageId{file, q});
  }
  dirty_bytes_ = std::max<std::int64_t>(0, dirty_bytes_ - bytes);
  co_await quota_charge(bytes);
}

Co<void> SimStore::quota_charge(std::int64_t bytes_flushed) {
  if (!quota_enabled_) co_return;
  quota_accum_ += bytes_flushed;
  while (quota_accum_ >= profile_.quota_sync_interval) {
    quota_accum_ -= profile_.quota_sync_interval;
    ++quota_updates_;
    // Synchronous quota-record update: user and group records live at
    // distant fixed blocks of the quota file, so every update pays a full
    // seek (consecutive updates alternate records and never stream), and
    // the next data flush pays another seek to get back.
    const std::int64_t record_offset =
        (quota_updates_ % 2) * (512LL * 1024 * 1024);
    co_await disk_.write(kQuotaFile, record_offset,
                         profile_.quota_record_bytes);
  }
}

Co<void> SimStore::sync() {
  while (!dirty_fifo_.empty()) co_await flush_batch();
  dirty_bytes_ = 0;
}

bool SimStore::range_cached(std::uint64_t file, std::int64_t offset,
                            std::int64_t len) const {
  if (len <= 0) return true;
  const std::int64_t psz = profile_.page_bytes;
  const std::int64_t first = offset / psz;
  const std::int64_t last = (offset + len - 1) / psz;
  for (std::int64_t p = first; p <= last; ++p) {
    if (!cache_.contains(PageId{file, p})) return false;
  }
  return true;
}

void SimStore::preload(std::uint64_t file, std::int64_t bytes) {
  const std::int64_t psz = profile_.page_bytes;
  const std::int64_t pages = (bytes + psz - 1) / psz;
  std::vector<PageId> evicted_dirty;
  for (std::int64_t p = 0; p < pages; ++p) {
    cache_.insert(PageId{file, p}, /*dirty=*/false, evicted_dirty);
  }
  // Preload is a test/bench setup convenience; evicting dirty pages here
  // would lose writes, so callers must preload before writing.
}

void SimStore::evict_file(std::uint64_t file, std::int64_t bytes) {
  const std::int64_t psz = profile_.page_bytes;
  const std::int64_t pages = (bytes + psz - 1) / psz;
  for (std::int64_t p = 0; p < pages; ++p) cache_.erase(PageId{file, p});
}

}  // namespace nest::sim
