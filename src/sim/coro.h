// Awaitable coroutine task type for the discrete-event simulator.
//
// Co<T> is a lazy coroutine: it starts when awaited and resumes its awaiter
// via symmetric transfer when it finishes. spawn() launches a Co<void> as a
// detached root task (used for simulated clients/servers). All simulation
// code is single-threaded; no synchronization is needed or provided.
#pragma once

#include <cassert>
#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace nest::sim {

template <typename T = void>
class [[nodiscard]] Co;

namespace detail {

template <typename T>
struct CoPromiseBase {
  std::coroutine_handle<> continuation;

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<P> h) noexcept {
      auto cont = h.promise().continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { std::terminate(); }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Co {
 public:
  struct promise_type : detail::CoPromiseBase<T> {
    std::optional<T> value;
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;
  }
  T await_resume() {
    assert(h_.promise().value.has_value());
    return std::move(*h_.promise().value);
  }

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
  }
  std::coroutine_handle<promise_type> h_;
};

template <>
class [[nodiscard]] Co<void> {
 public:
  struct promise_type : detail::CoPromiseBase<void> {
    Co get_return_object() {
      return Co(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Co(Co&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Co& operator=(Co&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  ~Co() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    h_.promise().continuation = awaiter;
    return h_;
  }
  void await_resume() {}

 private:
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  void destroy() {
    if (h_) h_.destroy();
  }
  std::coroutine_handle<promise_type> h_;
};

namespace detail {

// Eagerly-started, self-destroying wrapper that owns a Co<void> for its
// lifetime; when the child finishes the wrapper frame (and thus the child
// frame) is destroyed automatically.
struct Detached {
  struct promise_type {
    Detached get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }
  };
};

inline Detached spawn_impl(Co<void> task) { co_await std::move(task); }

}  // namespace detail

// Launch a simulation task detached from any awaiter.
inline void spawn(Co<void> task) { detail::spawn_impl(std::move(task)); }

}  // namespace nest::sim
