// Discrete-event simulation engine: a virtual clock plus a deterministic
// time-ordered event queue. Ties between simultaneous events break on
// insertion order, so runs are exactly reproducible.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace nest::sim {

class Engine;

// Awaiter returned by Engine::delay().
struct DelayAwaiter {
  Engine* engine;
  Nanos delay;

  bool await_ready() const noexcept { return delay <= 0; }
  void await_suspend(std::coroutine_handle<> h);
  void await_resume() const noexcept {}
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Nanos now() const noexcept { return now_; }

  // Schedule a callback at an absolute virtual time (>= now).
  void schedule_at(Nanos when, std::function<void()> fn);
  void schedule(Nanos delay, std::function<void()> fn) {
    schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }
  // Resume a coroutine at now(); used by sync primitives to flatten stacks
  // and keep wake order deterministic.
  void post(std::coroutine_handle<> h) {
    schedule_at(now_, [h] { h.resume(); });
  }

  DelayAwaiter delay(Nanos d) { return DelayAwaiter{this, d}; }

  // Run the next event; false when the queue is empty.
  bool step();
  // Run to quiescence.
  void run();
  // Run events with time <= t, then set the clock to t.
  void run_until(Nanos t);

  std::size_t pending() const noexcept { return queue_.size(); }

  // Clock view for policy code written against nest::Clock.
  class SimClock final : public Clock {
   public:
    explicit SimClock(const Engine& e) : engine_(e) {}
    Nanos now() const override { return engine_.now(); }

   private:
    const Engine& engine_;
  };
  Clock& clock() {
    if (!clock_) clock_.emplace(*this);
    return *clock_;
  }

 private:
  struct Event {
    Nanos when;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::optional<SimClock> clock_;
};

inline void DelayAwaiter::await_suspend(std::coroutine_handle<> h) {
  engine->schedule(delay, [h] { h.resume(); });
}

}  // namespace nest::sim
