#include "sim/cache.h"

namespace nest::sim {

bool BufferCache::touch(PageId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void BufferCache::insert(PageId id, bool dirty,
                         std::vector<PageId>& evicted_dirty) {
  const auto it = map_.find(id);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->dirty = it->second->dirty || dirty;
    return;
  }
  while (static_cast<std::int64_t>(map_.size()) >= capacity_pages_ &&
         !lru_.empty()) {
    const Entry victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim.id);
    if (victim.dirty) evicted_dirty.push_back(victim.id);
  }
  lru_.push_front(Entry{id, dirty});
  map_[id] = lru_.begin();
}

void BufferCache::mark_clean(PageId id) {
  const auto it = map_.find(id);
  if (it != map_.end()) it->second->dirty = false;
}

void BufferCache::erase(PageId id) {
  const auto it = map_.find(id);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

std::int64_t BufferCache::resident_bytes(std::uint64_t file,
                                         std::int64_t bytes) const {
  const std::int64_t pages = (bytes + page_bytes_ - 1) / page_bytes_;
  std::int64_t resident = 0;
  for (std::int64_t p = 0; p < pages; ++p) {
    if (map_.count(PageId{file, p})) ++resident;
  }
  return resident * page_bytes_;
}

double BufferCache::resident_fraction(std::uint64_t file,
                                      std::int64_t bytes) const {
  if (bytes <= 0) return 1.0;
  const double res = static_cast<double>(resident_bytes(file, bytes));
  return res >= static_cast<double>(bytes)
             ? 1.0
             : res / static_cast<double>(bytes);
}

}  // namespace nest::sim
