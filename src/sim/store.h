// SimStore: the simulated OS storage stack — buffer cache over a disk,
// with an optional kernel-quota cost model (the mechanism NeST uses to
// implement lots, paper Sections 5 and 7.4).
//
// Timing model:
//  * reads: cache hits cost a user/kernel copy; misses read contiguous runs
//    from the disk and populate the cache.
//  * writes: pages enter the cache dirty at copy cost; when outstanding
//    dirty bytes exceed the platform writeback threshold, the writer blocks
//    while a flush batch drains to disk (classic bdflush throttling).
//  * quota: when enabled, every quota_sync_interval bytes flushed force a
//    synchronous quota-record update at a distant disk location, which both
//    costs a small write and breaks the flush stream's sequentiality.
#pragma once

#include <cstdint>
#include <deque>

#include "sim/cache.h"
#include "sim/coro.h"
#include "sim/disk.h"
#include "sim/engine.h"
#include "sim/platform.h"

namespace nest::sim {

class SimStore {
 public:
  SimStore(Engine& eng, const PlatformProfile& profile);

  Co<void> read(std::uint64_t file, std::int64_t offset, std::int64_t bytes);
  Co<void> write(std::uint64_t file, std::int64_t offset, std::int64_t bytes);
  // Flush all dirty pages to disk.
  Co<void> sync();

  // Populate [0, bytes) of `file` as clean-resident with no time cost; used
  // to construct in-cache workloads.
  void preload(std::uint64_t file, std::int64_t bytes);
  // Drop every cached page of `file` (cold workloads).
  void evict_file(std::uint64_t file, std::int64_t bytes);

  bool fully_cached(std::uint64_t file, std::int64_t bytes) const {
    return cache_.resident_fraction(file, bytes) >= 1.0;
  }
  // Is the byte range [offset, offset+len) fully resident right now?
  bool range_cached(std::uint64_t file, std::int64_t offset,
                    std::int64_t len) const;
  double resident_fraction(std::uint64_t file, std::int64_t bytes) const {
    return cache_.resident_fraction(file, bytes);
  }

  void set_quota_enabled(bool on) noexcept { quota_enabled_ = on; }
  bool quota_enabled() const noexcept { return quota_enabled_; }

  Disk& disk() noexcept { return disk_; }
  BufferCache& cache() noexcept { return cache_; }
  std::int64_t quota_updates() const noexcept { return quota_updates_; }

 private:
  Co<void> copy_cost(std::int64_t bytes);
  Co<void> flush_batch();
  Co<void> maybe_throttle();
  Co<void> write_out(std::uint64_t file, std::int64_t page_begin,
                     std::int64_t page_count);
  Co<void> quota_charge(std::int64_t bytes_flushed);

  Engine& eng_;
  PlatformProfile profile_;
  Disk disk_;
  BufferCache cache_;
  std::deque<PageId> dirty_fifo_;
  std::int64_t dirty_bytes_ = 0;
  bool quota_enabled_ = false;
  std::int64_t quota_accum_ = 0;
  std::int64_t quota_updates_ = 0;

  // Reserved pseudo-file id for the on-disk quota records.
  static constexpr std::uint64_t kQuotaFile = ~0ull - 1;
};

}  // namespace nest::sim
