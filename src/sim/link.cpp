#include "sim/link.h"

#include <algorithm>

namespace nest::sim {

Co<void> Link::transfer(std::int64_t bytes) {
  ++active_;
  std::int64_t remaining = bytes;
  while (remaining > 0) {
    const std::int64_t chunk = std::min(chunk_, remaining);
    const double rate = bw_ / static_cast<double>(active_);
    co_await eng_.delay(from_seconds(static_cast<double>(chunk) / rate));
    remaining -= chunk;
  }
  --active_;
}

Co<void> Link::round_trip(std::int64_t bytes) {
  // Control messages are small: latency dominated, but they still queue
  // behind bulk data for their serialization time.
  co_await eng_.delay(rtt_);
  co_await transfer(bytes);
}

Co<void> Link::propagate() { co_await eng_.delay(rtt_ / 2); }

}  // namespace nest::sim
