// Page-granularity LRU buffer cache (bookkeeping only; timing costs are
// charged by SimStore, which owns the disk). This is the model of the
// *kernel* buffer cache inside the simulated OS; NeST's user-level gray-box
// mirror of it lives in src/transfer/cache_model.h.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

namespace nest::sim {

struct PageId {
  std::uint64_t file;
  std::int64_t page;
  bool operator==(const PageId&) const = default;
};

struct PageIdHash {
  std::size_t operator()(const PageId& p) const noexcept {
    return std::hash<std::uint64_t>()(p.file * 0x9e3779b97f4a7c15ull +
                                      static_cast<std::uint64_t>(p.page));
  }
};

class BufferCache {
 public:
  BufferCache(std::int64_t capacity_bytes, std::int64_t page_bytes)
      : capacity_pages_(capacity_bytes / page_bytes),
        page_bytes_(page_bytes) {}

  std::int64_t page_bytes() const noexcept { return page_bytes_; }
  std::int64_t size_pages() const noexcept {
    return static_cast<std::int64_t>(map_.size());
  }
  std::int64_t capacity_pages() const noexcept { return capacity_pages_; }

  bool contains(PageId id) const { return map_.count(id) != 0; }

  // Move to MRU; false if absent.
  bool touch(PageId id);

  // Insert (or touch) a page. Pages evicted to make room are appended to
  // `evicted_dirty` when they were dirty — the caller must write them out.
  void insert(PageId id, bool dirty, std::vector<PageId>& evicted_dirty);

  void mark_clean(PageId id);

  // Drop a page regardless of dirty state (caller owns any needed flush).
  void erase(PageId id);

  // Fraction of [0, bytes) of `file` currently resident.
  double resident_fraction(std::uint64_t file, std::int64_t bytes) const;

  // Pages of `file` in [0, bytes) resident, in bytes.
  std::int64_t resident_bytes(std::uint64_t file, std::int64_t bytes) const;

  std::int64_t hits() const noexcept { return hits_; }
  std::int64_t misses() const noexcept { return misses_; }
  void count_hit() noexcept { ++hits_; }
  void count_miss() noexcept { ++misses_; }

 private:
  struct Entry {
    PageId id;
    bool dirty;
  };
  using LruList = std::list<Entry>;

  std::int64_t capacity_pages_;
  std::int64_t page_bytes_;
  LruList lru_;  // front = MRU
  std::unordered_map<PageId, LruList::iterator, PageIdHash> map_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace nest::sim
