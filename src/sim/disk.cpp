#include "sim/disk.h"

namespace nest::sim {

Co<void> Disk::access(std::uint64_t file_id, std::int64_t offset,
                      std::int64_t bytes) {
  co_await head_.acquire();
  SemGuard hold(head_);
  const bool sequential = file_id == last_file_ && offset == last_end_;
  if (!sequential) {
    ++total_seeks_;
    co_await eng_.delay(seek_ + rot_);
  }
  co_await eng_.delay(from_seconds(static_cast<double>(bytes) / bw_));
  last_file_ = file_id;
  last_end_ = offset + bytes;
  total_bytes_ += bytes;
}

}  // namespace nest::sim
