// Shared-bandwidth network link with processor-sharing semantics.
//
// All flows through a Link split its bandwidth equally (a standard fluid
// approximation of TCP fair sharing on a shared segment). Transfers proceed
// in chunks; the instantaneous rate is sampled per chunk, so rate changes
// when flows start/stop propagate at chunk granularity.
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "sim/coro.h"
#include "sim/engine.h"

namespace nest::sim {

class Link {
 public:
  Link(Engine& eng, double bytes_per_sec, Nanos rtt,
       std::int64_t chunk_bytes = 64 * 1024)
      : eng_(eng), bw_(bytes_per_sec), rtt_(rtt), chunk_(chunk_bytes) {}

  // Bulk data movement sharing bandwidth with all concurrent transfers.
  Co<void> transfer(std::int64_t bytes);

  // Small control message exchange: one round trip plus serialization.
  Co<void> round_trip(std::int64_t bytes = 256);

  // One-way latency delay (half an RTT).
  Co<void> propagate();

  int active_flows() const noexcept { return active_; }
  double bandwidth() const noexcept { return bw_; }
  Nanos rtt() const noexcept { return rtt_; }

 private:
  Engine& eng_;
  double bw_;
  Nanos rtt_;
  std::int64_t chunk_;
  int active_ = 0;
};

}  // namespace nest::sim
