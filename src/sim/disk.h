// Single-spindle disk model: average seek + rotational delay for
// discontiguous accesses, sequential streaming at the platter rate, one
// request in service at a time (head is an exclusive resource).
#pragma once

#include <cstdint>

#include "common/clock.h"
#include "sim/coro.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace nest::sim {

class Disk {
 public:
  Disk(Engine& eng, Nanos avg_seek, Nanos avg_rot, double bytes_per_sec)
      : eng_(eng),
        head_(eng, 1),
        seek_(avg_seek),
        rot_(avg_rot),
        bw_(bytes_per_sec) {}

  // Read/write `bytes` belonging to `file_id` starting at `offset`.
  // Consecutive accesses to the same file at the next offset stream
  // sequentially; anything else pays seek + rotation.
  Co<void> read(std::uint64_t file_id, std::int64_t offset,
                std::int64_t bytes) {
    return access(file_id, offset, bytes);
  }
  Co<void> write(std::uint64_t file_id, std::int64_t offset,
                 std::int64_t bytes) {
    return access(file_id, offset, bytes);
  }

  // Statistics for benchmarks and tests.
  std::int64_t total_bytes() const noexcept { return total_bytes_; }
  std::int64_t total_seeks() const noexcept { return total_seeks_; }
  // Queue depth including the request in service.
  std::int64_t queue_depth() const noexcept {
    return head_.waiting() + (head_.available() == 0 ? 1 : 0);
  }

 private:
  Co<void> access(std::uint64_t file_id, std::int64_t offset,
                  std::int64_t bytes);

  Engine& eng_;
  Semaphore head_;
  Nanos seek_;
  Nanos rot_;
  double bw_;
  std::uint64_t last_file_ = ~0ull;
  std::int64_t last_end_ = -1;
  std::int64_t total_bytes_ = 0;
  std::int64_t total_seeks_ = 0;
};

}  // namespace nest::sim
