#include "sim/platform.h"

namespace nest::sim {

PlatformProfile PlatformProfile::linux2_2() {
  PlatformProfile p;
  p.name = "linux-2.2-gige";
  p.link_bw = 36.0e6;         // effective server NIC ceiling, 2002 GigE stack
  p.link_rtt = 200 * kMicrosecond;
  p.thread_create = 80 * kMicrosecond;
  p.thread_ctx_switch = 12 * kMicrosecond;
  p.process_fork = 400 * kMicrosecond;
  p.process_ctx_switch = 18 * kMicrosecond;
  p.event_dispatch = 4 * kMicrosecond;
  p.syscall = 4 * kMicrosecond;
  p.memcpy_bw = 180.0e6;
  p.disk_seek = 5 * kMillisecond;
  p.disk_rot = 3 * kMillisecond;
  p.disk_bw = 20.0e6;         // IBM 9LZX-class sequential transfer
  p.cache_bytes = 384 * kMiB;  // 512 MB-class server: Fig 3 working set stays resident
  p.dirty_limit_bytes = 32 * kMiB;
  return p;
}

PlatformProfile PlatformProfile::solaris8() {
  PlatformProfile p;
  p.name = "solaris-8-netra";
  p.link_bw = 11.0e6;         // 100 Mbit/s Ethernet
  p.link_rtt = 300 * kMicrosecond;
  p.thread_create = 900 * kMicrosecond;  // Netra T1 kernel threads are costly
  p.thread_ctx_switch = 60 * kMicrosecond;
  p.process_fork = 2 * kMillisecond;
  p.process_ctx_switch = 80 * kMicrosecond;
  p.event_dispatch = 6 * kMicrosecond;
  p.syscall = 6 * kMicrosecond;
  p.memcpy_bw = 90.0e6;
  p.disk_seek = 6 * kMillisecond;
  p.disk_rot = 4 * kMillisecond;
  p.disk_bw = 15.0e6;
  p.cache_bytes = 64 * kMiB;
  p.dirty_limit_bytes = 16 * kMiB;
  return p;
}

PlatformProfile PlatformProfile::tape2002() {
  // Only the disk/cache section matters: this profile backs a SimStore
  // used as the cold tier, never a full host. "Seek" stands in for the
  // mount-and-position cycle of a tape robot, so it dominates any access.
  PlatformProfile p = linux2_2();
  p.name = "tape-2002-silo";
  p.disk_seek = 2 * kSecond;
  p.disk_rot = 0;
  p.disk_bw = 12.0e6;
  p.cache_bytes = 0;  // nothing stays mounted between recalls
  p.dirty_limit_bytes = 0;
  return p;
}

}  // namespace nest::sim
