#include "sim/engine.h"

namespace nest::sim {

void Engine::schedule_at(Nanos when, std::function<void()> fn) {
  if (when < now_) when = now_;
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-adjacent,
  // so copy the function handle (cheap: std::function small-buffer or heap ptr).
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  ev.fn();
  return true;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(Nanos t) {
  while (!queue_.empty() && queue_.top().when <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace nest::sim
