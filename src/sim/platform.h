// Platform cost profiles for the simulated substrate.
//
// The paper's experiments ran on two testbeds: a Linux 2.2.19 cluster with
// IBM 9LZX disks on Gigabit Ethernet, and Netra T1s running Solaris 8 on
// 100 Mbit/s Ethernet. These profiles encode the *relative* costs those
// platforms exhibit — cheap threads on Linux, expensive threads and cheap
// events on Solaris, 2002-era disk seek/transfer ratios — which is what the
// paper's figures actually exercise. Absolute magnitudes are calibrated to
// land in the same numeric neighborhood the figures report (peak ~35 MB/s
// server bandwidth on GigE, ~20 MB/s raw disk).
#pragma once

#include <cstdint>
#include <string>

#include "common/clock.h"
#include "common/units.h"

namespace nest::sim {

struct PlatformProfile {
  std::string name;

  // Network (server NIC, shared by all client flows).
  double link_bw = 0;     // bytes/sec effective
  Nanos link_rtt = 0;     // request/response round-trip latency

  // Concurrency model costs.
  Nanos thread_create = 0;      // spawn a kernel thread
  Nanos thread_ctx_switch = 0;  // context switch between threads
  Nanos process_fork = 0;       // fork a worker process
  Nanos process_ctx_switch = 0;
  Nanos event_dispatch = 0;     // dispatch one handler from the event loop
  Nanos syscall = 0;            // generic syscall overhead

  double memcpy_bw = 0;  // bytes/sec user<->kernel copy bandwidth

  // Disk (single spindle).
  Nanos disk_seek = 0;  // average seek
  Nanos disk_rot = 0;   // average rotational delay
  double disk_bw = 0;   // sequential transfer bytes/sec

  // Buffer cache.
  std::int64_t cache_bytes = 0;
  std::int64_t page_bytes = 8 * kKiB;
  std::int64_t dirty_limit_bytes = 0;  // writeback threshold

  // Quota (lot enforcement) cost model: every quota_sync_interval bytes
  // flushed to disk force a synchronous quota-record update at a distant
  // block, costing two seeks plus a small transfer.
  std::int64_t quota_sync_interval = 128 * kKiB;
  std::int64_t quota_record_bytes = 4 * kKiB;

  // The paper's Linux testbed: GigE (observed ~35 MB/s server peak in 2002
  // stacks), 9LZX-class disk, cheap kernel threads.
  static PlatformProfile linux2_2();

  // The paper's Solaris testbed: Netra T1 on 100 Mbit/s, expensive threads,
  // cheap event dispatch.
  static PlatformProfile solaris8();

  // 2002-era tape silo (CASTOR-class HSM cold tier): seconds of
  // positioning before the first byte, ~12 MB/s streaming once moving,
  // and no cache — every recall pays the full cost.
  static PlatformProfile tape2002();
};

}  // namespace nest::sim
