// QuotaLedger: user-level quota accounting.
//
// The paper implements lots on the *kernel* quota mechanism and measures
// its cost (Section 7.4, Figure 6); it also names NeST-managed enforcement
// as the alternative under investigation. This ledger is that alternative:
// NeST itself meters bytes written per owner. It is used by the real
// appliance (whose host has no per-NeST-user kernel quotas) and by the
// A4 ablation bench comparing the two enforcement styles.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/result.h"

namespace nest::storage {

class QuotaLedger {
 public:
  void set_limit(const std::string& owner, std::int64_t bytes);
  std::int64_t limit(const std::string& owner) const;
  std::int64_t usage(const std::string& owner) const;

  // Reserve bytes against the owner's quota; fails with no_space when the
  // limit would be exceeded. Owners without an explicit limit are unmetered.
  NEST_NODISCARD Status charge(const std::string& owner, std::int64_t bytes);
  void release(const std::string& owner, std::int64_t bytes);

  struct Account {
    std::int64_t limit = -1;  // -1: unmetered
    std::int64_t used = 0;
  };

  // --- Journal snapshot / replay support ---
  // Install an account verbatim (journal records carry the resulting
  // account state, not the delta, so replay never re-runs admission).
  void restore(const std::string& owner, std::int64_t limit,
               std::int64_t used);
  // Drop every account (snapshot install on a replica replaces, not
  // merges, the state).
  void clear() { accounts_.clear(); }
  const std::map<std::string, Account>& accounts() const {
    return accounts_;
  }

 private:
  std::map<std::string, Account> accounts_;
};

}  // namespace nest::storage
