#include "storage/extentfs.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/string_util.h"
#include "fault/failpoint.h"

namespace nest::storage {

namespace {

// Handle over an ExtentFs inode: translates logical offsets to
// (extent, offset) volume locations.
class ExtentFileHandle final : public FileHandle {
 public:
  ExtentFileHandle(ExtentFs& fs, std::string path)
      : fs_(fs), path_(std::move(path)) {}

  Result<std::int64_t> pread(std::span<char> buf,
                             std::int64_t offset) override;
  Result<std::int64_t> pwrite(std::span<const char> buf,
                              std::int64_t offset) override;
  Result<std::int64_t> size() const override;
  Status truncate(std::int64_t new_size) override;
  Result<std::vector<SendSegment>> sendfile_map(std::int64_t offset,
                                                std::int64_t len) override;

 private:
  ExtentFs& fs_;
  std::string path_;
};

}  // namespace

ExtentFs::ExtentFs(Clock& clock, std::int64_t volume_bytes)
    : clock_(clock),
      volume_bytes_(volume_bytes),
      extent_count_(volume_bytes / kExtentBytes) {
  mem_volume_.resize(static_cast<std::size_t>(volume_bytes));
  for (std::int64_t e = 0; e < extent_count_; ++e) free_list_.insert(e);
  inodes_["/"] = Inode{.is_dir = true,
                       .size = 0,
                       .extents = {},
                       .mtime = clock.now(),
                       .owner = {}};
}

Result<std::unique_ptr<ExtentFs>> ExtentFs::open_volume(
    Clock& clock, const std::string& volume_path,
    std::int64_t volume_bytes) {
  const int fd =
      ::open(volume_path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Error{Errc::io_error,
                 "open volume " + volume_path + ": " + std::strerror(errno)};
  }
  if (::ftruncate(fd, static_cast<off_t>(volume_bytes)) != 0) {
    ::close(fd);
    return Error{Errc::io_error, "size volume: " + std::string(strerror(errno))};
  }
  auto fs = std::make_unique<ExtentFs>(clock, 0);
  fs->volume_bytes_ = volume_bytes;
  fs->extent_count_ = volume_bytes / kExtentBytes;
  fs->mem_volume_.clear();
  fs->mem_volume_.shrink_to_fit();
  fs->volume_fd_ = fd;
  fs->free_list_.clear();
  for (std::int64_t e = 0; e < fs->extent_count_; ++e) {
    fs->free_list_.insert(e);
  }
  return fs;
}

ExtentFs::~ExtentFs() {
  if (volume_fd_ >= 0) ::close(volume_fd_);
}

Status ExtentFs::volume_read(std::int64_t extent, std::int64_t offset,
                             char* out, std::int64_t len) const {
  const std::int64_t pos = extent * kExtentBytes + offset;
  if (volume_fd_ >= 0) {
    std::int64_t done = 0;
    while (done < len) {
      const ssize_t n = ::pread(volume_fd_, out + done,
                                static_cast<std::size_t>(len - done),
                                static_cast<off_t>(pos + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status{Errc::io_error,
                      "volume pread: " + std::string(std::strerror(errno))};
      }
      if (n == 0) {
        // The volume file is pre-sized at open; reading past it means the
        // backing device shrank underneath us.
        return Status{Errc::io_error, "volume pread: unexpected EOF"};
      }
      done += n;
    }
  } else {
    std::memcpy(out, mem_volume_.data() + pos, static_cast<std::size_t>(len));
  }
  return {};
}

Status ExtentFs::volume_write(std::int64_t extent, std::int64_t offset,
                              const char* data, std::int64_t len) {
  const std::int64_t pos = extent * kExtentBytes + offset;
  if (volume_fd_ >= 0) {
    std::int64_t done = 0;
    while (done < len) {
      const ssize_t n = ::pwrite(volume_fd_, data + done,
                                 static_cast<std::size_t>(len - done),
                                 static_cast<off_t>(pos + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status{Errc::io_error,
                      "volume pwrite: " + std::string(std::strerror(errno))};
      }
      done += n;
    }
  } else {
    std::memcpy(mem_volume_.data() + pos, data,
                static_cast<std::size_t>(len));
  }
  return {};
}

Status ExtentFs::check_parent(const std::string& path) const {
  const std::string parent = parent_path(path);
  const auto it = inodes_.find(parent);
  if (it == inodes_.end()) return Status{Errc::not_found, parent};
  if (!it->second.is_dir) return Status{Errc::not_dir, parent};
  return {};
}

Status ExtentFs::reserve(Inode& inode, std::int64_t new_size) {
  const auto needed = (new_size + kExtentBytes - 1) / kExtentBytes;
  const auto have = static_cast<std::int64_t>(inode.extents.size());
  if (needed > have) {
    if (needed - have > static_cast<std::int64_t>(free_list_.size())) {
      return Status{Errc::no_space, "volume full"};
    }
    const std::vector<char> zeros(static_cast<std::size_t>(kExtentBytes));
    for (std::int64_t i = have; i < needed; ++i) {
      const std::int64_t extent = *free_list_.begin();
      free_list_.erase(free_list_.begin());
      // Zero-fill on allocation: holes read as zeros, and a reused extent
      // must never leak another user's deleted data.
      if (auto s = volume_write(extent, 0, zeros.data(), kExtentBytes);
          !s.ok()) {
        free_list_.insert(extent);
        return s;
      }
      inode.extents.push_back(extent);
    }
  } else {
    while (static_cast<std::int64_t>(inode.extents.size()) > needed) {
      free_list_.insert(inode.extents.back());
      inode.extents.pop_back();
    }
  }
  return {};
}

void ExtentFs::release_extents(Inode& inode) {
  for (const std::int64_t e : inode.extents) free_list_.insert(e);
  inode.extents.clear();
  inode.size = 0;
}

Status ExtentFs::mkdir(const std::string& raw) {
  const std::string path = normalize_path(raw);
  if (inodes_.count(path)) return Status{Errc::exists, path};
  if (auto s = check_parent(path); !s.ok()) return s;
  inodes_[path] = Inode{.is_dir = true,
                        .size = 0,
                        .extents = {},
                        .mtime = clock_.now(),
                        .owner = {}};
  return {};
}

Status ExtentFs::rmdir(const std::string& raw) {
  const std::string path = normalize_path(raw);
  if (path == "/")
    return Status{Errc::permission_denied, "cannot remove root"};
  const auto it = inodes_.find(path);
  if (it == inodes_.end()) return Status{Errc::not_found, path};
  if (!it->second.is_dir) return Status{Errc::not_dir, path};
  const std::string prefix = path + "/";
  const auto child = inodes_.lower_bound(prefix);
  if (child != inodes_.end() &&
      child->first.compare(0, prefix.size(), prefix) == 0) {
    return Status{Errc::busy, "directory not empty"};
  }
  inodes_.erase(it);
  return {};
}

Status ExtentFs::remove(const std::string& raw) {
  const std::string path = normalize_path(raw);
  const auto it = inodes_.find(path);
  if (it == inodes_.end()) return Status{Errc::not_found, path};
  if (it->second.is_dir) return Status{Errc::is_dir, path};
  NEST_FAILPOINT("fs.unlink", return Status{err});
  release_extents(it->second);
  inodes_.erase(it);
  return {};
}

Result<FileStat> ExtentFs::stat(const std::string& raw) const {
  const auto it = inodes_.find(normalize_path(raw));
  if (it == inodes_.end()) return Error{Errc::not_found, raw};
  FileStat st;
  st.is_dir = it->second.is_dir;
  st.size = it->second.size;
  st.mtime = it->second.mtime;
  st.owner = it->second.owner;
  return st;
}

Result<std::vector<DirEntry>> ExtentFs::list(const std::string& raw) const {
  const std::string path = normalize_path(raw);
  const auto it = inodes_.find(path);
  if (it == inodes_.end()) return Error{Errc::not_found, path};
  if (!it->second.is_dir) return Error{Errc::not_dir, path};
  std::vector<DirEntry> out;
  const std::string prefix = path == "/" ? "/" : path + "/";
  for (auto i = inodes_.lower_bound(prefix); i != inodes_.end(); ++i) {
    const std::string& p = i->first;
    if (p.compare(0, prefix.size(), prefix) != 0) break;
    if (p == path) continue;
    if (p.find('/', prefix.size()) != std::string::npos) continue;
    out.push_back(DirEntry{p.substr(prefix.size()), i->second.is_dir,
                           i->second.size});
  }
  return out;
}

Status ExtentFs::rename(const std::string& from_raw,
                        const std::string& to_raw) {
  const std::string from = normalize_path(from_raw);
  const std::string to = normalize_path(to_raw);
  const auto it = inodes_.find(from);
  if (it == inodes_.end()) return Status{Errc::not_found, from};
  if (it->second.is_dir) return Status{Errc::unsupported, "dir rename"};
  if (inodes_.count(to)) return Status{Errc::exists, to};
  if (auto s = check_parent(to); !s.ok()) return s;
  inodes_[to] = std::move(it->second);
  inodes_.erase(it);
  return {};
}

Result<FileHandlePtr> ExtentFs::open(const std::string& raw) {
  NEST_FAILPOINT("fs.open", return err);
  const std::string path = normalize_path(raw);
  const auto it = inodes_.find(path);
  if (it == inodes_.end()) return Error{Errc::not_found, path};
  if (it->second.is_dir) return Error{Errc::is_dir, path};
  return FileHandlePtr(std::make_shared<ExtentFileHandle>(*this, path));
}

Result<FileHandlePtr> ExtentFs::create(const std::string& raw) {
  NEST_FAILPOINT("fs.create", return err);
  const std::string path = normalize_path(raw);
  if (auto s = check_parent(path); !s.ok()) return Error{s.error()};
  auto& inode = inodes_[path];
  if (inode.is_dir) return Error{Errc::is_dir, path};
  release_extents(inode);
  inode.mtime = clock_.now();
  return FileHandlePtr(std::make_shared<ExtentFileHandle>(*this, path));
}

void ExtentFs::set_owner(const std::string& raw, const std::string& owner) {
  const auto it = inodes_.find(normalize_path(raw));
  if (it != inodes_.end()) it->second.owner = owner;
}

std::int64_t ExtentFs::used_space() const {
  return (extent_count_ - static_cast<std::int64_t>(free_list_.size())) *
         kExtentBytes;
}

std::int64_t ExtentFs::extents_of(const std::string& path) const {
  const auto it = inodes_.find(normalize_path(path));
  if (it == inodes_.end()) return -1;
  return static_cast<std::int64_t>(it->second.extents.size());
}

// ---------- handle ----------

Result<std::int64_t> ExtentFs::file_io(const std::string& path,
                                       std::int64_t offset, char* rbuf,
                                       const char* wbuf, std::int64_t len) {
  auto it = inodes_.find(path);
  if (it == inodes_.end()) return Error{Errc::not_found, path};
  Inode& inode = it->second;
  const bool writing = wbuf != nullptr;
  if (writing) {
    NEST_FAILPOINT("fs.pwrite", return err);
  } else {
    NEST_FAILPOINT("fs.pread", return err);
  }

  if (!writing) {
    if (offset >= inode.size) return std::int64_t{0};
    len = std::min(len, inode.size - offset);
  } else {
    if (auto s = reserve(inode, std::max(inode.size, offset + len));
        !s.ok()) {
      return s.error();
    }
  }

  std::int64_t done = 0;
  while (done < len) {
    const std::int64_t pos = offset + done;
    const std::int64_t idx = pos / kExtentBytes;
    const std::int64_t within = pos % kExtentBytes;
    const std::int64_t chunk = std::min(len - done, kExtentBytes - within);
    const std::int64_t extent = inode.extents[static_cast<std::size_t>(idx)];
    const Status s = writing ? volume_write(extent, within, wbuf + done, chunk)
                             : volume_read(extent, within, rbuf + done, chunk);
    if (!s.ok()) return s.error();
    done += chunk;
  }
  if (writing) {
    inode.size = std::max(inode.size, offset + len);
    inode.mtime = clock_.now();
  }
  return done;
}

Result<std::vector<SendSegment>> ExtentFs::map_for_send(
    const std::string& path, std::int64_t offset, std::int64_t len) {
  if (volume_fd_ < 0)
    return Error{Errc::unsupported, "memory-backed volume has no fd"};
  if (offset < 0 || len < 0)
    return Error{Errc::invalid_argument, "negative map_for_send range"};
  const auto it = inodes_.find(path);
  if (it == inodes_.end()) return Error{Errc::not_found, path};
  const Inode& inode = it->second;
  if (inode.is_dir) return Error{Errc::is_dir, path};

  std::vector<SendSegment> out;
  if (offset >= inode.size) return out;
  len = std::min(len, inode.size - offset);
  std::int64_t done = 0;
  while (done < len) {
    const std::int64_t pos = offset + done;
    const std::int64_t idx = pos / kExtentBytes;
    const std::int64_t within = pos % kExtentBytes;
    const std::int64_t chunk = std::min(len - done, kExtentBytes - within);
    const std::int64_t extent = inode.extents[static_cast<std::size_t>(idx)];
    const std::int64_t vol_off = extent * kExtentBytes + within;
    // Merge with the previous segment when the extents happen to be
    // adjacent on the volume — one sendfile() instead of one per extent.
    if (!out.empty() &&
        out.back().offset + out.back().len == vol_off) {
      out.back().len += chunk;
    } else {
      out.push_back(SendSegment{volume_fd_, vol_off, chunk});
    }
    done += chunk;
  }
  return out;
}

Status ExtentFs::file_truncate(const std::string& path,
                               std::int64_t new_size) {
  const auto it = inodes_.find(path);
  if (it == inodes_.end()) return Status{Errc::not_found, path};
  if (auto s = reserve(it->second, new_size); !s.ok()) return s;
  it->second.size = new_size;
  it->second.mtime = clock_.now();
  return {};
}

Result<std::int64_t> ExtentFileHandle::pread(std::span<char> buf,
                                             std::int64_t offset) {
  if (offset < 0) return Error{Errc::invalid_argument, "negative offset"};
  return fs_.file_io(path_, offset, buf.data(), nullptr,
                     static_cast<std::int64_t>(buf.size()));
}

Result<std::int64_t> ExtentFileHandle::pwrite(std::span<const char> buf,
                                              std::int64_t offset) {
  if (offset < 0) return Error{Errc::invalid_argument, "negative offset"};
  return fs_.file_io(path_, offset, nullptr, buf.data(),
                     static_cast<std::int64_t>(buf.size()));
}

Result<std::int64_t> ExtentFileHandle::size() const {
  auto st = fs_.stat(path_);
  if (!st.ok()) return st.error();
  return st->size;
}

Status ExtentFileHandle::truncate(std::int64_t new_size) {
  if (new_size < 0) return Status{Errc::invalid_argument, "negative size"};
  return fs_.file_truncate(path_, new_size);
}

Result<std::vector<SendSegment>> ExtentFileHandle::sendfile_map(
    std::int64_t offset, std::int64_t len) {
  return fs_.map_for_send(path_, offset, len);
}

}  // namespace nest::storage
