#include "storage/memfs.h"

#include <algorithm>

#include "common/string_util.h"

namespace nest::storage {

namespace {

class MemFileHandle final : public FileHandle {
 public:
  MemFileHandle(std::shared_ptr<MemFs::FileData> data, Clock& clock)
      : data_(std::move(data)), clock_(clock) {}

  Result<std::int64_t> pread(std::span<char> buf,
                             std::int64_t offset) override {
    if (offset < 0) return Error{Errc::invalid_argument, "negative offset"};
    ReaderLock lk(data_->mu);
    const auto size = static_cast<std::int64_t>(data_->bytes.size());
    if (offset >= size) return std::int64_t{0};
    const std::int64_t n =
        std::min<std::int64_t>(static_cast<std::int64_t>(buf.size()),
                               size - offset);
    std::copy_n(data_->bytes.begin() + offset, n, buf.begin());
    return n;
  }

  Result<std::int64_t> pwrite(std::span<const char> buf,
                              std::int64_t offset) override {
    if (offset < 0) return Error{Errc::invalid_argument, "negative offset"};
    const std::int64_t end =
        offset + static_cast<std::int64_t>(buf.size());
    WriterLock lk(data_->mu);
    if (end > static_cast<std::int64_t>(data_->bytes.size())) {
      data_->bytes.resize(static_cast<std::size_t>(end));
    }
    std::copy(buf.begin(), buf.end(), data_->bytes.begin() + offset);
    data_->mtime = clock_.now();
    return static_cast<std::int64_t>(buf.size());
  }

  Result<std::int64_t> size() const override {
    ReaderLock lk(data_->mu);
    return static_cast<std::int64_t>(data_->bytes.size());
  }

  Status truncate(std::int64_t new_size) override {
    if (new_size < 0) return Status{Errc::invalid_argument, "negative size"};
    WriterLock lk(data_->mu);
    data_->bytes.resize(static_cast<std::size_t>(new_size));
    data_->mtime = clock_.now();
    return {};
  }

 private:
  std::shared_ptr<MemFs::FileData> data_;
  Clock& clock_;
};

// Locked size/mtime reads for the metadata paths (stat/list/used_space),
// which race against live handles otherwise.
std::int64_t file_size(const std::shared_ptr<MemFs::FileData>& d) {
  ReaderLock lk(d->mu);
  return static_cast<std::int64_t>(d->bytes.size());
}
Nanos file_mtime(const std::shared_ptr<MemFs::FileData>& d) {
  ReaderLock lk(d->mu);
  return d->mtime;
}

}  // namespace

Status MemFs::check_parent(const std::string& path) const {
  const std::string parent = parent_path(path);
  const auto it = nodes_.find(parent);
  if (it == nodes_.end()) return Status{Errc::not_found, parent};
  if (!it->second.is_dir) return Status{Errc::not_dir, parent};
  return {};
}

Status MemFs::mkdir(const std::string& raw) {
  const std::string path = normalize_path(raw);
  if (nodes_.count(path)) return Status{Errc::exists, path};
  if (auto s = check_parent(path); !s.ok()) return s;
  nodes_[path] = Node{.is_dir = true, .data = nullptr, .mtime = clock_.now(), .owner = {}};
  return {};
}

Status MemFs::rmdir(const std::string& raw) {
  const std::string path = normalize_path(raw);
  if (path == "/") return Status{Errc::permission_denied, "cannot remove root"};
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status{Errc::not_found, path};
  if (!it->second.is_dir) return Status{Errc::not_dir, path};
  // Any child?
  const std::string prefix = path + "/";
  const auto child = nodes_.lower_bound(prefix);
  if (child != nodes_.end() && child->first.compare(0, prefix.size(), prefix) == 0) {
    return Status{Errc::busy, "directory not empty"};
  }
  nodes_.erase(it);
  return {};
}

Status MemFs::remove(const std::string& raw) {
  const std::string path = normalize_path(raw);
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status{Errc::not_found, path};
  if (it->second.is_dir) return Status{Errc::is_dir, path};
  nodes_.erase(it);
  return {};
}

Result<FileStat> MemFs::stat(const std::string& raw) const {
  const std::string path = normalize_path(raw);
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return Error{Errc::not_found, path};
  FileStat st;
  st.is_dir = it->second.is_dir;
  st.size = it->second.data ? file_size(it->second.data) : 0;
  st.mtime = it->second.data ? file_mtime(it->second.data) : it->second.mtime;
  st.owner = it->second.owner;
  return st;
}

Result<std::vector<DirEntry>> MemFs::list(const std::string& raw) const {
  const std::string path = normalize_path(raw);
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return Error{Errc::not_found, path};
  if (!it->second.is_dir) return Error{Errc::not_dir, path};
  std::vector<DirEntry> out;
  const std::string prefix = path == "/" ? "/" : path + "/";
  for (auto i = nodes_.lower_bound(prefix); i != nodes_.end(); ++i) {
    const std::string& p = i->first;
    if (p.compare(0, prefix.size(), prefix) != 0) break;
    // Direct children only.
    if (p.find('/', prefix.size()) != std::string::npos) continue;
    if (p == path) continue;
    DirEntry e;
    e.name = p.substr(prefix.size());
    e.is_dir = i->second.is_dir;
    e.size = i->second.data ? file_size(i->second.data) : 0;
    out.push_back(std::move(e));
  }
  return out;
}

Status MemFs::rename(const std::string& from_raw, const std::string& to_raw) {
  const std::string from = normalize_path(from_raw);
  const std::string to = normalize_path(to_raw);
  const auto it = nodes_.find(from);
  if (it == nodes_.end()) return Status{Errc::not_found, from};
  if (it->second.is_dir) return Status{Errc::unsupported, "dir rename"};
  if (nodes_.count(to)) return Status{Errc::exists, to};
  if (auto s = check_parent(to); !s.ok()) return s;
  nodes_[to] = std::move(it->second);
  nodes_.erase(it);
  return {};
}

Result<FileHandlePtr> MemFs::open(const std::string& raw) {
  const std::string path = normalize_path(raw);
  const auto it = nodes_.find(path);
  if (it == nodes_.end()) return Error{Errc::not_found, path};
  if (it->second.is_dir) return Error{Errc::is_dir, path};
  return FileHandlePtr(
      std::make_shared<MemFileHandle>(it->second.data, clock_));
}

Result<FileHandlePtr> MemFs::create(const std::string& raw) {
  const std::string path = normalize_path(raw);
  if (auto s = check_parent(path); !s.ok()) return Error{s.error()};
  auto& node = nodes_[path];
  if (node.is_dir) return Error{Errc::is_dir, path};
  if (!node.data) node.data = std::make_shared<FileData>();
  {
    WriterLock lk(node.data->mu);
    node.data->bytes.clear();
    node.data->mtime = clock_.now();
  }
  return FileHandlePtr(std::make_shared<MemFileHandle>(node.data, clock_));
}

void MemFs::set_owner(const std::string& raw, const std::string& owner) {
  const auto it = nodes_.find(normalize_path(raw));
  if (it != nodes_.end()) it->second.owner = owner;
}

std::int64_t MemFs::used_space() const {
  std::int64_t used = 0;
  for (const auto& [path, node] : nodes_) {
    if (node.data) used += file_size(node.data);
  }
  return used;
}

}  // namespace nest::storage
