#include "storage/journal_ops.h"

#include "classad/classad.h"

namespace nest::storage {

namespace {

using journal::RecordReader;
using journal::RecordWriter;

enum class Tag : std::uint8_t {
  lot_put = 1,
  lot_erase = 2,
  lot_expire = 3,
  file_release = 4,
  acl_put = 5,
  acl_clear = 6,
  quota_put = 7,
  hsm_put = 8,
  hsm_erase = 9,
};

// v2 added the per-lot replica policy to the lot record (cluster
// federation); v3 added the lot pin flag and the HSM residency section.
// Journals are rewritten from a fresh snapshot on every compaction, so no
// cross-version reader is kept.
constexpr std::uint32_t kSnapshotVersion = 3;

void encode_lot(RecordWriter& w, const Lot& lot) {
  w.u64(lot.id);
  w.str(lot.owner);
  w.u8(lot.group_lot ? 1 : 0);
  w.i64(lot.capacity);
  w.i64(lot.used);
  w.i64(lot.expiry);
  w.u8(lot.best_effort ? 1 : 0);
  w.i64(lot.last_use);
  w.i64(lot.replicas);
  w.u8(lot.pinned ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(lot.files.size()));
  for (const auto& [path, bytes] : lot.files) {
    w.str(path);
    w.i64(bytes);
  }
}

Result<Lot> decode_lot(RecordReader& r) {
  Lot lot;
  auto id = r.u64();
  if (!id.ok()) return id.error();
  lot.id = *id;
  auto owner = r.str();
  if (!owner.ok()) return owner.error();
  lot.owner = std::move(owner.value());
  auto group = r.u8();
  if (!group.ok()) return group.error();
  lot.group_lot = *group != 0;
  auto capacity = r.i64();
  if (!capacity.ok()) return capacity.error();
  lot.capacity = *capacity;
  auto used = r.i64();
  if (!used.ok()) return used.error();
  lot.used = *used;
  auto expiry = r.i64();
  if (!expiry.ok()) return expiry.error();
  lot.expiry = *expiry;
  auto be = r.u8();
  if (!be.ok()) return be.error();
  lot.best_effort = *be != 0;
  auto last_use = r.i64();
  if (!last_use.ok()) return last_use.error();
  lot.last_use = *last_use;
  auto replicas = r.i64();
  if (!replicas.ok()) return replicas.error();
  lot.replicas = *replicas;
  auto pinned = r.u8();
  if (!pinned.ok()) return pinned.error();
  lot.pinned = *pinned != 0;
  auto nfiles = r.u32();
  if (!nfiles.ok()) return nfiles.error();
  for (std::uint32_t i = 0; i < *nfiles; ++i) {
    auto path = r.str();
    if (!path.ok()) return path.error();
    auto bytes = r.i64();
    if (!bytes.ok()) return bytes.error();
    lot.files[std::move(path.value())] = *bytes;
  }
  return lot;
}

}  // namespace

void MetaBatch::lot_put(const Lot& lot) {
  body_.u8(static_cast<std::uint8_t>(Tag::lot_put));
  encode_lot(body_, lot);
  ++count_;
}

void MetaBatch::lot_erase(LotId id) {
  body_.u8(static_cast<std::uint8_t>(Tag::lot_erase));
  body_.u64(id);
  ++count_;
}

void MetaBatch::lot_expire(LotId id) {
  body_.u8(static_cast<std::uint8_t>(Tag::lot_expire));
  body_.u64(id);
  ++count_;
}

void MetaBatch::file_release(const std::string& path) {
  body_.u8(static_cast<std::uint8_t>(Tag::file_release));
  body_.str(path);
  ++count_;
}

void MetaBatch::acl_put(const std::string& dir,
                        const std::string& entry_text) {
  body_.u8(static_cast<std::uint8_t>(Tag::acl_put));
  body_.str(dir);
  body_.str(entry_text);
  ++count_;
}

void MetaBatch::acl_clear(const std::string& dir,
                          const std::string& principal) {
  body_.u8(static_cast<std::uint8_t>(Tag::acl_clear));
  body_.str(dir);
  body_.str(principal);
  ++count_;
}

void MetaBatch::quota_put(const std::string& owner, std::int64_t limit,
                          std::int64_t used) {
  body_.u8(static_cast<std::uint8_t>(Tag::quota_put));
  body_.str(owner);
  body_.i64(limit);
  body_.i64(used);
  ++count_;
}

void MetaBatch::hsm_put(const std::string& path, std::int64_t size,
                        const std::string& owner) {
  body_.u8(static_cast<std::uint8_t>(Tag::hsm_put));
  body_.str(path);
  body_.i64(size);
  body_.str(owner);
  ++count_;
}

void MetaBatch::hsm_erase(const std::string& path) {
  body_.u8(static_cast<std::uint8_t>(Tag::hsm_erase));
  body_.str(path);
  ++count_;
}

std::string MetaBatch::seal(Nanos now) {
  RecordWriter head;
  head.i64(now);
  head.u32(count_);
  std::string out = head.take();
  out += body_.take();
  clear();
  return out;
}

void MetaBatch::clear() {
  body_ = journal::RecordWriter{};
  count_ = 0;
}

Result<Nanos> apply_meta_batch(std::string_view payload,
                               const MetaState& state) {
  RecordReader r(payload);
  auto ts = r.i64();
  if (!ts.ok()) return ts.error();
  auto count = r.u32();
  if (!count.ok()) return count.error();
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto tag = r.u8();
    if (!tag.ok()) return tag.error();
    switch (static_cast<Tag>(*tag)) {
      case Tag::lot_put: {
        auto lot = decode_lot(r);
        if (!lot.ok()) return lot.error();
        state.lots.restore_lot(*lot);
        break;
      }
      case Tag::lot_erase: {
        auto id = r.u64();
        if (!id.ok()) return id.error();
        state.lots.erase_lot(*id);
        break;
      }
      case Tag::lot_expire: {
        auto id = r.u64();
        if (!id.ok()) return id.error();
        state.lots.apply_expire(*id);
        break;
      }
      case Tag::file_release: {
        auto path = r.str();
        if (!path.ok()) return path.error();
        state.lots.release_file(*path);
        break;
      }
      case Tag::acl_put: {
        auto dir = r.str();
        if (!dir.ok()) return dir.error();
        auto text = r.str();
        if (!text.ok()) return text.error();
        auto entry = classad::ClassAd::parse(*text);
        if (!entry.ok()) return entry.error();
        if (auto s = state.acl.set_entry(*dir, *entry); !s.ok())
          return s.error();
        break;
      }
      case Tag::acl_clear: {
        auto dir = r.str();
        if (!dir.ok()) return dir.error();
        auto spec = r.str();
        if (!spec.ok()) return spec.error();
        // not_found is fine on replay: the entry may already be gone in
        // a snapshot-covered prefix.
        (void)state.acl.clear_entries(*dir, *spec);
        break;
      }
      case Tag::quota_put: {
        auto owner = r.str();
        if (!owner.ok()) return owner.error();
        auto limit = r.i64();
        if (!limit.ok()) return limit.error();
        auto used = r.i64();
        if (!used.ok()) return used.error();
        state.quota.restore(*owner, *limit, *used);
        break;
      }
      case Tag::hsm_put: {
        auto path = r.str();
        if (!path.ok()) return path.error();
        auto size = r.i64();
        if (!size.ok()) return size.error();
        auto owner = r.str();
        if (!owner.ok()) return owner.error();
        if (state.residency != nullptr) {
          state.residency->put(
              *path, hsm::ColdEntry{hsm::Tier::cold, *size,
                                    std::move(owner.value())});
        }
        break;
      }
      case Tag::hsm_erase: {
        auto path = r.str();
        if (!path.ok()) return path.error();
        if (state.residency != nullptr) state.residency->erase(*path);
        break;
      }
      default:
        return Error{Errc::protocol_error, "unknown journal record tag"};
    }
  }
  return *ts;
}

std::string encode_meta_snapshot(Nanos now, const MetaState& state) {
  RecordWriter w;
  w.u32(kSnapshotVersion);
  w.i64(now);
  w.u64(state.lots.next_id());
  const auto lots = state.lots.all_lots();
  w.u32(static_cast<std::uint32_t>(lots.size()));
  for (const auto& lot : lots) encode_lot(w, lot);
  const auto acl_entries = state.acl.export_entries();
  w.u32(static_cast<std::uint32_t>(acl_entries.size()));
  for (const auto& [dir, text] : acl_entries) {
    w.str(dir);
    w.str(text);
  }
  const auto& accounts = state.quota.accounts();
  w.u32(static_cast<std::uint32_t>(accounts.size()));
  for (const auto& [owner, acct] : accounts) {
    w.str(owner);
    w.i64(acct.limit);
    w.i64(acct.used);
  }
  if (state.residency != nullptr) {
    // Snapshot only the stable entries: a snapshot taken mid-migration
    // must resolve the same way a crash would (hot copy still
    // authoritative until the commit record lands).
    std::uint32_t ncold = 0;
    for (const auto& [path, e] : state.residency->entries()) {
      if (e.tier == hsm::Tier::cold || e.tier == hsm::Tier::recalling)
        ++ncold;
    }
    w.u32(ncold);
    for (const auto& [path, e] : state.residency->entries()) {
      if (e.tier != hsm::Tier::cold && e.tier != hsm::Tier::recalling)
        continue;
      w.str(path);
      w.i64(e.size);
      w.str(e.owner);
    }
  } else {
    w.u32(0);
  }
  return w.take();
}

Result<Nanos> apply_meta_snapshot(std::string_view payload,
                                  const MetaState& state) {
  RecordReader r(payload);
  auto version = r.u32();
  if (!version.ok()) return version.error();
  if (*version != kSnapshotVersion)
    return Error{Errc::unsupported, "snapshot version mismatch"};
  auto ts = r.i64();
  if (!ts.ok()) return ts.error();
  auto next_id = r.u64();
  if (!next_id.ok()) return next_id.error();
  auto nlots = r.u32();
  if (!nlots.ok()) return nlots.error();
  for (std::uint32_t i = 0; i < *nlots; ++i) {
    auto lot = decode_lot(r);
    if (!lot.ok()) return lot.error();
    state.lots.restore_lot(*lot);
  }
  // restore_lot advances next_id past the highest id; the recorded value
  // also covers ids handed out and then erased.
  if (*next_id > state.lots.next_id()) state.lots.set_next_id(*next_id);
  auto nacl = r.u32();
  if (!nacl.ok()) return nacl.error();
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(*nacl);
  for (std::uint32_t i = 0; i < *nacl; ++i) {
    auto dir = r.str();
    if (!dir.ok()) return dir.error();
    auto text = r.str();
    if (!text.ok()) return text.error();
    entries.emplace_back(std::move(dir.value()), std::move(text.value()));
  }
  state.acl.import_entries(entries);
  auto nquota = r.u32();
  if (!nquota.ok()) return nquota.error();
  for (std::uint32_t i = 0; i < *nquota; ++i) {
    auto owner = r.str();
    if (!owner.ok()) return owner.error();
    auto limit = r.i64();
    if (!limit.ok()) return limit.error();
    auto used = r.i64();
    if (!used.ok()) return used.error();
    state.quota.restore(*owner, *limit, *used);
  }
  auto nhsm = r.u32();
  if (!nhsm.ok()) return nhsm.error();
  for (std::uint32_t i = 0; i < *nhsm; ++i) {
    auto path = r.str();
    if (!path.ok()) return path.error();
    auto size = r.i64();
    if (!size.ok()) return size.error();
    auto owner = r.str();
    if (!owner.ok()) return owner.error();
    if (state.residency != nullptr) {
      state.residency->put(*path,
                           hsm::ColdEntry{hsm::Tier::cold, *size,
                                          std::move(owner.value())});
    }
  }
  return *ts;
}

}  // namespace nest::storage
