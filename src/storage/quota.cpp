#include "storage/quota.h"

#include <algorithm>

namespace nest::storage {

void QuotaLedger::set_limit(const std::string& owner, std::int64_t bytes) {
  accounts_[owner].limit = bytes;
}

std::int64_t QuotaLedger::limit(const std::string& owner) const {
  const auto it = accounts_.find(owner);
  return it == accounts_.end() ? -1 : it->second.limit;
}

std::int64_t QuotaLedger::usage(const std::string& owner) const {
  const auto it = accounts_.find(owner);
  return it == accounts_.end() ? 0 : it->second.used;
}

Status QuotaLedger::charge(const std::string& owner, std::int64_t bytes) {
  if (bytes < 0) return Status{Errc::invalid_argument, "negative charge"};
  Account& acct = accounts_[owner];
  if (acct.limit >= 0 && acct.used + bytes > acct.limit) {
    return Status{Errc::no_space,
                  owner + " quota " + std::to_string(acct.limit) +
                      " exceeded"};
  }
  acct.used += bytes;
  return {};
}

void QuotaLedger::restore(const std::string& owner, std::int64_t limit,
                          std::int64_t used) {
  accounts_[owner] = Account{limit, used};
}

void QuotaLedger::release(const std::string& owner, std::int64_t bytes) {
  const auto it = accounts_.find(owner);
  if (it == accounts_.end()) return;
  it->second.used = std::max<std::int64_t>(0, it->second.used - bytes);
}

}  // namespace nest::storage
