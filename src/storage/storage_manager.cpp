#include "storage/storage_manager.h"

#include <set>

#include "common/log.h"
#include "common/string_util.h"
#include "fault/failpoint.h"
#include "obs/stats.h"
#include "obs/trace.h"

namespace nest::storage {

StorageManager::StorageManager(Clock& clock, std::unique_ptr<VirtualFs> fs,
                               StorageOptions options)
    : clock_(clock),
      fs_(std::move(fs)),
      options_(options),
      acl_(options.superuser),
      lots_(clock,
            options.lot_capacity > 0 ? options.lot_capacity
                                     : fs_->total_space(),
            options.reclaim_policy,
            // Escape 1/3 (see docs/static-analysis.md): the reclaim
            // callback only runs from LotManager calls made under mu_,
            // but the analysis cannot see through the std::function.
            [this](const std::string& path) NO_THREAD_SAFETY_ANALYSIS {
              // Best-effort reclamation deletes the backing data; the
              // released path is journaled so replay reproduces the
              // reclaim decision instead of re-deriving it.
              batch_.file_release(path);
              const Status s = fs_->remove(path);
              if (!s.ok()) {
                NEST_LOG_WARN("storage", "reclaim of %s failed: %s",
                              path.c_str(), s.to_string().c_str());
              }
            }) {
  // Clock-driven expiry transitions are journaled the same way: replay
  // applies the recorded transition instead of consulting a clock that
  // restarted with the process. Escape 2/3: same std::function blindness
  // as the reclaim callback above.
  lots_.set_on_expire(
      [this](LotId id) NO_THREAD_SAFETY_ANALYSIS { batch_.lot_expire(id); });
}

Status StorageManager::attach_journal(journal::Journal& j, bool rebase_clock) {
  MutexLock lock(mu_);
  const MetaState state = meta_state();
  Nanos last_ts = 0;
  if (j.snapshot_payload()) {
    auto ts = apply_meta_snapshot(*j.snapshot_payload(), state);
    if (!ts.ok()) return Status{ts.error()};
    last_ts = *ts;
  }
  std::uint64_t replayed = 0;
  Status s = j.replay([&](journal::Lsn, std::string_view payload) -> Status {
    auto ts = apply_meta_batch(payload, state);
    if (!ts.ok()) return Status{ts.error()};
    last_ts = *ts;
    ++replayed;
    return {};
  });
  if (!s.ok()) return s;
  j.drop_recovered_tail();
  if (rebase_clock && last_ts != 0) {
    // Map the previous run's clock onto this one: lots keep the remaining
    // duration they had at the last journaled record.
    lots_.rebase(clock_.now() - last_ts);
  }
  journal_ = &j;
  batch_.clear();
  NEST_LOG_INFO("storage",
                "journal attached: snapshot lsn %llu, %llu records replayed",
                static_cast<unsigned long long>(j.snapshot_lsn()),
                static_cast<unsigned long long>(replayed));
  return {};
}

std::optional<journal::JournalStats> StorageManager::journal_stats() const {
  MutexLock lock(mu_);
  if (!journal_) return std::nullopt;
  return journal_->stats();
}

Status StorageManager::write_journal_snapshot() {
  MutexLock lock(mu_);
  if (!journal_) return Status{Errc::invalid_argument, "no journal attached"};
  const MetaState state = meta_state();
  return journal_->write_snapshot(encode_meta_snapshot(clock_.now(), state));
}

std::string StorageManager::serialize_meta(Nanos at) {
  MutexLock lock(mu_);
  return encode_meta_snapshot(at, meta_state());
}

void StorageManager::record_lot_locked(LotId id) {
  auto lot = lots_.query(id);
  if (lot.ok()) {
    batch_.lot_put(*lot);
  } else {
    batch_.lot_erase(id);
  }
}

void StorageManager::record_quota_locked(const std::string& owner) {
  batch_.quota_put(owner, quota_.limit(owner), quota_.usage(owner));
}

Result<journal::Lsn> StorageManager::seal_batch_locked() {
  if (batch_.empty()) return journal::Lsn{0};
  if (!journal_) {
    batch_.clear();
    return journal::Lsn{0};
  }
  std::string payload = batch_.seal(clock_.now());
  auto lsn = journal_->append(payload);
  if (!lsn.ok()) return lsn;
  // Replication fan-out sees every sealed batch in LSN order because mu_
  // is still held here; the hook only enqueues (rank cluster_ship).
  if (replication_hook_) replication_hook_(*lsn, payload);
  maybe_snapshot_locked();
  return lsn;
}

void StorageManager::set_replication_hook(ReplicationHook hook) {
  MutexLock lock(mu_);
  replication_hook_ = std::move(hook);
}

Status StorageManager::apply_replicated_batch(std::string_view payload) {
  NEST_FAILPOINT("cluster.apply", return Status{err});
  journal::Lsn lsn = 0;
  {
    MutexLock lock(mu_);
    auto ts = apply_meta_batch(payload, meta_state());
    if (!ts.ok()) return Status{ts.error()};
    if (journal_) {
      // The shipped payload is journaled verbatim under the follower's
      // own LSN sequence, so a follower restart replays through the same
      // blind-install path as a primary restart.
      auto local = journal_->append(std::string(payload));
      if (!local.ok()) return Status{local.error()};
      lsn = *local;
      maybe_snapshot_locked();
    }
  }
  return barrier(lsn);
}

StorageManager::MetaSnapshot StorageManager::replica_snapshot() {
  MutexLock lock(mu_);
  MetaSnapshot out;
  out.payload = encode_meta_snapshot(clock_.now(), meta_state());
  if (journal_) out.lsn = journal_->stats().last_lsn;
  return out;
}

Status StorageManager::materialize_parents_locked(VirtualFs& fs,
                                                  const std::string& norm) {
  std::vector<std::string> missing;
  for (std::string dir = parent_path(norm); dir != "/" && !dir.empty();
       dir = parent_path(dir)) {
    auto st = fs.stat(dir);
    if (st.ok()) break;
    missing.push_back(dir);
  }
  for (auto it = missing.rbegin(); it != missing.rend(); ++it) {
    if (auto s = fs.mkdir(*it); !s.ok() && s.code() != Errc::exists) return s;
  }
  return {};
}

Status StorageManager::install_replica_file(const std::string& path,
                                            std::string_view data) {
  MutexLock lock(mu_);
  const std::string norm = normalize_path(path);
  // Materialize missing parents: the content push can outrun the mkdir
  // that created the directory on the primary (directories are not
  // journaled metadata).
  if (auto s = materialize_parents_locked(*fs_, norm); !s.ok()) return s;
  auto handle = fs_->create(norm);
  if (!handle.ok()) return Status{handle.error()};
  auto wrote =
      (*handle)->pwrite(std::span<const char>(data.data(), data.size()), 0);
  if (!wrote.ok()) return Status{wrote.error()};
  if (*wrote != static_cast<std::int64_t>(data.size()))
    return Status{Errc::io_error, "short replica write"};
  return {};
}

Status StorageManager::install_replica_snapshot(std::string_view payload) {
  MutexLock lock(mu_);
  // A snapshot replaces the state wholesale: the follower may hold lots
  // or accounts the primary has since erased, and restore-on-top would
  // leak them past the catch-up. (ACLs need no clear: apply_meta_snapshot
  // imports them wholesale already.)
  lots_.clear();
  quota_.clear();
  residency_.clear();
  auto ts = apply_meta_snapshot(payload, meta_state());
  if (!ts.ok()) return Status{ts.error()};
  batch_.clear();
  if (journal_) {
    // Persist as the local snapshot so a later restart recovers from it
    // (and the journal retires any pre-catch-up segments).
    return journal_->write_snapshot(std::string(payload));
  }
  return {};
}

void StorageManager::maybe_snapshot_locked() {
  if (journal_->stats().records_since_snapshot <
      options_.journal_snapshot_every) {
    return;
  }
  const MetaState state = meta_state();
  if (auto s = journal_->write_snapshot(
          encode_meta_snapshot(clock_.now(), state));
      !s.ok()) {
    NEST_LOG_WARN("storage", "journal snapshot failed: %s",
                  s.to_string().c_str());
  }
}

Status StorageManager::barrier(journal::Lsn lsn) {
  if (lsn == 0 || !journal_) return {};
  obs::Span span(obs::Layer::journal, "commit");
  span.set_value(static_cast<std::int64_t>(lsn));
  const Nanos wait_start = clock_.now();
  Status s = journal_->commit(lsn);
  obs::Stats::global().journal_fsync_wait.record(clock_.now() - wait_start);
  return s;
}

Status StorageManager::check(const Principal& who, const std::string& path,
                             Right needed) const {
  return acl_.check(who, path, needed);
}

Status StorageManager::mkdir(const Principal& who, const std::string& path) {
  obs::Span span(obs::Layer::storage, "mkdir");
  MutexLock lock(mu_);
  if (auto s = check(who, parent_path(path), Right::insert); !s.ok()) return s;
  auto s = fs_->mkdir(path);
  if (s.ok()) fs_->set_owner(path, who.name);
  return s;
}

Status StorageManager::rmdir(const Principal& who, const std::string& path) {
  obs::Span span(obs::Layer::storage, "rmdir");
  MutexLock lock(mu_);
  if (auto s = check(who, path, Right::del); !s.ok()) return s;
  return fs_->rmdir(path);
}

Status StorageManager::remove(const Principal& who, const std::string& path) {
  obs::Span span(obs::Layer::storage, "remove");
  MutexLock lock(mu_);
  const Status out = remove_locked(who, path);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Status StorageManager::remove_locked(const Principal& who,
                                     const std::string& path) {
  if (auto s = check(who, parent_path(path), Right::del); !s.ok()) return s;
  if (const auto* e = residency_.find(normalize_path(path))) {
    if (e->tier != hsm::Tier::cold)
      return Status{Errc::busy, "tier transition in progress"};
    const std::string norm = normalize_path(path);
    // not_found is fine: the half-copy may never have been created.
    (void)cold_fs_->remove(norm);
    residency_.erase(norm);
    batch_.hsm_erase(norm);
    lots_.release_file(norm);
    batch_.file_release(norm);
    // No quota release: the owner's hot-quota charge was already dropped
    // when the file migrated cold.
    return {};
  }
  auto st = fs_->stat(path);
  const Status s = fs_->remove(path);
  if (s.ok()) {
    const std::string norm = normalize_path(path);
    lots_.release_file(norm);
    batch_.file_release(norm);
    if (st.ok() && options_.enforcement == LotEnforcement::nest_managed) {
      quota_.release(st->owner, st->size);
      record_quota_locked(st->owner);
    }
  }
  return s;
}

Result<FileStat> StorageManager::stat(const Principal& who,
                                      const std::string& path) const {
  obs::Span span(obs::Layer::storage, "stat");
  MutexLock lock(mu_);
  if (auto s = check(who, parent_path(path), Right::lookup); !s.ok())
    return s.error();
  // Cold files keep their place in the namespace: stat answers from the
  // residency map (the hot copy is gone; recalling entries still answer
  // from the map because the hot copy is partial).
  if (const auto* e = residency_.find(normalize_path(path));
      e != nullptr && e->tier != hsm::Tier::migrating) {
    FileStat st;
    st.size = e->size;
    st.owner = e->owner;
    return st;
  }
  return fs_->stat(path);
}

Result<std::vector<DirEntry>> StorageManager::list(
    const Principal& who, const std::string& path) const {
  obs::Span span(obs::Layer::storage, "list");
  MutexLock lock(mu_);
  if (auto s = check(who, path, Right::lookup); !s.ok()) return s.error();
  auto entries = fs_->list(path);
  if (!entries.ok() || residency_.empty()) return entries;
  // Merge in cold-resident children so migration does not make files
  // vanish from directory listings. Transitioning entries still have a
  // hot-side inode and are already listed.
  const std::string dir = normalize_path(path);
  std::set<std::string> present;
  for (const auto& e : *entries) present.insert(e.name);
  for (const auto& [cpath, ce] : residency_.entries()) {
    if (ce.tier != hsm::Tier::cold || parent_path(cpath) != dir) continue;
    const std::string name = cpath.substr(cpath.find_last_of('/') + 1);
    if (present.count(name)) continue;
    DirEntry de;
    de.name = name;
    de.size = ce.size;
    entries->push_back(std::move(de));
  }
  return entries;
}

Status StorageManager::rename(const Principal& who, const std::string& from,
                              const std::string& to) {
  obs::Span span(obs::Layer::storage, "rename");
  MutexLock lock(mu_);
  if (auto s = check(who, from, Right::del); !s.ok()) return s;
  if (residency_.find(normalize_path(from)) != nullptr)
    return Status{Errc::busy, "cold-resident file; recall before rename"};
  return fs_->rename(from, to);
}

Result<FileHandlePtr> StorageManager::open_for_append(
    const Principal& who, const std::string& path) {
  obs::Span span(obs::Layer::storage, "open_for_append");
  MutexLock lock(mu_);
  if (const auto* e = residency_.find(normalize_path(path))) {
    if (e->tier == hsm::Tier::migrating)
      return Error{Errc::busy, "tier transition in progress"};
    return Error{Errc::staging, "file resident on cold tier"};
  }
  auto handle = fs_->open(path);
  if (!handle.ok()) return handle.error();
  if (auto s = check(who, parent_path(path), Right::write); !s.ok())
    return s.error();
  return handle;
}

std::int64_t StorageManager::total_space() const {
  MutexLock lock(mu_);
  return fs_->total_space();
}

std::int64_t StorageManager::free_space() const {
  MutexLock lock(mu_);
  return fs_->free_space();
}

Result<TransferTicket> StorageManager::approve_read(const Principal& who,
                                                    const std::string& path) {
  obs::Span span(obs::Layer::storage, "approve_read");
  MutexLock lock(mu_);
  if (auto s = check(who, parent_path(path), Right::read); !s.ok())
    return s.error();
  // Cold data is never served directly: the read surfaces a retryable
  // staging error and the dispatcher kicks an asynchronous recall. A file
  // mid-migration still has a valid hot copy and reads normally.
  if (const auto* e = residency_.find(normalize_path(path));
      e != nullptr && e->tier != hsm::Tier::migrating) {
    return Error{Errc::staging, "file resident on cold tier; recall pending"};
  }
  auto handle = fs_->open(path);
  if (!handle.ok()) return handle.error();
  auto size = handle.value()->size();
  TransferTicket t;
  t.path = normalize_path(path);
  t.user = who.name;
  t.handle = std::move(handle.value());
  t.size = size.ok() ? *size : 0;
  return t;
}

Result<TransferTicket> StorageManager::approve_write(const Principal& who,
                                                     const std::string& path,
                                                     std::int64_t size) {
  obs::Span span(obs::Layer::storage, "approve_write");
  MutexLock lock(mu_);
  auto out = approve_write_locked(who, path, size);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return sealed.error();
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b.error();
  return out;
}

Result<TransferTicket> StorageManager::approve_write_locked(
    const Principal& who, const std::string& path, std::int64_t size) {
  const std::string norm = normalize_path(path);
  if (auto s = check(who, parent_path(norm), Right::insert); !s.ok())
    return s.error();
  if (const auto* e = residency_.find(norm)) {
    if (e->tier != hsm::Tier::cold)
      return Error{Errc::busy, "tier transition in progress"};
    // Overwriting a cold file supersedes the cold copy outright.
    (void)cold_fs_->remove(norm);
    residency_.erase(norm);
    batch_.hsm_erase(norm);
  }
  TransferTicket t;
  t.path = norm;
  t.user = who.name;
  t.size = size;

  // Overwrites release the old charges first.
  lots_.release_file(norm);
  batch_.file_release(norm);

  // Lot admission: charge usable lots, spanning if needed.
  auto allocs = lots_.charge(who.name, who.groups, norm, size);
  if (allocs.ok()) {
    t.allocations = std::move(allocs.value());
    for (const auto& a : t.allocations) record_lot_locked(a.lot);
  } else if (allocs.code() == Errc::lot_unknown &&
             options_.allow_lotless_writes) {
    // No lot: admit against raw free space minus everything guaranteed.
    if (size > lots_.available_bytes()) {
      return Error{Errc::no_space, "no lot and free space is guaranteed"};
    }
  } else {
    return allocs.error();
  }

  if (options_.enforcement == LotEnforcement::nest_managed) {
    if (auto s = quota_.charge(who.name, size); !s.ok()) {
      lots_.release_file(norm);
      batch_.file_release(norm);
      return s.error();
    }
    record_quota_locked(who.name);
  }

  auto handle = fs_->create(norm);
  if (!handle.ok()) {
    lots_.release_file(norm);
    batch_.file_release(norm);
    if (options_.enforcement == LotEnforcement::nest_managed) {
      quota_.release(who.name, size);
      record_quota_locked(who.name);
    }
    return handle.error();
  }
  fs_->set_owner(norm, who.name);
  t.handle = std::move(handle.value());
  return t;
}

Status StorageManager::charge_written(const Principal& who,
                                      const std::string& path,
                                      std::int64_t bytes) {
  MutexLock lock(mu_);
  const Status out = charge_written_locked(who, path, bytes);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Status StorageManager::charge_written_locked(const Principal& who,
                                             const std::string& path,
                                             std::int64_t bytes) {
  const std::string norm = normalize_path(path);
  lots_.release_file(norm);
  batch_.file_release(norm);
  auto allocs = lots_.charge(who.name, who.groups, norm, bytes);
  if (allocs.ok()) {
    for (const auto& a : *allocs) record_lot_locked(a.lot);
  } else if (allocs.code() == Errc::lot_unknown &&
             options_.allow_lotless_writes) {
    // Same admission rule as approve_write_locked — and the same error
    // class when it fails, so every protocol reports space exhaustion as
    // no_space rather than leaking the internal lot_unknown probe.
    if (bytes > lots_.available_bytes()) {
      return Status{
          Error{Errc::no_space, "no lot and free space is guaranteed"}};
    }
  } else {
    return Status{allocs.error()};
  }
  if (options_.enforcement == LotEnforcement::nest_managed) {
    // Stream writes are approved with a declared size of 0, so the whole
    // actual count is charged here.
    auto s = quota_.charge(who.name, bytes);
    if (s.ok()) record_quota_locked(who.name);
    return s;
  }
  return {};
}

Result<LotId> StorageManager::lot_create(const Principal& who,
                                         std::int64_t capacity,
                                         Nanos duration, bool group_lot) {
  MutexLock lock(mu_);
  auto out = lot_create_locked(who, capacity, duration, group_lot);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return sealed.error();
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b.error();
  return out;
}

Result<LotId> StorageManager::lot_create_locked(const Principal& who,
                                                std::int64_t capacity,
                                                Nanos duration,
                                                bool group_lot) {
  if (who.is_anonymous())
    return Error{Errc::not_authenticated, "lots require authentication"};
  const std::string owner =
      group_lot ? (who.groups.empty() ? std::string{} : who.groups.front())
                : who.name;
  if (owner.empty())
    return Error{Errc::invalid_argument, "group lot without group"};
  auto id = lots_.create(owner, capacity, duration, group_lot);
  if (id.ok()) {
    record_lot_locked(*id);
    if (options_.enforcement == LotEnforcement::nest_managed) {
      quota_.set_limit(owner, quota_.limit(owner) < 0
                                  ? capacity
                                  : quota_.limit(owner) + capacity);
      record_quota_locked(owner);
    }
  }
  return id;
}

Status StorageManager::lot_renew(const Principal& who, LotId id,
                                 Nanos duration) {
  MutexLock lock(mu_);
  const Status out = lot_renew_locked(who, id, duration);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Status StorageManager::lot_renew_locked(const Principal& who, LotId id,
                                        Nanos duration) {
  auto lot = lots_.query(id);
  if (!lot.ok()) return lot.error();
  if (who.name != lot->owner && who.name != options_.superuser &&
      !(lot->group_lot &&
        std::find(who.groups.begin(), who.groups.end(), lot->owner) !=
            who.groups.end())) {
    return Status{Errc::permission_denied, "not lot owner"};
  }
  const Status s = lots_.renew(id, duration);
  if (s.ok()) record_lot_locked(id);
  return s;
}

Status StorageManager::lot_terminate(const Principal& who, LotId id) {
  MutexLock lock(mu_);
  const Status out = lot_terminate_locked(who, id);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Status StorageManager::lot_terminate_locked(const Principal& who, LotId id) {
  auto lot = lots_.query(id);
  if (!lot.ok()) return lot.error();
  if (who.name != lot->owner && who.name != options_.superuser &&
      !(lot->group_lot &&
        std::find(who.groups.begin(), who.groups.end(), lot->owner) !=
            who.groups.end())) {
    return Status{Errc::permission_denied, "not lot owner"};
  }
  const Status s = lots_.terminate(id);
  // terminate either erased the lot or left it best-effort; either way
  // the resulting state is what gets journaled.
  if (s.ok()) record_lot_locked(id);
  return s;
}

Status StorageManager::lot_set_replicas(const Principal& who, LotId id,
                                        std::int64_t replicas) {
  MutexLock lock(mu_);
  const Status out = lot_set_replicas_locked(who, id, replicas);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Status StorageManager::lot_set_replicas_locked(const Principal& who, LotId id,
                                               std::int64_t replicas) {
  if (replicas < 0)
    return Status{Errc::invalid_argument, "replicas must be >= 0"};
  auto lot = lots_.query(id);
  if (!lot.ok()) return lot.error();
  if (who.name != lot->owner && who.name != options_.superuser &&
      !(lot->group_lot &&
        std::find(who.groups.begin(), who.groups.end(), lot->owner) !=
            who.groups.end())) {
    return Status{Errc::permission_denied, "not lot owner"};
  }
  lot->replicas = replicas;
  lots_.restore_lot(*lot);
  record_lot_locked(id);
  return {};
}

bool StorageManager::owns_lot_locked(const Principal& who,
                                     const Lot& lot) const {
  return who.name == lot.owner || who.name == options_.superuser ||
         (lot.group_lot &&
          std::find(who.groups.begin(), who.groups.end(), lot.owner) !=
              who.groups.end());
}

Status StorageManager::lot_set_pin(const Principal& who, LotId id,
                                   bool pinned) {
  MutexLock lock(mu_);
  const Status out = lot_set_pin_locked(who, id, pinned);
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Status StorageManager::lot_set_pin_locked(const Principal& who, LotId id,
                                          bool pinned) {
  auto lot = lots_.query(id);
  if (!lot.ok()) return lot.error();
  if (!owns_lot_locked(who, *lot))
    return Status{Errc::permission_denied, "not lot owner"};
  lot->pinned = pinned;
  lots_.restore_lot(*lot);
  record_lot_locked(id);
  return {};
}

void StorageManager::attach_cold_tier(std::unique_ptr<VirtualFs> cold) {
  MutexLock lock(mu_);
  cold_fs_ = std::move(cold);
}

bool StorageManager::cold_tier_attached() const {
  MutexLock lock(mu_);
  return cold_fs_ != nullptr;
}

Result<StorageManager::HsmTicket> StorageManager::hsm_begin_migrate(
    const Principal& who, const std::string& path) {
  obs::Span span(obs::Layer::storage, "hsm_begin_migrate");
  MutexLock lock(mu_);
  if (!cold_fs_) return Error{Errc::invalid_argument, "no cold tier attached"};
  const std::string norm = normalize_path(path);
  if (residency_.find(norm) != nullptr)
    return Error{Errc::busy, "already cold or tier transition in progress"};
  auto st = fs_->stat(norm);
  if (!st.ok()) return st.error();
  if (st->is_dir) return Error{Errc::is_dir, "cannot migrate a directory"};
  if (who.name != options_.superuser && who.name != st->owner)
    return Error{Errc::permission_denied, "not file owner"};
  for (const auto& lot : lots_.all_lots()) {
    if (lot.files.count(norm) == 0) continue;
    if (lot.pinned) return Error{Errc::busy, "charging lot is pinned"};
    if (!lot.best_effort)
      return Error{Errc::busy, "file charged to a live lot"};
  }
  auto src = fs_->open(norm);
  if (!src.ok()) return src.error();
  if (auto s = materialize_parents_locked(*cold_fs_, norm); !s.ok())
    return s.error();
  auto dst = cold_fs_->create(norm);
  if (!dst.ok()) return dst.error();
  cold_fs_->set_owner(norm, st->owner);
  HsmTicket t;
  t.path = norm;
  t.size = st->size;
  t.owner = st->owner;
  t.src = std::move(src.value());
  t.dst = std::move(dst.value());
  residency_.put(norm, hsm::ColdEntry{hsm::Tier::migrating, t.size, t.owner});
  return t;
}

Status StorageManager::hsm_commit_migrate(const HsmTicket& t) {
  obs::Span span(obs::Layer::storage, "hsm_commit_migrate");
  journal::Lsn lsn = 0;
  {
    MutexLock lock(mu_);
    const auto* e = residency_.find(t.path);
    if (e == nullptr || e->tier != hsm::Tier::migrating)
      return Status{Errc::invalid_argument, "no migration in flight"};
    residency_.set_tier(t.path, hsm::Tier::cold);
    batch_.hsm_put(t.path, t.size, t.owner);
    lots_.release_file(t.path);
    batch_.file_release(t.path);
    if (options_.enforcement == LotEnforcement::nest_managed) {
      quota_.release(t.owner, t.size);
      record_quota_locked(t.owner);
    }
    auto sealed = seal_batch_locked();
    if (!sealed.ok()) return Status{sealed.error()};
    lsn = *sealed;
  }
  if (auto b = barrier(lsn); !b.ok()) return b;
  {
    // The hot copy is deleted only after the residency record is durable:
    // a crash in between leaves both copies (the caught-by-design double-
    // residency window) and hsm_recover finishes the delete. Re-check the
    // entry — an overwrite racing the barrier owns the path now.
    MutexLock lock(mu_);
    const auto* e = residency_.find(t.path);
    // Hot-copy delete is best-effort: hsm_recover re-scrubs a survivor.
    if (e != nullptr && e->tier == hsm::Tier::cold) (void)fs_->remove(t.path);
  }
  return {};
}

void StorageManager::hsm_abort_migrate(const std::string& path) {
  MutexLock lock(mu_);
  const std::string norm = normalize_path(path);
  const auto* e = residency_.find(norm);
  if (e == nullptr || e->tier != hsm::Tier::migrating) return;
  residency_.erase(norm);
  // Abort cleanup is best-effort: the orphan is GC'd by hsm_recover.
  if (cold_fs_) (void)cold_fs_->remove(norm);
}

Result<StorageManager::HsmTicket> StorageManager::hsm_begin_recall(
    const Principal& who, const std::string& path) {
  obs::Span span(obs::Layer::storage, "hsm_begin_recall");
  MutexLock lock(mu_);
  if (!cold_fs_) return Error{Errc::invalid_argument, "no cold tier attached"};
  const std::string norm = normalize_path(path);
  if (auto s = check(who, parent_path(norm), Right::read); !s.ok())
    return s.error();
  const auto* e = residency_.find(norm);
  if (e == nullptr) return Error{Errc::not_found, "not cold-resident"};
  if (e->tier == hsm::Tier::recalling)
    return Error{Errc::busy, "recall in progress"};
  if (e->tier != hsm::Tier::cold)
    return Error{Errc::busy, "tier transition in progress"};
  // Re-admission: the recalled bytes come back as a lot-less hot file, so
  // they must fit the space not guaranteed to live lots and the owner's
  // quota headroom (the charge itself lands at commit).
  if (e->size > lots_.available_bytes())
    return Error{Errc::no_space, "free space is guaranteed to live lots"};
  if (options_.enforcement == LotEnforcement::nest_managed) {
    const std::int64_t limit = quota_.limit(e->owner);
    if (limit >= 0 && quota_.usage(e->owner) + e->size > limit)
      return Error{Errc::no_space, "recall would exceed owner quota"};
  }
  auto src = cold_fs_->open(norm);
  if (!src.ok()) return src.error();
  if (auto s = materialize_parents_locked(*fs_, norm); !s.ok())
    return s.error();
  auto dst = fs_->create(norm);
  if (!dst.ok()) return dst.error();
  fs_->set_owner(norm, e->owner);
  HsmTicket t;
  t.path = norm;
  t.size = e->size;
  t.owner = e->owner;
  t.src = std::move(src.value());
  t.dst = std::move(dst.value());
  residency_.set_tier(norm, hsm::Tier::recalling);
  return t;
}

Status StorageManager::hsm_commit_recall(const HsmTicket& t) {
  obs::Span span(obs::Layer::storage, "hsm_commit_recall");
  journal::Lsn lsn = 0;
  {
    MutexLock lock(mu_);
    const auto* e = residency_.find(t.path);
    if (e == nullptr || e->tier != hsm::Tier::recalling)
      return Status{Errc::invalid_argument, "no recall in flight"};
    if (options_.enforcement == LotEnforcement::nest_managed) {
      if (auto s = quota_.charge(t.owner, t.size); !s.ok()) return s;
      record_quota_locked(t.owner);
    }
    residency_.erase(t.path);
    batch_.hsm_erase(t.path);
    auto sealed = seal_batch_locked();
    if (!sealed.ok()) return Status{sealed.error()};
    lsn = *sealed;
  }
  if (auto b = barrier(lsn); !b.ok()) return b;
  {
    // Mirror of the migrate commit: the cold copy outlives the barrier so
    // a crash never leaves the bytes only in flight. Skip the delete if a
    // new migration already reclaimed the cold path.
    MutexLock lock(mu_);
    // Cold-copy delete is best-effort: hsm_recover re-scrubs a survivor.
    if (residency_.find(t.path) == nullptr) (void)cold_fs_->remove(t.path);
  }
  return {};
}

void StorageManager::hsm_abort_recall(const std::string& path) {
  MutexLock lock(mu_);
  const std::string norm = normalize_path(path);
  const auto* e = residency_.find(norm);
  if (e == nullptr || e->tier != hsm::Tier::recalling) return;
  residency_.set_tier(norm, hsm::Tier::cold);
  (void)fs_->remove(norm);  // partial hot copy
}

Result<hsm::Tier> StorageManager::hsm_tier(const Principal& who,
                                           const std::string& path) const {
  MutexLock lock(mu_);
  const std::string norm = normalize_path(path);
  if (auto s = check(who, parent_path(norm), Right::lookup); !s.ok())
    return s.error();
  if (const auto* e = residency_.find(norm)) return e->tier;
  auto st = fs_->stat(norm);
  if (!st.ok()) return st.error();
  return hsm::Tier::hot;
}

StorageManager::HsmStats StorageManager::hsm_stats() const {
  MutexLock lock(mu_);
  HsmStats out;
  out.cold_files = static_cast<std::int64_t>(residency_.count(hsm::Tier::cold));
  out.cold_bytes = residency_.cold_bytes();
  out.migrating =
      static_cast<std::int64_t>(residency_.count(hsm::Tier::migrating));
  out.recalling =
      static_cast<std::int64_t>(residency_.count(hsm::Tier::recalling));
  return out;
}

std::vector<std::string> StorageManager::hsm_migration_candidates(
    std::size_t max) const {
  MutexLock lock(mu_);
  if (!cold_fs_ || max == 0) return {};
  // A file is drainable only if EVERY lot charging it is best-effort and
  // none is pinned (a file may span lots).
  std::map<std::string, bool> eligible;
  for (const auto& lot : lots_.all_lots()) {
    const bool drainable = lot.best_effort && !lot.pinned;
    for (const auto& [path, bytes] : lot.files) {
      auto [it, inserted] = eligible.try_emplace(path, drainable);
      if (!inserted) it->second = it->second && drainable;
    }
  }
  std::vector<std::string> out;
  for (const auto& [path, ok] : eligible) {
    if (!ok || residency_.find(path) != nullptr) continue;
    auto st = fs_->stat(path);
    if (!st.ok() || st->is_dir) continue;
    out.push_back(path);
    if (out.size() >= max) break;
  }
  return out;
}

Status StorageManager::hsm_recover() {
  MutexLock lock(mu_);
  if (!cold_fs_) return {};
  // Every replayed entry is stable (only cold residency is journaled).
  // Resolve each against the two filesystems: the cold copy is
  // authoritative, a surviving hot copy is the unfinished tail of a
  // migrate/recall commit (or a partial recall) and is deleted.
  std::vector<std::string> paths;
  paths.reserve(residency_.size());
  for (const auto& [path, e] : residency_.entries()) paths.push_back(path);
  for (const auto& path : paths) {
    if (!cold_fs_->stat(path).ok()) {
      // The protocol journals residency only after the cold copy is fully
      // written, so a missing cold file means the cold device lost data.
      // Fall back to a hot copy if one survives; otherwise the file is
      // gone and the entry goes with it.
      NEST_LOG_WARN("hsm", "cold copy of %s missing at recovery",
                    path.c_str());
      residency_.erase(path);
      batch_.hsm_erase(path);
      continue;
    }
    // Stray-hot delete is best-effort: the next scrub retries it.
    if (fs_->stat(path).ok()) (void)fs_->remove(path);
  }
  // GC cold files the journal does not know about: aborted migrations
  // whose entries never committed.
  std::vector<std::string> stack{"/"};
  while (!stack.empty()) {
    const std::string dir = stack.back();
    stack.pop_back();
    auto entries = cold_fs_->list(dir);
    if (!entries.ok()) continue;
    for (const auto& e : *entries) {
      const std::string path = join_path(dir, e.name);
      if (e.is_dir) {
        stack.push_back(path);
      } else if (residency_.find(path) == nullptr) {
        // Best-effort GC: a surviving orphan is re-scrubbed next recovery.
        (void)cold_fs_->remove(path);
      }
    }
  }
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  return barrier(*sealed);
}

std::int64_t StorageManager::replicas_for(const std::string& path) const {
  MutexLock lock(mu_);
  std::int64_t want = 0;
  const std::string norm = normalize_path(path);
  for (const auto& lot : lots_.all_lots()) {
    if (lot.replicas > want && lot.files.count(norm)) want = lot.replicas;
  }
  return want;
}

Result<Lot> StorageManager::lot_query(const Principal& who, LotId id) const {
  MutexLock lock(mu_);
  auto lot = lots_.query(id);
  if (!lot.ok()) return lot.error();
  if (who.name != lot->owner && who.name != options_.superuser &&
      !(lot->group_lot &&
        std::find(who.groups.begin(), who.groups.end(), lot->owner) !=
            who.groups.end())) {
    return Error{Errc::permission_denied, "not lot owner"};
  }
  return lot;
}

std::vector<Lot> StorageManager::lots_of(const Principal& who) const {
  MutexLock lock(mu_);
  return lots_.lots_of(who.name);
}

std::vector<Lot> StorageManager::lot_list(const Principal& who) const {
  MutexLock lock(mu_);
  if (who.authenticated && who.name == options_.superuser)
    return lots_.all_lots();
  return lots_.lots_of(who.name);
}

Status StorageManager::acl_set(const Principal& who, const std::string& dir,
                               const classad::ClassAd& entry) {
  MutexLock lock(mu_);
  Status out = check(who, dir, Right::admin);
  if (out.ok()) {
    out = acl_.set_entry(dir, entry);
    if (out.ok()) batch_.acl_put(normalize_path(dir), entry.to_string());
  }
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Status StorageManager::acl_clear(const Principal& who, const std::string& dir,
                                 const std::string& principal_spec) {
  MutexLock lock(mu_);
  Status out = check(who, dir, Right::admin);
  if (out.ok()) {
    out = acl_.clear_entries(dir, principal_spec);
    if (out.ok()) batch_.acl_clear(normalize_path(dir), principal_spec);
  }
  auto sealed = seal_batch_locked();
  if (!sealed.ok()) return Status{sealed.error()};
  lock.unlock();
  if (auto b = barrier(*sealed); !b.ok()) return b;
  return out;
}

Result<std::vector<std::string>> StorageManager::acl_get(
    const Principal& who, const std::string& dir) const {
  MutexLock lock(mu_);
  if (auto s = check(who, dir, Right::lookup); !s.ok()) return s.error();
  return acl_.describe(dir);
}

classad::ClassAd StorageManager::resource_ad() const {
  MutexLock lock(mu_);
  classad::ClassAd ad;
  ad.insert("Type", classad::Value::string("Storage"));
  ad.insert("Name", classad::Value::string("NeST"));
  ad.insert("TotalSpace", classad::Value::integer(fs_->total_space()));
  ad.insert("UsedSpace", classad::Value::integer(fs_->used_space()));
  ad.insert("FreeSpace", classad::Value::integer(fs_->free_space()));
  ad.insert("AvailableLotSpace",
            classad::Value::integer(lots_.available_bytes()));
  ad.insert("ReclaimableSpace",
            classad::Value::integer(lots_.reclaimable_bytes()));
  if (cold_fs_) {
    ad.insert("ColdTotalSpace",
              classad::Value::integer(cold_fs_->total_space()));
    ad.insert("ColdUsedSpace", classad::Value::integer(cold_fs_->used_space()));
    ad.insert("ColdFiles",
              classad::Value::integer(static_cast<std::int64_t>(
                  residency_.count(hsm::Tier::cold))));
    ad.insert("ColdBytes", classad::Value::integer(residency_.cold_bytes()));
  }
  auto protocols = std::make_shared<std::vector<classad::Value>>();
  for (const char* p : {"chirp", "http", "ftp", "gridftp", "nfs"})
    protocols->push_back(classad::Value::string(p));
  ad.insert("Protocols", classad::Value::list(std::move(protocols)));

  // Data availability (paper Section 2.1: the dispatcher consolidates
  // "resource and data availability"): file count plus a capped listing so
  // matchmakers can ask member("/path", other.Files) — replica selection
  // over the discovery system.
  constexpr std::size_t kMaxAdvertisedFiles = 64;
  auto files = std::make_shared<std::vector<classad::Value>>();
  std::int64_t file_count = 0;
  std::vector<std::string> stack{"/"};
  while (!stack.empty()) {
    const std::string dir = stack.back();
    stack.pop_back();
    auto entries = fs_->list(dir);
    if (!entries.ok()) continue;
    for (const auto& e : *entries) {
      const std::string path = join_path(dir, e.name);
      if (e.is_dir) {
        stack.push_back(path);
      } else {
        ++file_count;
        if (files->size() < kMaxAdvertisedFiles) {
          files->push_back(classad::Value::string(path));
        }
      }
    }
  }
  ad.insert("FileCount", classad::Value::integer(file_count));
  ad.insert("FilesTruncated",
            classad::Value::boolean(
                file_count > static_cast<std::int64_t>(files->size())));
  ad.insert("Files", classad::Value::list(std::move(files)));
  return ad;
}

}  // namespace nest::storage
