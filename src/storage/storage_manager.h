// StorageManager: NeST's storage component (paper Sections 2.1 and 5).
//
// Responsibilities: virtualize physical storage behind VirtualFs, execute
// non-transfer requests synchronously, enforce access control on every
// protocol uniformly, and manage guaranteed space in the form of lots.
// Transfer requests are only *approved* here (ACL + lot admission); the
// bytes are moved by the transfer manager.
//
// Thread safety: the dispatcher serializes storage operations (the paper
// executes them synchronously in a thread-safe schedule); an internal mutex
// enforces that invariant even for callers outside the dispatcher.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "common/clock.h"
#include "common/result.h"
#include "storage/acl.h"
#include "storage/lot.h"
#include "storage/quota.h"
#include "storage/vfs.h"

namespace nest::storage {

// Lot enforcement mechanism (ablation A4; paper Section 7.4 discusses the
// trade-off between kernel quotas and NeST-managed accounting).
enum class LotEnforcement {
  kernel_quota,  // rely on the (simulated) filesystem quota mechanism
  nest_managed,  // NeST meters writes through the QuotaLedger
};

struct StorageOptions {
  std::int64_t lot_capacity = 0;  // 0: use the backend's total space
  ReclaimPolicy reclaim_policy = ReclaimPolicy::expired_lru;
  LotEnforcement enforcement = LotEnforcement::kernel_quota;
  std::string superuser = "root";
  // When false, writes require a usable lot (strict Grid mode); when true,
  // lot-less writes are admitted if raw space remains (convenience mode
  // mirroring default user lots created by administrators).
  bool allow_lotless_writes = true;
};

// Grant returned when a transfer is approved; carries what the transfer
// manager needs to move bytes and what to undo on failure.
struct TransferTicket {
  std::string path;
  std::string user;  // approving principal ("" = anonymous)
  FileHandlePtr handle;
  std::int64_t size = 0;                  // known size (writes) or file size
  std::vector<LotAllocation> allocations; // lot charges backing a write
};

class StorageManager {
 public:
  StorageManager(Clock& clock, std::unique_ptr<VirtualFs> fs,
                 StorageOptions options = {});

  // --- Non-transfer requests (synchronous; paper Section 2.1) ---
  Status mkdir(const Principal& who, const std::string& path);
  Status rmdir(const Principal& who, const std::string& path);
  Status remove(const Principal& who, const std::string& path);
  Result<FileStat> stat(const Principal& who, const std::string& path) const;
  Result<std::vector<DirEntry>> list(const Principal& who,
                                     const std::string& path) const;

  // --- Transfer approval ---
  Result<TransferTicket> approve_read(const Principal& who,
                                      const std::string& path);
  Result<TransferTicket> approve_write(const Principal& who,
                                       const std::string& path,
                                       std::int64_t size);

  // Post-hoc accounting for stream protocols whose writes carry no length
  // up front (FTP STOR): re-charges lots/quota for the actual byte count.
  // On failure the caller should delete the partial file.
  Status charge_written(const Principal& who, const std::string& path,
                        std::int64_t bytes);

  // --- Lot management (reached via Chirp; paper Section 5) ---
  Result<LotId> lot_create(const Principal& who, std::int64_t capacity,
                           Nanos duration, bool group_lot = false);
  Status lot_renew(const Principal& who, LotId id, Nanos duration);
  Status lot_terminate(const Principal& who, LotId id);
  Result<Lot> lot_query(const Principal& who, LotId id) const;
  std::vector<Lot> lots_of(const Principal& who) const;

  // --- ACL management ---
  Status acl_set(const Principal& who, const std::string& dir,
                 const classad::ClassAd& entry);
  Result<std::vector<std::string>> acl_get(const Principal& who,
                                           const std::string& dir) const;

  // Resource description published by the dispatcher (paper Section 2.1).
  classad::ClassAd resource_ad() const;

  AccessControl& acl() { return acl_; }
  LotManager& lots() { return lots_; }
  VirtualFs& fs() { return *fs_; }
  const StorageOptions& options() const { return options_; }

 private:
  Status check(const Principal& who, const std::string& path,
               Right needed) const;

  Clock& clock_;
  std::unique_ptr<VirtualFs> fs_;
  StorageOptions options_;
  AccessControl acl_;
  LotManager lots_;
  QuotaLedger quota_;
  mutable std::mutex mu_;
};

}  // namespace nest::storage
