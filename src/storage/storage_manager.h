// StorageManager: NeST's storage component (paper Sections 2.1 and 5).
//
// Responsibilities: virtualize physical storage behind VirtualFs, execute
// non-transfer requests synchronously, enforce access control on every
// protocol uniformly, and manage guaranteed space in the form of lots.
// Transfer requests are only *approved* here (ACL + lot admission); the
// bytes are moved by the transfer manager.
//
// Durability: when a metadata journal is attached, every mutating
// lot/ACL/quota operation is sealed into one journal batch and the reply
// is withheld until Journal::commit() reports the batch durable — the
// write-ahead barrier that makes lot guarantees survive a nestd restart.
// attach_journal() replays snapshot + tail into the managers before the
// server accepts connections.
//
// Thread safety: the dispatcher serializes storage operations (the paper
// executes them synchronously in a thread-safe schedule); an internal mutex
// enforces that invariant even for callers outside the dispatcher. The
// journal commit wait deliberately happens *outside* that mutex so group
// commit can batch concurrent operations into one fsync.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "classad/classad.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/result.h"
#include "journal/journal.h"
#include "storage/acl.h"
#include "storage/journal_ops.h"
#include "storage/lot.h"
#include "storage/quota.h"
#include "storage/vfs.h"

namespace nest::storage {

// Lot enforcement mechanism (ablation A4; paper Section 7.4 discusses the
// trade-off between kernel quotas and NeST-managed accounting).
enum class LotEnforcement {
  kernel_quota,  // rely on the (simulated) filesystem quota mechanism
  nest_managed,  // NeST meters writes through the QuotaLedger
};

struct StorageOptions {
  std::int64_t lot_capacity = 0;  // 0: use the backend's total space
  ReclaimPolicy reclaim_policy = ReclaimPolicy::expired_lru;
  LotEnforcement enforcement = LotEnforcement::kernel_quota;
  std::string superuser = "root";
  // When false, writes require a usable lot (strict Grid mode); when true,
  // lot-less writes are admitted if raw space remains (convenience mode
  // mirroring default user lots created by administrators).
  bool allow_lotless_writes = true;
  // Journal compaction cadence: snapshot + retire old segments after this
  // many sealed batches.
  std::uint64_t journal_snapshot_every = 4096;
};

// Grant returned when a transfer is approved; carries what the transfer
// manager needs to move bytes and what to undo on failure.
struct TransferTicket {
  std::string path;
  std::string user;  // approving principal ("" = anonymous)
  FileHandlePtr handle;
  std::int64_t size = 0;                  // known size (writes) or file size
  std::vector<LotAllocation> allocations; // lot charges backing a write
};

class StorageManager {
 public:
  StorageManager(Clock& clock, std::unique_ptr<VirtualFs> fs,
                 StorageOptions options = {});

  // --- Durable metadata journal ---
  // Recover lot/ACL/quota state from `j` (newest snapshot, then the
  // record tail), then route every later metadata mutation through it.
  // Must run before the server serves requests. When `rebase_clock` is
  // set, recovered timestamps are shifted onto the current clock so lots
  // keep the remaining duration they had at the last journaled record
  // (downtime does not burn lease time); tests that compare raw state
  // across a simulated crash disable it.
  NEST_NODISCARD
  Status attach_journal(journal::Journal& j, bool rebase_clock = true);
  // Stats of the attached journal (nullopt when none), for operators
  // (nest-cli journal-stat).
  std::optional<journal::JournalStats> journal_stats() const;
  // Force a snapshot + compaction now (admin/test hook; the manager also
  // snapshots automatically every journal_snapshot_every batches).
  NEST_NODISCARD Status write_journal_snapshot();
  // Serialized lot/ACL/quota state stamped with `at` (recovery tests
  // compare shadow and replayed state byte-for-byte; the cluster layer
  // ships it to re-seed followers).
  std::string serialize_meta(Nanos at);

  // --- Cluster replication (primary streams sealed batches to followers;
  // src/cluster/ owns the transport, this class owns the hooks) ---
  // Primary side: invoked with every sealed batch — the LSN the local
  // journal assigned plus the exact payload — while mu_ is still held, so
  // batches enter the ship queue in LSN order. Set once at startup before
  // the server serves (like attach_journal); the hook must only enqueue
  // (rank cluster_ship sits above storage_meta for exactly this call).
  using ReplicationHook =
      std::function<void(journal::Lsn, const std::string&)>;
  void set_replication_hook(ReplicationHook hook);
  // Follower side: apply one shipped batch to the managers and append it
  // verbatim to the local journal (the follower's own LSN sequence), then
  // wait out the durability barrier. Guarded by the cluster.apply
  // failpoint.
  NEST_NODISCARD Status apply_replicated_batch(std::string_view payload);
  // Follower side: replace the entire metadata state with a primary
  // snapshot (restart / lagging-follower catch-up), journaling it as the
  // local snapshot so the follower recovers from it too.
  NEST_NODISCARD Status install_replica_snapshot(std::string_view payload);
  // Primary side: full-state snapshot plus the journal LSN it covers,
  // captured atomically with respect to concurrent mutations (the pair is
  // what re-seeds a follower whose cursor fell behind the ship queue).
  struct MetaSnapshot {
    std::string payload;
    journal::Lsn lsn = 0;
  };
  MetaSnapshot replica_snapshot();
  // Follower side: install replicated file *content* verbatim — no ACL
  // check, no lot/quota accounting, no journal batch. The charges arrived
  // through the journal stream already; the bytes are the primary's push,
  // not a client write, so admitting them through the write path would
  // double-account every replicated file.
  NEST_NODISCARD
  Status install_replica_file(const std::string& path, std::string_view data);

  // --- Non-transfer requests (synchronous; paper Section 2.1) ---
  NEST_NODISCARD Status mkdir(const Principal& who, const std::string& path);
  NEST_NODISCARD Status rmdir(const Principal& who, const std::string& path);
  NEST_NODISCARD Status remove(const Principal& who, const std::string& path);
  NEST_NODISCARD
  Result<FileStat> stat(const Principal& who, const std::string& path) const;
  NEST_NODISCARD
  Result<std::vector<DirEntry>> list(const Principal& who,
                                     const std::string& path) const;
  // Rename = delete from old name + insert at new; the delete right on the
  // old path gates it (matching the historical dispatcher check).
  NEST_NODISCARD
  Status rename(const Principal& who, const std::string& from,
                const std::string& to);
  // Open an existing file for in-place block writes (NFS WRITE: no
  // truncate, no whole-file size). ACL-checked and mutex-protected like
  // every other path into the VirtualFs.
  NEST_NODISCARD
  Result<FileHandlePtr> open_for_append(const Principal& who,
                                        const std::string& path);
  // Space totals under the metadata lock (NFS STATFS).
  std::int64_t total_space() const;
  std::int64_t free_space() const;

  // --- Hierarchical storage: CASTOR-style cold tier (docs/hsm.md) ---
  // Attach a second VirtualFs holding the cold tier. Like attach_journal,
  // this runs once before the server serves; most call sites pass a
  // SlowFs-wrapped LocalFs (real mode) or a MemFs (tests/sim). HSM ops
  // fail with invalid_argument until a cold tier is attached.
  void attach_cold_tier(std::unique_ptr<VirtualFs> cold);
  bool cold_tier_attached() const;
  // Resolve the two filesystems against the replayed residency map after
  // attach_journal: delete hot strays for journaled-cold entries (the
  // deliberate double-residency window of an interrupted migrate/recall
  // commit) and GC cold files the journal does not know about (aborted
  // migrations). Server init calls this; meta-only recovery tests that
  // recreate the managers over fresh filesystems skip it.
  NEST_NODISCARD Status hsm_recover();

  // Migration/recall run as begin -> copy-outside-the-lock -> commit/abort
  // so the block copy can pace through the transfer scheduler without
  // holding the metadata mutex. The ticket carries both tier handles.
  struct HsmTicket {
    std::string path;   // normalized
    std::int64_t size = 0;
    std::string owner;
    FileHandlePtr src;  // read side (hot for migrate, cold for recall)
    FileHandlePtr dst;  // write side (cold for migrate, hot for recall)
  };
  // Begin draining `path` to the cold tier. Requires superuser or file
  // owner; refused while any charging lot is live or pinned, or while
  // another transition is in flight.
  NEST_NODISCARD
  Result<HsmTicket> hsm_begin_migrate(const Principal& who,
                                      const std::string& path);
  // The cold copy is fully written: journal residency=cold, release lot
  // and quota charges, then (after the durability barrier) delete the hot
  // copy. A crash between barrier and delete leaves both copies; the
  // recovery scrub finishes the delete.
  NEST_NODISCARD Status hsm_commit_migrate(const HsmTicket& t);
  void hsm_abort_migrate(const std::string& path);
  // Begin staging `path` back to the hot tier. Requires the read right;
  // re-admits the bytes (raw-space check, quota re-charge at commit) so a
  // recall cannot overcommit space guaranteed to live lots.
  NEST_NODISCARD
  Result<HsmTicket> hsm_begin_recall(const Principal& who,
                                     const std::string& path);
  NEST_NODISCARD Status hsm_commit_recall(const HsmTicket& t);
  void hsm_abort_recall(const std::string& path);
  // Residency of a path: hot when no entry and the file exists.
  NEST_NODISCARD
  Result<hsm::Tier> hsm_tier(const Principal& who,
                             const std::string& path) const;
  struct HsmStats {
    std::int64_t cold_files = 0;
    std::int64_t cold_bytes = 0;
    std::int64_t migrating = 0;
    std::int64_t recalling = 0;
  };
  HsmStats hsm_stats() const;
  // Migration policy scan: files whose charging lots are ALL best-effort
  // (expired/terminated) and none pinned, not already cold or in
  // transition. The TierMigrator drains these.
  std::vector<std::string> hsm_migration_candidates(std::size_t max) const;
  // Pin/unpin a lot: pinned lots keep their files hot (owner/superuser,
  // journaled like every other lot mutation).
  NEST_NODISCARD
  Status lot_set_pin(const Principal& who, LotId id, bool pinned);

  // --- Transfer approval ---
  NEST_NODISCARD
  Result<TransferTicket> approve_read(const Principal& who,
                                      const std::string& path);
  NEST_NODISCARD
  Result<TransferTicket> approve_write(const Principal& who,
                                       const std::string& path,
                                       std::int64_t size);

  // Post-hoc accounting for stream protocols whose writes carry no length
  // up front (FTP STOR): re-charges lots/quota for the actual byte count.
  // On failure the caller should delete the partial file.
  NEST_NODISCARD
  Status charge_written(const Principal& who, const std::string& path,
                        std::int64_t bytes);

  // --- Lot management (reached via Chirp; paper Section 5) ---
  NEST_NODISCARD
  Result<LotId> lot_create(const Principal& who, std::int64_t capacity,
                           Nanos duration, bool group_lot = false);
  NEST_NODISCARD
  Status lot_renew(const Principal& who, LotId id, Nanos duration);
  NEST_NODISCARD Status lot_terminate(const Principal& who, LotId id);
  // Per-lot replication policy (cluster federation): how many replicas
  // files charged to this lot want (0 = cluster default). Owner or
  // superuser only; journaled like every other lot mutation.
  NEST_NODISCARD
  Status lot_set_replicas(const Principal& who, LotId id,
                          std::int64_t replicas);
  // Effective replica policy for a path: the max `replicas` across lots
  // charging it (0 when no charging lot sets one).
  std::int64_t replicas_for(const std::string& path) const;
  NEST_NODISCARD Result<Lot> lot_query(const Principal& who, LotId id) const;
  std::vector<Lot> lots_of(const Principal& who) const;
  // Operator listing: the superuser sees every lot, others their own.
  std::vector<Lot> lot_list(const Principal& who) const;

  // --- ACL management ---
  NEST_NODISCARD
  Status acl_set(const Principal& who, const std::string& dir,
                 const classad::ClassAd& entry);
  NEST_NODISCARD
  Status acl_clear(const Principal& who, const std::string& dir,
                   const std::string& principal_spec);
  NEST_NODISCARD
  Result<std::vector<std::string>> acl_get(const Principal& who,
                                           const std::string& dir) const;

  // Resource description published by the dispatcher (paper Section 2.1).
  classad::ClassAd resource_ad() const;

  const StorageOptions& options() const { return options_; }

 private:
  NEST_NODISCARD
  Status check(const Principal& who, const std::string& path,
               Right needed) const REQUIRES(mu_);
  MetaState meta_state() REQUIRES(mu_) {
    return MetaState{lots_, acl_, quota_, &residency_};
  }

  // Journal the current lot state of `id` (erase record if it vanished).
  void record_lot_locked(LotId id) REQUIRES(mu_);
  void record_quota_locked(const std::string& owner) REQUIRES(mu_);
  // Append the accumulated batch (one record per client operation);
  // returns 0 when there is nothing to journal or no journal attached.
  Result<journal::Lsn> seal_batch_locked() REQUIRES(mu_);
  void maybe_snapshot_locked() REQUIRES(mu_);
  // Durability barrier, called WITHOUT mu_ so concurrent operations share
  // a group-commit fsync. journal_ is read unguarded here: it is set once
  // in attach_journal (before the server serves) and never reassigned.
  Status barrier(journal::Lsn lsn) EXCLUDES(mu_);

  // Operation bodies, run under mu_ with batch recording.
  Status remove_locked(const Principal& who, const std::string& path)
      REQUIRES(mu_);
  Result<TransferTicket> approve_write_locked(const Principal& who,
                                              const std::string& path,
                                              std::int64_t size)
      REQUIRES(mu_);
  Status charge_written_locked(const Principal& who, const std::string& path,
                               std::int64_t bytes) REQUIRES(mu_);
  Result<LotId> lot_create_locked(const Principal& who, std::int64_t capacity,
                                  Nanos duration, bool group_lot)
      REQUIRES(mu_);
  Status lot_renew_locked(const Principal& who, LotId id, Nanos duration)
      REQUIRES(mu_);
  Status lot_terminate_locked(const Principal& who, LotId id) REQUIRES(mu_);
  Status lot_set_replicas_locked(const Principal& who, LotId id,
                                 std::int64_t replicas) REQUIRES(mu_);
  Status lot_set_pin_locked(const Principal& who, LotId id, bool pinned)
      REQUIRES(mu_);
  // Owner/superuser/group-member check shared by the lot mutators.
  bool owns_lot_locked(const Principal& who, const Lot& lot) const
      REQUIRES(mu_);
  // mkdir the missing ancestors of `norm` in `fs` (cold-tier mirror of
  // install_replica_file's parent materialization).
  Status materialize_parents_locked(VirtualFs& fs, const std::string& norm)
      REQUIRES(mu_);

  Clock& clock_;
  // The VirtualFs object itself (MemFs node table, LocalFs dirfd state) is
  // externally serialized by mu_; only per-file payloads carry their own
  // lock (rank storage_file, acquired under mu_ by stat/list).
  std::unique_ptr<VirtualFs> fs_ PT_GUARDED_BY(mu_);
  // Cold tier (may be null). Same serialization discipline as fs_.
  std::unique_ptr<VirtualFs> cold_fs_ PT_GUARDED_BY(mu_);
  StorageOptions options_;
  AccessControl acl_ GUARDED_BY(mu_);
  LotManager lots_ GUARDED_BY(mu_);
  QuotaLedger quota_ GUARDED_BY(mu_);
  hsm::ResidencyMap residency_ GUARDED_BY(mu_);
  // Set once by attach_journal() before the server accepts connections,
  // read-only afterwards; barrier() reads it outside mu_ by design (the
  // commit wait must not hold the metadata lock), so it stays unguarded.
  journal::Journal* journal_ = nullptr;
  // Same single-assignment discipline as journal_: set before serving,
  // invoked under mu_ from seal_batch_locked.
  ReplicationHook replication_hook_;
  MetaBatch batch_ GUARDED_BY(mu_);
  mutable Mutex mu_{lockrank::Rank::storage_meta, "storage.mu"};
};

}  // namespace nest::storage
